//! Regenerates Table 2: monotonicity, compilation of C++ transactions to
//! hardware, and lock elision, each checked up to a bounded execution size.
//!
//! Run with `cargo run --release --example metatheory_report [max_events]`.
//! The default bound keeps the run short; raising it approaches the paper's
//! bounds at the cost of much longer searches (exactly as in Table 2).

use std::env;

use tm_weak_memory::exec::Annot;
use tm_weak_memory::litmus::Arch;
use tm_weak_memory::metatheory::{
    check_compilation, check_lock_elision, check_monotonicity, check_theorem_7_2, check_theorem_7_3,
};
use tm_weak_memory::models::{Armv8Model, CppModel, MemoryModel, PowerModel, X86Model};
use tm_weak_memory::synth::SynthConfig;

fn main() {
    let bound: usize = env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .clamp(2, 5);

    println!("== Table 2: metatheoretical results (bound: {bound} events) ==");
    println!(
        "{:<14} {:<14} {:>8} {:>12}  counterexample?",
        "property", "target", "events", "time"
    );

    // Monotonicity (§8.1).
    let mono_targets: Vec<(Box<dyn MemoryModel>, SynthConfig, usize)> = vec![
        (Box::new(X86Model::tm()), SynthConfig::x86(bound), bound),
        (Box::new(PowerModel::tm()), SynthConfig::power(2), 2),
        (Box::new(Armv8Model::tm()), SynthConfig::armv8(2), 2),
        (Box::new(CppModel::tm()), cpp_config(bound), bound),
    ];
    for (model, config, events) in mono_targets {
        let result = check_monotonicity(model.as_ref(), &config, events);
        println!(
            "{:<14} {:<14} {:>8} {:>12?}  {}",
            "Monotonicity",
            result.model,
            result.max_events,
            result.elapsed,
            if result.holds() { "no" } else { "YES" }
        );
    }

    // Compilation of C++ transactions to hardware (§8.2).
    for target in [Arch::X86, Arch::Power, Arch::Armv8] {
        let result = check_compilation(target, &cpp_config(bound), bound);
        println!(
            "{:<14} {:<14} {:>8} {:>12?}  {}",
            "Compilation",
            format!("C++/{target}"),
            result.max_events,
            result.elapsed,
            if result.sound() { "no" } else { "YES" }
        );
    }

    // Lock elision (§8.3).
    for (arch, fix) in [
        (Arch::X86, false),
        (Arch::Power, false),
        (Arch::Armv8, false),
        (Arch::Armv8, true),
    ] {
        let result = check_lock_elision(arch, fix);
        let label = if fix {
            format!("{arch} (fixed)")
        } else {
            arch.to_string()
        };
        println!(
            "{:<14} {:<14} {:>8} {:>12?}  {}",
            "Lock elision",
            label,
            result.checked,
            result.elapsed,
            if result.sound() { "no" } else { "YES" }
        );
    }

    // Bounded checks of the two theorems of §7.
    let t72 = check_theorem_7_2(&cpp_config(bound), bound);
    let t73 = check_theorem_7_3(&cpp_config(bound), bound);
    for t in [t72, t73] {
        println!(
            "{:<14} {:<14} {:>8} {:>12?}  {}",
            format!("Theorem {}", t.theorem),
            "C++",
            t.max_events,
            t.elapsed,
            if t.holds() { "no" } else { "YES" }
        );
    }
}

fn cpp_config(bound: usize) -> SynthConfig {
    let mut cfg = SynthConfig::cpp(bound);
    // Keep the annotation alphabet small so the report stays interactive;
    // the benchmark harness uses the full configuration.
    cfg.read_annots = vec![Annot::PLAIN, Annot::relaxed_atomic(), Annot::seq_cst()];
    cfg.write_annots = vec![Annot::PLAIN, Annot::relaxed_atomic(), Annot::seq_cst()];
    cfg
}

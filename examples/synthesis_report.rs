//! Synthesises the Forbid and Allow conformance suites (Table 1) for a
//! chosen architecture and event bound, runs them on the operational
//! simulator, and prints the resulting table row plus the suites themselves
//! in the litmus text format.
//!
//! Run with, e.g.:
//!
//! ```text
//! cargo run --release --example synthesis_report -- x86 3
//! cargo run --release --example synthesis_report -- power 3
//! cargo run --release --example synthesis_report -- armv8 3
//! ```

use std::env;

use tm_weak_memory::litmus::suite_to_text;
use tm_weak_memory::models::{Armv8Model, MemoryModel, PowerModel, X86Model};
use tm_weak_memory::sim::{run_suite, SimArch, SuiteObservation};
use tm_weak_memory::synth::{synthesise_suites, SynthConfig};

fn main() {
    let args: Vec<String> = env::args().collect();
    let arch = args.get(1).map(String::as_str).unwrap_or("x86");
    let events: usize = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .clamp(2, 5);

    let (tm_model, baseline, config, sim): (
        Box<dyn MemoryModel>,
        Box<dyn MemoryModel>,
        SynthConfig,
        Option<SimArch>,
    ) = match arch {
        "power" => (
            Box::new(PowerModel::tm()),
            Box::new(PowerModel::baseline()),
            SynthConfig::power(events),
            Some(SimArch::Power),
        ),
        "armv8" => (
            Box::new(Armv8Model::tm()),
            Box::new(Armv8Model::baseline()),
            SynthConfig::armv8(events),
            // ARM hardware has no TM (§6.2): the suites are generated but
            // cannot be run, exactly as in the paper.
            None,
        ),
        _ => (
            Box::new(X86Model::tm()),
            Box::new(X86Model::baseline()),
            SynthConfig::x86(events),
            Some(SimArch::X86),
        ),
    };

    eprintln!("synthesising {arch} suites at |E| = {events} …");
    let report = synthesise_suites(tm_model.as_ref(), baseline.as_ref(), &config, events);

    let (forbid_seen, allow_seen) = match sim {
        Some(sim_arch) => {
            let forbid_tests: Vec<_> = report.forbid.iter().map(|t| t.litmus.clone()).collect();
            let allow_tests: Vec<_> = report.allow.iter().map(|t| t.litmus.clone()).collect();
            let runs = 2000;
            let forbid_obs =
                SuiteObservation::from_reports(&run_suite(sim_arch, &forbid_tests, runs, 7));
            let allow_obs =
                SuiteObservation::from_reports(&run_suite(sim_arch, &allow_tests, runs, 7));
            (Some(forbid_obs), Some(allow_obs))
        }
        None => (None, None),
    };

    println!("== Table 1 row for {} ==", report.model);
    println!(
        "{:>4} {:>12} {:>14} {:>8} {:>4} {:>4} {:>8} {:>4} {:>4}",
        "|E|", "enumerated", "synth time", "Forbid", "S", "¬S", "Allow", "S", "¬S"
    );
    let fmt_obs = |o: &Option<SuiteObservation>, total: usize| match o {
        Some(obs) => (obs.seen.to_string(), obs.not_seen().to_string()),
        None => ("-".to_string(), total.to_string()),
    };
    let (fs, fns) = fmt_obs(&forbid_seen, report.forbid.len());
    let (als, alns) = fmt_obs(&allow_seen, report.allow.len());
    println!(
        "{:>4} {:>12} {:>14?} {:>8} {:>4} {:>4} {:>8} {:>4} {:>4}",
        report.event_count,
        report.enumerated,
        report.elapsed,
        report.forbid.len(),
        fs,
        fns,
        report.allow.len(),
        als,
        alns,
    );
    let hist = report.forbid_txn_histogram();
    println!(
        "Forbid tests by transaction count: 1 txn: {}, 2 txns: {}, 3+ txns: {}",
        hist[1], hist[2], hist[3]
    );

    println!("\n== Forbid suite ({} tests) ==", report.forbid.len());
    println!("{}", suite_to_text(report.forbid.iter().map(|t| &t.litmus)));
    println!("== Allow suite ({} tests) ==", report.allow.len());
    println!("{}", suite_to_text(report.allow.iter().map(|t| &t.litmus)));
}

//! Lock elision under weak memory: rediscovers the paper's headline finding
//! (Example 1.1) that eliding the ARM-recommended spinlock with a
//! transaction is unsound under the proposed ARMv8 TM extension, and that
//! appending a DMB to `lock()` removes the witness.
//!
//! Run with `cargo run --example lock_elision`.

use tm_weak_memory::exec::catalog;
use tm_weak_memory::litmus::{self, render, Arch};
use tm_weak_memory::metatheory::check_lock_elision;
use tm_weak_memory::models::{Armv8Model, MemoryModel};

fn main() {
    // The abstract mutual-exclusion test and the concrete ARMv8 program of
    // Example 1.1, exactly as the paper presents them.
    println!("== Example 1.1, abstract mutual-exclusion test ==");
    println!("{}", litmus::catalog::example_1_1_abstract());
    println!("== Example 1.1, concrete ARMv8 program (lock elided on P1) ==");
    println!(
        "{}",
        render(&litmus::catalog::example_1_1_concrete(false), Arch::Armv8)
    );

    // The axiomatic verdicts on the witnessing execution pair (Fig. 10).
    let witness = catalog::example_1_1_concrete(false);
    let fixed = catalog::example_1_1_concrete(true);
    println!(
        "ARMv8+TM verdict on the witness:  {}",
        Armv8Model::tm().check(&witness)
    );
    println!(
        "ARMv8+TM verdict with a DMB fix:  {}",
        Armv8Model::tm().check(&fixed)
    );
    println!();

    // The automated check of §8.3 across architectures (Table 2, bottom).
    println!("== Lock-elision soundness search (Table 2, bottom block) ==");
    println!(
        "{:<16} {:>10} {:>12} {:>12}",
        "target", "abstract", "time", "witness?"
    );
    for (arch, fix) in [
        (Arch::X86, false),
        (Arch::Power, false),
        (Arch::Armv8, false),
        (Arch::Armv8, true),
    ] {
        let result = check_lock_elision(arch, fix);
        let label = if fix {
            format!("{arch} (fixed)")
        } else {
            arch.to_string()
        };
        println!(
            "{:<16} {:>10} {:>12?} {:>12}",
            label,
            result.checked,
            result.elapsed,
            if result.sound() { "none" } else { "FOUND" }
        );
        if let Some((abstract_exec, concrete)) = result.counterexample {
            println!("\n  Abstract execution violating mutual exclusion:");
            println!("{}", litmus::from_execution(&abstract_exec, "abstract"));
            println!("  Its lock-elided implementation (consistent, so elision is unsound):");
            println!(
                "{}",
                render(&litmus::from_execution(&concrete, "concrete"), arch)
            );
        }
    }
}

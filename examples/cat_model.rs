//! Define a new transactional memory model in `.cat` text, load it at
//! runtime, and put it through the toolflow: litmus verdicts, a synthesis
//! sweep, and the metatheory's syntactic monotonicity analysis — all with
//! zero recompilation.
//!
//! Run with `cargo run --release -p tm --example cat_model`.

use tm_weak_memory::cat::load_str;
use tm_weak_memory::exec::catalog;
use tm_weak_memory::metatheory::syntactic_monotonicity_of;
use tm_weak_memory::models::{MemoryModel, Target};
use tm_weak_memory::synth::{enumerate_exact, SynthConfig};

const SOURCE: &str = r#"
"x86+StrongIsol-only"

(* x86-TSO's happens-before, but the only transactional obligation is
   strong isolation: transactions do not fence (no tfence in hb), and
   need not be atomic in hb (no TxnOrder). Weaker than x86+TM, stronger
   than plain x86. *)

let locked = [domain(rmw) | range(rmw)]
let ppo = po & (R * R | R * W | W * W)
let hb = mfence | ppo | locked ; po | po ; locked | rfe | fr | co

acyclic po-loc | com as Coherence
empty rmw & fre ; coe as RMWIsol
acyclic hb as Order
acyclic stronglift(com, stxn) as StrongIsol
"#;

fn main() {
    let model = load_str("example", SOURCE).expect("the example model elaborates");
    println!(
        "loaded `{}` with axioms: {}\n",
        model.name(),
        model.axioms().join(", ")
    );

    // Litmus verdicts, next to the models it sits between.
    let x86 = Target::X86.model();
    let x86_tm = Target::X86Tm.model();
    for (name, exec) in [
        ("sb", catalog::sb()),
        ("sb-txn", catalog::sb_txn()),
        ("fig1", catalog::fig1()),
        ("fig2", catalog::fig2()),
    ] {
        println!("{name}:");
        println!("  {}", x86.check(&exec));
        println!("  {}", model.check(&exec));
        println!("  {}", x86_tm.check(&exec));
    }

    // The §8.1 analysis runs on the loaded table like on any built-in one.
    let mono = syntactic_monotonicity_of(model.table(), model.pool());
    println!(
        "\nsyntactic monotonicity: {}",
        if mono.conclusive() {
            "conclusive (every axiom positive/constant in the transactions)".to_string()
        } else {
            format!(
                "inconclusive (blocking: {})",
                mono.blocking_axioms().join(", ")
            )
        }
    );

    // A bounded sweep: count how much each model forbids. The loaded model
    // must sit between its two neighbours.
    let mut cfg = SynthConfig::x86(4);
    cfg.max_threads = 2;
    cfg.max_locs = 2;
    cfg.rmws = false;
    cfg.max_txns = 1;
    use std::sync::atomic::{AtomicUsize, Ordering};
    let counts: [AtomicUsize; 3] = Default::default();
    let mut total = 0usize;
    for n in 2..=4 {
        total += enumerate_exact(&cfg, n, |exec| {
            let view = tm_weak_memory::exec::ExecView::new(exec);
            for (i, m) in [&*x86, &model as &dyn MemoryModel, &*x86_tm]
                .iter()
                .enumerate()
            {
                if m.is_consistent_view(&view) {
                    counts[i].fetch_add(1, Ordering::Relaxed);
                }
            }
        });
    }
    let [base, ours, tm] = counts.map(AtomicUsize::into_inner);
    println!("\nsweep over {total} executions (|E| <= 4, x86-trimmed):");
    println!("  x86 allows              {base}");
    println!("  x86+StrongIsol-only     {ours}");
    println!("  x86+TM allows           {tm}");
    assert!(
        tm <= ours && ours <= base,
        "the loaded model must sit between"
    );
}

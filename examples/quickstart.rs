//! Quickstart: build an execution, ask every memory model about it, and turn
//! it into litmus tests for each architecture.
//!
//! Run with `cargo run --example quickstart`.

use tm_weak_memory::exec::{catalog, Event, ExecutionBuilder};
use tm_weak_memory::litmus::{from_execution, render, Arch};
use tm_weak_memory::models::Target;
use tm_weak_memory::sim::{run_test, SimArch};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the transactional store-buffering execution by hand.
    let mut b = ExecutionBuilder::new();
    let wx = b.push(Event::write(0, 0));
    let ry = b.push(Event::read(0, 1));
    let wy = b.push(Event::write(1, 1));
    let rx = b.push(Event::read(1, 0));
    b.txn(&[wx, ry]);
    b.txn(&[wy, rx]);
    let sb_txn = b.build()?;

    // 2. Ask every model (baseline and transactional) for a verdict.
    println!("== Verdicts for SB with both threads transactional ==");
    for target in Target::ALL {
        println!("  {}", target.model().check(&sb_txn));
    }

    // 3. Convert it into a litmus test and render it for each architecture.
    let test = from_execution(&sb_txn, "SB+txns");
    println!("\n== Generated litmus test (generic pseudocode) ==\n{test}");
    for arch in [Arch::X86, Arch::Power, Arch::Armv8, Arch::Cpp] {
        println!("== {arch} rendering ==\n{}", render(&test, arch));
    }

    // 4. Run it on the operational simulators: the transactional version is
    //    never observed, while plain SB is observed everywhere.
    let plain = from_execution(&catalog::sb(), "SB");
    println!("== Simulation (2000 runs each) ==");
    for arch in [SimArch::X86, SimArch::Armv8, SimArch::Power] {
        let with_txn = run_test(arch, &test, 2000, 1);
        let without = run_test(arch, &plain, 2000, 1);
        println!(
            "  {arch:?}: plain SB observed = {}, transactional SB observed = {}",
            without.observed, with_txn.observed
        );
    }
    Ok(())
}

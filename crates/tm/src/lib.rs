//! Umbrella crate for the reproduction of *The Semantics of Transactions and
//! Weak Memory in x86, Power, ARM, and C++* (PLDI 2018).
//!
//! Each subsystem lives in its own crate; this crate simply re-exports them
//! under one roof so that downstream users (and the repository's examples
//! and integration tests) can depend on a single package:
//!
//! * [`exec`] — candidate executions: events, relations, well-formedness,
//!   and the catalog of every execution discussed in the paper;
//! * [`cat`] — the `.cat` model language: parse, elaborate and check
//!   user-defined memory models at runtime (see `models/*.cat`);
//! * [`models`] — the axiomatic memory models (SC/TSC, x86, Power, ARMv8,
//!   C++) with their transactional extensions;
//! * [`litmus`] — litmus tests: generation from executions, rendering for
//!   each architecture, and a text format for suites;
//! * [`synth`] — bounded exhaustive synthesis of Forbid/Allow conformance
//!   suites (the Memalloy replacement);
//! * [`sim`] — operational weak-memory + HTM simulators (the hardware
//!   replacement) and a litmus runner;
//! * [`sweep`] — checkpointed, crash-resilient sharded sweep runs over the
//!   enumeration space (journalled work-unit frontier with resume, retry
//!   and fault injection);
//! * [`obs`] — std-only observability: timed spans, counters/histograms,
//!   pluggable event sinks, and the shared JSON codec;
//! * [`metatheory`] — monotonicity, compilation and lock-elision checking,
//!   plus the bounded checks of Theorems 7.2 and 7.3;
//! * [`relation`] — the underlying finite relation algebra.
//!
//! # Example
//!
//! ```
//! use tm_weak_memory::exec::catalog;
//! use tm_weak_memory::models::{MemoryModel, Armv8Model};
//!
//! // The headline result: the lock-elision witness of Example 1.1 is
//! // consistent under the proposed ARMv8 TM extension.
//! let witness = catalog::example_1_1_concrete(false);
//! assert!(Armv8Model::tm().is_consistent(&witness));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tm_cat as cat;
pub use tm_exec as exec;
pub use tm_litmus as litmus;
pub use tm_metatheory as metatheory;
pub use tm_models as models;
pub use tm_obs as obs;
pub use tm_relation as relation;
pub use tm_sim as sim;
pub use tm_sweep as sweep;
pub use tm_synth as synth;

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_are_wired_up() {
        let exec = crate::exec::catalog::sb();
        assert_eq!(exec.len(), 4);
        let test = crate::litmus::from_execution(&exec, "sb");
        assert_eq!(test.threads.len(), 2);
    }
}

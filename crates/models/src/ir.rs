//! The paper's models as declarative axiom tables over the relational IR.
//!
//! Each model of Fig. 4 (SC/TSC), Fig. 5 (x86 ± TM), Fig. 6 (Power ± TM),
//! Fig. 8 (ARMv8 ± TM) and Fig. 9 (C++ ± TM) — plus the §3.3 isolation
//! axioms and the §8.3 `CROrder` axiom — is declared here as a list of
//! [`Axiom`]s whose bodies are interned into **one shared**
//! [`IrPool`](tm_exec::ir::IrPool). Hash-consing makes sharing structural:
//! `acyclic(poloc ∪ com)` is one node tree whether x86, Power or ARMv8 asks,
//! and the evaluator computes it once per execution however many models
//! check it (see [`tm_exec::ir`]).
//!
//! The hand-written checks the models carried before this table existed
//! have been retired after their one-release soak; `tests/ir_parity.rs`
//! now pins the IR against its *enumeration oracles* instead — the memoized
//! and recomputing views must agree, the full-verdict and early-exit paths
//! must agree, and the stateful [`IncrementalChecker`] driven by the
//! delta-threading enumeration must agree with all of them, on the catalog
//! and on every enumerated execution at small bounds.
//!
//! # Defining a new model
//!
//! A model is nothing but axioms, so a new one is a table, not a Rust
//! module. [`IrModel`] packages a user-built table as a
//! [`MemoryModel`](crate::MemoryModel):
//!
//! ```
//! use tm_exec::catalog;
//! use tm_exec::ir::{AxiomHead, RelBase};
//! use tm_models::ir::IrModel;
//! use tm_models::MemoryModel;
//!
//! // "Transactional coherence": SC per location, plus weak isolation.
//! let model = IrModel::new("SC-per-loc+WeakIsol", |p| {
//!     let poloc = p.base(RelBase::Poloc);
//!     let com = p.base(RelBase::Com);
//!     let stxn = p.base(RelBase::Stxn);
//!     let coherence = p.union(poloc, com);
//!     let lifted = p.weaklift(com, stxn);
//!     vec![
//!         p.axiom("Coherence", AxiomHead::Acyclic, coherence),
//!         p.axiom("WeakIsol", AxiomHead::Acyclic, lifted),
//!     ]
//! });
//! assert!(model.is_consistent(&catalog::sb()));
//! assert!(!model.is_consistent(&catalog::lb_txn()));
//! assert!(model.check(&catalog::fig1()).violates("Coherence"));
//! ```

use std::borrow::Cow;
use std::sync::OnceLock;

use tm_exec::ir::{
    Axiom, AxiomHead, Delta, IncrementalEval, IrEval, IrPool, RelBase, RelId, SetBase,
};
use tm_exec::{ExecView, Fence};

use crate::{Target, Verdict};

/// The axiom table of one model variant: axioms in declaration order (the
/// order verdicts report them in) plus a cheapest-first order for early-exit
/// boolean sweeps.
#[derive(Debug)]
pub struct ModelAxioms {
    name: Cow<'static, str>,
    axioms: Vec<Axiom>,
    by_cost: Vec<usize>,
}

impl ModelAxioms {
    /// Packages a named list of axioms, precomputing the cheapest-first
    /// check order. Public so runtime loaders (the `tm-cat` crate) can build
    /// tables outside this crate.
    pub fn new(name: impl Into<Cow<'static, str>>, axioms: Vec<Axiom>) -> ModelAxioms {
        let mut by_cost: Vec<usize> = (0..axioms.len()).collect();
        by_cost.sort_by_key(|&i| axioms[i].cost);
        ModelAxioms {
            name: name.into(),
            axioms,
            by_cost,
        }
    }

    /// The model's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The display name as a clonable [`Cow`] (free for built-in tables).
    pub fn name_cow(&self) -> Cow<'static, str> {
        self.name.clone()
    }

    /// The axioms in declaration (reporting) order.
    pub fn axioms(&self) -> &[Axiom] {
        &self.axioms
    }

    /// The axioms ordered by estimated evaluation cost, cheapest first.
    pub fn in_cost_order(&self) -> impl Iterator<Item = &Axiom> {
        self.by_cost.iter().map(|&i| &self.axioms[i])
    }
}

/// The shared axiom catalog: one pool, ten model tables, the isolation
/// axioms and `CROrder`.
#[derive(Debug)]
pub struct IrCatalog {
    pool: IrPool,
    sc: ModelAxioms,
    tsc: ModelAxioms,
    x86: ModelAxioms,
    x86_tm: ModelAxioms,
    power: ModelAxioms,
    power_tm: ModelAxioms,
    armv8: ModelAxioms,
    armv8_tm: ModelAxioms,
    cpp: ModelAxioms,
    cpp_tm: ModelAxioms,
    cr_order: Axiom,
    weak_isol: Axiom,
    strong_isol: Axiom,
    strong_isol_atomic: Axiom,
}

impl IrCatalog {
    /// The pool every table's bodies are interned in.
    pub fn pool(&self) -> &IrPool {
        &self.pool
    }

    /// The axiom table of a target model.
    pub fn model(&self, target: Target) -> &ModelAxioms {
        match target {
            Target::Sc => &self.sc,
            Target::Tsc => &self.tsc,
            Target::X86 => &self.x86,
            Target::X86Tm => &self.x86_tm,
            Target::Power => &self.power,
            Target::PowerTm => &self.power_tm,
            Target::Armv8 => &self.armv8,
            Target::Armv8Tm => &self.armv8_tm,
            Target::Cpp => &self.cpp,
            Target::CppTm => &self.cpp_tm,
        }
    }

    /// The `CROrder` axiom of §8.3 (opt-in on the hardware models).
    pub fn cr_order(&self) -> &Axiom {
        &self.cr_order
    }

    /// The `WeakIsol` axiom of §3.3.
    pub fn weak_isol(&self) -> &Axiom {
        &self.weak_isol
    }

    /// The `StrongIsol` axiom of §3.3.
    pub fn strong_isol(&self) -> &Axiom {
        &self.strong_isol
    }

    /// `StrongIsol` lifted over atomic transactions only (Theorem 7.2).
    pub fn strong_isol_atomic(&self) -> &Axiom {
        &self.strong_isol_atomic
    }
}

/// The process-wide catalog, built once on first use.
pub fn catalog() -> &'static IrCatalog {
    static CATALOG: OnceLock<IrCatalog> = OnceLock::new();
    CATALOG.get_or_init(build_catalog)
}

fn build_catalog() -> IrCatalog {
    let mut pool = IrPool::new();
    let p = &mut pool;

    // ---- vocabulary shared across models ---------------------------------
    let po = p.base(RelBase::Po);
    let rf = p.base(RelBase::Rf);
    let co = p.base(RelBase::Co);
    let rmw = p.base(RelBase::Rmw);
    let stxn = p.base(RelBase::Stxn);
    let scr = p.base(RelBase::Scr);
    let com = p.base(RelBase::Com);
    let poloc = p.base(RelBase::Poloc);
    let fr = p.base(RelBase::Fr);
    let rfe = p.base(RelBase::Rfe);
    let rfi = p.base(RelBase::Rfi);
    let coe = p.base(RelBase::Coe);
    let fre = p.base(RelBase::Fre);
    let come = p.base(RelBase::Come);
    let tfence = p.base(RelBase::Tfence);
    let reads = p.set_base(SetBase::Reads);
    let writes = p.set_base(SetBase::Writes);
    let id_r = p.id_on(reads);
    let id_w = p.id_on(writes);

    // Axiom bodies common to several models (Fig. 5/6/8).
    let coherence_body = p.union(poloc, com);
    let fre_coe = p.seq(fre, coe);
    let rmw_isol_body = p.inter(rmw, fre_coe);
    let strong_isol_body = p.stronglift(com, stxn);
    let tfence_plus = p.plus(tfence);
    let txn_cancels_body = p.inter(rmw, tfence_plus);
    let po_com = p.union(po, com);

    // The dependency-ordered fragment shared verbatim by the Power `ppo`
    // and ARMv8 `dob` approximations.
    let addr = p.base(RelBase::Addr);
    let data = p.base(RelBase::Data);
    let ctrl = p.base(RelBase::Ctrl);
    let deps = p.union(addr, data);
    let deps_rfi = p.seq(deps, rfi);
    let ctrl_w = p.seq(ctrl, id_w);
    let dep_order = {
        let parts = p.union_all(&[deps, deps_rfi, ctrl_w]);
        p.inter(parts, po)
    };

    // ---- Fig. 4: SC and TSC ----------------------------------------------
    let sc_order = p.axiom("Order", AxiomHead::Acyclic, po_com);
    let tsc_lift = p.stronglift(po_com, stxn);
    let sc = ModelAxioms::new("SC", vec![sc_order.clone()]);
    let tsc = ModelAxioms::new(
        "TSC",
        vec![sc_order, p.axiom("TxnOrder", AxiomHead::Acyclic, tsc_lift)],
    );

    // ---- Fig. 5: x86 ± TM -------------------------------------------------
    let x86_hb_base = {
        // ppo = ((W×W) ∪ (R×W) ∪ (R×R)) ∩ po — everything except W→R.
        let ww = p.cross(writes, writes);
        let rw = p.cross(reads, writes);
        let rr = p.cross(reads, reads);
        let ppo = {
            let u = p.union_all(&[ww, rw, rr]);
            p.inter(u, po)
        };
        // implied = [L] ; po ∪ po ; [L], L the LOCK'd RMW events.
        let rmw_dom = p.set_base(SetBase::RmwDomain);
        let rmw_ran = p.set_base(SetBase::RmwRange);
        let locked = p.set_union(rmw_dom, rmw_ran);
        let id_l = p.id_on(locked);
        let implied_pre = p.seq(id_l, po);
        let implied_post = p.seq(po, id_l);
        let mfence = p.base(RelBase::FenceRel(Fence::MFence));
        p.union_all(&[mfence, ppo, implied_pre, implied_post, rfe, fr, co])
    };
    let x86_hb_tm = p.union(x86_hb_base, tfence);
    let x86_axioms = |p: &mut IrPool, hb: RelId, tm: bool| {
        let mut axioms = vec![
            p.axiom("Coherence", AxiomHead::Acyclic, coherence_body),
            p.axiom("RMWIsol", AxiomHead::Empty, rmw_isol_body),
            p.axiom("Order", AxiomHead::Acyclic, hb),
        ];
        if tm {
            let txn_lift = p.stronglift(hb, stxn);
            axioms.push(p.axiom("StrongIsol", AxiomHead::Acyclic, strong_isol_body));
            axioms.push(p.axiom("TxnOrder", AxiomHead::Acyclic, txn_lift));
        }
        axioms
    };
    let x86 = ModelAxioms::new("x86", x86_axioms(p, x86_hb_base, false));
    let x86_tm = ModelAxioms::new("x86+TM", x86_axioms(p, x86_hb_tm, true));

    // ---- Fig. 6: Power ± TM -----------------------------------------------
    let lwsync_body = {
        // lwsync \ (W × R): the lightweight barrier does not order W→R.
        let lwsync = p.base(RelBase::FenceRel(Fence::Lwsync));
        let wr = p.cross(writes, reads);
        p.diff(lwsync, wr)
    };
    let sync = p.base(RelBase::FenceRel(Fence::Sync));
    let power_table = |p: &mut IrPool, tm: bool| {
        let fence = if tm {
            p.union_all(&[lwsync_body, sync, tfence])
        } else {
            p.union(lwsync_body, sync)
        };
        let ihb = p.union(dep_order, fence);
        let rfe_q = p.opt(rfe);
        let hb_thread = p.seq_all(&[rfe_q, ihb, rfe_q]);
        let hb = if tm {
            // thb = (rfe ∪ (fre ∪ coe)* ; ihb)* ; (fre ∪ coe)* ; rfe?
            let fre_coe_star = {
                let u = p.union(fre, coe);
                p.star(u)
            };
            let step = {
                let chained = p.seq(fre_coe_star, ihb);
                let u = p.union(rfe, chained);
                p.star(u)
            };
            let thb = p.seq_all(&[step, fre_coe_star, rfe_q]);
            let lifted = p.weaklift(thb, stxn);
            p.union(hb_thread, lifted)
        } else {
            hb_thread
        };
        let hb_star = p.star(hb);
        let efence = p.seq_all(&[rfe_q, fence, rfe_q]);
        let prop1 = p.seq_all(&[id_w, efence, hb_star, id_w]);
        let strong_fence = if tm { p.union(sync, tfence) } else { sync };
        let prop2 = {
            let come_star = p.star(come);
            let efence_star = p.star(efence);
            p.seq_all(&[come_star, efence_star, hb_star, strong_fence, hb_star])
        };
        let mut prop_parts = vec![prop1, prop2];
        if tm {
            // tprop1 = rfe ; stxn ; [W] and tprop2 = stxn ; rfe (§5.2).
            prop_parts.push(p.seq_all(&[rfe, stxn, id_w]));
            prop_parts.push(p.seq(stxn, rfe));
        }
        let prop = p.union_all(&prop_parts);
        let propagation_body = p.union(co, prop);
        let observation_body = p.seq_all(&[fre, prop, hb_star]);
        let mut axioms = vec![
            p.axiom("Coherence", AxiomHead::Acyclic, coherence_body),
            p.axiom("RMWIsol", AxiomHead::Empty, rmw_isol_body),
            p.axiom("Order", AxiomHead::Acyclic, hb),
            p.axiom("Propagation", AxiomHead::Acyclic, propagation_body),
            p.axiom("Observation", AxiomHead::Irreflexive, observation_body),
        ];
        if tm {
            let txn_lift = p.stronglift(hb, stxn);
            axioms.push(p.axiom("StrongIsol", AxiomHead::Acyclic, strong_isol_body));
            axioms.push(p.axiom("TxnOrder", AxiomHead::Acyclic, txn_lift));
            axioms.push(p.axiom("TxnCancelsRMW", AxiomHead::Empty, txn_cancels_body));
        }
        axioms
    };
    let power = ModelAxioms::new("Power", power_table(p, false));
    let power_tm = ModelAxioms::new("Power+TM", power_table(p, true));

    // ---- Fig. 8: ARMv8 ± TM -----------------------------------------------
    let armv8_ob_base = {
        // dob is the same dependency fragment as the Power ppo: hash-consing
        // makes that sharing literal.
        let dob = dep_order;
        // aob = rmw ∪ [ran(rmw)] ; rfi ; [Acq ∩ R].
        let acquires = p.set_base(SetBase::Acquires);
        let acq_r = p.set_inter(acquires, reads);
        let id_acq_r = p.id_on(acq_r);
        let aob = {
            let rmw_ran = p.set_base(SetBase::RmwRange);
            let id_rmw_w = p.id_on(rmw_ran);
            let chain = p.seq_all(&[id_rmw_w, rfi, id_acq_r]);
            p.union(rmw, chain)
        };
        // bob: DMB variants plus the one-way acquire/release barriers.
        let bob = {
            let dmb = p.base(RelBase::FenceRel(Fence::Dmb));
            let dmb_ld = {
                let f = p.base(RelBase::FenceRel(Fence::DmbLd));
                p.seq(id_r, f)
            };
            let dmb_st = {
                let f = p.base(RelBase::FenceRel(Fence::DmbSt));
                p.seq_all(&[id_w, f, id_w])
            };
            let releases = p.set_base(SetBase::Releases);
            let rel_w = p.set_inter(releases, writes);
            let id_rel_w = p.id_on(rel_w);
            let acq_first = p.seq(id_acq_r, po);
            let rel_last = p.seq(po, id_rel_w);
            let rel_acq = p.seq_all(&[id_rel_w, po, id_acq_r]);
            p.union_all(&[dmb, dmb_ld, dmb_st, acq_first, rel_last, rel_acq])
        };
        p.union_all(&[come, dob, aob, bob])
    };
    let armv8_ob_tm = p.union(armv8_ob_base, tfence);
    let armv8_axioms = |p: &mut IrPool, ob: RelId, tm: bool| {
        let mut axioms = vec![
            p.axiom("Coherence", AxiomHead::Acyclic, coherence_body),
            p.axiom("Order", AxiomHead::Acyclic, ob),
            p.axiom("RMWIsol", AxiomHead::Empty, rmw_isol_body),
        ];
        if tm {
            let txn_lift = p.stronglift(ob, stxn);
            axioms.push(p.axiom("StrongIsol", AxiomHead::Acyclic, strong_isol_body));
            axioms.push(p.axiom("TxnOrder", AxiomHead::Acyclic, txn_lift));
            axioms.push(p.axiom("TxnCancelsRMW", AxiomHead::Empty, txn_cancels_body));
        }
        axioms
    };
    let armv8 = ModelAxioms::new("ARMv8", armv8_axioms(p, armv8_ob_base, false));
    let armv8_tm = ModelAxioms::new("ARMv8+TM", armv8_axioms(p, armv8_ob_tm, true));

    // ---- Fig. 9: C++ ± TM -------------------------------------------------
    let cpp_table = |p: &mut IrPool, tm: bool| {
        let fences = p.set_base(SetBase::Fences);
        let f_acq = p.set_base(SetBase::FencesOf(Fence::FenceAcq));
        let f_rel = p.set_base(SetBase::FencesOf(Fence::FenceRel));
        let f_sc = p.set_base(SetBase::FencesOf(Fence::FenceSc));
        let acquires = p.set_base(SetBase::Acquires);
        let releases = p.set_base(SetBase::Releases);
        let sc_events = p.set_base(SetBase::ScEvents);
        let atomics = p.set_base(SetBase::Atomics);
        let acq_s = {
            let u = p.set_union(acquires, f_acq);
            p.set_union(u, f_sc)
        };
        let rel_s = {
            let u = p.set_union(releases, f_rel);
            p.set_union(u, f_sc)
        };
        let sc_s = p.set_union(sc_events, f_sc);
        // rs = [W] ; poloc? ; [W ∩ Ato] ; (rf ; rmw)*.
        let rs = {
            let w_ato = p.set_inter(writes, atomics);
            let id_w_ato = p.id_on(w_ato);
            let poloc_q = p.opt(poloc);
            let rf_rmw_star = {
                let s = p.seq(rf, rmw);
                p.star(s)
            };
            p.seq_all(&[id_w, poloc_q, id_w_ato, rf_rmw_star])
        };
        // sw = [Rel] ; ([F] ; po)? ; rs ; rf ; [R ∩ Ato] ; (po ; [F])? ; [Acq].
        let sw = {
            let id_rel = p.id_on(rel_s);
            let id_acq = p.id_on(acq_s);
            let id_f = p.id_on(fences);
            let fence_po = {
                let s = p.seq(id_f, po);
                p.opt(s)
            };
            let po_fence = {
                let s = p.seq(po, id_f);
                p.opt(s)
            };
            let r_ato = p.set_inter(reads, atomics);
            let id_r_ato = p.id_on(r_ato);
            p.seq_all(&[id_rel, fence_po, rs, rf, id_r_ato, po_fence, id_acq])
        };
        // hb = (sw ∪ tsw ∪ po)+, tsw = weaklift(ecom, stxn) with TM (§7.2).
        let hb = {
            let mut parts = vec![sw, po];
            if tm {
                let ecom = p.base(RelBase::Ecom);
                parts.push(p.weaklift(ecom, stxn));
            }
            let u = p.union_all(&parts);
            p.plus(u)
        };
        // psc, following RC11.
        let psc = {
            let hb_q = p.opt(hb);
            let sc_fences = p.set_inter(sc_s, fences);
            let id_sc = p.id_on(sc_s);
            let id_f_sc = p.id_on(sc_fences);
            let eco = p.plus(com);
            // scb = po ∪ (po\loc ; hb ; po\loc) ∪ (hb ∩ sloc) ∪ co ∪ fr.
            let po_nl = p.base(RelBase::PoDiffLoc);
            let sloc = p.base(RelBase::Sloc);
            let hb_between = p.seq_all(&[po_nl, hb, po_nl]);
            let hb_loc = p.inter(hb, sloc);
            let scb = p.union_all(&[po, hb_between, hb_loc, co, fr]);
            let left = {
                let s = p.seq(id_f_sc, hb_q);
                p.union(id_sc, s)
            };
            let right = {
                let s = p.seq(hb_q, id_f_sc);
                p.union(id_sc, s)
            };
            let main = p.seq_all(&[left, scb, right]);
            let psc_f = {
                let through_eco = p.seq_all(&[hb, eco, hb]);
                let u = p.union(hb, through_eco);
                p.seq_all(&[id_f_sc, u, id_f_sc])
            };
            p.union(main, psc_f)
        };
        let hb_com_body = {
            let com_star = p.star(com);
            p.seq(hb, com_star)
        };
        let no_thin_air_body = p.union(po, rf);
        vec![
            p.axiom("HbCom", AxiomHead::Irreflexive, hb_com_body),
            p.axiom("RMWIsol", AxiomHead::Empty, rmw_isol_body),
            p.axiom("NoThinAir", AxiomHead::Acyclic, no_thin_air_body),
            p.axiom("SeqCst", AxiomHead::Acyclic, psc),
        ]
    };
    let cpp = ModelAxioms::new("C++", cpp_table(p, false));
    let cpp_tm = ModelAxioms::new("C++(TM)", cpp_table(p, true));

    // ---- §3.3 isolation and §8.3 CROrder ----------------------------------
    let weak_isol_body = p.weaklift(com, stxn);
    let stxnat = p.base(RelBase::Stxnat);
    let strong_isol_atomic_body = p.stronglift(com, stxnat);
    let cr_order_body = p.weaklift(po_com, scr);

    IrCatalog {
        cr_order: p.axiom("CROrder", AxiomHead::Acyclic, cr_order_body),
        weak_isol: p.axiom("WeakIsol", AxiomHead::Acyclic, weak_isol_body),
        strong_isol: p.axiom("StrongIsol", AxiomHead::Acyclic, strong_isol_body),
        strong_isol_atomic: p.axiom(
            "StrongIsolAtomic",
            AxiomHead::Acyclic,
            strong_isol_atomic_body,
        ),
        pool,
        sc,
        tsc,
        x86,
        x86_tm,
        power,
        power_tm,
        armv8,
        armv8_tm,
        cpp,
        cpp_tm,
    }
}

// ---- shared check drivers --------------------------------------------------

/// Checks every axiom of `table` (in declaration order), extracting
/// witnesses, and appends `CROrder` when `cr_order` is set — the full-verdict
/// path behind [`MemoryModel::check_view`](crate::MemoryModel::check_view).
pub(crate) fn check_table(table: &ModelAxioms, cr_order: bool, view: &ExecView<'_>) -> Verdict {
    let cat = catalog();
    let eval = IrEval::new(cat.pool(), view);
    let mut verdict = Verdict::consistent(table.name_cow());
    for axiom in table.axioms() {
        if let Some(witness) = eval.witness(axiom) {
            verdict.push(axiom.name.clone(), Some(witness));
        }
    }
    if cr_order {
        // The retired hand-written check reported CROrder without a witness;
        // the IR evaluator extracts the offending cycle like any other
        // acyclicity axiom.
        if let Some(witness) = eval.witness(cat.cr_order()) {
            verdict.push("CROrder", Some(witness));
        }
    }
    verdict
}

/// True if every axiom of `table` (and `CROrder`, when set) holds — the
/// early-exit path: axioms are tried cheapest first and the sweep stops at
/// the first violation, without extracting witnesses.
pub(crate) fn table_holds(table: &ModelAxioms, cr_order: bool, view: &ExecView<'_>) -> bool {
    let cat = catalog();
    let eval = IrEval::new(cat.pool(), view);
    table.in_cost_order().all(|axiom| eval.holds(axiom))
        && (!cr_order || eval.holds(cat.cr_order()))
}

/// Evaluates a single standalone axiom (isolation, `CROrder`) on a view.
pub(crate) fn axiom_holds(axiom: &Axiom, view: &ExecView<'_>) -> bool {
    IrEval::new(catalog().pool(), view).holds(axiom)
}

// ---- incremental checking ---------------------------------------------------

/// A *stateful* model checker for enumeration sweeps: the shared-catalog
/// front end of [`IncrementalEval`](tm_exec::ir::IncrementalEval).
///
/// Where [`MemoryModel::check_view`](crate::MemoryModel::check_view) builds
/// a fresh evaluator per execution, an `IncrementalChecker` lives for a
/// whole sweep and is told *what changed* between candidates through the
/// [`Delta`]s that `tm_synth::enumerate_exact_incremental` threads to its
/// sink. Axiom bodies whose dependency footprint the delta misses keep
/// their values — and their cached verdicts — across siblings in the
/// enumeration tree.
///
/// # Examples
///
/// ```
/// use tm_exec::catalog;
/// use tm_exec::ir::{Delta, RelBase};
/// use tm_models::ir::IncrementalChecker;
/// use tm_models::Target;
///
/// let mut checker = IncrementalChecker::new();
/// let mut exec = catalog::sb();
/// checker.advance(&exec, &Delta::everything());
/// assert!(checker.is_consistent(&exec, Target::X86));
/// assert!(!checker.is_consistent(&exec, Target::Sc));
///
/// // Wrap both threads in transactions, telling the checker what changed:
/// // only the stxn-dependent axiom bodies are re-evaluated.
/// let mut delta = Delta::new();
/// for (a, b) in [(0, 0), (0, 1), (1, 0), (1, 1), (2, 2), (2, 3), (3, 2), (3, 3)] {
///     exec.stxn.insert(a, b);
///     delta.add_edge(RelBase::Stxn, a, b);
/// }
/// checker.advance(&exec, &delta);
/// assert!(checker.is_consistent(&exec, Target::X86));
/// assert!(!checker.is_consistent(&exec, Target::X86Tm));
/// ```
pub struct IncrementalChecker {
    eval: tm_exec::ir::IncrementalEval<'static>,
    early_exits: u64,
}

impl Default for IncrementalChecker {
    fn default() -> IncrementalChecker {
        IncrementalChecker::new()
    }
}

impl IncrementalChecker {
    /// A checker over the shared axiom catalog, with every node value
    /// unknown until the first [`advance`](IncrementalChecker::advance).
    pub fn new() -> IncrementalChecker {
        IncrementalChecker {
            eval: tm_exec::ir::IncrementalEval::new(catalog().pool()),
            early_exits: 0,
        }
    }

    /// Absorbs the edits that turned the previous candidate into `exec`.
    /// Call once per candidate, before any query about it.
    pub fn advance(&mut self, exec: &tm_exec::Execution, delta: &tm_exec::ir::Delta) {
        self.eval.apply(exec, delta);
    }

    /// Starts recording undo state for a probe (see
    /// [`IncrementalEval::savepoint`]).
    pub fn savepoint(&mut self) {
        self.eval.savepoint();
    }

    /// Restores the state captured by the active savepoint.
    pub fn rollback(&mut self) {
        self.eval.rollback();
    }

    /// The underlying evaluator's maintenance counters — the parity tests
    /// pin `invalidated` at zero over whole sweeps.
    pub fn stats(&self) -> tm_exec::ir::MaintenanceStats {
        self.eval.stats()
    }

    /// Consistency queries that returned `false` before reaching the last
    /// axiom of the cost order — how often cheapest-axiom-first paid off.
    pub fn early_exits(&self) -> u64 {
        self.early_exits
    }

    /// True if `exec` satisfies every axiom of `target` — the early-exit
    /// sweep path (cheapest axioms first, cached verdicts reused).
    pub fn is_consistent(&mut self, exec: &tm_exec::Execution, target: Target) -> bool {
        let table = catalog().model(target);
        let eval = &mut self.eval;
        let mut remaining = table.axioms().len();
        for axiom in table.in_cost_order() {
            remaining -= 1;
            if !eval.holds(exec, axiom) {
                if remaining > 0 {
                    self.early_exits += 1;
                }
                return false;
            }
        }
        true
    }

    /// Like [`is_consistent`](IncrementalChecker::is_consistent) with the
    /// §8.3 `CROrder` axiom appended.
    pub fn is_consistent_with_cr_order(
        &mut self,
        exec: &tm_exec::Execution,
        target: Target,
    ) -> bool {
        self.is_consistent(exec, target) && self.eval.holds(exec, catalog().cr_order())
    }

    /// The full verdict of `target` on `exec`, with witnesses — matching
    /// [`MemoryModel::check_view`](crate::MemoryModel::check_view) verdict
    /// for verdict.
    pub fn check(&mut self, exec: &tm_exec::Execution, target: Target) -> Verdict {
        self.check_with_cr_order(exec, target, false)
    }

    /// [`check`](IncrementalChecker::check), optionally appending `CROrder`.
    pub fn check_with_cr_order(
        &mut self,
        exec: &tm_exec::Execution,
        target: Target,
        cr_order: bool,
    ) -> Verdict {
        let cat = catalog();
        let table = cat.model(target);
        let mut verdict = Verdict::consistent(table.name_cow());
        for axiom in table.axioms() {
            if let Some(witness) = self.eval.witness(exec, axiom) {
                verdict.push(axiom.name.clone(), Some(witness));
            }
        }
        if cr_order {
            if let Some(witness) = self.eval.witness(exec, cat.cr_order()) {
                verdict.push("CROrder", Some(witness));
            }
        }
        verdict
    }
}

/// An [`IncrementalChecker`] pinned to one [`Target`] (optionally with the
/// §8.3 `CROrder` axiom appended) — the [`DeltaChecker`](crate::DeltaChecker)
/// the built-in models hand to generic incremental pipelines such as
/// `tm_synth::synthesise_suites`.
pub struct TargetChecker {
    checker: IncrementalChecker,
    target: Target,
    cr_order: bool,
}

impl TargetChecker {
    /// A delta-driven checker for `target`, appending `CROrder` when asked.
    pub fn new(target: Target, cr_order: bool) -> TargetChecker {
        TargetChecker {
            checker: IncrementalChecker::new(),
            target,
            cr_order,
        }
    }
}

impl crate::DeltaChecker for TargetChecker {
    fn advance(&mut self, exec: &tm_exec::Execution, delta: &Delta) {
        self.checker.advance(exec, delta);
    }

    fn is_consistent(&mut self, exec: &tm_exec::Execution) -> bool {
        if self.cr_order {
            self.checker.is_consistent_with_cr_order(exec, self.target)
        } else {
            self.checker.is_consistent(exec, self.target)
        }
    }

    fn savepoint(&mut self) {
        self.checker.savepoint();
    }

    fn rollback(&mut self) {
        self.checker.rollback();
    }

    fn telemetry(&self) -> Option<crate::CheckerTelemetry> {
        Some(crate::CheckerTelemetry {
            stats: self.checker.stats(),
            early_exits: self.checker.early_exits(),
        })
    }
}

// ---- user-defined models ---------------------------------------------------

/// A memory model defined entirely by an axiom table.
///
/// The table is built once, in a private pool, by the closure handed to
/// [`IrModel::new`]; checking evaluates it with the same engine the built-in
/// models use (per-execution common-subexpression memoization included). See
/// the module docs for a worked example.
#[derive(Debug)]
pub struct IrModel {
    pool: IrPool,
    table: ModelAxioms,
}

impl IrModel {
    /// Builds a model named `name` from the axioms `define` interns into the
    /// given pool.
    pub fn new(
        name: impl Into<Cow<'static, str>>,
        define: impl FnOnce(&mut IrPool) -> Vec<Axiom>,
    ) -> IrModel {
        let mut pool = IrPool::new();
        let axioms = define(&mut pool);
        IrModel {
            pool,
            table: ModelAxioms::new(name, axioms),
        }
    }

    /// Packages a pool and a pre-built axiom table as a model — the entry
    /// point for runtime loaders (the `tm-cat` elaborator) whose
    /// construction can fail halfway and therefore cannot run inside the
    /// infallible [`IrModel::new`] closure.
    pub fn from_parts(
        name: impl Into<Cow<'static, str>>,
        pool: IrPool,
        axioms: Vec<Axiom>,
    ) -> IrModel {
        IrModel {
            pool,
            table: ModelAxioms::new(name, axioms),
        }
    }

    /// The model's axiom table.
    pub fn table(&self) -> &ModelAxioms {
        &self.table
    }

    /// The pool the table's bodies are interned in.
    pub fn pool(&self) -> &IrPool {
        &self.pool
    }

    /// A stateful delta-driven checker for this model — the analogue of
    /// [`IncrementalChecker`] over this model's private pool, for use with
    /// `tm_synth::enumerate_exact_incremental`.
    pub fn incremental(&self) -> IncrementalModelChecker<'_> {
        IncrementalModelChecker {
            eval: IncrementalEval::new(&self.pool),
            table: &self.table,
            early_exits: 0,
        }
    }
}

impl crate::MemoryModel for IrModel {
    fn name(&self) -> &str {
        self.table.name()
    }

    fn axioms(&self) -> Vec<&str> {
        self.table
            .axioms()
            .iter()
            .map(|a| a.name.as_ref())
            .collect()
    }

    fn check_view(&self, view: &ExecView<'_>) -> Verdict {
        let eval = IrEval::new(&self.pool, view);
        let mut verdict = Verdict::consistent(self.table.name_cow());
        for axiom in self.table.axioms() {
            if let Some(witness) = eval.witness(axiom) {
                verdict.push(axiom.name.clone(), Some(witness));
            }
        }
        verdict
    }

    fn is_consistent_view(&self, view: &ExecView<'_>) -> bool {
        let eval = IrEval::new(&self.pool, view);
        self.table.in_cost_order().all(|axiom| eval.holds(axiom))
    }

    fn incremental_checker(&self) -> Option<Box<dyn crate::DeltaChecker + '_>> {
        Some(Box::new(self.incremental()))
    }
}

/// A stateful, delta-driven checker for one [`IrModel`]: the user-model
/// sibling of [`IncrementalChecker`], so models loaded at runtime (e.g. from
/// `.cat` text) plug into the incremental enumeration hot path exactly like
/// the built-in catalog does.
///
/// Borrows the model, so build it inside the per-worker closure of
/// `enumerate_exact_incremental` (scoped threads keep the borrow legal).
pub struct IncrementalModelChecker<'m> {
    eval: IncrementalEval<'m>,
    table: &'m ModelAxioms,
    early_exits: u64,
}

impl<'m> IncrementalModelChecker<'m> {
    /// Absorbs the edits that turned the previous candidate into `exec`.
    pub fn advance(&mut self, exec: &tm_exec::Execution, delta: &Delta) {
        self.eval.apply(exec, delta);
    }

    /// Starts recording undo state for a probe.
    pub fn savepoint(&mut self) {
        self.eval.savepoint();
    }

    /// Restores the state captured by the active savepoint.
    pub fn rollback(&mut self) {
        self.eval.rollback();
    }

    /// The underlying evaluator's maintenance counters.
    pub fn stats(&self) -> tm_exec::ir::MaintenanceStats {
        self.eval.stats()
    }

    /// Consistency queries that returned `false` before the last axiom of
    /// the cost order.
    pub fn early_exits(&self) -> u64 {
        self.early_exits
    }

    /// True if `exec` satisfies every axiom — early-exit, cached verdicts.
    pub fn is_consistent(&mut self, exec: &tm_exec::Execution) -> bool {
        let eval = &mut self.eval;
        let mut remaining = self.table.axioms().len();
        for axiom in self.table.in_cost_order() {
            remaining -= 1;
            if !eval.holds(exec, axiom) {
                if remaining > 0 {
                    self.early_exits += 1;
                }
                return false;
            }
        }
        true
    }

    /// The full verdict with witnesses, matching
    /// [`MemoryModel::check`](crate::MemoryModel::check) on the same model.
    pub fn check(&mut self, exec: &tm_exec::Execution) -> Verdict {
        let mut verdict = Verdict::consistent(self.table.name_cow());
        for axiom in self.table.axioms() {
            if let Some(witness) = self.eval.witness(exec, axiom) {
                verdict.push(axiom.name.clone(), Some(witness));
            }
        }
        verdict
    }
}

impl crate::DeltaChecker for IncrementalModelChecker<'_> {
    fn advance(&mut self, exec: &tm_exec::Execution, delta: &Delta) {
        IncrementalModelChecker::advance(self, exec, delta);
    }

    fn is_consistent(&mut self, exec: &tm_exec::Execution) -> bool {
        IncrementalModelChecker::is_consistent(self, exec)
    }

    fn savepoint(&mut self) {
        IncrementalModelChecker::savepoint(self);
    }

    fn rollback(&mut self) {
        IncrementalModelChecker::rollback(self);
    }

    fn telemetry(&self) -> Option<crate::CheckerTelemetry> {
        Some(crate::CheckerTelemetry {
            stats: self.stats(),
            early_exits: self.early_exits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_exec::catalog as execs;
    use tm_exec::ir::txn_polarity;

    #[test]
    fn catalog_tables_carry_the_documented_axioms() {
        let cat = catalog();
        for target in Target::ALL {
            let table = cat.model(target);
            let names: Vec<&str> = table.axioms().iter().map(|a| a.name.as_ref()).collect();
            assert_eq!(names, target.model().axioms(), "{target}");
            assert!(!table.name().is_empty());
            // The cost order is a permutation of the declaration order.
            assert_eq!(table.in_cost_order().count(), table.axioms().len());
        }
    }

    #[test]
    fn shared_axiom_bodies_are_one_node() {
        let cat = catalog();
        let body_of = |target: Target, name: &str| {
            cat.model(target)
                .axioms()
                .iter()
                .find(|a| a.name == name)
                .unwrap_or_else(|| panic!("{target} lacks {name}"))
                .body
        };
        // Coherence and RMWIsol are shared across the hardware models.
        for name in ["Coherence", "RMWIsol"] {
            let x86 = body_of(Target::X86Tm, name);
            assert_eq!(x86, body_of(Target::PowerTm, name));
            assert_eq!(x86, body_of(Target::Armv8Tm, name));
        }
        // StrongIsol is the same node for every TM model and for the
        // standalone isolation axiom.
        let strong = body_of(Target::X86Tm, "StrongIsol");
        assert_eq!(strong, body_of(Target::PowerTm, "StrongIsol"));
        assert_eq!(strong, body_of(Target::Armv8Tm, "StrongIsol"));
        assert_eq!(strong, cat.strong_isol().body);
        // TxnCancelsRMW is shared between Power and ARMv8.
        assert_eq!(
            body_of(Target::PowerTm, "TxnCancelsRMW"),
            body_of(Target::Armv8Tm, "TxnCancelsRMW")
        );
        // The baseline Order body is a strict subexpression of the TM one
        // (hb_tm = hb_base ∪ tfence), so the two variants share work.
        assert_ne!(
            body_of(Target::X86, "Order"),
            body_of(Target::X86Tm, "Order")
        );
    }

    #[test]
    fn baseline_tables_do_not_mention_transactions() {
        let cat = catalog();
        for target in [
            Target::Sc,
            Target::X86,
            Target::Power,
            Target::Armv8,
            Target::Cpp,
        ] {
            for axiom in cat.model(target).axioms() {
                assert_eq!(
                    txn_polarity(cat.pool(), axiom.body),
                    tm_exec::ir::Polarity::Constant,
                    "{target}/{} should be transaction-free",
                    axiom.name
                );
            }
        }
    }

    #[test]
    fn ir_model_doc_example_behaviour() {
        let model = IrModel::new("CoherenceOnly", |p| {
            let poloc = p.base(RelBase::Poloc);
            let com = p.base(RelBase::Com);
            let body = p.union(poloc, com);
            vec![p.axiom("Coherence", AxiomHead::Acyclic, body)]
        });
        use crate::MemoryModel;
        assert_eq!(model.axioms(), vec!["Coherence"]);
        assert!(model.is_consistent(&execs::sb()));
        let verdict = model.check(&execs::fig1());
        assert!(verdict.violates("Coherence"), "{verdict}");
    }
}

//! Per-axiom consistency verdicts.

use std::borrow::Cow;
use std::fmt;

/// A single violated axiom, possibly with a witnessing cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The name of the violated axiom (e.g. `"Order"`, `"TxnOrder"`).
    ///
    /// A [`Cow`] so built-in axioms report their static names for free while
    /// runtime-loaded models (`.cat` files) report owned names.
    pub axiom: Cow<'static, str>,
    /// A cycle (sequence of event identifiers) witnessing the violation,
    /// when the axiom is an acyclicity or irreflexivity constraint and a
    /// witness could be extracted.
    pub witness: Option<Vec<usize>>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.witness {
            Some(cycle) => write!(f, "{} (witness cycle {:?})", self.axiom, cycle),
            None => write!(f, "{}", self.axiom),
        }
    }
}

/// The outcome of checking an execution against a memory model: the list of
/// violated axioms (empty for a consistent execution).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Verdict {
    /// The name of the model that produced this verdict.
    pub model: Cow<'static, str>,
    /// Every axiom the execution violates.
    pub violations: Vec<Violation>,
}

impl Verdict {
    /// A verdict with no violations yet.
    pub fn consistent(model: impl Into<Cow<'static, str>>) -> Verdict {
        Verdict {
            model: model.into(),
            violations: Vec::new(),
        }
    }

    /// True if no axiom is violated.
    pub fn is_consistent(&self) -> bool {
        self.violations.is_empty()
    }

    /// Records a violation of `axiom`.
    pub fn push(&mut self, axiom: impl Into<Cow<'static, str>>, witness: Option<Vec<usize>>) {
        self.violations.push(Violation {
            axiom: axiom.into(),
            witness,
        });
    }

    /// True if the named axiom is among the violations.
    pub fn violates(&self, axiom: &str) -> bool {
        self.violations.iter().any(|v| v.axiom == axiom)
    }

    /// The names of all violated axioms, in check order.
    pub fn violated_axioms(&self) -> Vec<&str> {
        self.violations.iter().map(|v| v.axiom.as_ref()).collect()
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_consistent() {
            write!(f, "{}: consistent", self.model)
        } else {
            write!(
                f,
                "{}: inconsistent ({})",
                self.model,
                self.violations
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_verdict_has_no_violations() {
        let v = Verdict::consistent("SC");
        assert!(v.is_consistent());
        assert!(!v.violates("Order"));
        assert_eq!(format!("{v}"), "SC: consistent");
    }

    #[test]
    fn violations_are_recorded_and_rendered() {
        let mut v = Verdict::consistent("x86");
        v.push("Order", Some(vec![0, 1, 2]));
        v.push("StrongIsol", None);
        assert!(!v.is_consistent());
        assert!(v.violates("Order") && v.violates("StrongIsol"));
        assert_eq!(v.violated_axioms(), vec!["Order", "StrongIsol"]);
        let s = format!("{v}");
        assert!(s.contains("inconsistent") && s.contains("Order") && s.contains("[0, 1, 2]"));
    }
}

//! Isolation axioms (§3.3) and the critical-region serialisation axiom used
//! for lock-elision checking (§8.3).

use tm_exec::{ExecView, Execution};
use tm_relation::Relation;

use crate::Verdict;

/// The `WeakIsol` axiom: `acyclic(weaklift(com, stxn))`.
///
/// Transactions are isolated from *other transactions*: no communication
/// cycle exists among whole transactions.
pub fn weak_isolation(exec: &Execution) -> bool {
    weak_isolation_view(&ExecView::new(exec))
}

/// [`weak_isolation`] over a memoized view.
pub fn weak_isolation_view(view: &ExecView<'_>) -> bool {
    crate::ir::axiom_holds(crate::ir::catalog().weak_isol(), view)
}

/// [`weak_isolation_view`] computed the pre-IR way, kept as an oracle.
pub fn weak_isolation_reference(view: &ExecView<'_>) -> bool {
    Execution::weaklift(&view.com(), &view.exec().stxn).is_acyclic()
}

/// The `StrongIsol` axiom: `acyclic(stronglift(com, stxn))`.
///
/// Transactions are isolated from *all other code*, transactional or not.
pub fn strong_isolation(exec: &Execution) -> bool {
    strong_isolation_view(&ExecView::new(exec))
}

/// [`strong_isolation`] over a memoized view.
pub fn strong_isolation_view(view: &ExecView<'_>) -> bool {
    crate::ir::axiom_holds(crate::ir::catalog().strong_isol(), view)
}

/// [`strong_isolation_view`] computed the pre-IR way, kept as an oracle.
pub fn strong_isolation_reference(view: &ExecView<'_>) -> bool {
    view.strong_isol_cycle().is_none()
}

/// Like [`strong_isolation`] but lifted over the *atomic* transactions only
/// (`stxnat`). This is the conclusion of Theorem 7.2.
pub fn strong_isolation_atomic(exec: &Execution) -> bool {
    strong_isolation_atomic_view(&ExecView::new(exec))
}

/// [`strong_isolation_atomic`] over a memoized view.
pub fn strong_isolation_atomic_view(view: &ExecView<'_>) -> bool {
    crate::ir::axiom_holds(crate::ir::catalog().strong_isol_atomic(), view)
}

/// [`strong_isolation_atomic_view`] computed the pre-IR way, kept as an
/// oracle.
pub fn strong_isolation_atomic_reference(view: &ExecView<'_>) -> bool {
    Execution::stronglift(&view.com(), &view.exec().stxnat).is_acyclic()
}

/// Checks an acyclicity axiom and records a violation with a witness cycle.
pub(crate) fn require_acyclic(verdict: &mut Verdict, axiom: &'static str, relation: &Relation) {
    if let Some(cycle) = relation.find_cycle() {
        verdict.push(axiom, Some(cycle));
    }
}

/// Checks an irreflexivity axiom and records a violation naming one fixed
/// point.
pub(crate) fn require_irreflexive(verdict: &mut Verdict, axiom: &'static str, relation: &Relation) {
    for a in 0..relation.universe() {
        if relation.contains(a, a) {
            verdict.push(axiom, Some(vec![a]));
            return;
        }
    }
}

/// The `CROrder` axiom of §8.3: `acyclic(weaklift(po ∪ com, scr))` — all
/// critical regions (locked or elided) must be serialisable. This is the
/// *specification* a lock or lock-elision library must meet.
pub fn cr_order(exec: &Execution) -> bool {
    cr_order_view(&ExecView::new(exec))
}

/// [`cr_order`] over a memoized view.
pub fn cr_order_view(view: &ExecView<'_>) -> bool {
    crate::ir::axiom_holds(crate::ir::catalog().cr_order(), view)
}

/// [`cr_order_view`] computed the pre-IR way, kept as an oracle.
pub fn cr_order_reference(view: &ExecView<'_>) -> bool {
    let exec = view.exec();
    let mut body = view.com().into_owned();
    body.union_in_place(&exec.po);
    Execution::weaklift(&body, &exec.scr).is_acyclic()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_exec::catalog;

    #[test]
    fn fig3_separates_weak_from_strong_isolation() {
        for which in ['a', 'b', 'c', 'd'] {
            let e = catalog::fig3(which);
            assert!(weak_isolation(&e), "fig3({which}) satisfies weak isolation");
            assert!(
                !strong_isolation(&e),
                "fig3({which}) violates strong isolation"
            );
        }
    }

    #[test]
    fn fig2_violates_strong_isolation_only() {
        let e = catalog::fig2();
        assert!(weak_isolation(&e));
        assert!(!strong_isolation(&e));
    }

    #[test]
    fn transactional_sb_violates_weak_isolation() {
        // Two transactions communicating in a cycle violate even weak
        // isolation.
        let e = catalog::lb_txn();
        assert!(!weak_isolation(&e));
        assert!(!strong_isolation(&e));
    }

    #[test]
    fn plain_executions_are_trivially_isolated() {
        for e in [catalog::sb(), catalog::mp(), catalog::iriw()] {
            assert!(weak_isolation(&e));
            assert!(strong_isolation(&e));
        }
    }

    #[test]
    fn atomic_isolation_tracks_stxnat_only() {
        // fig2's transaction is relaxed (not atomic), so the atomic variant
        // of strong isolation holds vacuously.
        let e = catalog::fig2();
        assert!(strong_isolation_atomic(&e));
    }

    #[test]
    fn cr_order_rejects_mutual_exclusion_violation() {
        assert!(!cr_order(&catalog::fig10_abstract()));
        // An execution without critical regions satisfies CROrder trivially.
        assert!(cr_order(&catalog::sb()));
    }
}

//! Isolation axioms (§3.3) and the critical-region serialisation axiom used
//! for lock-elision checking (§8.3).

use tm_exec::{ExecView, Execution};

/// The `WeakIsol` axiom: `acyclic(weaklift(com, stxn))`.
///
/// Transactions are isolated from *other transactions*: no communication
/// cycle exists among whole transactions.
pub fn weak_isolation(exec: &Execution) -> bool {
    weak_isolation_view(&ExecView::new(exec))
}

/// [`weak_isolation`] over a memoized view.
pub fn weak_isolation_view(view: &ExecView<'_>) -> bool {
    crate::ir::axiom_holds(crate::ir::catalog().weak_isol(), view)
}

/// The `StrongIsol` axiom: `acyclic(stronglift(com, stxn))`.
///
/// Transactions are isolated from *all other code*, transactional or not.
pub fn strong_isolation(exec: &Execution) -> bool {
    strong_isolation_view(&ExecView::new(exec))
}

/// [`strong_isolation`] over a memoized view.
pub fn strong_isolation_view(view: &ExecView<'_>) -> bool {
    crate::ir::axiom_holds(crate::ir::catalog().strong_isol(), view)
}

/// Like [`strong_isolation`] but lifted over the *atomic* transactions only
/// (`stxnat`). This is the conclusion of Theorem 7.2.
pub fn strong_isolation_atomic(exec: &Execution) -> bool {
    strong_isolation_atomic_view(&ExecView::new(exec))
}

/// [`strong_isolation_atomic`] over a memoized view.
pub fn strong_isolation_atomic_view(view: &ExecView<'_>) -> bool {
    crate::ir::axiom_holds(crate::ir::catalog().strong_isol_atomic(), view)
}

/// The `CROrder` axiom of §8.3: `acyclic(weaklift(po ∪ com, scr))` — all
/// critical regions (locked or elided) must be serialisable. This is the
/// *specification* a lock or lock-elision library must meet.
pub fn cr_order(exec: &Execution) -> bool {
    cr_order_view(&ExecView::new(exec))
}

/// [`cr_order`] over a memoized view.
pub fn cr_order_view(view: &ExecView<'_>) -> bool {
    crate::ir::axiom_holds(crate::ir::catalog().cr_order(), view)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_exec::catalog;

    #[test]
    fn fig3_separates_weak_from_strong_isolation() {
        for which in ['a', 'b', 'c', 'd'] {
            let e = catalog::fig3(which);
            assert!(weak_isolation(&e), "fig3({which}) satisfies weak isolation");
            assert!(
                !strong_isolation(&e),
                "fig3({which}) violates strong isolation"
            );
        }
    }

    #[test]
    fn fig2_violates_strong_isolation_only() {
        let e = catalog::fig2();
        assert!(weak_isolation(&e));
        assert!(!strong_isolation(&e));
    }

    #[test]
    fn transactional_sb_violates_weak_isolation() {
        // Two transactions communicating in a cycle violate even weak
        // isolation.
        let e = catalog::lb_txn();
        assert!(!weak_isolation(&e));
        assert!(!strong_isolation(&e));
    }

    #[test]
    fn plain_executions_are_trivially_isolated() {
        for e in [catalog::sb(), catalog::mp(), catalog::iriw()] {
            assert!(weak_isolation(&e));
            assert!(strong_isolation(&e));
        }
    }

    #[test]
    fn atomic_isolation_tracks_stxnat_only() {
        // fig2's transaction is relaxed (not atomic), so the atomic variant
        // of strong isolation holds vacuously.
        let e = catalog::fig2();
        assert!(strong_isolation_atomic(&e));
    }

    #[test]
    fn cr_order_rejects_mutual_exclusion_violation() {
        assert!(!cr_order(&catalog::fig10_abstract()));
        // An execution without critical regions satisfies CROrder trivially.
        assert!(cr_order(&catalog::sb()));
    }
}

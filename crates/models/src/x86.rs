//! The x86-TSO memory model with Intel TSX transactions (Fig. 5).

use tm_exec::{ExecView, Execution, Fence};
use tm_relation::Relation;

use crate::{MemoryModel, Verdict};

/// The x86 memory model of Alglave et al., extended (when `transactional`)
/// with the paper's TM axioms:
///
/// * `Coherence` — `acyclic(poloc ∪ com)`;
/// * `RMWIsol` — `empty(rmw ∩ (fre ; coe))`;
/// * `Order` — `acyclic(hb)` with
///   `hb = mfence ∪ ppo ∪ implied ∪ rfe ∪ fr ∪ co`, where
///   `ppo` keeps all program order except write→read pairs,
///   `implied` orders everything around `LOCK`'d RMWs, and — with TM — the
///   implicit fences at transaction boundaries (`tfence`);
/// * `StrongIsol` and `TxnOrder` (TM only) — transactions are strongly
///   isolated and appear atomic in `hb`.
///
/// Lock-elision checking (§8.3) additionally needs `CROrder`; enable it
/// with [`X86Model::with_cr_order`].
///
/// # Examples
///
/// ```
/// use tm_exec::catalog;
/// use tm_models::{MemoryModel, X86Model};
///
/// // Store buffering is the one classic relaxation x86 exhibits …
/// assert!(X86Model::baseline().is_consistent(&catalog::sb()));
/// // … and it disappears once both threads are transactions.
/// assert!(!X86Model::tm().is_consistent(&catalog::sb_txn()));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct X86Model {
    transactional: bool,
    cr_order: bool,
}

impl X86Model {
    /// The non-transactional baseline model.
    pub fn baseline() -> X86Model {
        X86Model {
            transactional: false,
            cr_order: false,
        }
    }

    /// The transactional (TSX) model.
    pub fn tm() -> X86Model {
        X86Model {
            transactional: true,
            cr_order: false,
        }
    }

    /// Adds the `CROrder` axiom (serialisability of critical regions), used
    /// when checking lock elision against abstract executions.
    pub fn with_cr_order(mut self) -> X86Model {
        self.cr_order = true;
        self
    }

    /// True if the TM axioms are enabled.
    pub fn is_transactional(&self) -> bool {
        self.transactional
    }

    /// The [`crate::Target`] whose axiom table this model checks.
    fn target(&self) -> crate::Target {
        if self.transactional {
            crate::Target::X86Tm
        } else {
            crate::Target::X86
        }
    }

    /// The happens-before relation of Fig. 5 for `exec`.
    pub fn hb(&self, exec: &Execution) -> Relation {
        self.hb_view(&ExecView::new(exec))
    }

    /// [`X86Model::hb`] over a memoized view.
    ///
    /// In the checking pipeline this body lives as a hash-consed node of the
    /// shared axiom IR (see [`crate::ir`]), where both x86 variants — and
    /// the incremental sweep — share its value; this helper recomputes it
    /// directly for callers that want the relation itself.
    pub fn hb_view(&self, view: &ExecView<'_>) -> Relation {
        let exec = view.exec();
        let writes = view.writes();
        let reads = view.reads();
        // ppo = ((W×W) ∪ (R×W) ∪ (R×R)) ∩ po — everything except W→R.
        let mut ppo = Relation::cross(&writes, &writes);
        ppo.union_in_place(&Relation::cross(&reads, &writes));
        ppo.union_in_place(&Relation::cross(&reads, &reads));
        ppo.intersect_in_place(&exec.po);
        // implied = [L] ; po ∪ po ; [L], L the LOCK'd RMW events.
        let locked = exec.rmw.domain().union(&exec.rmw.range());
        let id_l = Relation::identity_on(&locked);
        let mut hb = view.fence_rel(Fence::MFence).into_owned();
        hb.union_in_place(&ppo);
        hb.union_in_place(&id_l.compose(&exec.po));
        hb.union_in_place(&exec.po.compose(&id_l));
        hb.union_in_place(&view.rfe());
        hb.union_in_place(&view.fr());
        hb.union_in_place(&exec.co);
        if self.transactional {
            hb.union_in_place(&view.tfence());
        }
        hb
    }
}

impl MemoryModel for X86Model {
    fn name(&self) -> &str {
        if self.transactional {
            "x86+TM"
        } else {
            "x86"
        }
    }

    fn axioms(&self) -> Vec<&str> {
        let mut axioms = vec!["Coherence", "RMWIsol", "Order"];
        if self.transactional {
            axioms.extend(["StrongIsol", "TxnOrder"]);
        }
        if self.cr_order {
            axioms.push("CROrder");
        }
        axioms
    }

    fn check_view(&self, view: &ExecView<'_>) -> Verdict {
        crate::ir::check_table(
            crate::ir::catalog().model(self.target()),
            self.cr_order,
            view,
        )
    }

    fn is_consistent_view(&self, view: &ExecView<'_>) -> bool {
        crate::ir::table_holds(
            crate::ir::catalog().model(self.target()),
            self.cr_order,
            view,
        )
    }
    fn catalog_target(&self) -> Option<(crate::Target, bool)> {
        Some((self.target(), self.cr_order))
    }

    fn incremental_checker(&self) -> Option<Box<dyn crate::DeltaChecker + '_>> {
        Some(Box::new(crate::ir::TargetChecker::new(
            self.target(),
            self.cr_order,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_exec::{catalog, Event, ExecutionBuilder};

    #[test]
    fn x86_allows_store_buffering_but_nothing_weaker() {
        let m = X86Model::baseline();
        assert!(m.is_consistent(&catalog::sb()));
        assert!(!m.is_consistent(&catalog::mp()));
        assert!(!m.is_consistent(&catalog::lb()));
        assert!(!m.is_consistent(&catalog::iriw()));
        assert!(!m.is_consistent(&catalog::wrc()));
    }

    #[test]
    fn mfence_restores_order_for_sb() {
        assert!(!X86Model::baseline().is_consistent(&catalog::sb_mfence()));
    }

    #[test]
    fn locked_rmw_restores_order_for_sb() {
        // SB where both stores are LOCK'd RMWs: the implied fences forbid
        // the store-buffering relaxation.
        let mut b = ExecutionBuilder::new();
        let r0 = b.push(Event::read(0, 0));
        let w0 = b.push(Event::write(0, 0));
        let _ry = b.push(Event::read(0, 1));
        let r1 = b.push(Event::read(1, 1));
        let w1 = b.push(Event::write(1, 1));
        let _rx = b.push(Event::read(1, 0));
        b.rmw(r0, w0);
        b.rmw(r1, w1);
        let e = b.build().unwrap();
        assert!(!X86Model::baseline().is_consistent(&e));

        // With a LOCK'd RMW on only one thread, the other thread may still
        // reorder its store with its load, so the outcome stays allowed.
        let mut b = ExecutionBuilder::new();
        let r0 = b.push(Event::read(0, 0));
        let w0 = b.push(Event::write(0, 0));
        let _ry = b.push(Event::read(0, 1));
        let _wy = b.push(Event::write(1, 1));
        let _rx = b.push(Event::read(1, 0));
        b.rmw(r0, w0);
        let e = b.build().unwrap();
        assert!(X86Model::baseline().is_consistent(&e));
    }

    #[test]
    fn transactions_forbid_sb() {
        assert!(X86Model::baseline().is_consistent(&catalog::sb_txn()));
        let verdict = X86Model::tm().check(&catalog::sb_txn());
        assert!(!verdict.is_consistent());
        // The implicit boundary fences and transaction ordering both fire.
        assert!(verdict.violates("TxnOrder") || verdict.violates("Order"));
    }

    #[test]
    fn tm_model_enforces_strong_isolation() {
        for which in ['a', 'b', 'c', 'd'] {
            let e = catalog::fig3(which);
            assert!(X86Model::baseline().is_consistent(&e));
            let verdict = X86Model::tm().check(&e);
            assert!(verdict.violates("StrongIsol"), "fig3({which}): {verdict}");
        }
        assert!(!X86Model::tm().is_consistent(&catalog::fig2()));
    }

    #[test]
    fn tm_model_agrees_with_baseline_on_plain_executions() {
        for e in [
            catalog::sb(),
            catalog::mp(),
            catalog::lb(),
            catalog::iriw(),
            catalog::wrc(),
            catalog::fig1(),
            catalog::sb_mfence(),
        ] {
            assert_eq!(
                X86Model::baseline().is_consistent(&e),
                X86Model::tm().is_consistent(&e),
                "baseline and TM model must agree on transaction-free executions"
            );
        }
    }

    #[test]
    fn cr_order_is_opt_in() {
        let abstract_exec = catalog::fig10_abstract();
        assert!(X86Model::tm().is_consistent(&abstract_exec));
        assert!(!X86Model::tm().with_cr_order().is_consistent(&abstract_exec));
    }

    #[test]
    fn coherence_violation_is_reported() {
        // Fig. 1 reads from a po-later write: coherence violation.
        let verdict = X86Model::baseline().check(&catalog::fig1());
        assert!(verdict.violates("Coherence"));
    }
}

//! The ARMv8 (AArch64) memory model with the proposed TM extension (Fig. 8).

use tm_exec::{ExecView, Execution, Fence};
use tm_relation::Relation;

use crate::{MemoryModel, Verdict};

/// The multicopy-atomic ARMv8 memory model (Deacon's aarch64.cat, as used by
/// Pulte et al.), extended — when `transactional` — with the unofficial TM
/// axioms of §6:
///
/// * `Coherence` — `acyclic(poloc ∪ com)`;
/// * `Order` — `acyclic(ob)` with
///   `ob = come ∪ dob ∪ aob ∪ bob ∪ tfence`, where `dob` is dependency
///   order, `aob` atomic-RMW order, and `bob` barrier order
///   (DMB/DMB LD/DMB ST and one-way acquire/release instructions);
/// * `RMWIsol` — `empty(rmw ∩ (fre ; coe))`;
/// * `StrongIsol`, `TxnOrder` (over `ob`) and `TxnCancelsRMW` (TM only).
///
/// The `dob`/`aob`/`bob` definitions are restricted to the instruction forms
/// our litmus AST can produce (see DESIGN.md).
///
/// # Examples
///
/// ```
/// use tm_exec::catalog;
/// use tm_models::{Armv8Model, MemoryModel};
///
/// // ARMv8 is multicopy-atomic: IRIW with address dependencies is forbidden
/// // even without transactions.
/// assert!(!Armv8Model::baseline().is_consistent(&catalog::iriw()));
/// // Example 1.1: the lock-elision counterexample is *consistent* under the
/// // proposed TM extension — lock elision is unsound on ARMv8.
/// assert!(Armv8Model::tm().is_consistent(&catalog::example_1_1_concrete(false)));
/// // Appending a DMB to lock() removes this witness.
/// assert!(!Armv8Model::tm().is_consistent(&catalog::example_1_1_concrete(true)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Armv8Model {
    transactional: bool,
    cr_order: bool,
}

impl Armv8Model {
    /// The non-transactional baseline model.
    pub fn baseline() -> Armv8Model {
        Armv8Model {
            transactional: false,
            cr_order: false,
        }
    }

    /// The model with the proposed TM extension.
    pub fn tm() -> Armv8Model {
        Armv8Model {
            transactional: true,
            cr_order: false,
        }
    }

    /// Adds the `CROrder` axiom (serialisability of critical regions).
    pub fn with_cr_order(mut self) -> Armv8Model {
        self.cr_order = true;
        self
    }

    /// True if the TM axioms are enabled.
    pub fn is_transactional(&self) -> bool {
        self.transactional
    }

    /// The [`crate::Target`] whose axiom table this model checks.
    fn target(&self) -> crate::Target {
        if self.transactional {
            crate::Target::Armv8Tm
        } else {
            crate::Target::Armv8
        }
    }

    /// Dependency-ordered-before: address and data dependencies, control
    /// dependencies to stores, and dependencies feeding internal reads-from.
    pub fn dob(&self, exec: &Execution) -> Relation {
        self.dob_view(&ExecView::new(exec))
    }

    /// [`Armv8Model::dob`] over a memoized view.
    pub fn dob_view(&self, view: &ExecView<'_>) -> Relation {
        let exec = view.exec();
        let deps = exec.addr.union(&exec.data);
        let ctrl_to_writes = exec.ctrl.compose(&view.id_writes());
        let mut dob = deps.compose(&view.rfi());
        dob.union_in_place(&deps);
        dob.union_in_place(&ctrl_to_writes);
        dob.intersect_in_place(&exec.po);
        dob
    }

    /// Atomic-ordered-before: the RMW pairing, plus ordering from an RMW's
    /// write to a program-order-later acquire load of the same value chain.
    pub fn aob(&self, exec: &Execution) -> Relation {
        self.aob_view(&ExecView::new(exec))
    }

    /// [`Armv8Model::aob`] over a memoized view.
    pub fn aob_view(&self, view: &ExecView<'_>) -> Relation {
        let exec = view.exec();
        let rmw_writes = Relation::identity_on(&exec.rmw.range());
        let acq_reads = Relation::identity_on(&view.acquires().intersection(&view.reads()));
        let mut aob = rmw_writes.compose(&view.rfi()).compose(&acq_reads);
        aob.union_in_place(&exec.rmw);
        aob
    }

    /// Barrier-ordered-before: DMB variants plus the one-way barriers implied
    /// by acquire loads and release stores.
    pub fn bob(&self, exec: &Execution) -> Relation {
        self.bob_view(&ExecView::new(exec))
    }

    /// [`Armv8Model::bob`] over a memoized view.
    pub fn bob_view(&self, view: &ExecView<'_>) -> Relation {
        let exec = view.exec();
        let dmb_ld = view.id_reads().compose(&view.fence_rel(Fence::DmbLd));
        let dmb_st = view
            .id_writes()
            .compose(&view.fence_rel(Fence::DmbSt))
            .compose(&view.id_writes());
        let acq_reads = view.acquires().intersection(&view.reads());
        let rel_writes = view.releases().intersection(&view.writes());
        let acq_first = Relation::identity_on(&acq_reads).compose(&exec.po);
        let rel_last = exec.po.compose(&Relation::identity_on(&rel_writes));
        // A release store is ordered before a program-order-later acquire
        // load ([L] ; po ; [A] in aarch64.cat) — the edge the C++ seq_cst
        // mapping relies on.
        let rel_acq = Relation::identity_on(&rel_writes)
            .compose(&exec.po)
            .compose(&Relation::identity_on(&acq_reads));
        let mut bob = view.fence_rel(Fence::Dmb).into_owned();
        bob.union_in_place(&dmb_ld);
        bob.union_in_place(&dmb_st);
        bob.union_in_place(&acq_first);
        bob.union_in_place(&rel_last);
        bob.union_in_place(&rel_acq);
        bob
    }

    /// The ordered-before relation of Fig. 8.
    pub fn ob(&self, exec: &Execution) -> Relation {
        self.ob_view(&ExecView::new(exec))
    }

    /// [`Armv8Model::ob`] over a memoized view.
    pub fn ob_view(&self, view: &ExecView<'_>) -> Relation {
        let mut ob = view.come().into_owned();
        ob.union_in_place(&self.dob_view(view));
        ob.union_in_place(&self.aob_view(view));
        ob.union_in_place(&self.bob_view(view));
        if self.transactional {
            ob.union_in_place(&view.tfence());
        }
        ob
    }
}

impl MemoryModel for Armv8Model {
    fn name(&self) -> &str {
        if self.transactional {
            "ARMv8+TM"
        } else {
            "ARMv8"
        }
    }

    fn axioms(&self) -> Vec<&str> {
        let mut axioms = vec!["Coherence", "Order", "RMWIsol"];
        if self.transactional {
            axioms.extend(["StrongIsol", "TxnOrder", "TxnCancelsRMW"]);
        }
        if self.cr_order {
            axioms.push("CROrder");
        }
        axioms
    }

    fn check_view(&self, view: &ExecView<'_>) -> Verdict {
        crate::ir::check_table(
            crate::ir::catalog().model(self.target()),
            self.cr_order,
            view,
        )
    }

    fn is_consistent_view(&self, view: &ExecView<'_>) -> bool {
        crate::ir::table_holds(
            crate::ir::catalog().model(self.target()),
            self.cr_order,
            view,
        )
    }
    fn catalog_target(&self) -> Option<(crate::Target, bool)> {
        Some((self.target(), self.cr_order))
    }

    fn incremental_checker(&self) -> Option<Box<dyn crate::DeltaChecker + '_>> {
        Some(Box::new(crate::ir::TargetChecker::new(
            self.target(),
            self.cr_order,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_exec::{catalog, Annot, Event, ExecutionBuilder};

    #[test]
    fn baseline_allows_po_relaxations_but_is_multicopy_atomic() {
        let m = Armv8Model::baseline();
        assert!(m.is_consistent(&catalog::sb()));
        assert!(m.is_consistent(&catalog::mp()));
        assert!(m.is_consistent(&catalog::lb()));
        // Multicopy atomicity: WRC and IRIW with dependencies are forbidden.
        assert!(!m.is_consistent(&catalog::wrc()));
        assert!(!m.is_consistent(&catalog::iriw()));
    }

    #[test]
    fn dmb_restores_order_for_sb() {
        let mut b = ExecutionBuilder::new();
        b.push(Event::write(0, 0));
        b.push(Event::fence(0, Fence::Dmb));
        b.push(Event::read(0, 1));
        b.push(Event::write(1, 1));
        b.push(Event::fence(1, Fence::Dmb));
        b.push(Event::read(1, 0));
        let e = b.build().unwrap();
        assert!(!Armv8Model::baseline().is_consistent(&e));
    }

    #[test]
    fn release_acquire_restores_order_for_mp() {
        let mut b = ExecutionBuilder::new();
        b.push(Event::write(0, 0));
        let wy = b.push(Event::write(0, 1).with_annot(Annot::release()));
        let ry = b.push(Event::read(1, 1).with_annot(Annot::acquire()));
        b.push(Event::read(1, 0));
        b.rf(wy, ry);
        let e = b.build().unwrap();
        assert!(!Armv8Model::baseline().is_consistent(&e));
        // The plain-variant without annotations stays allowed.
        assert!(Armv8Model::baseline().is_consistent(&catalog::mp()));
    }

    #[test]
    fn transactional_classics_are_forbidden() {
        let m = Armv8Model::tm();
        assert!(!m.is_consistent(&catalog::sb_txn()));
        assert!(!m.is_consistent(&catalog::mp_txn()));
        assert!(!m.is_consistent(&catalog::lb_txn()));
        assert!(!m.is_consistent(&catalog::fig2()));
        for which in ['a', 'b', 'c', 'd'] {
            assert!(!m.is_consistent(&catalog::fig3(which)));
        }
    }

    #[test]
    fn tm_model_agrees_with_baseline_on_plain_executions() {
        for e in [
            catalog::sb(),
            catalog::mp(),
            catalog::lb(),
            catalog::wrc(),
            catalog::iriw(),
        ] {
            assert_eq!(
                Armv8Model::baseline().is_consistent(&e),
                Armv8Model::tm().is_consistent(&e)
            );
        }
    }

    #[test]
    fn txn_cancels_rmw_detects_straddling_rmw() {
        let verdict = Armv8Model::tm().check(&catalog::monotonicity_cex_split());
        assert!(verdict.violates("TxnCancelsRMW"), "{verdict}");
        assert!(Armv8Model::tm().is_consistent(&catalog::monotonicity_cex_coalesced()));
    }

    #[test]
    fn example_1_1_witnesses_lock_elision_unsoundness() {
        // The concrete ARMv8 execution of Example 1.1 is consistent: the
        // speculative load of x before the store-exclusive completes lets
        // the elided transaction slip inside the critical region.
        let witness = catalog::example_1_1_concrete(false);
        let verdict = Armv8Model::tm().check(&witness);
        assert!(verdict.is_consistent(), "{verdict}");

        // Appending a DMB to lock() (the §1.1 fix) makes it inconsistent.
        let fixed = catalog::example_1_1_concrete(true);
        let verdict = Armv8Model::tm().check(&fixed);
        assert!(verdict.violates("TxnOrder"), "{verdict}");
    }

    #[test]
    fn appendix_b_second_witness_behaves_the_same_way() {
        assert!(Armv8Model::tm().is_consistent(&catalog::appendix_b_concrete(false)));
        assert!(!Armv8Model::tm().is_consistent(&catalog::appendix_b_concrete(true)));
    }

    #[test]
    fn cr_order_is_opt_in() {
        let abstract_exec = catalog::fig10_abstract();
        assert!(Armv8Model::tm().is_consistent(&abstract_exec));
        assert!(!Armv8Model::tm()
            .with_cr_order()
            .is_consistent(&abstract_exec));
    }
}

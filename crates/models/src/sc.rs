//! Sequential consistency and transactional sequential consistency (Fig. 4).

use tm_exec::ExecView;

use crate::{MemoryModel, Verdict};

/// The SC memory model, optionally strengthened to transactional SC (TSC).
///
/// * `Order` — `acyclic(hb)` with `hb = po ∪ com` (Shasha & Snir);
/// * `TxnOrder` (TSC only) — `acyclic(stronglift(hb, stxn))`: consecutive
///   events of a transaction appear consecutively in the overall order.
///
/// TSC is the upper bound on what a reasonable TM implementation provides
/// (§3.4); all the architecture models of this crate lie between
/// [`crate::isolation::weak_isolation`] and TSC.
///
/// # Examples
///
/// ```
/// use tm_exec::catalog;
/// use tm_models::{MemoryModel, ScModel};
///
/// // Store buffering is forbidden under SC.
/// assert!(!ScModel::sc().is_consistent(&catalog::sb()));
/// // Fig. 2 is SC-consistent but TSC-inconsistent: the external write
/// // intrudes into the transaction.
/// assert!(ScModel::sc().is_consistent(&catalog::fig2()));
/// assert!(!ScModel::tsc().is_consistent(&catalog::fig2()));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScModel {
    transactional: bool,
}

impl ScModel {
    /// Plain sequential consistency (ignores transactions entirely).
    pub fn sc() -> ScModel {
        ScModel {
            transactional: false,
        }
    }

    /// Transactional sequential consistency (adds `TxnOrder`).
    pub fn tsc() -> ScModel {
        ScModel {
            transactional: true,
        }
    }

    /// True if this is the transactional (TSC) variant.
    pub fn is_transactional(&self) -> bool {
        self.transactional
    }

    /// The [`crate::Target`] whose axiom table this model checks.
    fn target(&self) -> crate::Target {
        if self.transactional {
            crate::Target::Tsc
        } else {
            crate::Target::Sc
        }
    }
}

impl MemoryModel for ScModel {
    fn name(&self) -> &str {
        if self.transactional {
            "TSC"
        } else {
            "SC"
        }
    }

    fn axioms(&self) -> Vec<&str> {
        if self.transactional {
            vec!["Order", "TxnOrder"]
        } else {
            vec!["Order"]
        }
    }

    fn check_view(&self, view: &ExecView<'_>) -> Verdict {
        crate::ir::check_table(crate::ir::catalog().model(self.target()), false, view)
    }

    fn is_consistent_view(&self, view: &ExecView<'_>) -> bool {
        crate::ir::table_holds(crate::ir::catalog().model(self.target()), false, view)
    }
    fn catalog_target(&self) -> Option<(crate::Target, bool)> {
        Some((self.target(), false))
    }

    fn incremental_checker(&self) -> Option<Box<dyn crate::DeltaChecker + '_>> {
        Some(Box::new(crate::ir::TargetChecker::new(
            self.target(),
            false,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_exec::catalog;

    #[test]
    fn sc_forbids_the_classic_relaxations() {
        let sc = ScModel::sc();
        assert!(!sc.is_consistent(&catalog::sb()));
        assert!(!sc.is_consistent(&catalog::mp()));
        assert!(!sc.is_consistent(&catalog::lb()));
        assert!(!sc.is_consistent(&catalog::iriw()));
        assert!(!sc.is_consistent(&catalog::wrc()));
    }

    #[test]
    fn sc_allows_interleaved_executions() {
        let sc = ScModel::sc();
        // Fig. 1 reads from a po-later write, so even SC rejects it; it is
        // only an illustration of litmus-test construction.
        assert!(!sc.is_consistent(&catalog::fig1()));
        assert!(sc.is_consistent(&catalog::fig2()));
        for which in ['a', 'b', 'c', 'd'] {
            assert!(sc.is_consistent(&catalog::fig3(which)));
        }
    }

    #[test]
    fn tsc_subsumes_strong_isolation() {
        // TxnOrder subsumes StrongIsol (§3.4): everything fig. 3 shows to
        // violate strong isolation is also TSC-inconsistent.
        let tsc = ScModel::tsc();
        for which in ['a', 'b', 'c', 'd'] {
            let verdict = tsc.check(&catalog::fig3(which));
            assert!(verdict.violates("TxnOrder"), "fig3({which}): {verdict}");
        }
    }

    #[test]
    fn tsc_equals_sc_on_transaction_free_executions() {
        for e in [catalog::sb(), catalog::mp(), catalog::lb(), catalog::fig1()] {
            assert_eq!(
                ScModel::sc().is_consistent(&e),
                ScModel::tsc().is_consistent(&e)
            );
        }
    }

    #[test]
    fn names_and_axioms() {
        assert_eq!(ScModel::sc().name(), "SC");
        assert_eq!(ScModel::tsc().name(), "TSC");
        assert_eq!(ScModel::tsc().axioms(), vec!["Order", "TxnOrder"]);
        assert!(ScModel::tsc().is_transactional());
    }
}

//! Axiomatic weak-memory models with transactional extensions.
//!
//! This crate is the core of the reproduction of the PLDI'18 paper *The
//! Semantics of Transactions and Weak Memory in x86, Power, ARM, and C++*:
//! it implements the consistency predicates of Fig. 4 (SC / TSC), Fig. 5
//! (x86 ± TM), Fig. 6 (Power ± TM), Fig. 8 (ARMv8 ± TM) and Fig. 9
//! (C++ ± TM), the isolation axioms of §3.3, and the `CROrder` axiom used
//! for lock-elision checking in §8.3.
//!
//! All models operate on the [`tm_exec::Execution`] candidate executions and
//! report per-axiom verdicts, which the synthesiser (`tm-synth`), the
//! metatheory checks (`tm-metatheory`) and the benchmark harness rely on.
//!
//! # Quick start
//!
//! ```
//! use tm_exec::catalog;
//! use tm_models::{MemoryModel, Target};
//!
//! // Ask every model about the transactional store-buffering test.
//! for target in Target::ALL {
//!     let verdict = target.model().check(&catalog::sb_txn());
//!     println!("{verdict}");
//! }
//! // Transactions forbid store buffering even on x86.
//! assert!(Target::X86.model().is_consistent(&catalog::sb_txn()));
//! assert!(!Target::X86Tm.model().is_consistent(&catalog::sb_txn()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod armv8;
mod cpp;
pub mod ir;
pub mod isolation;
mod power;
mod sc;
mod verdict;
mod x86;

pub use armv8::Armv8Model;
pub use cpp::CppModel;
pub use power::PowerModel;
pub use sc::ScModel;
pub use verdict::{Verdict, Violation};
pub use x86::X86Model;

use tm_exec::ir::Delta;
use tm_exec::{ExecView, Execution};

/// A stateful, delta-driven consistency checker: the object-safe face of
/// the incremental axiom-IR evaluators, letting generic pipelines (suite
/// synthesis, the distinguishing-execution search) drive *any* model
/// incrementally without knowing whether it is a built-in catalog table or
/// a runtime-loaded `.cat` model.
///
/// The protocol matches [`tm_exec::ir::IncrementalEval`]: mutate the
/// execution first, then [`advance`](DeltaChecker::advance) with the
/// matching delta, then query. [`savepoint`](DeltaChecker::savepoint) and
/// [`rollback`](DeltaChecker::rollback) bracket a *probe* — apply a delta
/// (a ⊏-weakening of the current candidate, say), query it, and restore the
/// pre-probe state in O(touched nodes).
pub trait DeltaChecker {
    /// Absorbs the edits that turned the previous candidate into `exec`.
    /// Call once per candidate, before any query about it — even when the
    /// candidate will be skipped, so the cached state stays coherent.
    fn advance(&mut self, exec: &Execution, delta: &Delta);

    /// True if `exec` satisfies every axiom of the model — early-exit,
    /// cached verdicts reused across deltas that miss their footprints.
    fn is_consistent(&mut self, exec: &Execution) -> bool;

    /// Starts recording undo state; one savepoint may be active at a time.
    fn savepoint(&mut self);

    /// Restores the state captured by the active savepoint.
    fn rollback(&mut self);

    /// The checker's evaluation telemetry, when it keeps any — maintenance
    /// counters of the underlying incremental evaluator plus how often
    /// consistency queries early-exited. `None` (the default) means the
    /// checker does not track telemetry; callers must treat that as
    /// "unknown", not zero.
    fn telemetry(&self) -> Option<CheckerTelemetry> {
        None
    }
}

/// What a [`DeltaChecker`] can report about its own work: the incremental
/// evaluator's [`MaintenanceStats`](tm_exec::ir::MaintenanceStats) and the
/// number of consistency queries that early-exited before the last axiom.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckerTelemetry {
    /// Maintenance counters of the underlying evaluator.
    pub stats: tm_exec::ir::MaintenanceStats,
    /// Consistency queries answered `false` before the cost order's last
    /// axiom was evaluated.
    pub early_exits: u64,
}

impl CheckerTelemetry {
    /// Folds `other` into `self` — the cross-checker rollup.
    pub fn merge(&mut self, other: CheckerTelemetry) {
        self.stats.merge(other.stats);
        self.early_exits += other.early_exits;
    }
}

/// A memory model: a named consistency predicate over candidate executions.
///
/// Implementations report *which* axioms an execution violates via
/// [`MemoryModel::check_view`]; [`MemoryModel::is_consistent`] is the boolean
/// summary.
///
/// Checks are written against an [`ExecView`] so that the derived relations
/// (`sloc`, `fr`, `com`, fence relations, …) an execution's axioms share are
/// computed once per execution — and, when several models check the same
/// execution (as the synthesis sweep does), once across *all* of them if the
/// callers share one view. The [`MemoryModel::check`] convenience wraps a
/// fresh view around a bare [`Execution`].
///
/// Models are `Send + Sync` so `&dyn MemoryModel` can be shared by the
/// parallel enumeration workers.
pub trait MemoryModel: Send + Sync {
    /// A short human-readable name (e.g. `"Power+TM"`). Borrowed from the
    /// model so that runtime-loaded models (whose names come from `.cat`
    /// source text) can implement the trait too.
    fn name(&self) -> &str;

    /// The names of the axioms this model checks, in check order.
    fn axioms(&self) -> Vec<&str>;

    /// Checks the viewed execution against every axiom and reports all
    /// violations. Derived relations are fetched through `view`, memoized.
    fn check_view(&self, view: &ExecView<'_>) -> Verdict;

    /// Checks `exec` against every axiom and reports all violations.
    fn check(&self, exec: &Execution) -> Verdict {
        self.check_view(&ExecView::new(exec))
    }

    /// True if the viewed execution satisfies every axiom of this model.
    fn is_consistent_view(&self, view: &ExecView<'_>) -> bool {
        self.check_view(view).is_consistent()
    }

    /// True if `exec` satisfies every axiom of this model.
    fn is_consistent(&self, exec: &Execution) -> bool {
        // Route through the view-based check so models with an early-exit
        // `is_consistent_view` (cheapest axiom first, stop at the first
        // violation, no witness extraction) benefit here too.
        self.is_consistent_view(&ExecView::new(exec))
    }

    /// A delta-driven [`DeltaChecker`] for this model, or `None` if it only
    /// supports per-execution checking. All built-in models and runtime
    /// [`ir::IrModel`]s return one; incremental pipelines fall back to
    /// fresh-view evaluation when this is `None`.
    fn incremental_checker(&self) -> Option<Box<dyn DeltaChecker + '_>> {
        None
    }

    /// The shared-catalog axiom table this model checks, if it is one of
    /// the built-in models: the [`Target`] plus whether the §8.3 `CROrder`
    /// axiom is appended. Pipelines that check *several* built-in models
    /// per candidate (suite synthesis checks a TM model and its baseline)
    /// use this to drive them all through **one** stateful
    /// [`ir::IncrementalChecker`] — one delta propagation over the shared
    /// pool instead of one per model, with every shared axiom body's value
    /// computed once. `None` for runtime models with private pools.
    fn catalog_target(&self) -> Option<(Target, bool)> {
        None
    }
}

/// The memory-model targets studied in the paper, with and without their
/// transactional extensions.
///
/// `Target` is a convenience for tools (synthesis, benchmarks, examples)
/// that are parameterised by model; each variant constructs the
/// corresponding [`MemoryModel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Target {
    /// Sequential consistency (Fig. 4, baseline).
    Sc,
    /// Transactional sequential consistency (Fig. 4 with TxnOrder).
    Tsc,
    /// x86-TSO (Fig. 5, baseline).
    X86,
    /// x86-TSO with TSX transactions (Fig. 5).
    X86Tm,
    /// Power (Fig. 6, baseline).
    Power,
    /// Power with transactions (Fig. 6).
    PowerTm,
    /// ARMv8 (Fig. 8, baseline).
    Armv8,
    /// ARMv8 with the proposed TM extension (Fig. 8).
    Armv8Tm,
    /// C++ / RC11 (Fig. 9, baseline).
    Cpp,
    /// C++ with the TM technical specification (Fig. 9, §7).
    CppTm,
}

impl Target {
    /// Every target, baseline and transactional.
    pub const ALL: [Target; 10] = [
        Target::Sc,
        Target::Tsc,
        Target::X86,
        Target::X86Tm,
        Target::Power,
        Target::PowerTm,
        Target::Armv8,
        Target::Armv8Tm,
        Target::Cpp,
        Target::CppTm,
    ];

    /// The transactional targets (the models proposed by the paper).
    pub const TRANSACTIONAL: [Target; 5] = [
        Target::Tsc,
        Target::X86Tm,
        Target::PowerTm,
        Target::Armv8Tm,
        Target::CppTm,
    ];

    /// The hardware architecture targets with TM.
    pub const HARDWARE_TM: [Target; 3] = [Target::X86Tm, Target::PowerTm, Target::Armv8Tm];

    /// Constructs the memory model for this target.
    pub fn model(self) -> Box<dyn MemoryModel> {
        match self {
            Target::Sc => Box::new(ScModel::sc()),
            Target::Tsc => Box::new(ScModel::tsc()),
            Target::X86 => Box::new(X86Model::baseline()),
            Target::X86Tm => Box::new(X86Model::tm()),
            Target::Power => Box::new(PowerModel::baseline()),
            Target::PowerTm => Box::new(PowerModel::tm()),
            Target::Armv8 => Box::new(Armv8Model::baseline()),
            Target::Armv8Tm => Box::new(Armv8Model::tm()),
            Target::Cpp => Box::new(CppModel::baseline()),
            Target::CppTm => Box::new(CppModel::tm()),
        }
    }

    /// The non-transactional baseline this target is built on (`self` if it
    /// already is a baseline).
    pub fn baseline(self) -> Target {
        match self {
            Target::Tsc => Target::Sc,
            Target::X86Tm => Target::X86,
            Target::PowerTm => Target::Power,
            Target::Armv8Tm => Target::Armv8,
            Target::CppTm => Target::Cpp,
            other => other,
        }
    }

    /// The transactional extension of this target (`self` if it already is
    /// transactional).
    pub fn transactional(self) -> Target {
        match self {
            Target::Sc => Target::Tsc,
            Target::X86 => Target::X86Tm,
            Target::Power => Target::PowerTm,
            Target::Armv8 => Target::Armv8Tm,
            Target::Cpp => Target::CppTm,
            other => other,
        }
    }

    /// True if this target includes the TM axioms.
    pub fn is_transactional(self) -> bool {
        self.transactional() == self
    }

    /// A short stable name, usable in file names and reports.
    pub fn name(self) -> &'static str {
        match self {
            Target::Sc => "sc",
            Target::Tsc => "tsc",
            Target::X86 => "x86",
            Target::X86Tm => "x86-tm",
            Target::Power => "power",
            Target::PowerTm => "power-tm",
            Target::Armv8 => "armv8",
            Target::Armv8Tm => "armv8-tm",
            Target::Cpp => "cpp",
            Target::CppTm => "cpp-tm",
        }
    }
}

impl std::fmt::Display for Target {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_exec::catalog;

    #[test]
    fn target_roundtrips_between_baseline_and_transactional() {
        for t in Target::ALL {
            assert_eq!(t.baseline().transactional(), t.transactional());
            assert_eq!(t.transactional().baseline(), t.baseline());
        }
        assert!(Target::PowerTm.is_transactional());
        assert!(!Target::Power.is_transactional());
    }

    #[test]
    fn every_target_produces_a_model_with_its_axioms() {
        for t in Target::ALL {
            let model = t.model();
            assert!(!model.axioms().is_empty());
            assert!(!model.name().is_empty());
        }
    }

    #[test]
    fn transactional_models_are_stronger_on_the_catalog() {
        // For every catalog execution, a transactional model forbids at
        // least as much as its baseline (monotone strengthening).
        let execs = [
            catalog::sb(),
            catalog::sb_txn(),
            catalog::mp(),
            catalog::mp_txn(),
            catalog::lb(),
            catalog::lb_txn(),
            catalog::fig2(),
            catalog::fig3('a'),
            catalog::power_wrc_tprop1(),
            catalog::power_iriw_two_txns(),
        ];
        for t in Target::TRANSACTIONAL {
            let tm = t.model();
            let base = t.baseline().model();
            for e in &execs {
                if tm.is_consistent(e) {
                    assert!(
                        base.is_consistent(e),
                        "{} allows an execution {} forbids",
                        tm.name(),
                        base.name()
                    );
                }
            }
        }
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(Target::X86Tm.to_string(), "x86-tm");
        assert_eq!(Target::Cpp.to_string(), "cpp");
    }
}

//! The C++ memory model (RC11 à la Lahav et al.) with the Transactional
//! Memory technical-specification extension (Fig. 9, §7).

use tm_exec::{ExecView, Execution, Fence};
use tm_relation::{ElemSet, Relation};

use crate::{MemoryModel, Verdict};

/// The C++ memory model, following the RC11 formulation of Lahav et al.
/// (whose fix is what makes compilation to Power sound), extended — when
/// `transactional` — with the paper's reformulated transactional
/// synchronisation (§7.2):
///
/// * `HbCom` — `irreflexive(hb ; com*)` where
///   `hb = (sw ∪ tsw ∪ po)+` and, with TM,
///   `tsw = weaklift(ecom, stxn)` orders conflicting transactions without
///   any explicit total order over transactions;
/// * `RMWIsol` — `empty(rmw ∩ (fre ; coe))`;
/// * `NoThinAir` — `acyclic(po ∪ rf)`;
/// * `SeqCst` — `acyclic(psc)` over SC accesses and fences.
///
/// The model also exposes the *race-freedom* predicate (`NoRace`) separately
/// via [`CppModel::is_racy`]: a program with a racy consistent execution is
/// undefined, and several theorems (7.2, 7.3) assume race freedom.
///
/// # Examples
///
/// ```
/// use tm_exec::catalog;
/// use tm_models::{CppModel, MemoryModel};
///
/// // Transactional message passing is forbidden: conflicting transactions
/// // synchronise, so the stale read contradicts happens-before.
/// assert!(CppModel::baseline().is_consistent(&catalog::mp_txn()));
/// assert!(!CppModel::tm().is_consistent(&catalog::mp_txn()));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CppModel {
    transactional: bool,
}

impl CppModel {
    /// The non-transactional baseline (RC11).
    pub fn baseline() -> CppModel {
        CppModel {
            transactional: false,
        }
    }

    /// The model with the TM extension.
    pub fn tm() -> CppModel {
        CppModel {
            transactional: true,
        }
    }

    /// True if the TM extension is enabled.
    pub fn is_transactional(&self) -> bool {
        self.transactional
    }

    /// The [`crate::Target`] whose axiom table this model checks.
    fn target(&self) -> crate::Target {
        if self.transactional {
            crate::Target::CppTm
        } else {
            crate::Target::Cpp
        }
    }

    /// The `Acq` set: acquire accesses plus acquire and seq_cst fences.
    pub fn acq_set(&self, exec: &Execution) -> ElemSet {
        self.acq_set_view(&ExecView::new(exec))
    }

    /// [`CppModel::acq_set`] over a memoized view.
    pub fn acq_set_view(&self, view: &ExecView<'_>) -> ElemSet {
        view.acquires()
            .union(&view.fences_of(Fence::FenceAcq))
            .union(&view.fences_of(Fence::FenceSc))
    }

    /// The `Rel` set: release accesses plus release and seq_cst fences.
    pub fn rel_set(&self, exec: &Execution) -> ElemSet {
        self.rel_set_view(&ExecView::new(exec))
    }

    /// [`CppModel::rel_set`] over a memoized view.
    pub fn rel_set_view(&self, view: &ExecView<'_>) -> ElemSet {
        view.releases()
            .union(&view.fences_of(Fence::FenceRel))
            .union(&view.fences_of(Fence::FenceSc))
    }

    /// The `SC` set: seq_cst accesses plus seq_cst fences.
    pub fn sc_set(&self, exec: &Execution) -> ElemSet {
        self.sc_set_view(&ExecView::new(exec))
    }

    /// [`CppModel::sc_set`] over a memoized view.
    pub fn sc_set_view(&self, view: &ExecView<'_>) -> ElemSet {
        view.sc_events().union(&view.fences_of(Fence::FenceSc))
    }

    /// The release sequence: `rs = [W] ; poloc? ; [W ∩ Ato] ; (rf ; rmw)*`.
    pub fn release_sequence(&self, exec: &Execution) -> Relation {
        self.release_sequence_view(&ExecView::new(exec))
    }

    /// [`CppModel::release_sequence`] over a memoized view.
    pub fn release_sequence_view(&self, view: &ExecView<'_>) -> Relation {
        let exec = view.exec();
        let id_w_ato = Relation::identity_on(&view.writes().intersection(&view.atomics()));
        view.id_writes()
            .compose(&view.poloc().reflexive_closure())
            .compose(&id_w_ato)
            .compose(&exec.rf.compose(&exec.rmw).reflexive_transitive_closure())
    }

    /// The synchronises-with relation:
    /// `sw = [Rel] ; ([F] ; po)? ; rs ; rf ; [R ∩ Ato] ; (po ; [F])? ; [Acq]`.
    pub fn sw(&self, exec: &Execution) -> Relation {
        self.sw_view(&ExecView::new(exec))
    }

    /// [`CppModel::sw`] over a memoized view.
    pub fn sw_view(&self, view: &ExecView<'_>) -> Relation {
        let exec = view.exec();
        let id_rel = Relation::identity_on(&self.rel_set_view(view));
        let id_acq = Relation::identity_on(&self.acq_set_view(view));
        let id_fence = Relation::identity_on(&view.fences());
        let id_r_ato = Relation::identity_on(&view.reads().intersection(&view.atomics()));
        let fence_po = id_fence.compose(&exec.po).reflexive_closure();
        let po_fence = exec.po.compose(&id_fence).reflexive_closure();
        id_rel
            .compose(&fence_po)
            .compose(&self.release_sequence_view(view))
            .compose(&exec.rf)
            .compose(&id_r_ato)
            .compose(&po_fence)
            .compose(&id_acq)
    }

    /// Transactional synchronisation (§7.2): `tsw = weaklift(ecom, stxn)` —
    /// conflicting transactions synchronise in extended-communication order.
    pub fn tsw(&self, exec: &Execution) -> Relation {
        self.tsw_view(&ExecView::new(exec))
    }

    /// [`CppModel::tsw`] over a memoized view.
    pub fn tsw_view(&self, view: &ExecView<'_>) -> Relation {
        Execution::weaklift(&view.ecom(), &view.exec().stxn)
    }

    /// Happens-before: `hb = (sw ∪ tsw ∪ po)+` (the `tsw` part only when the
    /// TM extension is enabled).
    pub fn hb(&self, exec: &Execution) -> Relation {
        self.hb_view(&ExecView::new(exec))
    }

    /// [`CppModel::hb`] over a memoized view.
    pub fn hb_view(&self, view: &ExecView<'_>) -> Relation {
        let mut base = self.sw_view(view);
        base.union_in_place(&view.exec().po);
        if self.transactional {
            base.union_in_place(&self.tsw_view(view));
        }
        base.transitive_closure_in_place();
        base
    }

    /// The partial-SC relation used by the `SeqCst` axiom, following RC11.
    pub fn psc(&self, exec: &Execution) -> Relation {
        self.psc_view(&ExecView::new(exec))
    }

    /// [`CppModel::psc`] over a memoized view.
    pub fn psc_view(&self, view: &ExecView<'_>) -> Relation {
        let exec = view.exec();
        let hb = self.hb_view(view);
        let hb_q = hb.reflexive_closure();
        let sc = self.sc_set_view(view);
        let sc_fences = sc.intersection(&view.fences());
        let id_sc = Relation::identity_on(&sc);
        let id_f_sc = Relation::identity_on(&sc_fences);
        let eco = view.com().transitive_closure();

        // scb = po ∪ (po\loc ; hb ; po\loc) ∪ (hb ∩ sloc) ∪ co ∪ fr
        let po_nl = view.po_diff_loc();
        let mut scb = po_nl.compose(&hb).compose(&po_nl);
        scb.union_in_place(&exec.po);
        scb.union_in_place(&hb.intersection(&view.sloc()));
        scb.union_in_place(&exec.co);
        scb.union_in_place(&view.fr());

        let left = id_sc.union(&id_f_sc.compose(&hb_q));
        let right = id_sc.union(&hb_q.compose(&id_f_sc));
        let mut psc = left.compose(&scb).compose(&right);
        let psc_f = id_f_sc
            .compose(&hb.union(&hb.compose(&eco).compose(&hb)))
            .compose(&id_f_sc);
        psc.union_in_place(&psc_f);
        psc
    }

    /// The `NoRace` predicate of Fig. 9: true if the execution contains a
    /// data race, i.e. two conflicting events, not both atomic, unordered by
    /// happens-before. A program with a racy consistent execution has
    /// undefined behaviour.
    pub fn is_racy(&self, exec: &Execution) -> bool {
        self.is_racy_view(&ExecView::new(exec))
    }

    /// [`CppModel::is_racy`] over a memoized view.
    pub fn is_racy_view(&self, view: &ExecView<'_>) -> bool {
        let hb = self.hb_view(view);
        let ato = view.atomics();
        let both_atomic = Relation::cross(&ato, &ato);
        let mut races = view.cnf().into_owned();
        races.difference_in_place(&both_atomic);
        races.difference_in_place(&hb);
        races.difference_in_place(&hb.inverse());
        !races.is_empty()
    }

    /// True if every atomic transaction contains no atomic operation — the
    /// syntactic restriction the C++ TM specification places on
    /// `atomic { … }` blocks, and a hypothesis of Theorem 7.2.
    pub fn atomic_txns_contain_no_atomics(&self, exec: &Execution) -> bool {
        self.atomic_txns_contain_no_atomics_view(&ExecView::new(exec))
    }

    /// [`CppModel::atomic_txns_contain_no_atomics`] over a memoized view.
    pub fn atomic_txns_contain_no_atomics_view(&self, view: &ExecView<'_>) -> bool {
        view.exec()
            .stxnat
            .domain()
            .is_disjoint_from(&view.atomics())
    }
}

impl MemoryModel for CppModel {
    fn name(&self) -> &str {
        if self.transactional {
            "C++(TM)"
        } else {
            "C++"
        }
    }

    fn axioms(&self) -> Vec<&str> {
        vec!["HbCom", "RMWIsol", "NoThinAir", "SeqCst"]
    }

    fn check_view(&self, view: &ExecView<'_>) -> Verdict {
        crate::ir::check_table(crate::ir::catalog().model(self.target()), false, view)
    }

    fn is_consistent_view(&self, view: &ExecView<'_>) -> bool {
        crate::ir::table_holds(crate::ir::catalog().model(self.target()), false, view)
    }
    fn catalog_target(&self) -> Option<(crate::Target, bool)> {
        Some((self.target(), false))
    }

    fn incremental_checker(&self) -> Option<Box<dyn crate::DeltaChecker + '_>> {
        Some(Box::new(crate::ir::TargetChecker::new(
            self.target(),
            false,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_exec::{catalog, Annot, Event, ExecutionBuilder};

    /// MP with a release store of the flag and an acquire load of it.
    fn mp_rel_acq() -> Execution {
        let mut b = ExecutionBuilder::new();
        b.push(Event::write(0, 0));
        let wy = b.push(Event::write(0, 1).with_annot(Annot::release_atomic()));
        let ry = b.push(Event::read(1, 1).with_annot(Annot::acquire_atomic()));
        b.push(Event::read(1, 0));
        b.rf(wy, ry);
        b.build().unwrap()
    }

    /// SB with every access seq_cst.
    fn sb_sc() -> Execution {
        let mut b = ExecutionBuilder::new();
        b.push(Event::write(0, 0).with_annot(Annot::seq_cst()));
        b.push(Event::read(0, 1).with_annot(Annot::seq_cst()));
        b.push(Event::write(1, 1).with_annot(Annot::seq_cst()));
        b.push(Event::read(1, 0).with_annot(Annot::seq_cst()));
        b.build().unwrap()
    }

    #[test]
    fn relaxed_weak_behaviours_are_consistent_but_racy_when_non_atomic() {
        let m = CppModel::baseline();
        assert!(m.is_consistent(&catalog::mp()));
        assert!(m.is_racy(&catalog::mp()));
        assert!(m.is_consistent(&catalog::sb()));
    }

    #[test]
    fn release_acquire_forbids_stale_reads() {
        let m = CppModel::baseline();
        let e = mp_rel_acq();
        let verdict = m.check(&e);
        assert!(verdict.violates("HbCom"), "{verdict}");
        // The synchronisation also removes the race on x.
        // (The read of x is hb-after the write of x via the sw edge.)
        assert!(!m.is_racy(&e));
    }

    #[test]
    fn seq_cst_forbids_store_buffering() {
        let verdict = CppModel::baseline().check(&sb_sc());
        assert!(verdict.violates("SeqCst"), "{verdict}");
        assert!(CppModel::baseline().is_consistent(&catalog::sb()));
    }

    #[test]
    fn load_buffering_is_forbidden_by_no_thin_air() {
        let verdict = CppModel::baseline().check(&catalog::lb());
        assert!(verdict.violates("NoThinAir"), "{verdict}");
    }

    #[test]
    fn conflicting_transactions_synchronise() {
        let m = CppModel::tm();
        // MP, LB and SB between two transactions are all forbidden.
        assert!(!m.is_consistent(&catalog::mp_txn()));
        assert!(!m.is_consistent(&catalog::lb_txn()));
        assert!(!m.is_consistent(&catalog::sb_txn()));
        // The baseline (ignoring transactions) allows MP and SB.
        assert!(CppModel::baseline().is_consistent(&catalog::mp_txn()));
        assert!(CppModel::baseline().is_consistent(&catalog::sb_txn()));
    }

    #[test]
    fn dongol_example_is_forbidden_by_cpp() {
        let verdict = CppModel::tm().check(&catalog::dongol_mp_txn());
        assert!(verdict.violates("HbCom"), "{verdict}");
    }

    #[test]
    fn weak_isolation_follows_from_the_axioms() {
        // §7.2: WeakIsol follows from the other C++ consistency axioms. All
        // catalog executions that the TM model accepts satisfy WeakIsol.
        for e in [
            catalog::fig2(),
            catalog::mp_txn(),
            catalog::lb_txn(),
            catalog::sb_txn(),
            catalog::fig3('a'),
            catalog::fig3('b'),
        ] {
            if CppModel::tm().is_consistent(&e) {
                assert!(crate::isolation::weak_isolation(&e));
            }
        }
    }

    #[test]
    fn single_transaction_racing_an_atomic_store_is_racy() {
        // §7.2 "Transactions and Data Races": atomic{ x=1; } || atomic_store(&x,2)
        // is racy because the transactional store is not an atomic operation.
        let mut b = ExecutionBuilder::new();
        let wt = b.push(Event::write(0, 0));
        let wa = b.push(Event::write(1, 0).with_annot(Annot::seq_cst()));
        b.atomic_txn(&[wt]);
        b.co(wt, wa);
        let e = b.build().unwrap();
        assert!(CppModel::tm().is_racy(&e));
        assert!(CppModel::tm().atomic_txns_contain_no_atomics(&e));
    }

    #[test]
    fn atomic_txn_scoping_check_detects_atomics_inside() {
        let mut b = ExecutionBuilder::new();
        let w = b.push(Event::write(0, 0).with_annot(Annot::seq_cst()));
        b.atomic_txn(&[w]);
        let e = b.build().unwrap();
        assert!(!CppModel::tm().atomic_txns_contain_no_atomics(&e));
    }

    #[test]
    fn sc_fences_order_sb() {
        // SB with relaxed atomics but seq_cst fences between each pair.
        let mut b = ExecutionBuilder::new();
        b.push(Event::write(0, 0).with_annot(Annot::relaxed_atomic()));
        b.push(Event::fence(0, Fence::FenceSc));
        b.push(Event::read(0, 1).with_annot(Annot::relaxed_atomic()));
        b.push(Event::write(1, 1).with_annot(Annot::relaxed_atomic()));
        b.push(Event::fence(1, Fence::FenceSc));
        b.push(Event::read(1, 0).with_annot(Annot::relaxed_atomic()));
        let e = b.build().unwrap();
        let verdict = CppModel::baseline().check(&e);
        assert!(verdict.violates("SeqCst"), "{verdict}");
    }

    #[test]
    fn tm_and_baseline_agree_without_transactions() {
        for e in [
            catalog::sb(),
            catalog::mp(),
            catalog::lb(),
            mp_rel_acq(),
            sb_sc(),
        ] {
            assert_eq!(
                CppModel::baseline().is_consistent(&e),
                CppModel::tm().is_consistent(&e)
            );
        }
    }
}

//! The Power memory model with transactional extensions (Fig. 6).

use tm_exec::{Execution, Fence};
use tm_relation::Relation;

use crate::isolation::{cr_order, require_acyclic, require_empty, require_irreflexive};
use crate::{MemoryModel, Verdict};

/// The Power memory model of Alglave et al. ("herding cats"), extended —
/// when `transactional` — with the paper's TM axioms:
///
/// * `Coherence`, `RMWIsol`, `Order` (`acyclic(hb)`), `Propagation`
///   (`acyclic(co ∪ prop)`) and `Observation`
///   (`irreflexive(fre ; prop ; hb*)`) from the baseline model;
/// * implicit fences at transaction boundaries (`tfence` joins `sync` in
///   the fence relation and in `prop2`);
/// * `tprop1 = rfe ; stxn ; [W]` — the transaction's integrated memory
///   barrier: writes it observed propagate before its own writes;
/// * `tprop2 = stxn ; rfe` — transactional writes are multicopy-atomic;
/// * `thb`, lifted over transactions into `hb` — successful transactions
///   serialise in an order no thread can contradict;
/// * `StrongIsol`, `TxnOrder`, and `TxnCancelsRMW` (an RMW straddling a
///   transaction boundary always fails).
///
/// The preserved-program-order (`ppo`) fragment is approximated by
/// dependencies (`addr`, `data`, control dependencies to stores, and
/// dependency-into-internal-read-from chains); the paper elides the exact
/// definition and our conformance suites only rely on this fragment.
///
/// # Examples
///
/// ```
/// use tm_exec::catalog;
/// use tm_models::{MemoryModel, PowerModel};
///
/// // WRC with dependencies is allowed on Power (it is not multicopy-atomic) …
/// assert!(PowerModel::baseline().is_consistent(&catalog::wrc()));
/// // … but becomes forbidden once the observer chain passes through a
/// // transaction (execution (1) of §5.2).
/// assert!(!PowerModel::tm().is_consistent(&catalog::power_wrc_tprop1()));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PowerModel {
    transactional: bool,
    cr_order: bool,
}

impl PowerModel {
    /// The non-transactional baseline model.
    pub fn baseline() -> PowerModel {
        PowerModel {
            transactional: false,
            cr_order: false,
        }
    }

    /// The transactional model.
    pub fn tm() -> PowerModel {
        PowerModel {
            transactional: true,
            cr_order: false,
        }
    }

    /// Adds the `CROrder` axiom (serialisability of critical regions).
    pub fn with_cr_order(mut self) -> PowerModel {
        self.cr_order = true;
        self
    }

    /// True if the TM axioms are enabled.
    pub fn is_transactional(&self) -> bool {
        self.transactional
    }

    /// The preserved-program-order approximation.
    pub fn ppo(&self, exec: &Execution) -> Relation {
        let deps = exec.addr.union(&exec.data);
        let ctrl_to_writes = exec
            .ctrl
            .compose(&Relation::identity_on(&exec.writes()));
        deps.union(&ctrl_to_writes)
            .union(&deps.compose(&exec.rfi()))
            .intersection(&exec.po)
    }

    /// The fence relation: `sync ∪ tfence ∪ (lwsync \ (W × R))`.
    pub fn fence(&self, exec: &Execution) -> Relation {
        let sync = exec.fence_rel(Fence::Sync);
        let lwsync = exec.fence_rel(Fence::Lwsync);
        let w_to_r = Relation::cross(&exec.writes(), &exec.reads());
        let mut fence = sync.union(&lwsync.difference(&w_to_r));
        if self.transactional {
            fence = fence.union(&exec.tfence());
        }
        fence
    }

    /// Intra-thread happens-before: `ihb = ppo ∪ fence`.
    pub fn ihb(&self, exec: &Execution) -> Relation {
        self.ppo(exec).union(&self.fence(exec))
    }

    /// The transactional happens-before relation `thb` (only meaningful for
    /// the transactional model):
    /// `thb = (rfe ∪ ((fre ∪ coe)* ; ihb))* ; (fre ∪ coe)* ; rfe?`.
    pub fn thb(&self, exec: &Execution) -> Relation {
        let ihb = self.ihb(exec);
        let fre_coe = exec.fre().union(&exec.coe());
        let fre_coe_star = fre_coe.reflexive_transitive_closure();
        let step = exec.rfe().union(&fre_coe_star.compose(&ihb));
        step.reflexive_transitive_closure()
            .compose(&fre_coe_star)
            .compose(&exec.rfe().reflexive_closure())
    }

    /// The happens-before relation of Fig. 6:
    /// `hb = (rfe? ; ihb ; rfe?) ∪ weaklift(thb, stxn)` (the lifted part only
    /// with TM enabled).
    pub fn hb(&self, exec: &Execution) -> Relation {
        let ihb = self.ihb(exec);
        let rfe_q = exec.rfe().reflexive_closure();
        let mut hb = rfe_q.compose(&ihb).compose(&rfe_q);
        if self.transactional {
            hb = hb.union(&Execution::weaklift(&self.thb(exec), &exec.stxn));
        }
        hb
    }

    /// The propagation relation of Fig. 6 (including `tprop1`/`tprop2` when
    /// TM is enabled).
    pub fn prop(&self, exec: &Execution) -> Relation {
        let n = exec.len();
        let fence = self.fence(exec);
        let hb_star = self.hb(exec).reflexive_transitive_closure();
        let rfe_q = exec.rfe().reflexive_closure();
        let efence = rfe_q.compose(&fence).compose(&rfe_q);
        let id_w = Relation::identity_on(&exec.writes());

        let prop1 = id_w.compose(&efence).compose(&hb_star).compose(&id_w);

        let mut strong_fence = exec.fence_rel(Fence::Sync);
        if self.transactional {
            strong_fence = strong_fence.union(&exec.tfence());
        }
        let prop2 = exec
            .come()
            .reflexive_transitive_closure()
            .compose(&efence.reflexive_transitive_closure())
            .compose(&hb_star)
            .compose(&strong_fence)
            .compose(&hb_star);

        let mut prop = prop1.union(&prop2);
        if self.transactional {
            let tprop1 = exec.rfe().compose(&exec.stxn).compose(&id_w);
            let tprop2 = exec.stxn.compose(&exec.rfe());
            prop = prop.union(&tprop1).union(&tprop2);
        } else {
            let _ = n;
        }
        prop
    }
}

impl MemoryModel for PowerModel {
    fn name(&self) -> &'static str {
        if self.transactional {
            "Power+TM"
        } else {
            "Power"
        }
    }

    fn axioms(&self) -> Vec<&'static str> {
        let mut axioms = vec![
            "Coherence",
            "RMWIsol",
            "Order",
            "Propagation",
            "Observation",
        ];
        if self.transactional {
            axioms.extend(["StrongIsol", "TxnOrder", "TxnCancelsRMW"]);
        }
        if self.cr_order {
            axioms.push("CROrder");
        }
        axioms
    }

    fn check(&self, exec: &Execution) -> Verdict {
        let mut verdict = Verdict::consistent(self.name());

        require_acyclic(
            &mut verdict,
            "Coherence",
            &exec.poloc().union(&exec.com()),
        );
        require_empty(
            &mut verdict,
            "RMWIsol",
            &exec.rmw.intersection(&exec.fre().compose(&exec.coe())),
        );

        let hb = self.hb(exec);
        require_acyclic(&mut verdict, "Order", &hb);

        let prop = self.prop(exec);
        require_acyclic(&mut verdict, "Propagation", &exec.co.union(&prop));
        require_irreflexive(
            &mut verdict,
            "Observation",
            &exec
                .fre()
                .compose(&prop)
                .compose(&hb.reflexive_transitive_closure()),
        );

        if self.transactional {
            require_acyclic(
                &mut verdict,
                "StrongIsol",
                &Execution::stronglift(&exec.com(), &exec.stxn),
            );
            require_acyclic(
                &mut verdict,
                "TxnOrder",
                &Execution::stronglift(&hb, &exec.stxn),
            );
            require_empty(
                &mut verdict,
                "TxnCancelsRMW",
                &exec.rmw.intersection(&exec.tfence().transitive_closure()),
            );
        }
        if self.cr_order && !cr_order(exec) {
            verdict.push("CROrder", None);
        }
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_exec::{catalog, Event, ExecutionBuilder};

    #[test]
    fn baseline_allows_the_classic_power_relaxations() {
        let m = PowerModel::baseline();
        assert!(m.is_consistent(&catalog::sb()));
        assert!(m.is_consistent(&catalog::mp()));
        assert!(m.is_consistent(&catalog::lb()));
        assert!(m.is_consistent(&catalog::wrc()));
        assert!(m.is_consistent(&catalog::iriw()));
    }

    #[test]
    fn mp_with_lwsync_and_addr_is_forbidden() {
        let mut b = ExecutionBuilder::new();
        let wx = b.push(Event::write(0, 0));
        b.push(Event::fence(0, Fence::Lwsync));
        let wy = b.push(Event::write(0, 1));
        let ry = b.push(Event::read(1, 1));
        let rx = b.push(Event::read(1, 0));
        b.rf(wy, ry);
        b.addr(ry, rx);
        let e = b.build().unwrap();
        let _ = (wx, rx);
        let verdict = PowerModel::baseline().check(&e);
        assert!(verdict.violates("Observation"), "{verdict}");
    }

    #[test]
    fn sb_with_syncs_is_forbidden() {
        let mut b = ExecutionBuilder::new();
        b.push(Event::write(0, 0));
        b.push(Event::fence(0, Fence::Sync));
        b.push(Event::read(0, 1));
        b.push(Event::write(1, 1));
        b.push(Event::fence(1, Fence::Sync));
        b.push(Event::read(1, 0));
        let e = b.build().unwrap();
        assert!(!PowerModel::baseline().is_consistent(&e));
    }

    #[test]
    fn paper_power_executions_get_the_paper_verdicts() {
        // Execution (1): forbidden with the transaction, allowed without TM
        // semantics (§5.2, "Barriers within Transactions").
        let e1 = catalog::power_wrc_tprop1();
        assert!(PowerModel::baseline().is_consistent(&e1));
        let verdict = PowerModel::tm().check(&e1);
        assert!(verdict.violates("Observation"), "{verdict}");

        // Execution (2): transactional writes are multicopy-atomic.
        let e2 = catalog::power_wrc_tprop2();
        assert!(PowerModel::baseline().is_consistent(&e2));
        assert!(!PowerModel::tm().is_consistent(&e2));

        // Execution (3): incompatible transaction serialisation orders.
        let e3 = catalog::power_iriw_two_txns();
        assert!(PowerModel::baseline().is_consistent(&e3));
        let verdict = PowerModel::tm().check(&e3);
        assert!(verdict.violates("Order"), "{verdict}");

        // The one-transaction variant was observed on hardware and must stay
        // allowed.
        assert!(PowerModel::tm().is_consistent(&catalog::power_iriw_one_txn()));
    }

    #[test]
    fn remark_5_1_executions_are_permitted() {
        assert!(PowerModel::tm().is_consistent(&catalog::remark_5_1_first()));
        assert!(PowerModel::tm().is_consistent(&catalog::remark_5_1_second()));
    }

    #[test]
    fn transactional_classics_are_forbidden() {
        let m = PowerModel::tm();
        assert!(!m.is_consistent(&catalog::sb_txn()));
        assert!(!m.is_consistent(&catalog::mp_txn()));
        assert!(!m.is_consistent(&catalog::lb_txn()));
        assert!(!m.is_consistent(&catalog::fig2()));
        for which in ['a', 'b', 'c', 'd'] {
            assert!(!m.is_consistent(&catalog::fig3(which)));
        }
    }

    #[test]
    fn txn_cancels_rmw_detects_straddling_rmw() {
        let split = catalog::monotonicity_cex_split();
        let verdict = PowerModel::tm().check(&split);
        assert!(verdict.violates("TxnCancelsRMW"), "{verdict}");
        assert!(PowerModel::tm().is_consistent(&catalog::monotonicity_cex_coalesced()));
    }

    #[test]
    fn dongol_example_is_forbidden_by_our_stronger_model() {
        // §9: Dongol et al.'s Power model allows this, ours forbids it,
        // which is what makes the C++ compilation mapping sound.
        let verdict = PowerModel::tm().check(&catalog::dongol_mp_txn());
        assert!(!verdict.is_consistent());
    }

    #[test]
    fn tm_model_agrees_with_baseline_on_plain_executions() {
        for e in [
            catalog::sb(),
            catalog::mp(),
            catalog::lb(),
            catalog::wrc(),
            catalog::iriw(),
            catalog::sb_mfence(),
        ] {
            assert_eq!(
                PowerModel::baseline().is_consistent(&e),
                PowerModel::tm().is_consistent(&e)
            );
        }
    }

    #[test]
    fn cr_order_is_opt_in() {
        let abstract_exec = catalog::fig10_abstract();
        assert!(PowerModel::tm().is_consistent(&abstract_exec));
        assert!(!PowerModel::tm()
            .with_cr_order()
            .is_consistent(&abstract_exec));
    }
}

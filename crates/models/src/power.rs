//! The Power memory model with transactional extensions (Fig. 6).

use tm_exec::{ExecView, Execution, Fence};
use tm_relation::Relation;

use crate::{MemoryModel, Verdict};

/// The Power memory model of Alglave et al. ("herding cats"), extended —
/// when `transactional` — with the paper's TM axioms:
///
/// * `Coherence`, `RMWIsol`, `Order` (`acyclic(hb)`), `Propagation`
///   (`acyclic(co ∪ prop)`) and `Observation`
///   (`irreflexive(fre ; prop ; hb*)`) from the baseline model;
/// * implicit fences at transaction boundaries (`tfence` joins `sync` in
///   the fence relation and in `prop2`);
/// * `tprop1 = rfe ; stxn ; [W]` — the transaction's integrated memory
///   barrier: writes it observed propagate before its own writes;
/// * `tprop2 = stxn ; rfe` — transactional writes are multicopy-atomic;
/// * `thb`, lifted over transactions into `hb` — successful transactions
///   serialise in an order no thread can contradict;
/// * `StrongIsol`, `TxnOrder`, and `TxnCancelsRMW` (an RMW straddling a
///   transaction boundary always fails).
///
/// The preserved-program-order (`ppo`) fragment is approximated by
/// dependencies (`addr`, `data`, control dependencies to stores, and
/// dependency-into-internal-read-from chains); the paper elides the exact
/// definition and our conformance suites only rely on this fragment.
///
/// # Examples
///
/// ```
/// use tm_exec::catalog;
/// use tm_models::{MemoryModel, PowerModel};
///
/// // WRC with dependencies is allowed on Power (it is not multicopy-atomic) …
/// assert!(PowerModel::baseline().is_consistent(&catalog::wrc()));
/// // … but becomes forbidden once the observer chain passes through a
/// // transaction (execution (1) of §5.2).
/// assert!(!PowerModel::tm().is_consistent(&catalog::power_wrc_tprop1()));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PowerModel {
    transactional: bool,
    cr_order: bool,
}

impl PowerModel {
    /// The non-transactional baseline model.
    pub fn baseline() -> PowerModel {
        PowerModel {
            transactional: false,
            cr_order: false,
        }
    }

    /// The transactional model.
    pub fn tm() -> PowerModel {
        PowerModel {
            transactional: true,
            cr_order: false,
        }
    }

    /// Adds the `CROrder` axiom (serialisability of critical regions).
    pub fn with_cr_order(mut self) -> PowerModel {
        self.cr_order = true;
        self
    }

    /// True if the TM axioms are enabled.
    pub fn is_transactional(&self) -> bool {
        self.transactional
    }

    /// The [`crate::Target`] whose axiom table this model checks.
    fn target(&self) -> crate::Target {
        if self.transactional {
            crate::Target::PowerTm
        } else {
            crate::Target::Power
        }
    }

    /// The preserved-program-order approximation.
    pub fn ppo(&self, exec: &Execution) -> Relation {
        self.ppo_view(&ExecView::new(exec))
    }

    /// [`PowerModel::ppo`] over a memoized view.
    pub fn ppo_view(&self, view: &ExecView<'_>) -> Relation {
        let exec = view.exec();
        let deps = exec.addr.union(&exec.data);
        let ctrl_to_writes = exec.ctrl.compose(&view.id_writes());
        let mut ppo = deps.compose(&view.rfi());
        ppo.union_in_place(&deps);
        ppo.union_in_place(&ctrl_to_writes);
        ppo.intersect_in_place(&exec.po);
        ppo
    }

    /// The fence relation: `sync ∪ tfence ∪ (lwsync \ (W × R))`.
    pub fn fence(&self, exec: &Execution) -> Relation {
        self.fence_view(&ExecView::new(exec))
    }

    /// [`PowerModel::fence`] over a memoized view.
    pub fn fence_view(&self, view: &ExecView<'_>) -> Relation {
        let mut lwsync = view.fence_rel(Fence::Lwsync).into_owned();
        lwsync.difference_in_place(&Relation::cross(&view.writes(), &view.reads()));
        let mut fence = lwsync;
        fence.union_in_place(&view.fence_rel(Fence::Sync));
        if self.transactional {
            fence.union_in_place(&view.tfence());
        }
        fence
    }

    /// Intra-thread happens-before: `ihb = ppo ∪ fence`.
    pub fn ihb(&self, exec: &Execution) -> Relation {
        self.ihb_view(&ExecView::new(exec))
    }

    /// [`PowerModel::ihb`] over a memoized view.
    pub fn ihb_view(&self, view: &ExecView<'_>) -> Relation {
        let mut ihb = self.ppo_view(view);
        ihb.union_in_place(&self.fence_view(view));
        ihb
    }

    /// The transactional happens-before relation `thb` (only meaningful for
    /// the transactional model):
    /// `thb = (rfe ∪ ((fre ∪ coe)* ; ihb))* ; (fre ∪ coe)* ; rfe?`.
    pub fn thb(&self, exec: &Execution) -> Relation {
        self.thb_view(&ExecView::new(exec))
    }

    /// [`PowerModel::thb`] over a memoized view.
    pub fn thb_view(&self, view: &ExecView<'_>) -> Relation {
        let ihb = self.ihb_view(view);
        let mut fre_coe = view.fre().into_owned();
        fre_coe.union_in_place(&view.coe());
        let fre_coe_star = fre_coe.reflexive_transitive_closure();
        let mut step = fre_coe_star.compose(&ihb);
        step.union_in_place(&view.rfe());
        step.reflexive_transitive_closure()
            .compose(&fre_coe_star)
            .compose(&view.rfe().reflexive_closure())
    }

    /// The happens-before relation of Fig. 6:
    /// `hb = (rfe? ; ihb ; rfe?) ∪ weaklift(thb, stxn)` (the lifted part only
    /// with TM enabled).
    pub fn hb(&self, exec: &Execution) -> Relation {
        self.hb_view(&ExecView::new(exec))
    }

    /// [`PowerModel::hb`] over a memoized view.
    pub fn hb_view(&self, view: &ExecView<'_>) -> Relation {
        let ihb = self.ihb_view(view);
        let rfe_q = view.rfe().reflexive_closure();
        let mut hb = rfe_q.compose(&ihb).compose(&rfe_q);
        if self.transactional {
            hb.union_in_place(&Execution::weaklift(
                &self.thb_view(view),
                &view.exec().stxn,
            ));
        }
        hb
    }

    /// The propagation relation of Fig. 6 (including `tprop1`/`tprop2` when
    /// TM is enabled).
    pub fn prop(&self, exec: &Execution) -> Relation {
        self.prop_view(&ExecView::new(exec))
    }

    /// [`PowerModel::prop`] over a memoized view.
    pub fn prop_view(&self, view: &ExecView<'_>) -> Relation {
        let exec = view.exec();
        let fence = self.fence_view(view);
        let hb_star = self.hb_view(view).reflexive_transitive_closure();
        let rfe_q = view.rfe().reflexive_closure();
        let efence = rfe_q.compose(&fence).compose(&rfe_q);
        let id_w = view.id_writes();

        let prop1 = id_w.compose(&efence).compose(&hb_star).compose(&id_w);

        let mut strong_fence = view.fence_rel(Fence::Sync).into_owned();
        if self.transactional {
            strong_fence.union_in_place(&view.tfence());
        }
        let prop2 = view
            .come()
            .reflexive_transitive_closure()
            .compose(&efence.reflexive_transitive_closure())
            .compose(&hb_star)
            .compose(&strong_fence)
            .compose(&hb_star);

        let mut prop = prop1;
        prop.union_in_place(&prop2);
        if self.transactional {
            let tprop1 = view.rfe().compose(&exec.stxn).compose(&id_w);
            let tprop2 = exec.stxn.compose(&view.rfe());
            prop.union_in_place(&tprop1);
            prop.union_in_place(&tprop2);
        }
        prop
    }
}

impl MemoryModel for PowerModel {
    fn name(&self) -> &str {
        if self.transactional {
            "Power+TM"
        } else {
            "Power"
        }
    }

    fn axioms(&self) -> Vec<&str> {
        let mut axioms = vec![
            "Coherence",
            "RMWIsol",
            "Order",
            "Propagation",
            "Observation",
        ];
        if self.transactional {
            axioms.extend(["StrongIsol", "TxnOrder", "TxnCancelsRMW"]);
        }
        if self.cr_order {
            axioms.push("CROrder");
        }
        axioms
    }

    fn check_view(&self, view: &ExecView<'_>) -> Verdict {
        crate::ir::check_table(
            crate::ir::catalog().model(self.target()),
            self.cr_order,
            view,
        )
    }

    fn is_consistent_view(&self, view: &ExecView<'_>) -> bool {
        crate::ir::table_holds(
            crate::ir::catalog().model(self.target()),
            self.cr_order,
            view,
        )
    }
    fn catalog_target(&self) -> Option<(crate::Target, bool)> {
        Some((self.target(), self.cr_order))
    }

    fn incremental_checker(&self) -> Option<Box<dyn crate::DeltaChecker + '_>> {
        Some(Box::new(crate::ir::TargetChecker::new(
            self.target(),
            self.cr_order,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_exec::{catalog, Event, ExecutionBuilder};

    #[test]
    fn baseline_allows_the_classic_power_relaxations() {
        let m = PowerModel::baseline();
        assert!(m.is_consistent(&catalog::sb()));
        assert!(m.is_consistent(&catalog::mp()));
        assert!(m.is_consistent(&catalog::lb()));
        assert!(m.is_consistent(&catalog::wrc()));
        assert!(m.is_consistent(&catalog::iriw()));
    }

    #[test]
    fn mp_with_lwsync_and_addr_is_forbidden() {
        let mut b = ExecutionBuilder::new();
        let wx = b.push(Event::write(0, 0));
        b.push(Event::fence(0, Fence::Lwsync));
        let wy = b.push(Event::write(0, 1));
        let ry = b.push(Event::read(1, 1));
        let rx = b.push(Event::read(1, 0));
        b.rf(wy, ry);
        b.addr(ry, rx);
        let e = b.build().unwrap();
        let _ = (wx, rx);
        let verdict = PowerModel::baseline().check(&e);
        assert!(verdict.violates("Observation"), "{verdict}");
    }

    #[test]
    fn sb_with_syncs_is_forbidden() {
        let mut b = ExecutionBuilder::new();
        b.push(Event::write(0, 0));
        b.push(Event::fence(0, Fence::Sync));
        b.push(Event::read(0, 1));
        b.push(Event::write(1, 1));
        b.push(Event::fence(1, Fence::Sync));
        b.push(Event::read(1, 0));
        let e = b.build().unwrap();
        assert!(!PowerModel::baseline().is_consistent(&e));
    }

    #[test]
    fn paper_power_executions_get_the_paper_verdicts() {
        // Execution (1): forbidden with the transaction, allowed without TM
        // semantics (§5.2, "Barriers within Transactions").
        let e1 = catalog::power_wrc_tprop1();
        assert!(PowerModel::baseline().is_consistent(&e1));
        let verdict = PowerModel::tm().check(&e1);
        assert!(verdict.violates("Observation"), "{verdict}");

        // Execution (2): transactional writes are multicopy-atomic.
        let e2 = catalog::power_wrc_tprop2();
        assert!(PowerModel::baseline().is_consistent(&e2));
        assert!(!PowerModel::tm().is_consistent(&e2));

        // Execution (3): incompatible transaction serialisation orders.
        let e3 = catalog::power_iriw_two_txns();
        assert!(PowerModel::baseline().is_consistent(&e3));
        let verdict = PowerModel::tm().check(&e3);
        assert!(verdict.violates("Order"), "{verdict}");

        // The one-transaction variant was observed on hardware and must stay
        // allowed.
        assert!(PowerModel::tm().is_consistent(&catalog::power_iriw_one_txn()));
    }

    #[test]
    fn remark_5_1_executions_are_permitted() {
        assert!(PowerModel::tm().is_consistent(&catalog::remark_5_1_first()));
        assert!(PowerModel::tm().is_consistent(&catalog::remark_5_1_second()));
    }

    #[test]
    fn transactional_classics_are_forbidden() {
        let m = PowerModel::tm();
        assert!(!m.is_consistent(&catalog::sb_txn()));
        assert!(!m.is_consistent(&catalog::mp_txn()));
        assert!(!m.is_consistent(&catalog::lb_txn()));
        assert!(!m.is_consistent(&catalog::fig2()));
        for which in ['a', 'b', 'c', 'd'] {
            assert!(!m.is_consistent(&catalog::fig3(which)));
        }
    }

    #[test]
    fn txn_cancels_rmw_detects_straddling_rmw() {
        let split = catalog::monotonicity_cex_split();
        let verdict = PowerModel::tm().check(&split);
        assert!(verdict.violates("TxnCancelsRMW"), "{verdict}");
        assert!(PowerModel::tm().is_consistent(&catalog::monotonicity_cex_coalesced()));
    }

    #[test]
    fn dongol_example_is_forbidden_by_our_stronger_model() {
        // §9: Dongol et al.'s Power model allows this, ours forbids it,
        // which is what makes the C++ compilation mapping sound.
        let verdict = PowerModel::tm().check(&catalog::dongol_mp_txn());
        assert!(!verdict.is_consistent());
    }

    #[test]
    fn tm_model_agrees_with_baseline_on_plain_executions() {
        for e in [
            catalog::sb(),
            catalog::mp(),
            catalog::lb(),
            catalog::wrc(),
            catalog::iriw(),
            catalog::sb_mfence(),
        ] {
            assert_eq!(
                PowerModel::baseline().is_consistent(&e),
                PowerModel::tm().is_consistent(&e)
            );
        }
    }

    #[test]
    fn cr_order_is_opt_in() {
        let abstract_exec = catalog::fig10_abstract();
        assert!(PowerModel::tm().is_consistent(&abstract_exec));
        assert!(!PowerModel::tm()
            .with_cr_order()
            .is_consistent(&abstract_exec));
    }
}

//! Property-based tests for the relation algebra.
//!
//! The harness is a small deterministic PRNG (xorshift64*) driving randomised
//! cases, so the crate stays dependency-free; every failure reports the seed
//! of the offending case, which reproduces it exactly.

use tm_relation::{ElemSet, Relation};

const N: usize = 8;
const CASES: u64 = 300;

struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(seed.wrapping_mul(2685821657736338717).max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }

    fn relation(&mut self) -> Relation {
        let pairs = self.below(24);
        Relation::from_pairs(N, (0..pairs).map(|_| (self.below(N), self.below(N))))
    }

    fn set(&mut self) -> ElemSet {
        let members = self.below(N + 1);
        ElemSet::from_iter(N, (0..members).map(|_| self.below(N)))
    }

    /// A relation over a universe spanning several words, to exercise the
    /// multi-word paths of the closure and composition kernels.
    fn wide_relation(&mut self) -> Relation {
        let n = 70;
        let pairs = self.below(60);
        Relation::from_pairs(n, (0..pairs).map(|_| (self.below(n), self.below(n))))
    }
}

/// Runs `body` on `CASES` seeded random cases, reporting the seed on failure.
fn for_cases(body: impl Fn(&mut Gen)) {
    for seed in 1..=CASES {
        let mut gen = Gen::new(seed);
        body(&mut gen);
    }
}

macro_rules! check {
    ($seed:expr, $cond:expr) => {{
        assert!(
            $cond,
            "property failed for seed {} ({})",
            $seed,
            stringify!($cond)
        );
    }};
}

#[test]
fn union_and_intersection_are_commutative() {
    for_cases(|g| {
        let seed = g.0;
        let (a, b) = (g.relation(), g.relation());
        check!(seed, a.union(&b) == b.union(&a));
        check!(seed, a.intersection(&b) == b.intersection(&a));
    });
}

#[test]
fn union_is_associative() {
    for_cases(|g| {
        let seed = g.0;
        let (a, b, c) = (g.relation(), g.relation(), g.relation());
        check!(seed, a.union(&b).union(&c) == a.union(&b.union(&c)));
    });
}

#[test]
fn composition_is_associative() {
    for_cases(|g| {
        let seed = g.0;
        let (a, b, c) = (g.relation(), g.relation(), g.relation());
        check!(seed, a.compose(&b).compose(&c) == a.compose(&b.compose(&c)));
    });
}

#[test]
fn identity_is_composition_unit() {
    for_cases(|g| {
        let seed = g.0;
        let a = g.relation();
        let id = Relation::identity(N);
        check!(seed, a.compose(&id) == a);
        check!(seed, id.compose(&a) == a);
    });
}

#[test]
fn inverse_is_involutive_and_antidistributes() {
    for_cases(|g| {
        let seed = g.0;
        let (a, b) = (g.relation(), g.relation());
        check!(seed, a.inverse().inverse() == a);
        // (a ; b)⁻¹ = b⁻¹ ; a⁻¹
        check!(
            seed,
            a.compose(&b).inverse() == b.inverse().compose(&a.inverse())
        );
    });
}

#[test]
fn transitive_closure_is_transitive_and_contains() {
    for_cases(|g| {
        let seed = g.0;
        let a = g.relation();
        let plus = a.transitive_closure();
        check!(seed, a.is_subset_of(&plus));
        check!(seed, plus.compose(&plus).is_subset_of(&plus));
        check!(seed, plus.transitive_closure() == plus);
    });
}

#[test]
fn rtc_contains_identity() {
    for_cases(|g| {
        let seed = g.0;
        let a = g.relation();
        let star = a.reflexive_transitive_closure();
        check!(seed, Relation::identity(N).is_subset_of(&star));
        check!(seed, a.is_subset_of(&star));
    });
}

#[test]
fn acyclic_iff_closure_irreflexive() {
    for_cases(|g| {
        let seed = g.0;
        let a = g.relation();
        check!(
            seed,
            a.is_acyclic() == a.transitive_closure().is_irreflexive()
        );
    });
}

#[test]
fn find_cycle_agrees_with_is_acyclic() {
    for_cases(|g| {
        let seed = g.0;
        let a = g.relation();
        match a.find_cycle() {
            None => check!(seed, a.is_acyclic()),
            Some(cycle) => {
                check!(seed, !a.is_acyclic());
                check!(seed, !cycle.is_empty());
                for w in cycle.windows(2) {
                    check!(seed, a.contains(w[0], w[1]));
                }
                check!(seed, a.contains(*cycle.last().unwrap(), cycle[0]));
            }
        }
    });
}

#[test]
fn de_morgan_and_difference_laws() {
    for_cases(|g| {
        let seed = g.0;
        let (a, b) = (g.relation(), g.relation());
        check!(
            seed,
            a.union(&b).complement() == a.complement().intersection(&b.complement())
        );
        check!(seed, a.difference(&b) == a.intersection(&b.complement()));
    });
}

#[test]
fn restriction_via_identity_lift() {
    for_cases(|g| {
        let seed = g.0;
        let (a, s) = (g.relation(), g.set());
        // [S] ; r ; [S] == restrict(r, S)
        let id = Relation::identity_on(&s);
        check!(seed, id.compose(&a).compose(&id) == a.restrict(&s));
    });
}

#[test]
fn domain_range_consistent_with_pairs() {
    for_cases(|g| {
        let seed = g.0;
        let a = g.relation();
        for (x, y) in a.iter() {
            check!(seed, a.domain().contains(x));
            check!(seed, a.range().contains(y));
        }
        check!(seed, a.domain().is_empty() == a.is_empty());
    });
}

#[test]
fn without_elem_removes_all_incident() {
    for_cases(|g| {
        let seed = g.0;
        let a = g.relation();
        let e = g.below(N);
        let out = a.without_elem(e);
        for (x, y) in out.iter() {
            check!(seed, x != e && y != e);
        }
        check!(seed, out.is_subset_of(&a));
    });
}

#[test]
fn set_algebra_laws() {
    for_cases(|g| {
        let seed = g.0;
        let (a, b) = (g.set(), g.set());
        check!(
            seed,
            a.union(&b).len() == a.len() + b.len() - a.intersection(&b).len()
        );
        check!(seed, a.intersection(&b).is_subset_of(&a));
        check!(seed, a.is_subset_of(&a.union(&b)));
        check!(seed, a.difference(&b).is_disjoint_from(&b));
    });
}

// ---- fast kernels agree with their naive oracles ------------------------

#[test]
fn compose_into_agrees_with_naive_compose() {
    for_cases(|g| {
        let seed = g.0;
        let (a, b) = (g.relation(), g.relation());
        let naive = a.compose_naive(&b);
        check!(seed, a.compose(&b) == naive);
        let mut out = Relation::new(N);
        a.compose_into(&b, &mut out);
        check!(seed, out == naive);
        // A dirty scratch relation must be cleared, not accumulated into.
        let mut dirty = Relation::from_pairs(N, [(0, 0), (3, 4)]);
        a.compose_into(&b, &mut dirty);
        check!(seed, dirty == naive);
    });
}

#[test]
fn fast_closure_agrees_with_fixpoint_closure() {
    for_cases(|g| {
        let seed = g.0;
        let a = g.relation();
        let naive = a.transitive_closure_naive();
        check!(seed, a.transitive_closure() == naive);
        let mut in_place = a.clone();
        in_place.transitive_closure_in_place();
        check!(seed, in_place == naive);
    });
}

#[test]
fn fast_kernels_agree_on_multi_word_universes() {
    for_cases(|g| {
        let seed = g.0;
        let a = g.wide_relation();
        let b = g.wide_relation();
        check!(seed, a.compose(&b) == a.compose_naive(&b));
        check!(seed, a.transitive_closure() == a.transitive_closure_naive());
    });
}

#[test]
fn in_place_boolean_ops_agree_with_allocating_ops() {
    for_cases(|g| {
        let seed = g.0;
        let (a, b) = (g.relation(), g.relation());
        let mut u = a.clone();
        u.union_in_place(&b);
        check!(seed, u == a.union(&b));
        let mut i = a.clone();
        i.intersect_in_place(&b);
        check!(seed, i == a.intersection(&b));
        let mut d = a.clone();
        d.difference_in_place(&b);
        check!(seed, d == a.difference(&b));
        let mut c = a.clone();
        c.clear();
        check!(seed, c.is_empty());
    });
}

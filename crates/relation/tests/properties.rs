//! Property-based tests for the relation algebra.

use proptest::prelude::*;
use tm_relation::{ElemSet, Relation};

const N: usize = 8;

fn arb_relation() -> impl Strategy<Value = Relation> {
    proptest::collection::vec((0..N, 0..N), 0..24)
        .prop_map(|pairs| Relation::from_pairs(N, pairs))
}

fn arb_set() -> impl Strategy<Value = ElemSet> {
    proptest::collection::vec(0..N, 0..N).prop_map(|elems| ElemSet::from_iter(N, elems))
}

proptest! {
    #[test]
    fn union_is_commutative(a in arb_relation(), b in arb_relation()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
    }

    #[test]
    fn intersection_is_commutative(a in arb_relation(), b in arb_relation()) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
    }

    #[test]
    fn union_is_associative(a in arb_relation(), b in arb_relation(), c in arb_relation()) {
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
    }

    #[test]
    fn composition_is_associative(a in arb_relation(), b in arb_relation(), c in arb_relation()) {
        prop_assert_eq!(a.compose(&b).compose(&c), a.compose(&b.compose(&c)));
    }

    #[test]
    fn identity_is_composition_unit(a in arb_relation()) {
        let id = Relation::identity(N);
        prop_assert_eq!(a.compose(&id), a.clone());
        prop_assert_eq!(id.compose(&a), a);
    }

    #[test]
    fn inverse_is_involutive(a in arb_relation()) {
        prop_assert_eq!(a.inverse().inverse(), a);
    }

    #[test]
    fn inverse_distributes_over_composition(a in arb_relation(), b in arb_relation()) {
        // (a ; b)⁻¹ = b⁻¹ ; a⁻¹
        prop_assert_eq!(a.compose(&b).inverse(), b.inverse().compose(&a.inverse()));
    }

    #[test]
    fn transitive_closure_is_transitive_and_contains(a in arb_relation()) {
        let plus = a.transitive_closure();
        prop_assert!(a.is_subset_of(&plus));
        prop_assert!(plus.compose(&plus).is_subset_of(&plus));
        // Idempotence of closure.
        prop_assert_eq!(plus.transitive_closure(), plus);
    }

    #[test]
    fn rtc_contains_identity(a in arb_relation()) {
        let star = a.reflexive_transitive_closure();
        prop_assert!(Relation::identity(N).is_subset_of(&star));
        prop_assert!(a.is_subset_of(&star));
    }

    #[test]
    fn acyclic_iff_closure_irreflexive(a in arb_relation()) {
        prop_assert_eq!(a.is_acyclic(), a.transitive_closure().is_irreflexive());
    }

    #[test]
    fn find_cycle_agrees_with_is_acyclic(a in arb_relation()) {
        match a.find_cycle() {
            None => prop_assert!(a.is_acyclic()),
            Some(cycle) => {
                prop_assert!(!a.is_acyclic());
                prop_assert!(!cycle.is_empty());
                for w in cycle.windows(2) {
                    prop_assert!(a.contains(w[0], w[1]));
                }
                prop_assert!(a.contains(*cycle.last().unwrap(), cycle[0]));
            }
        }
    }

    #[test]
    fn de_morgan_for_relations(a in arb_relation(), b in arb_relation()) {
        prop_assert_eq!(
            a.union(&b).complement(),
            a.complement().intersection(&b.complement())
        );
    }

    #[test]
    fn difference_is_intersection_with_complement(a in arb_relation(), b in arb_relation()) {
        prop_assert_eq!(a.difference(&b), a.intersection(&b.complement()));
    }

    #[test]
    fn restriction_via_identity_lift(a in arb_relation(), s in arb_set()) {
        // [S] ; r ; [S] == restrict(r, S)
        let id = Relation::identity_on(&s);
        prop_assert_eq!(id.compose(&a).compose(&id), a.restrict(&s));
    }

    #[test]
    fn domain_range_consistent_with_pairs(a in arb_relation()) {
        for (x, y) in a.iter() {
            prop_assert!(a.domain().contains(x));
            prop_assert!(a.range().contains(y));
        }
        prop_assert_eq!(a.domain().is_empty(), a.is_empty());
    }

    #[test]
    fn without_elem_removes_all_incident(a in arb_relation(), e in 0..N) {
        let out = a.without_elem(e);
        for (x, y) in out.iter() {
            prop_assert!(x != e && y != e);
        }
        prop_assert!(out.is_subset_of(&a));
    }

    #[test]
    fn set_algebra_laws(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(a.union(&b).len(), a.len() + b.len() - a.intersection(&b).len());
        prop_assert!(a.intersection(&b).is_subset_of(&a));
        prop_assert!(a.is_subset_of(&a.union(&b)));
        prop_assert!(a.difference(&b).is_disjoint_from(&b));
    }
}

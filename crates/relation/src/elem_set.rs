//! Bit-packed sets of elements drawn from a dense universe `0..n`.

use std::fmt;

const BITS: usize = 64;

/// A set of elements drawn from the dense universe `0..n`.
///
/// All set operations require both operands to share the same universe size;
/// mixing universes is a logic error and panics in debug builds.
///
/// # Examples
///
/// ```
/// use tm_relation::ElemSet;
///
/// let reads = ElemSet::from_iter(6, [1, 3, 5]);
/// let writes = ElemSet::from_iter(6, [0, 3]);
/// let both = reads.intersection(&writes);
/// assert_eq!(both.iter().collect::<Vec<_>>(), vec![3]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ElemSet {
    universe: usize,
    words: Vec<u64>,
}

impl ElemSet {
    /// Creates an empty set over the universe `0..universe`.
    pub fn new(universe: usize) -> Self {
        ElemSet {
            universe,
            words: vec![0; universe.div_ceil(BITS)],
        }
    }

    /// Creates a set containing every element of the universe.
    pub fn full(universe: usize) -> Self {
        let mut s = Self::new(universe);
        for e in 0..universe {
            s.insert(e);
        }
        s
    }

    /// Creates a set over `0..universe` from an iterator of members.
    ///
    /// # Panics
    ///
    /// Panics if any member is `>= universe`.
    pub fn from_iter<I: IntoIterator<Item = usize>>(universe: usize, elems: I) -> Self {
        let mut s = Self::new(universe);
        for e in elems {
            s.insert(e);
        }
        s
    }

    /// Size of the universe this set ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Inserts an element. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `elem >= universe`.
    pub fn insert(&mut self, elem: usize) -> bool {
        assert!(
            elem < self.universe,
            "element {elem} outside universe {}",
            self.universe
        );
        let (w, b) = (elem / BITS, elem % BITS);
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        newly
    }

    /// Removes an element. Returns `true` if it was present.
    pub fn remove(&mut self, elem: usize) -> bool {
        if elem >= self.universe {
            return false;
        }
        let (w, b) = (elem / BITS, elem % BITS);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Returns `true` if `elem` is a member.
    pub fn contains(&self, elem: usize) -> bool {
        if elem >= self.universe {
            return false;
        }
        self.words[elem / BITS] & (1 << (elem % BITS)) != 0
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set has no members.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set union.
    pub fn union(&self, other: &ElemSet) -> ElemSet {
        self.zip_with(other, |a, b| a | b)
    }

    /// Set intersection.
    pub fn intersection(&self, other: &ElemSet) -> ElemSet {
        self.zip_with(other, |a, b| a & b)
    }

    /// Set difference (`self \ other`).
    pub fn difference(&self, other: &ElemSet) -> ElemSet {
        self.zip_with(other, |a, b| a & !b)
    }

    /// Complement with respect to the universe.
    pub fn complement(&self) -> ElemSet {
        let mut out = ElemSet::new(self.universe);
        for e in 0..self.universe {
            if !self.contains(e) {
                out.insert(e);
            }
        }
        out
    }

    /// Returns `true` if every member of `self` is a member of `other`.
    pub fn is_subset_of(&self, other: &ElemSet) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Returns `true` if the two sets share no member.
    pub fn is_disjoint_from(&self, other: &ElemSet) -> bool {
        self.intersection(other).is_empty()
    }

    /// Iterates over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.universe).filter(move |&e| self.contains(e))
    }

    fn zip_with(&self, other: &ElemSet, f: impl Fn(u64, u64) -> u64) -> ElemSet {
        debug_assert_eq!(
            self.universe, other.universe,
            "set operation across different universes"
        );
        ElemSet {
            universe: self.universe,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }
}

impl fmt::Debug for ElemSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for ElemSet {
    /// Builds a set whose universe is one past the largest member (or 0 for
    /// an empty iterator). Prefer [`ElemSet::from_iter`] with an explicit
    /// universe when interoperating with relations.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let elems: Vec<usize> = iter.into_iter().collect();
        let universe = elems.iter().copied().max().map_or(0, |m| m + 1);
        ElemSet::from_iter(universe, elems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = ElemSet::new(10);
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert_eq!(s.len(), 1);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(s.is_empty());
    }

    #[test]
    fn contains_out_of_universe_is_false() {
        let s = ElemSet::from_iter(4, [0, 1]);
        assert!(!s.contains(100));
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_universe_panics() {
        let mut s = ElemSet::new(4);
        s.insert(4);
    }

    #[test]
    fn boolean_algebra() {
        let a = ElemSet::from_iter(8, [0, 1, 2, 5]);
        let b = ElemSet::from_iter(8, [2, 3, 5, 7]);
        assert_eq!(
            a.union(&b).iter().collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 5, 7]
        );
        assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![2, 5]);
        assert_eq!(a.difference(&b).iter().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(a.complement().iter().collect::<Vec<_>>(), vec![3, 4, 6, 7]);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = ElemSet::from_iter(8, [1, 2]);
        let b = ElemSet::from_iter(8, [1, 2, 3]);
        let c = ElemSet::from_iter(8, [5, 6]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_disjoint_from(&c));
        assert!(!a.is_disjoint_from(&b));
    }

    #[test]
    fn full_and_complement_are_inverses() {
        let full = ElemSet::full(70);
        assert_eq!(full.len(), 70);
        assert!(full.complement().is_empty());
    }

    #[test]
    fn from_iterator_trait_infers_universe() {
        let s: ElemSet = [2usize, 4, 9].into_iter().collect();
        assert_eq!(s.universe(), 10);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn works_across_word_boundary() {
        let mut s = ElemSet::new(130);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![63, 64, 129]);
        assert_eq!(s.len(), 3);
    }
}

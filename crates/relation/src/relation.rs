//! Bit-matrix binary relations and the operators of axiomatic memory models.

use std::fmt;

use crate::ElemSet;

const BITS: usize = 64;

/// A binary relation over the dense universe `0..n`, stored as an `n × n`
/// bit matrix (one bit-packed row of successors per element).
///
/// The API mirrors the notation of the paper (§2.1): `;` is [`compose`],
/// `r⁻¹` is [`inverse`], `r?` is [`reflexive_closure`], `r⁺` is
/// [`transitive_closure`], `r*` is [`reflexive_transitive_closure`],
/// `[S]` is [`Relation::identity_on`], and the axiom predicates
/// `acyclic` / `irreflexive` / `empty` are [`is_acyclic`],
/// [`is_irreflexive`] and [`is_empty`].
///
/// [`compose`]: Relation::compose
/// [`inverse`]: Relation::inverse
/// [`reflexive_closure`]: Relation::reflexive_closure
/// [`transitive_closure`]: Relation::transitive_closure
/// [`reflexive_transitive_closure`]: Relation::reflexive_transitive_closure
/// [`is_acyclic`]: Relation::is_acyclic
/// [`is_irreflexive`]: Relation::is_irreflexive
/// [`is_empty`]: Relation::is_empty
///
/// # Examples
///
/// ```
/// use tm_relation::Relation;
///
/// let rf = Relation::from_pairs(4, [(0, 3)]);
/// let po = Relation::from_pairs(4, [(3, 1)]);
/// // rf ; po relates the write 0 to the event 1 after the read 3.
/// assert!(rf.compose(&po).contains(0, 1));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Relation {
    universe: usize,
    words_per_row: usize,
    rows: Vec<u64>,
}

impl Relation {
    /// Creates the empty relation over the universe `0..universe`.
    pub fn new(universe: usize) -> Self {
        let words_per_row = universe.div_ceil(BITS).max(1);
        Relation {
            universe,
            words_per_row,
            rows: vec![0; words_per_row * universe],
        }
    }

    /// Creates a relation from `(source, target)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if any element is `>= universe`.
    pub fn from_pairs<I: IntoIterator<Item = (usize, usize)>>(universe: usize, pairs: I) -> Self {
        let mut r = Self::new(universe);
        for (a, b) in pairs {
            r.insert(a, b);
        }
        r
    }

    /// The identity relation `[S]` restricted to the members of `set`.
    pub fn identity_on(set: &ElemSet) -> Self {
        let mut r = Self::new(set.universe());
        for e in set.iter() {
            r.insert(e, e);
        }
        r
    }

    /// The full identity relation over `0..universe`.
    pub fn identity(universe: usize) -> Self {
        Self::identity_on(&ElemSet::full(universe))
    }

    /// The cartesian product `a × b`.
    pub fn cross(a: &ElemSet, b: &ElemSet) -> Self {
        debug_assert_eq!(a.universe(), b.universe());
        let mut r = Self::new(a.universe());
        for x in a.iter() {
            for y in b.iter() {
                r.insert(x, y);
            }
        }
        r
    }

    /// Size of the universe this relation ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Adds the pair `(a, b)`. Returns `true` if it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is `>= universe`.
    pub fn insert(&mut self, a: usize, b: usize) -> bool {
        assert!(
            a < self.universe && b < self.universe,
            "pair ({a}, {b}) outside universe {}",
            self.universe
        );
        let idx = a * self.words_per_row + b / BITS;
        let mask = 1u64 << (b % BITS);
        let newly = self.rows[idx] & mask == 0;
        self.rows[idx] |= mask;
        newly
    }

    /// Removes the pair `(a, b)`. Returns `true` if it was present.
    pub fn remove(&mut self, a: usize, b: usize) -> bool {
        if a >= self.universe || b >= self.universe {
            return false;
        }
        let idx = a * self.words_per_row + b / BITS;
        let mask = 1u64 << (b % BITS);
        let present = self.rows[idx] & mask != 0;
        self.rows[idx] &= !mask;
        present
    }

    /// Returns `true` if the pair `(a, b)` is in the relation.
    pub fn contains(&self, a: usize, b: usize) -> bool {
        if a >= self.universe || b >= self.universe {
            return false;
        }
        self.rows[a * self.words_per_row + b / BITS] & (1 << (b % BITS)) != 0
    }

    /// Number of pairs in the relation.
    pub fn len(&self) -> usize {
        self.rows.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the relation contains no pair (the `empty(r)`
    /// axiom predicate).
    pub fn is_empty(&self) -> bool {
        self.rows.iter().all(|&w| w == 0)
    }

    /// Iterates over all pairs `(a, b)` in row-major order.
    pub fn iter(&self) -> Pairs<'_> {
        Pairs {
            rel: self,
            a: 0,
            b: 0,
        }
    }

    /// Successors of `a`: every `b` with `(a, b)` in the relation.
    ///
    /// Iterates word by word over the bit-packed row, so sparse rows cost
    /// O(words) rather than O(universe).
    pub fn successors(&self, a: usize) -> impl Iterator<Item = usize> + '_ {
        let row = &self.rows[a * self.words_per_row..(a + 1) * self.words_per_row];
        row.iter().enumerate().flat_map(|(w, &word)| {
            let base = w * BITS;
            std::iter::successors(if word == 0 { None } else { Some(word) }, |&bits| {
                let rest = bits & (bits - 1);
                if rest == 0 {
                    None
                } else {
                    Some(rest)
                }
            })
            .map(move |bits| base + bits.trailing_zeros() as usize)
        })
    }

    /// Predecessors of `b`: every `a` with `(a, b)` in the relation.
    pub fn predecessors(&self, b: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.universe).filter(move |&a| self.contains(a, b))
    }

    /// The set of elements appearing as a source of some pair.
    pub fn domain(&self) -> ElemSet {
        ElemSet::from_iter(self.universe, self.iter().map(|(a, _)| a))
    }

    /// The set of elements appearing as a target of some pair.
    pub fn range(&self) -> ElemSet {
        ElemSet::from_iter(self.universe, self.iter().map(|(_, b)| b))
    }

    /// Union of two relations.
    pub fn union(&self, other: &Relation) -> Relation {
        self.zip_with(other, |a, b| a | b)
    }

    /// In-place union: `self ← self ∪ other`, with no allocation.
    ///
    /// The workhorse of relation assembly on hot paths (models build `hb`,
    /// `ob`, `prop` as unions of many parts; the allocating [`Relation::union`]
    /// clones the row storage every time).
    pub fn union_in_place(&mut self, other: &Relation) {
        debug_assert_eq!(
            self.universe, other.universe,
            "relation operation across different universes"
        );
        for (a, b) in self.rows.iter_mut().zip(&other.rows) {
            *a |= b;
        }
    }

    /// In-place intersection: `self ← self ∩ other`, with no allocation.
    pub fn intersect_in_place(&mut self, other: &Relation) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, b) in self.rows.iter_mut().zip(&other.rows) {
            *a &= b;
        }
    }

    /// In-place difference: `self ← self \ other`, with no allocation.
    pub fn difference_in_place(&mut self, other: &Relation) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, b) in self.rows.iter_mut().zip(&other.rows) {
            *a &= !b;
        }
    }

    /// Removes every pair: the relation becomes empty (storage is kept).
    pub fn clear(&mut self) {
        self.rows.fill(0);
    }

    /// Intersection of two relations.
    pub fn intersection(&self, other: &Relation) -> Relation {
        self.zip_with(other, |a, b| a & b)
    }

    /// Difference (`self \ other`).
    pub fn difference(&self, other: &Relation) -> Relation {
        self.zip_with(other, |a, b| a & !b)
    }

    /// Complement with respect to all pairs of the universe.
    pub fn complement(&self) -> Relation {
        // Word-level: negate each row, masking off the bits past the
        // universe boundary in the last word.
        let mut out = self.clone();
        let tail_bits = self.universe % BITS;
        let tail_mask = if tail_bits == 0 {
            u64::MAX
        } else {
            (1u64 << tail_bits) - 1
        };
        for a in 0..self.universe {
            let base = a * self.words_per_row;
            for w in 0..self.words_per_row {
                let full = (w + 1) * BITS <= self.universe;
                let mask = if full { u64::MAX } else { tail_mask };
                out.rows[base + w] = !self.rows[base + w] & mask;
            }
        }
        out
    }

    /// The inverse relation `r⁻¹`.
    pub fn inverse(&self) -> Relation {
        let mut out = Relation::new(self.universe);
        for (a, b) in self.iter() {
            out.insert(b, a);
        }
        out
    }

    /// Relational composition `self ; other`.
    pub fn compose(&self, other: &Relation) -> Relation {
        let mut out = Relation::new(self.universe);
        self.compose_into(other, &mut out);
        out
    }

    /// Allocation-free relational composition: `out ← self ; other`.
    ///
    /// `out` is cleared first, so it can be a scratch relation reused across
    /// calls. Word-level: for every `b` in row `a` of `self`, row `b` of
    /// `other` is OR-ed into row `a` of `out`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the three universes differ.
    pub fn compose_into(&self, other: &Relation, out: &mut Relation) {
        debug_assert_eq!(self.universe, other.universe);
        debug_assert_eq!(self.universe, out.universe);
        out.clear();
        let w = self.words_per_row;
        for a in 0..self.universe {
            let dst_base = a * w;
            for (wi, &word) in self.rows[a * w..(a + 1) * w].iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let b = wi * BITS + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let src_base = b * w;
                    for j in 0..w {
                        out.rows[dst_base + j] |= other.rows[src_base + j];
                    }
                }
            }
        }
    }

    /// Reference composition by the textbook triple loop, kept as an oracle
    /// for the word-level [`Relation::compose_into`] fast path.
    pub fn compose_naive(&self, other: &Relation) -> Relation {
        debug_assert_eq!(self.universe, other.universe);
        let mut out = Relation::new(self.universe);
        for a in 0..self.universe {
            for b in 0..self.universe {
                if !self.contains(a, b) {
                    continue;
                }
                for c in 0..self.universe {
                    if other.contains(b, c) {
                        out.insert(a, c);
                    }
                }
            }
        }
        out
    }

    /// Reflexive closure `r?` (adds the identity on the whole universe).
    pub fn reflexive_closure(&self) -> Relation {
        self.union(&Relation::identity(self.universe))
    }

    /// Transitive closure `r⁺`.
    pub fn transitive_closure(&self) -> Relation {
        let mut out = self.clone();
        out.transitive_closure_in_place();
        out
    }

    /// In-place transitive closure by word-level Floyd–Warshall, with no
    /// allocation beyond the relation itself.
    ///
    /// Two prunes keep litmus-sized closures cheap: a pivot `k` whose row is
    /// empty contributes nothing and is skipped outright, and within a pivot
    /// only rows with the `(a, k)` bit set are touched (checked by direct
    /// word indexing rather than a full `contains`). Rows are split with
    /// `split_at_mut` so the pivot row is OR-ed in without being copied.
    pub fn transitive_closure_in_place(&mut self) {
        let n = self.universe;
        let w = self.words_per_row;
        for k in 0..n {
            let k_base = k * w;
            if self.rows[k_base..k_base + w].iter().all(|&x| x == 0) {
                continue;
            }
            let (kw, kb) = (k / BITS, 1u64 << (k % BITS));
            for a in 0..n {
                if a == k || self.rows[a * w + kw] & kb == 0 {
                    continue;
                }
                let a_base = a * w;
                // Borrow the pivot row and row `a` disjointly (a != k).
                let (lo, hi) = self.rows.split_at_mut(a_base.max(k_base));
                let (dst, src) = if a_base < k_base {
                    (&mut lo[a_base..a_base + w], &hi[..w])
                } else {
                    (&mut hi[..w], &lo[k_base..k_base + w])
                };
                for (d, s) in dst.iter_mut().zip(src) {
                    *d |= s;
                }
            }
        }
    }

    /// Reference transitive closure by fixpoint iteration
    /// (`r ∪ r;r ∪ r;r;r ∪ …` until nothing changes, with an early exit on
    /// stabilisation), kept as an oracle for
    /// [`Relation::transitive_closure_in_place`].
    pub fn transitive_closure_naive(&self) -> Relation {
        let mut acc = self.clone();
        loop {
            let step = acc.compose_naive(self);
            let next = acc.union(&step);
            if next == acc {
                return acc;
            }
            acc = next;
        }
    }

    /// Reflexive-transitive closure `r*`.
    pub fn reflexive_transitive_closure(&self) -> Relation {
        self.transitive_closure().reflexive_closure()
    }

    /// Returns `true` if no pair `(a, a)` is in the relation (the
    /// `irreflexive(r)` axiom predicate).
    pub fn is_irreflexive(&self) -> bool {
        (0..self.universe).all(|a| !self.contains(a, a))
    }

    /// The smallest successor of `a` that is `>= from`, found by scanning
    /// the bit-packed row word by word (no allocation).
    fn next_successor(&self, a: usize, from: usize) -> Option<usize> {
        if from >= self.universe {
            return None;
        }
        let row = &self.rows[a * self.words_per_row..(a + 1) * self.words_per_row];
        let mut wi = from / BITS;
        let mut word = row[wi] & (u64::MAX << (from % BITS));
        loop {
            if word != 0 {
                return Some(wi * BITS + word.trailing_zeros() as usize);
            }
            wi += 1;
            if wi >= row.len() {
                return None;
            }
            word = row[wi];
        }
    }

    /// Returns `true` if the relation has no cycle (the `acyclic(r)` axiom
    /// predicate), i.e. its transitive closure is irreflexive.
    pub fn is_acyclic(&self) -> bool {
        // Iterative DFS with colouring; successor rows are scanned in place
        // through a per-frame cursor, so no per-node allocation happens.
        let n = self.universe;
        let mut state = vec![0u8; n]; // 0 white, 1 grey, 2 black
        let mut stack: Vec<(usize, usize)> = Vec::with_capacity(n); // (node, cursor)
        for start in 0..n {
            if state[start] != 0 {
                continue;
            }
            stack.push((start, 0));
            state[start] = 1;
            while let Some(frame) = stack.last_mut() {
                let node = frame.0;
                match self.next_successor(node, frame.1) {
                    Some(next) => {
                        frame.1 = next + 1;
                        match state[next] {
                            1 => return false,
                            0 => {
                                state[next] = 1;
                                stack.push((next, 0));
                            }
                            _ => {}
                        }
                    }
                    None => {
                        state[node] = 2;
                        stack.pop();
                    }
                }
            }
        }
        true
    }

    /// Returns one cycle (as a sequence of elements, first == last) if the
    /// relation has one, for diagnostics. Returns `None` if acyclic.
    pub fn find_cycle(&self) -> Option<Vec<usize>> {
        let n = self.universe;
        let mut state = vec![0u8; n]; // 0 white, 1 grey, 2 black
        let mut parent = vec![usize::MAX; n];
        let mut stack: Vec<(usize, usize)> = Vec::with_capacity(n); // (node, cursor)
        for start in 0..n {
            if state[start] != 0 {
                continue;
            }
            stack.push((start, 0));
            state[start] = 1;
            while let Some(frame) = stack.last_mut() {
                let node = frame.0;
                match self.next_successor(node, frame.1) {
                    Some(next) => {
                        frame.1 = next + 1;
                        if state[next] == 1 {
                            // Found a back edge node -> next. The cycle is
                            // the tree path next -> ... -> node plus that
                            // back edge.
                            let mut path = vec![node];
                            let mut cur = node;
                            while cur != next {
                                cur = parent[cur];
                                if cur == usize::MAX {
                                    break;
                                }
                                path.push(cur);
                            }
                            path.reverse();
                            return Some(path);
                        }
                        if state[next] == 0 {
                            state[next] = 1;
                            parent[next] = node;
                            stack.push((next, 0));
                        }
                    }
                    None => {
                        state[node] = 2;
                        stack.pop();
                    }
                }
            }
        }
        None
    }

    /// Returns `true` if every pair of `self` is also in `other`.
    pub fn is_subset_of(&self, other: &Relation) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        self.rows.iter().zip(&other.rows).all(|(a, b)| a & !b == 0)
    }

    /// Restricts the relation to pairs whose source is in `set`
    /// (`[set] ; r`).
    pub fn restrict_domain(&self, set: &ElemSet) -> Relation {
        Relation::identity_on(set).compose(self)
    }

    /// Restricts the relation to pairs whose target is in `set`
    /// (`r ; [set]`).
    pub fn restrict_range(&self, set: &ElemSet) -> Relation {
        self.compose(&Relation::identity_on(set))
    }

    /// Restricts to pairs with both endpoints in `set`.
    pub fn restrict(&self, set: &ElemSet) -> Relation {
        self.restrict_domain(set).restrict_range(set)
    }

    /// Removes every pair incident on `elem` (used when deleting an event
    /// during execution weakening, §4.2(i)).
    pub fn without_elem(&self, elem: usize) -> Relation {
        let mut out = self.clone();
        for x in 0..self.universe {
            out.remove(elem, x);
            out.remove(x, elem);
        }
        out
    }

    /// Re-indexes the relation through `map`: pair `(a, b)` becomes
    /// `(map[a], map[b])` in a relation over `new_universe`; entries mapped
    /// to `None` are dropped. Used to compact executions after removing
    /// events.
    pub fn reindex(&self, map: &[Option<usize>], new_universe: usize) -> Relation {
        let mut out = Relation::new(new_universe);
        for (a, b) in self.iter() {
            if let (Some(na), Some(nb)) = (map[a], map[b]) {
                out.insert(na, nb);
            }
        }
        out
    }

    fn zip_with(&self, other: &Relation, f: impl Fn(u64, u64) -> u64) -> Relation {
        debug_assert_eq!(
            self.universe, other.universe,
            "relation operation across different universes"
        );
        Relation {
            universe: self.universe,
            words_per_row: self.words_per_row,
            rows: self
                .rows
                .iter()
                .zip(&other.rows)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over the pairs of a [`Relation`], produced by [`Relation::iter`].
pub struct Pairs<'a> {
    rel: &'a Relation,
    a: usize,
    b: usize,
}

impl Iterator for Pairs<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        while self.a < self.rel.universe {
            while self.b < self.rel.universe {
                let (a, b) = (self.a, self.b);
                self.b += 1;
                if self.rel.contains(a, b) {
                    return Some((a, b));
                }
            }
            self.a += 1;
            self.b = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut r = Relation::new(4);
        assert!(r.insert(1, 2));
        assert!(!r.insert(1, 2));
        assert!(r.contains(1, 2));
        assert!(!r.contains(2, 1));
        assert_eq!(r.len(), 1);
        assert!(r.remove(1, 2));
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_universe_panics() {
        Relation::new(3).insert(0, 3);
    }

    #[test]
    fn compose_matches_definition() {
        let r1 = Relation::from_pairs(5, [(0, 1), (0, 2), (3, 4)]);
        let r2 = Relation::from_pairs(5, [(1, 4), (2, 3)]);
        let c = r1.compose(&r2);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![(0, 3), (0, 4)]);
    }

    #[test]
    fn inverse_and_identity() {
        let r = Relation::from_pairs(3, [(0, 2), (1, 2)]);
        let inv = r.inverse();
        assert!(inv.contains(2, 0) && inv.contains(2, 1));
        assert_eq!(inv.inverse(), r);
        let id = Relation::identity(3);
        assert_eq!(r.compose(&id), r);
        assert_eq!(id.compose(&r), r);
    }

    #[test]
    fn closures() {
        let r = Relation::from_pairs(4, [(0, 1), (1, 2), (2, 3)]);
        let plus = r.transitive_closure();
        assert!(plus.contains(0, 3));
        assert!(!plus.contains(0, 0));
        let star = r.reflexive_transitive_closure();
        assert!(star.contains(0, 0) && star.contains(3, 3) && star.contains(0, 3));
        let q = r.reflexive_closure();
        assert!(q.contains(2, 2) && q.contains(0, 1) && !q.contains(0, 2));
    }

    #[test]
    fn acyclicity_and_cycle_finding() {
        let dag = Relation::from_pairs(5, [(0, 1), (1, 2), (0, 3), (3, 4)]);
        assert!(dag.is_acyclic());
        assert!(dag.find_cycle().is_none());

        let cyc = Relation::from_pairs(4, [(0, 1), (1, 2), (2, 0)]);
        assert!(!cyc.is_acyclic());
        let cycle = cyc.find_cycle().expect("cycle must be found");
        assert!(cycle.len() >= 2);
        // Every consecutive pair in the reported cycle is an edge, and it wraps.
        for w in cycle.windows(2) {
            assert!(cyc.contains(w[0], w[1]), "cycle edge {:?} missing", w);
        }
        assert!(cyc.contains(*cycle.last().unwrap(), cycle[0]));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let r = Relation::from_pairs(2, [(1, 1)]);
        assert!(!r.is_acyclic());
        assert!(!r.is_irreflexive());
    }

    #[test]
    fn domain_range_restrictions() {
        let r = Relation::from_pairs(5, [(0, 1), (2, 3), (4, 1)]);
        let evens = ElemSet::from_iter(5, [0, 2, 4]);
        let dr = r.restrict_domain(&evens);
        assert_eq!(dr.len(), 3);
        let rr = r.restrict_range(&evens);
        assert_eq!(
            rr.iter().collect::<Vec<_>>(),
            vec![(2, 3)]
                .into_iter()
                .filter(|_| false)
                .collect::<Vec<_>>()
        );
        assert!(rr.is_empty());
        let odd_targets = ElemSet::from_iter(5, [1, 3]);
        assert_eq!(r.restrict_range(&odd_targets).len(), 3);
    }

    #[test]
    fn cross_and_identity_on() {
        let a = ElemSet::from_iter(4, [0, 1]);
        let b = ElemSet::from_iter(4, [2, 3]);
        let x = Relation::cross(&a, &b);
        assert_eq!(x.len(), 4);
        assert!(x.contains(0, 2) && x.contains(1, 3));
        let id = Relation::identity_on(&a);
        assert_eq!(id.iter().collect::<Vec<_>>(), vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn without_elem_drops_incident_pairs() {
        let r = Relation::from_pairs(4, [(0, 1), (1, 2), (2, 3), (3, 1)]);
        let out = r.without_elem(1);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![(2, 3)]);
    }

    #[test]
    fn reindex_compacts() {
        let r = Relation::from_pairs(4, [(0, 1), (1, 3), (2, 3)]);
        // Drop element 2, compact 3 -> 2.
        let map = [Some(0), Some(1), None, Some(2)];
        let out = r.reindex(&map, 3);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn domain_and_range_sets() {
        let r = Relation::from_pairs(5, [(0, 1), (0, 2), (3, 2)]);
        assert_eq!(r.domain().iter().collect::<Vec<_>>(), vec![0, 3]);
        assert_eq!(r.range().iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn complement_partitions_pairs() {
        let r = Relation::from_pairs(3, [(0, 1)]);
        let c = r.complement();
        assert_eq!(r.len() + c.len(), 9);
        assert!(r.intersection(&c).is_empty());
    }

    #[test]
    fn subset_check() {
        let small = Relation::from_pairs(3, [(0, 1)]);
        let big = Relation::from_pairs(3, [(0, 1), (1, 2)]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
    }

    #[test]
    fn works_beyond_one_word() {
        let n = 70;
        let mut r = Relation::new(n);
        r.insert(0, 69);
        r.insert(69, 68);
        assert!(r.transitive_closure().contains(0, 68));
        assert!(r.is_acyclic());
    }
}

//! Finite binary-relation algebra over dense element identifiers.
//!
//! This crate provides the relational vocabulary used by axiomatic memory
//! models (see §2.1 of the PLDI'18 paper *The Semantics of Transactions and
//! Weak Memory in x86, Power, ARM, and C++*): binary relations over a fixed
//! finite universe of events, together with the operators the models are
//! written in — union, intersection, difference, relational composition `;`,
//! inverse, reflexive/transitive closures, set lifting `[S]`, and the
//! `acyclic` / `irreflexive` / `empty` predicates.
//!
//! Elements of the universe are dense indices `0..n`; both [`ElemSet`] and
//! [`Relation`] are bit-packed so that the closure and cycle-detection
//! operations used inside consistency checks stay cheap for litmus-sized
//! graphs (tens of events).
//!
//! # Examples
//!
//! ```
//! use tm_relation::Relation;
//!
//! // po on three events in one thread: 0 -> 1 -> 2
//! let po = Relation::from_pairs(3, [(0, 1), (1, 2)]);
//! assert!(po.transitive_closure().contains(0, 2));
//! assert!(po.is_acyclic());
//!
//! // Adding a back edge creates a cycle.
//! let cyclic = po.union(&Relation::from_pairs(3, [(2, 0)]));
//! assert!(!cyclic.is_acyclic());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod elem_set;
mod relation;

pub use elem_set::ElemSet;
pub use relation::{Pairs, Relation};

/// Computes the equivalence classes of a symmetric + transitive relation
/// (a *partial* equivalence relation: reflexivity is not required, so
/// elements that relate to nothing — not even themselves — belong to no
/// class).
///
/// Classes are returned sorted by their smallest member, and members within
/// a class are sorted ascending.
///
/// This is how `stxn` (same-successful-transaction) and `scr` (same critical
/// region) classes are recovered from an execution.
///
/// # Examples
///
/// ```
/// use tm_relation::{Relation, per_classes};
///
/// let mut r = Relation::new(5);
/// // {1, 2} form one class, {4} a singleton class (self-related).
/// r.insert(1, 2);
/// r.insert(2, 1);
/// r.insert(1, 1);
/// r.insert(2, 2);
/// r.insert(4, 4);
/// assert_eq!(per_classes(&r), vec![vec![1, 2], vec![4]]);
/// ```
pub fn per_classes(rel: &Relation) -> Vec<Vec<usize>> {
    let n = rel.universe();
    let mut seen = vec![false; n];
    let mut classes = Vec::new();
    for a in 0..n {
        if seen[a] {
            continue;
        }
        // An element participates in the PER iff it relates to something
        // (by symmetry+transitivity it then relates to itself).
        let related: Vec<usize> = rel.successors(a).collect();
        if related.is_empty() && !rel.contains(a, a) {
            continue;
        }
        let mut class: Vec<usize> = related;
        if !class.contains(&a) {
            class.push(a);
        }
        class.sort_unstable();
        class.dedup();
        for &m in &class {
            seen[m] = true;
        }
        classes.push(class);
    }
    classes
}

/// Returns `true` if `rel` is symmetric (`(a, b) ∈ rel ⇒ (b, a) ∈ rel`).
pub fn is_symmetric(rel: &Relation) -> bool {
    rel.iter().all(|(a, b)| rel.contains(b, a))
}

/// Returns `true` if `rel` is transitive (`rel ; rel ⊆ rel`).
pub fn is_transitive(rel: &Relation) -> bool {
    rel.compose(rel).is_subset_of(rel)
}

/// Returns `true` if `rel` is a partial equivalence relation (symmetric and
/// transitive).
pub fn is_per(rel: &Relation) -> bool {
    is_symmetric(rel) && is_transitive(rel)
}

/// Returns `true` if `rel` restricted to `set` is a strict total order over
/// `set`: irreflexive, transitive, and total (any two distinct members are
/// related one way or the other, but not both).
pub fn is_strict_total_order_on(rel: &Relation, set: &ElemSet) -> bool {
    if !rel.is_irreflexive() || !is_transitive(rel) {
        return false;
    }
    let members: Vec<usize> = set.iter().collect();
    for (i, &a) in members.iter().enumerate() {
        for &b in &members[i + 1..] {
            if !rel.contains(a, b) && !rel.contains(b, a) {
                return false;
            }
            if rel.contains(a, b) && rel.contains(b, a) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_classes_empty_relation_has_no_classes() {
        let r = Relation::new(4);
        assert!(per_classes(&r).is_empty());
    }

    #[test]
    fn per_classes_ignores_unrelated_elements() {
        let mut r = Relation::new(6);
        for &(a, b) in &[(0, 3), (3, 0), (0, 0), (3, 3)] {
            r.insert(a, b);
        }
        assert_eq!(per_classes(&r), vec![vec![0, 3]]);
    }

    #[test]
    fn symmetric_and_transitive_checks() {
        let mut r = Relation::new(3);
        r.insert(0, 1);
        assert!(!is_symmetric(&r));
        r.insert(1, 0);
        assert!(is_symmetric(&r));
        // 0->1, 1->0 but no 0->0: not transitive.
        assert!(!is_transitive(&r));
        r.insert(0, 0);
        r.insert(1, 1);
        assert!(is_transitive(&r));
        assert!(is_per(&r));
    }

    #[test]
    fn strict_total_order_detection() {
        let set = ElemSet::from_iter(4, [0, 1, 2]);
        let order = Relation::from_pairs(4, [(0, 1), (1, 2), (0, 2)]);
        assert!(is_strict_total_order_on(&order, &set));
        // Missing 0->2 breaks transitivity.
        let partial = Relation::from_pairs(4, [(0, 1), (1, 2)]);
        assert!(!is_strict_total_order_on(&partial, &set));
        // A cycle is not a strict order.
        let cyc = Relation::from_pairs(4, [(0, 1), (1, 2), (2, 0), (0, 2), (1, 0), (2, 1)]);
        assert!(!is_strict_total_order_on(&cyc, &set));
    }
}

//! Figure 7: the distribution of synthesis times for the largest x86 Forbid
//! suite — most tests are found early, with a long tail spent confirming
//! that no further tests exist.
//!
//! The paper plots the percentage of 7-event tests found against wall-clock
//! time over a 34-hour SAT run. We reproduce the same curve for the explicit
//! enumerator at its largest bound: the `found_after` timestamps recorded by
//! `synthesise_suites` give the cumulative-percentage series directly.

use tm_bench::measure;
use tm_models::X86Model;
use tm_synth::{synthesise_suites, SynthConfig};

const EVENTS: usize = 4;

fn print_fig7() {
    // Two locations keep the 4-event explicit search interactive; the paper's
    // SAT backend spends 34 hours on the corresponding 7-event suite.
    let mut cfg = SynthConfig::x86(EVENTS);
    cfg.max_locs = 2;
    let report = synthesise_suites(&X86Model::tm(), &X86Model::baseline(), &cfg, EVENTS);
    let total_tests = report.forbid.len().max(1);
    let total_time = report.elapsed;

    println!("\n=== Figure 7 (reproduced): distribution of synthesis times ===");
    println!(
        "x86 Forbid suite at |E| = {EVENTS}: {} tests, total synthesis time {:?}",
        report.forbid.len(),
        total_time
    );
    println!("{:>16} {:>16} {:>10}", "time", "% of total time", "% found");
    // Cumulative percentage found at 10% increments of the total runtime.
    let mut found_times: Vec<_> = report.forbid.iter().map(|t| t.found_after).collect();
    found_times.sort();
    for step in 1..=10 {
        let cutoff = total_time.mul_f64(step as f64 / 10.0);
        let found = found_times.iter().filter(|t| **t <= cutoff).count();
        println!(
            "{:>16?} {:>15}% {:>9.1}%",
            cutoff,
            step * 10,
            100.0 * found as f64 / total_tests as f64
        );
    }
    if let (Some(first), Some(last)) = (found_times.first(), found_times.last()) {
        println!(
            "first test found after {:?}; last after {:?} ({:.0}% of the run spent confirming completeness)",
            first,
            last,
            100.0 * (1.0 - last.as_secs_f64() / total_time.as_secs_f64().max(f64::EPSILON))
        );
    }
    println!();
}

fn main() {
    print_fig7();

    let cfg = SynthConfig::x86(3);
    measure("fig7-synthesis-time/x86-forbid-3ev", 5, || {
        let _ = synthesise_suites(&X86Model::tm(), &X86Model::baseline(), &cfg, 3);
    });
}

//! Table 1: synthesis of the x86 and Power Forbid/Allow conformance suites
//! per event-count bound, plus the "seen / not seen" columns obtained by
//! running the suites on the operational simulators.
//!
//! The paper reaches |E| = 6–7 with a SAT solver and days of CPU time; the
//! explicit enumerator reproduces the same construction at |E| = 2–4 so that
//! `cargo bench` completes in minutes. The shape of the table — counts that
//! grow steeply with |E|, no Forbid test ever observed, most Allow tests
//! observed on x86 — is the reproduction target (see EXPERIMENTS.md).

use tm_bench::{measure, table1_targets};
use tm_sim::{run_suite, SimArch, SuiteObservation};
use tm_synth::synthesise_suites;

const MAX_EVENTS: usize = 3;
const SIM_RUNS: usize = 1000;

fn print_table1() {
    println!("\n=== Table 1 (reproduced): testing the transactional x86 and Power models ===");
    println!(
        "{:<7} {:>4} {:>12} {:>14} {:>8} {:>5} {:>5} {:>8} {:>5} {:>5}",
        "Arch", "|E|", "enumerated", "synth time", "Forbid", "S", "¬S", "Allow", "S", "¬S"
    );
    for (name, tm, base, _) in table1_targets(MAX_EVENTS) {
        let sim = match name.as_str() {
            "x86" => Some(SimArch::X86),
            "Power" => Some(SimArch::Power),
            _ => None, // ARMv8 has no TM hardware to run on (§6.2).
        };
        let mut totals = (0usize, 0usize, 0usize, 0usize);
        for events in 2..=MAX_EVENTS {
            let cfg = table1_targets(events)
                .into_iter()
                .find(|(n, _, _, _)| *n == name)
                .map(|(_, _, _, c)| c)
                .expect("target exists");
            let report = synthesise_suites(tm.as_ref(), base.as_ref(), &cfg, events);
            let (forbid_obs, allow_obs) = match sim {
                Some(arch) => {
                    let forbid: Vec<_> = report.forbid.iter().map(|t| t.litmus.clone()).collect();
                    let allow: Vec<_> = report.allow.iter().map(|t| t.litmus.clone()).collect();
                    (
                        Some(SuiteObservation::from_reports(&run_suite(
                            arch, &forbid, SIM_RUNS, 5,
                        ))),
                        Some(SuiteObservation::from_reports(&run_suite(
                            arch, &allow, SIM_RUNS, 5,
                        ))),
                    )
                }
                None => (None, None),
            };
            let seen = |o: &Option<SuiteObservation>| {
                o.as_ref()
                    .map(|x| (x.seen.to_string(), x.not_seen().to_string()))
                    .unwrap_or_else(|| ("-".into(), "-".into()))
            };
            let (fs, fns) = seen(&forbid_obs);
            let (als, alns) = seen(&allow_obs);
            println!(
                "{:<7} {:>4} {:>12} {:>14?} {:>8} {:>5} {:>5} {:>8} {:>5} {:>5}",
                name,
                events,
                report.enumerated,
                report.elapsed,
                report.forbid.len(),
                fs,
                fns,
                report.allow.len(),
                als,
                alns
            );
            totals.0 += report.forbid.len();
            totals.1 += forbid_obs.map(|o| o.seen).unwrap_or(0);
            totals.2 += report.allow.len();
            totals.3 += allow_obs.map(|o| o.seen).unwrap_or(0);
        }
        println!(
            "{:<7} total: Forbid {} (seen {}), Allow {} (seen {})",
            name, totals.0, totals.1, totals.2, totals.3
        );
    }
    println!();
}

fn main() {
    print_table1();

    // Timing: the synthesis kernel itself at |E| = 3 for each architecture
    // (the unit of work behind every cell of the table).
    for (name, tm, base, cfg) in table1_targets(3) {
        measure(&format!("table1-synthesis/forbid+allow/{name}"), 5, || {
            let _ = synthesise_suites(tm.as_ref(), base.as_ref(), &cfg, 3);
        });
    }
}

//! Table 2: the metatheoretical results — monotonicity, compilation of C++
//! transactions to hardware, and lock elision — each checked up to a bound.
//!
//! The reproduced table is printed before Criterion times the three check
//! kernels. The paper's qualitative results are: monotonicity fails for
//! Power/ARMv8 with a 2-event counterexample and holds for x86/C++;
//! compilation is sound for all three targets; lock elision has an ARMv8
//! counterexample (Example 1.1), none for x86, and none for ARMv8 once the
//! DMB repair is applied. See EXPERIMENTS.md for the Power lock-elision
//! discussion.

use tm_bench::measure;
use tm_exec::Annot;
use tm_litmus::Arch;
use tm_metatheory::{
    check_compilation, check_lock_elision, check_monotonicity, check_theorem_7_2, check_theorem_7_3,
};
use tm_models::{Armv8Model, CppModel, MemoryModel, PowerModel, X86Model};
use tm_synth::SynthConfig;

fn cpp_config(bound: usize) -> SynthConfig {
    let mut cfg = SynthConfig::cpp(bound);
    cfg.read_annots = vec![Annot::PLAIN, Annot::relaxed_atomic(), Annot::seq_cst()];
    cfg.write_annots = vec![Annot::PLAIN, Annot::relaxed_atomic(), Annot::seq_cst()];
    cfg
}

fn print_table2() {
    println!("\n=== Table 2 (reproduced): metatheoretical results ===");
    println!(
        "{:<14} {:<14} {:>8} {:>12}  counterexample?",
        "property", "target", "events", "time"
    );

    let monotonicity: Vec<(Box<dyn MemoryModel>, SynthConfig, usize)> = vec![
        (Box::new(X86Model::tm()), SynthConfig::x86(3), 3),
        (Box::new(PowerModel::tm()), SynthConfig::power(2), 2),
        (Box::new(Armv8Model::tm()), SynthConfig::armv8(2), 2),
        (Box::new(CppModel::tm()), cpp_config(3), 3),
    ];
    for (model, cfg, events) in monotonicity {
        let r = check_monotonicity(model.as_ref(), &cfg, events);
        println!(
            "{:<14} {:<14} {:>8} {:>12?}  {}",
            "Monotonicity",
            r.model,
            r.max_events,
            r.elapsed,
            if r.holds() { "no" } else { "YES" }
        );
    }
    for target in [Arch::X86, Arch::Power, Arch::Armv8] {
        let r = check_compilation(target, &cpp_config(3), 3);
        println!(
            "{:<14} {:<14} {:>8} {:>12?}  {}",
            "Compilation",
            format!("C++/{target}"),
            r.max_events,
            r.elapsed,
            if r.sound() { "no" } else { "YES" }
        );
    }
    for (arch, fix) in [
        (Arch::X86, false),
        (Arch::Power, false),
        (Arch::Armv8, false),
        (Arch::Armv8, true),
    ] {
        let r = check_lock_elision(arch, fix);
        println!(
            "{:<14} {:<14} {:>8} {:>12?}  {}",
            "Lock elision",
            if fix {
                format!("{arch} (fixed)")
            } else {
                arch.to_string()
            },
            r.checked,
            r.elapsed,
            if r.sound() { "no" } else { "YES" }
        );
    }
    for r in [
        check_theorem_7_2(&cpp_config(3), 3),
        check_theorem_7_3(&cpp_config(3), 3),
    ] {
        println!(
            "{:<14} {:<14} {:>8} {:>12?}  {}",
            format!("Theorem {}", r.theorem),
            "C++",
            r.max_events,
            r.elapsed,
            if r.holds() { "no" } else { "YES" }
        );
    }
    println!();
}

fn main() {
    print_table2();

    measure("table2-metatheory/monotonicity-x86-3ev", 5, || {
        let _ = check_monotonicity(&X86Model::tm(), &SynthConfig::x86(3), 3);
    });
    measure("table2-metatheory/compilation-cpp-to-armv8-3ev", 5, || {
        let _ = check_compilation(Arch::Armv8, &cpp_config(3), 3);
    });
    measure("table2-metatheory/lock-elision-armv8", 5, || {
        let _ = check_lock_elision(Arch::Armv8, false);
    });
}

//! The bounded-exhaustive sweep throughput benchmark behind
//! `BENCH_synth.json`.
//!
//! Measures executions checked per second on the Table 1/Table 2 workload —
//! enumerate every candidate execution up to `max_events` and check each
//! against the transactional model and its baseline — in three
//! configurations:
//!
//! * **baseline** — the pre-refactor pipeline, reproduced verbatim: the
//!   single-threaded builder-based reference enumerator feeding an inline
//!   copy of the original x86 consistency check, which recomputes every
//!   derived relation (`sloc`, `fr`, `com`, `tfence`, the lifts) on each
//!   mention, exactly as the models did before the `ExecView` migration;
//! * **ir** — the per-execution IR pipeline: parallel pruned enumeration,
//!   one memoized [`ExecView`] per candidate shared by both model checks,
//!   verdicts from the declarative axiom-IR evaluator with hash-consed
//!   common-subexpression memoization and cheapest-axiom-first early exit;
//! * **ir-incremental** — the delta-threading pipeline: the enumerator
//!   mutates one execution in place and hands each worker's
//!   [`IncrementalChecker`] the edge delta, so axiom bodies whose
//!   dependency footprint the delta misses keep their values (and cached
//!   verdicts) across sibling candidates instead of being recomputed.
//!
//! Run with `cargo run --release -p tm-bench --bin bench_synth`; pass a
//! different event bound as the first argument (default 6). The JSON report
//! is **appended** to the `runs` trajectory of `BENCH_synth.json` in the
//! current directory (keyed by configuration and date), so the perf history
//! of the sweep accumulates from PR to PR instead of being overwritten.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use tm_exec::ir::Delta;
use tm_exec::{ExecView, Execution, Fence};
use tm_models::ir::IncrementalChecker;
use tm_models::{MemoryModel, Target, X86Model};
use tm_relation::Relation;
use tm_sweep::{run_sweep, SweepJob, SweepMode, SweepOptions, SweepStatus};
use tm_synth::{
    enumerate_exact, enumerate_exact_incremental, enumerate_exact_reference,
    enumerate_reduced_incremental, labelled_orbit, synthesise_suites,
    synthesise_suites_per_execution, synthesise_suites_with, CanonSig, SuiteReport, Symmetry,
    SynthConfig,
};

// ---- the pre-refactor x86 check, kept verbatim as the measured baseline ---

/// `stronglift` as it was before the empty-transaction early-out.
fn stronglift_seed(r: &Relation, t: &Relation) -> Relation {
    let tq = t.reflexive_closure();
    tq.compose(&r.difference(t)).compose(&tq)
}

/// `tfence` as it was before the empty-transaction early-out.
fn tfence_seed(exec: &Execution) -> Relation {
    let not_stxn = exec.stxn.complement();
    let enter = not_stxn.compose(&exec.stxn);
    let exit = exec.stxn.compose(&not_stxn);
    exec.po.intersection(&enter.union(&exit))
}

/// The x86 happens-before relation computed the pre-refactor way: every
/// derived relation recomputed from the bare `Execution` on each mention.
fn hb_seed(exec: &Execution, transactional: bool) -> Relation {
    let writes = exec.writes();
    let reads = exec.reads();
    let ww = Relation::cross(&writes, &writes);
    let rw = Relation::cross(&reads, &writes);
    let rr = Relation::cross(&reads, &reads);
    let ppo = ww.union(&rw).union(&rr).intersection(&exec.po);
    let locked = exec.rmw.domain().union(&exec.rmw.range());
    let id_l = Relation::identity_on(&locked);
    let mut implied = id_l.compose(&exec.po).union(&exec.po.compose(&id_l));
    let tf = if transactional {
        tfence_seed(exec)
    } else {
        Relation::new(exec.len())
    };
    implied = implied.union(&tf);
    exec.fence_rel(Fence::MFence)
        .union(&ppo)
        .union(&implied)
        .union(&exec.rfe())
        .union(&exec.fr())
        .union(&exec.co)
}

/// The full pre-refactor x86 check: same axioms, same witness extraction,
/// no memoization and no early-outs.
fn check_seed(exec: &Execution, transactional: bool) -> bool {
    let mut consistent = true;
    consistent &= exec.poloc().union(&exec.com()).find_cycle().is_none();
    consistent &= exec
        .rmw
        .intersection(&exec.fre().compose(&exec.coe()))
        .iter()
        .next()
        .is_none();
    let hb = hb_seed(exec, transactional);
    consistent &= hb.find_cycle().is_none();
    if transactional {
        consistent &= stronglift_seed(&exec.com(), &exec.stxn)
            .find_cycle()
            .is_none();
        consistent &= stronglift_seed(&hb, &exec.stxn).find_cycle().is_none();
    }
    consistent
}

/// The sweep configuration: the x86 study of Table 1, trimmed (two threads,
/// two locations, one transaction, no RMW dimension) so that the full
/// |E| ≤ 6 sweep — about ten million candidate executions — finishes in
/// minutes rather than the hours the paper reports for its SAT backend.
fn sweep_config(max_events: usize) -> SynthConfig {
    let mut cfg = SynthConfig::x86(max_events);
    cfg.max_threads = 2;
    cfg.max_locs = 2;
    cfg.rmws = false;
    cfg.max_txns = 1;
    cfg
}

/// The symmetry-study configuration: three threads instead of two. With a
/// third thread the thread-renaming group is big enough for canonical-form
/// pruning to pay (the 2-thread space is mostly asymmetric partitions), so
/// this is where the `symmetry` mode measures its effective throughput —
/// against a full delta-threading sweep of the *same* space.
fn sweep_config_3t(max_events: usize) -> SynthConfig {
    let mut cfg = sweep_config(max_events);
    cfg.max_threads = 3;
    cfg
}

struct Mode {
    name: &'static str,
    executions: usize,
    checks: usize,
    /// How many checks came back consistent — compared across the modes to
    /// guarantee they computed the same thing.
    consistent: usize,
    seconds: f64,
    /// For symmetry-reduced modes: the orbit-weighted candidate count the
    /// sweep covered (labelled orbits `k!·l!/|Stab|` for the counts study,
    /// in-space orbits for suite synthesis). `None` for full sweeps.
    effective: Option<u64>,
}

impl Mode {
    fn execs_per_sec(&self) -> f64 {
        self.executions as f64 / self.seconds.max(f64::EPSILON)
    }

    fn effective_per_sec(&self) -> f64 {
        self.effective.unwrap_or(self.executions as u64) as f64 / self.seconds.max(f64::EPSILON)
    }
}

fn run_baseline(cfg: &SynthConfig, max_events: usize) -> Mode {
    let mut executions = 0usize;
    let mut checks = 0usize;
    let mut consistent = 0usize;
    let start = Instant::now();
    for n in 2..=max_events {
        executions += enumerate_exact_reference(cfg, n, |exec| {
            // The pre-refactor sweep: x86+TM and its baseline model, each
            // recomputing every derived relation from scratch.
            consistent += usize::from(check_seed(exec, true));
            consistent += usize::from(check_seed(exec, false));
            checks += 2;
        });
    }
    Mode {
        name: "baseline",
        executions,
        checks,
        consistent,
        seconds: start.elapsed().as_secs_f64(),
        effective: None,
    }
}

/// The per-execution IR sweep: parallel pruned enumeration, one memoized
/// view per candidate, the axiom-IR evaluator with early exit.
fn run_ir(cfg: &SynthConfig, max_events: usize) -> Mode {
    let mut executions = 0usize;
    let checks = AtomicUsize::new(0);
    let consistent = AtomicUsize::new(0);
    let start = Instant::now();
    let tm = X86Model::tm();
    let base = X86Model::baseline();
    let models: [&dyn MemoryModel; 2] = [&tm, &base];
    for n in 2..=max_events {
        executions += enumerate_exact(cfg, n, |exec| {
            let view = ExecView::new(exec);
            for model in models {
                if model.is_consistent_view(&view) {
                    consistent.fetch_add(1, Ordering::Relaxed);
                }
            }
            checks.fetch_add(models.len(), Ordering::Relaxed);
        });
    }
    Mode {
        name: "ir",
        executions,
        checks: checks.into_inner(),
        consistent: consistent.into_inner(),
        seconds: start.elapsed().as_secs_f64(),
        effective: None,
    }
}

/// The incremental IR sweep: the enumerator mutates one execution in place
/// and threads the edge delta to a per-worker [`IncrementalChecker`], which
/// re-evaluates only the axiom bodies the delta's footprint touches.
fn run_incremental(cfg: &SynthConfig, max_events: usize) -> Mode {
    let mut executions = 0usize;
    let checks = AtomicUsize::new(0);
    let consistent = AtomicUsize::new(0);
    let start = Instant::now();
    for n in 2..=max_events {
        executions += enumerate_exact_incremental(cfg, n, || {
            let mut checker = IncrementalChecker::new();
            let (checks, consistent) = (&checks, &consistent);
            move |exec: &Execution, delta: &Delta| {
                checker.advance(exec, delta);
                for target in [Target::X86Tm, Target::X86] {
                    if checker.is_consistent(exec, target) {
                        consistent.fetch_add(1, Ordering::Relaxed);
                    }
                }
                checks.fetch_add(2, Ordering::Relaxed);
            }
        });
    }
    Mode {
        name: "ir-incremental",
        executions,
        checks: checks.into_inner(),
        consistent: consistent.into_inner(),
        seconds: start.elapsed().as_secs_f64(),
        effective: None,
    }
}

/// The incremental IR sweep over *runtime-loaded* models: `models/x86.cat`
/// and `models/x86_tm.cat` are parsed and elaborated into two private
/// hash-consed pools, and each worker drives one delta-threading
/// [`IncrementalModelChecker`](tm_models::ir::IncrementalModelChecker) per
/// model. Measures what loading a model from text costs versus the
/// compiled-in catalog: elaboration happens once, the hash-consed pools are
/// x86-only (smaller than the shared ten-model catalog), and the verdicts
/// must be bit-identical.
fn run_cat_loaded(cfg: &SynthConfig, max_events: usize) -> Mode {
    let dir = cat_models_dir();
    let tm = tm_cat::load_file(dir.join("x86_tm.cat")).expect("models/x86_tm.cat loads");
    let base = tm_cat::load_file(dir.join("x86.cat")).expect("models/x86.cat loads");
    let mut executions = 0usize;
    let checks = AtomicUsize::new(0);
    let consistent = AtomicUsize::new(0);
    let start = Instant::now();
    for n in 2..=max_events {
        executions += enumerate_exact_incremental(cfg, n, || {
            let mut checkers = [tm.incremental(), base.incremental()];
            let (checks, consistent) = (&checks, &consistent);
            move |exec: &Execution, delta: &Delta| {
                for checker in &mut checkers {
                    checker.advance(exec, delta);
                    if checker.is_consistent(exec) {
                        consistent.fetch_add(1, Ordering::Relaxed);
                    }
                }
                checks.fetch_add(2, Ordering::Relaxed);
            }
        });
    }
    Mode {
        name: "cat-loaded",
        executions,
        checks: checks.into_inner(),
        consistent: consistent.into_inner(),
        seconds: start.elapsed().as_secs_f64(),
        effective: None,
    }
}

/// Full Table-1 suite synthesis (Forbid + Allow for x86 ± TM at exactly
/// `max_events` events), measured once on the per-execution pipeline (fresh
/// views, cloned weakenings for every minimality probe, globally locked
/// deduplication) and once on the delta-driven pipeline (stateful
/// per-worker checkers, savepoint/rollback-probed weakenings expressed as
/// removal deltas, per-worker sinks merged after the sweep).
fn run_suite(cfg: &SynthConfig, max_events: usize, incremental: bool) -> (Mode, SuiteReport) {
    let tm = X86Model::tm();
    let base = X86Model::baseline();
    let start = Instant::now();
    let report = if incremental {
        synthesise_suites(&tm, &base, cfg, max_events)
    } else {
        synthesise_suites_per_execution(&tm, &base, cfg, max_events)
    };
    let mode = Mode {
        name: if incremental {
            "suite-incremental"
        } else {
            "suite-per-exec"
        },
        executions: report.enumerated,
        checks: report.enumerated * 2,
        // The Forbid count doubles as the cross-pipeline agreement check.
        consistent: report.forbid.len(),
        seconds: start.elapsed().as_secs_f64(),
        effective: None,
    };
    (mode, report)
}

/// The signatures of a synthesised suite, for cross-pipeline comparison.
fn suite_signatures(report: &SuiteReport) -> (Vec<CanonSig>, Vec<CanonSig>) {
    let sigs = |tests: &[tm_synth::SynthesisedTest]| {
        let mut sigs: Vec<CanonSig> = tests
            .iter()
            .map(|t| tm_synth::canonical_signature(&t.execution))
            .collect();
        sigs.sort();
        sigs
    };
    (sigs(&report.forbid), sigs(&report.allow))
}

/// The symmetry study: a full delta-threading counts sweep and a
/// symmetry-reduced one over the *same* 3-thread space. The reduced sweep
/// visits one canonical representative per thread/location-renaming class;
/// its in-space orbit-weighted totals are asserted equal to the full
/// sweep's (exactness), and its *effective* throughput counts each
/// representative with its fully-labelled orbit size `k!·l!/|Stab|` — the
/// number of labelled isomorphic copies the paper's SAT backend would have
/// had to refute one by one.
fn run_symmetry_pair(cfg: &SynthConfig, max_events: usize) -> (Mode, Mode) {
    // Full sweep of the 3-thread space (the "before").
    let mut executions = 0usize;
    let checks = AtomicUsize::new(0);
    let consistent = AtomicUsize::new(0);
    let start = Instant::now();
    for n in 2..=max_events {
        executions += enumerate_exact_incremental(cfg, n, || {
            let mut checker = IncrementalChecker::new();
            let (checks, consistent) = (&checks, &consistent);
            move |exec: &Execution, delta: &Delta| {
                checker.advance(exec, delta);
                for target in [Target::X86Tm, Target::X86] {
                    if checker.is_consistent(exec, target) {
                        consistent.fetch_add(1, Ordering::Relaxed);
                    }
                }
                checks.fetch_add(2, Ordering::Relaxed);
            }
        });
    }
    let full = Mode {
        name: "ir-incremental-3t",
        executions,
        checks: checks.into_inner(),
        consistent: consistent.into_inner(),
        seconds: start.elapsed().as_secs_f64(),
        effective: None,
    };

    // Symmetry-reduced sweep of the same space.
    let mut representatives = 0usize;
    let mut weighted = 0u64;
    let checks = AtomicUsize::new(0);
    let weighted_consistent = AtomicU64::new(0);
    let effective = AtomicU64::new(0);
    let start = Instant::now();
    for n in 2..=max_events {
        let tally = enumerate_reduced_incremental(cfg, n, || {
            let mut checker = IncrementalChecker::new();
            let (checks, weighted_consistent, effective) =
                (&checks, &weighted_consistent, &effective);
            move |exec: &Execution, delta: &Delta, orbit: u64| {
                checker.advance(exec, delta);
                for target in [Target::X86Tm, Target::X86] {
                    if checker.is_consistent(exec, target) {
                        weighted_consistent.fetch_add(orbit, Ordering::Relaxed);
                    }
                }
                checks.fetch_add(2, Ordering::Relaxed);
                effective.fetch_add(labelled_orbit(exec, orbit), Ordering::Relaxed);
            }
        });
        representatives += tally.representatives;
        weighted += tally.weighted;
    }
    let reduced = Mode {
        name: "symmetry",
        executions: representatives,
        checks: checks.into_inner(),
        // Orbit-weighted consistent count — must match the full sweep's.
        consistent: weighted_consistent.into_inner() as usize,
        seconds: start.elapsed().as_secs_f64(),
        effective: Some(effective.into_inner()),
    };

    // Exactness: representatives weighted by in-space orbit size cover the
    // full space, verdict for verdict.
    assert_eq!(
        weighted, full.executions as u64,
        "symmetry reduction must cover the full space orbit for orbit"
    );
    assert_eq!(
        reduced.consistent, full.consistent,
        "symmetry reduction must reach the full sweep's verdicts orbit for orbit"
    );
    (full, reduced)
}

/// The scheduling study: a 2-shard symmetry-reduced sweep of the 3-thread
/// space through the checkpointed runner, shards racing side by side the
/// way a supervised pair does, one worker each. Once with the static
/// dispatch of earlier releases (`sched: false` — whole units, FIFO order,
/// a fixed `id % 2` slice per shard) and once with adaptive scheduling
/// (weight-ordered dispatch, pre-split oversized units, lease-claimed
/// cross-shard stealing from the shared frontier). The measured quantity
/// is the **makespan** — wall clock until *both* shards finish — which is
/// exactly what static sharding loses to straggler shards and the
/// adaptive scheduler recovers.
fn run_sched_pair(cfg: &SynthConfig, max_events: usize) -> (Mode, Mode) {
    let tm = X86Model::tm();
    let scratch = std::env::temp_dir().join(format!("bench-sweep-sched-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    let shard_pair = |tag: &str, sched: bool| {
        let job = SweepJob {
            model: &tm,
            baseline: None,
            reference: None,
            mode: SweepMode::Counts,
            config: cfg,
            events: max_events,
            symmetry: Symmetry::Reduced,
        };
        let lease = scratch.join(format!("{tag}-leases"));
        let start = Instant::now();
        let outcomes: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2u32)
                .map(|i| {
                    let dir = scratch.join(format!("{tag}-shard-{i}"));
                    let (job, lease) = (&job, lease.clone());
                    scope.spawn(move || {
                        let mut opts = SweepOptions::new(dir);
                        opts.shard = Some((i, 2));
                        opts.threads = Some(1);
                        opts.sched = sched;
                        if sched {
                            opts.lease_dir = Some(lease);
                        }
                        run_sweep(job, &opts).expect("sched bench shard")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let seconds = start.elapsed().as_secs_f64();
        for outcome in &outcomes {
            assert_eq!(outcome.status, SweepStatus::Complete);
            assert!(outcome.quarantined.is_empty());
        }
        let visited = outcomes.iter().map(|o| o.visited).sum::<u64>();
        let consistent = outcomes.iter().map(|o| o.consistent).sum::<u64>();
        let weighted = outcomes.iter().map(|o| o.weighted_visited).sum::<u64>();
        (seconds, visited, consistent, weighted)
    };

    let (off_secs, off_visited, off_consistent, off_weighted) = shard_pair("static", false);
    let (on_secs, on_visited, on_consistent, on_weighted) = shard_pair("adaptive", true);
    let _ = std::fs::remove_dir_all(&scratch);

    // Scheduling is pure dispatch: split or stolen, the two runs must
    // visit the same representatives and reach the same verdicts.
    assert_eq!(
        off_visited, on_visited,
        "adaptive scheduling changed the visit count"
    );
    assert_eq!(
        off_consistent, on_consistent,
        "adaptive scheduling changed the verdicts"
    );
    assert_eq!(
        off_weighted, on_weighted,
        "adaptive scheduling changed the orbit-weighted coverage"
    );

    let mk_mode = |name, seconds, visited: u64, consistent: u64, weighted: u64| Mode {
        name,
        executions: visited as usize,
        checks: visited as usize,
        consistent: consistent as usize,
        seconds,
        effective: Some(weighted),
    };
    (
        mk_mode(
            "sweep-sched-static",
            off_secs,
            off_visited,
            off_consistent,
            off_weighted,
        ),
        mk_mode(
            "sweep-sched",
            on_secs,
            on_visited,
            on_consistent,
            on_weighted,
        ),
    )
}

/// Suite synthesis under symmetry reduction — the suites must be identical
/// to the full pipeline's (checked in `main`).
fn run_suite_symmetry(cfg: &SynthConfig, max_events: usize) -> (Mode, SuiteReport) {
    let tm = X86Model::tm();
    let base = X86Model::baseline();
    let start = Instant::now();
    let report = synthesise_suites_with(&tm, &base, cfg, max_events, Symmetry::Reduced);
    let mode = Mode {
        name: "suite-symmetry",
        executions: report.enumerated,
        checks: report.enumerated * 2,
        consistent: report.forbid.len(),
        seconds: start.elapsed().as_secs_f64(),
        effective: Some(report.effective),
    };
    (mode, report)
}

/// The shipped `.cat` models, whether the bench runs from the repository
/// root (CI) or anywhere else (fall back to the manifest location).
fn cat_models_dir() -> std::path::PathBuf {
    let cwd = std::path::PathBuf::from("models");
    if cwd.join("x86_tm.cat").exists() {
        return cwd;
    }
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../models")
}

/// The machine fingerprint stamped into every run: logical core count and
/// the `uname -srm` triple (kernel, release, architecture), falling back to
/// the compile-time OS/arch when `uname` is unavailable.
fn machine_fingerprint() -> (usize, String) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let uname = std::process::Command::new("uname")
        .arg("-srm")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| format!("{} {}", std::env::consts::OS, std::env::consts::ARCH));
    // The string goes into hand-written JSON; strip anything that would
    // need escaping rather than grow an escaper for one field.
    let uname = uname
        .chars()
        .filter(|c| *c != '"' && *c != '\\' && !c.is_control())
        .collect();
    (cores, uname)
}

/// Today's UTC date as `YYYY-MM-DD`, via the days-to-civil algorithm (no
/// date-time dependency in this workspace).
fn today_utc() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Appends `run` to the `runs` array of the trajectory file, creating the
/// file (or replacing a pre-trajectory snapshot) if needed.
///
/// The update is atomic: the new content is written to a sibling temp file
/// and renamed over the original, so a crash (or a second bench run racing
/// this one) can never leave a half-written trajectory — the file either
/// has the old runs or the old runs plus this one.
fn append_run(path: &str, run: &str) {
    let fresh = format!("{{\n  \"bench\": \"synth-sweep\",\n  \"runs\": [\n{run}\n  ]\n}}\n");
    let updated = match std::fs::read_to_string(path) {
        Ok(existing) if existing.contains("\"runs\": [") => {
            match existing.rfind("\n  ]") {
                // Splice the new run in front of the array's closing bracket.
                Some(pos) => format!("{},\n{run}{}", &existing[..pos], &existing[pos..]),
                None => fresh,
            }
        }
        _ => fresh,
    };
    let tmp = format!("{path}.tmp.{}", std::process::id());
    if let Err(e) = std::fs::write(&tmp, &updated).and_then(|()| std::fs::rename(&tmp, path)) {
        let _ = std::fs::remove_file(&tmp);
        eprintln!("bench_synth: cannot update {path}: {e}");
        std::process::exit(2);
    }
}

fn main() {
    let max_events: usize = match std::env::args().nth(1) {
        None => 6,
        Some(arg) => match arg.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("usage: bench_synth [max_events]   (got {arg:?})");
                std::process::exit(2);
            }
        },
    };
    let cfg = sweep_config(max_events);

    let bench_started = Instant::now();
    eprintln!("sweep: x86-trimmed, |E| = 2..={max_events}, 2 models per execution");
    let baseline = run_baseline(&cfg, max_events);
    let modes = [
        baseline,
        run_ir(&cfg, max_events),
        run_incremental(&cfg, max_events),
        run_cat_loaded(&cfg, max_events),
    ];
    let sweep_wall = bench_started.elapsed().as_secs_f64();
    eprintln!("symmetry: x86-trimmed-3t, |E| = 2..={max_events}, full vs symmetry-reduced");
    let cfg3 = sweep_config_3t(max_events);
    let symmetry_started = Instant::now();
    let (full3, symmetry) = run_symmetry_pair(&cfg3, max_events);
    let symmetry_wall = symmetry_started.elapsed().as_secs_f64();
    eprintln!("sched: x86-trimmed-3t, |E| = {max_events}, 2-shard makespan, static vs adaptive");
    let sched_started = Instant::now();
    let (sched_static, sched_adaptive) = run_sched_pair(&cfg3, max_events);
    let sched_wall = sched_started.elapsed().as_secs_f64();
    eprintln!("suites: x86-trimmed, |E| = {max_events}, x86+TM vs x86 (Forbid + Allow)");
    let suites_started = Instant::now();
    let (suite_old, old_report) = run_suite(&cfg, max_events, false);
    let (suite_new, new_report) = run_suite(&cfg, max_events, true);
    let (suite_sym, sym_report) = run_suite_symmetry(&cfg, max_events);
    let suites_wall = suites_started.elapsed().as_secs_f64();
    let suite_modes = [suite_old, suite_new, suite_sym];
    let symmetry_modes = [full3, symmetry];
    let sched_modes = [sched_static, sched_adaptive];
    for mode in modes
        .iter()
        .chain(&symmetry_modes)
        .chain(&sched_modes)
        .chain(&suite_modes)
    {
        match mode.effective {
            Some(effective) => eprintln!(
                "{:<17}: {} representatives covering {} ({} checks) in {:.3}s = {:.0} \
                 effective execs/s",
                mode.name,
                mode.executions,
                effective,
                mode.checks,
                mode.seconds,
                mode.effective_per_sec()
            ),
            None => eprintln!(
                "{:<17}: {} executions ({} checks) in {:.3}s = {:.0} execs/s",
                mode.name,
                mode.executions,
                mode.checks,
                mode.seconds,
                mode.execs_per_sec()
            ),
        }
    }
    let [baseline, ir, incremental, cat_loaded] = &modes;
    for mode in [ir, incremental, cat_loaded] {
        assert_eq!(
            baseline.executions, mode.executions,
            "all pipelines must visit the same space"
        );
        assert_eq!(
            baseline.consistent, mode.consistent,
            "all pipelines must reach the same verdicts ({} differs)",
            mode.name
        );
    }
    // The two suite pipelines must synthesise identical suites.
    assert_eq!(
        suite_signatures(&old_report),
        suite_signatures(&new_report),
        "old and new suite pipelines disagree"
    );
    assert_eq!(
        old_report.forbid_txn_histogram(),
        new_report.forbid_txn_histogram(),
        "old and new suite pipelines disagree on the txn histogram"
    );
    // Symmetry-reduced synthesis must build the very same suites as the
    // full sweep, and its in-space orbits must cover the full space exactly.
    assert_eq!(
        suite_signatures(&new_report),
        suite_signatures(&sym_report),
        "symmetry-reduced suites differ from the full sweep's"
    );
    assert_eq!(
        new_report.forbid_txn_histogram(),
        sym_report.forbid_txn_histogram(),
        "symmetry-reduced suites disagree on the txn histogram"
    );
    assert_eq!(
        sym_report.effective, new_report.enumerated as u64,
        "orbit-weighted coverage must equal the full enumeration count"
    );
    let [suite_old, suite_new, _suite_sym] = &suite_modes;
    assert_eq!(suite_old.executions, suite_new.executions);
    let [full3, symmetry] = &symmetry_modes;
    let [sched_static, sched_adaptive] = &sched_modes;

    let (cores, uname) = machine_fingerprint();
    let ir_speedup = ir.execs_per_sec() / baseline.execs_per_sec();
    let incremental_speedup = incremental.execs_per_sec() / baseline.execs_per_sec();
    let incremental_vs_ir = incremental.execs_per_sec() / ir.execs_per_sec();
    let cat_speedup = cat_loaded.execs_per_sec() / baseline.execs_per_sec();
    let cat_vs_incremental = cat_loaded.execs_per_sec() / incremental.execs_per_sec();
    let suite_speedup = suite_new.execs_per_sec() / suite_old.execs_per_sec();
    let symmetry_effective_ratio = symmetry.effective_per_sec() / full3.execs_per_sec();
    let sched_makespan_gain = sched_static.seconds / sched_adaptive.seconds.max(f64::EPSILON);
    eprintln!(
        "speedup over baseline: ir {ir_speedup:.2}x, ir-incremental {incremental_speedup:.2}x \
         (incremental/ir {incremental_vs_ir:.2}x), cat-loaded {cat_speedup:.2}x \
         (cat/incremental {cat_vs_incremental:.2}x), \
         suite-incremental/suite-per-exec {suite_speedup:.2}x, \
         symmetry effective/full-3t {symmetry_effective_ratio:.2}x, \
         sched makespan static/adaptive {sched_makespan_gain:.2}x"
    );
    // Hash-consing must keep the text-loaded pipeline within noise of the
    // compiled-in one; only gate when the run is long enough to mean it.
    if incremental.seconds >= 0.5 {
        assert!(
            cat_vs_incremental > 0.5,
            "cat-loaded fell to {cat_vs_incremental:.2}x of ir-incremental"
        );
    }
    // The delta-driven suite pipeline must beat the per-execution one
    // clearly (the |E| = 6 acceptance bar is 1.5×); gate a little below it
    // so machine noise on short CI runs cannot flake the build.
    if suite_old.seconds >= 0.5 {
        assert!(
            suite_speedup > 1.2,
            "suite-incremental fell to {suite_speedup:.2}x of suite-per-exec"
        );
    }
    // Symmetry reduction must clearly pay its canonicity overhead back: on
    // the 3-thread space, labelled-orbit effective throughput has to beat
    // the full incremental sweep by at least 3x (the |E| = 6 acceptance
    // bar); only gated on runs long enough to measure.
    if full3.seconds >= 0.5 {
        assert!(
            symmetry_effective_ratio >= 3.0,
            "symmetry effective throughput fell to {symmetry_effective_ratio:.2}x of the \
             full 3-thread sweep"
        );
    }
    // Adaptive scheduling must beat static 2-shard dispatch on makespan by
    // at least 1.3x (the |E| = 6 acceptance bar). The gain is recovered
    // *parallel* idle time — a straggler shard leaving the other cores'
    // workers starved — so the gate arms only where that idle time can
    // exist: two shards need at least two real cores, and the run must be
    // long enough for the straggler effect to dominate startup noise. On a
    // single core the two shards timeshare one serial resource, every
    // schedule has the same makespan, and the recorded ratio only measures
    // the (small) lease and weighing overhead.
    if cores >= 2 && sched_static.seconds >= 0.5 {
        assert!(
            sched_makespan_gain >= 1.3,
            "adaptive scheduling makespan gain fell to {sched_makespan_gain:.2}x over \
             static shards"
        );
    } else if cores < 2 {
        eprintln!(
            "sched makespan gate skipped: {cores} core(s) leave no parallel idle time \
             for the scheduler to recover"
        );
    }

    let mut run = String::new();
    run.push_str("    {\n");
    let _ = writeln!(run, "      \"date\": \"{}\",", today_utc());
    let _ = writeln!(run, "      \"config\": \"x86-trimmed\",");
    let _ = writeln!(run, "      \"max_events\": {max_events},");
    let _ = writeln!(run, "      \"models_per_execution\": 2,");
    let _ = writeln!(
        run,
        "      \"threads\": {},",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    let _ = writeln!(
        run,
        "      \"machine\": {{ \"cores\": {cores}, \"uname\": \"{uname}\" }},"
    );
    let _ = writeln!(
        run,
        "      \"wall_seconds\": {{ \"sweep\": {sweep_wall:.6}, \"symmetry\": \
         {symmetry_wall:.6}, \"sched\": {sched_wall:.6}, \"suites\": {suites_wall:.6}, \
         \"total\": {:.6} }},",
        bench_started.elapsed().as_secs_f64()
    );
    let _ = writeln!(run, "      \"modes\": {{");
    let all_modes: Vec<&Mode> = modes
        .iter()
        .chain(&symmetry_modes)
        .chain(&sched_modes)
        .chain(&suite_modes)
        .collect();
    for (i, mode) in all_modes.iter().enumerate() {
        let _ = writeln!(run, "        \"{}\": {{", mode.name);
        let _ = writeln!(run, "          \"executions\": {},", mode.executions);
        let _ = writeln!(run, "          \"checks\": {},", mode.checks);
        let _ = writeln!(run, "          \"seconds\": {:.6},", mode.seconds);
        if let Some(effective) = mode.effective {
            let _ = writeln!(run, "          \"effective_executions\": {effective},");
            let _ = writeln!(
                run,
                "          \"effective_per_sec\": {:.1},",
                mode.effective_per_sec()
            );
        }
        let _ = writeln!(
            run,
            "          \"executions_per_sec\": {:.1}",
            mode.execs_per_sec()
        );
        let comma = if i + 1 < all_modes.len() { "," } else { "" };
        let _ = writeln!(run, "        }}{comma}");
    }
    let _ = writeln!(run, "      }},");
    let _ = writeln!(
        run,
        "      \"suite\": {{ \"forbid\": {}, \"allow\": {} }},",
        new_report.forbid.len(),
        new_report.allow.len()
    );
    let _ = writeln!(run, "      \"speedups\": {{");
    let _ = writeln!(run, "        \"ir\": {ir_speedup:.3},");
    let _ = writeln!(run, "        \"ir_incremental\": {incremental_speedup:.3},");
    let _ = writeln!(
        run,
        "        \"incremental_vs_ir\": {incremental_vs_ir:.3},"
    );
    let _ = writeln!(run, "        \"cat_loaded\": {cat_speedup:.3},");
    let _ = writeln!(
        run,
        "        \"cat_vs_incremental\": {cat_vs_incremental:.3},"
    );
    let _ = writeln!(
        run,
        "        \"suite_incremental_vs_per_exec\": {suite_speedup:.3},"
    );
    let _ = writeln!(
        run,
        "        \"symmetry_effective_vs_incremental_3t\": {symmetry_effective_ratio:.3},"
    );
    let _ = writeln!(
        run,
        "        \"sched_makespan_static_vs_adaptive\": {sched_makespan_gain:.3}"
    );
    let _ = writeln!(run, "      }}");
    run.push_str("    }");

    append_run("BENCH_synth.json", &run);
    println!("{run}");
}

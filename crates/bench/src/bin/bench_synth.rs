//! The bounded-exhaustive sweep throughput benchmark behind
//! `BENCH_synth.json`.
//!
//! Measures executions checked per second on the Table 1/Table 2 workload —
//! enumerate every candidate execution up to `max_events` and check each
//! against the transactional model and its baseline — in three
//! configurations:
//!
//! * **baseline** — the pre-refactor pipeline, reproduced verbatim: the
//!   single-threaded builder-based reference enumerator feeding an inline
//!   copy of the original x86 consistency check, which recomputes every
//!   derived relation (`sloc`, `fr`, `com`, `tfence`, the lifts) on each
//!   mention, exactly as the models did before the `ExecView` migration;
//! * **optimized** — the previous production pipeline: parallel pruned
//!   enumeration with one memoized [`ExecView`] shared by both model checks
//!   per execution, driving the retained hand-written axiom predicates
//!   (`check_view_reference`);
//! * **ir** — the current pipeline: the same enumeration and shared view,
//!   but verdicts come from the declarative axiom-IR evaluator with
//!   hash-consed common-subexpression memoization and cheapest-axiom-first
//!   early exit. Tracked so IR throughput is pinned from day one.
//!
//! Run with `cargo run --release -p tm-bench --bin bench_synth`; pass a
//! different event bound as the first argument (default 6). The JSON report
//! is written to `BENCH_synth.json` in the current directory so the perf
//! trajectory of the sweep is tracked from PR to PR.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use tm_exec::{ExecView, Execution, Fence};
use tm_models::{MemoryModel, X86Model};
use tm_relation::Relation;
use tm_synth::{enumerate_exact, enumerate_exact_reference, SynthConfig};

// ---- the pre-refactor x86 check, kept verbatim as the measured baseline ---

/// `stronglift` as it was before the empty-transaction early-out.
fn stronglift_seed(r: &Relation, t: &Relation) -> Relation {
    let tq = t.reflexive_closure();
    tq.compose(&r.difference(t)).compose(&tq)
}

/// `tfence` as it was before the empty-transaction early-out.
fn tfence_seed(exec: &Execution) -> Relation {
    let not_stxn = exec.stxn.complement();
    let enter = not_stxn.compose(&exec.stxn);
    let exit = exec.stxn.compose(&not_stxn);
    exec.po.intersection(&enter.union(&exit))
}

/// The x86 happens-before relation computed the pre-refactor way: every
/// derived relation recomputed from the bare `Execution` on each mention.
fn hb_seed(exec: &Execution, transactional: bool) -> Relation {
    let writes = exec.writes();
    let reads = exec.reads();
    let ww = Relation::cross(&writes, &writes);
    let rw = Relation::cross(&reads, &writes);
    let rr = Relation::cross(&reads, &reads);
    let ppo = ww.union(&rw).union(&rr).intersection(&exec.po);
    let locked = exec.rmw.domain().union(&exec.rmw.range());
    let id_l = Relation::identity_on(&locked);
    let mut implied = id_l.compose(&exec.po).union(&exec.po.compose(&id_l));
    let tf = if transactional {
        tfence_seed(exec)
    } else {
        Relation::new(exec.len())
    };
    implied = implied.union(&tf);
    exec.fence_rel(Fence::MFence)
        .union(&ppo)
        .union(&implied)
        .union(&exec.rfe())
        .union(&exec.fr())
        .union(&exec.co)
}

/// The full pre-refactor x86 check: same axioms, same witness extraction,
/// no memoization and no early-outs.
fn check_seed(exec: &Execution, transactional: bool) -> bool {
    let mut consistent = true;
    consistent &= exec.poloc().union(&exec.com()).find_cycle().is_none();
    consistent &= exec
        .rmw
        .intersection(&exec.fre().compose(&exec.coe()))
        .iter()
        .next()
        .is_none();
    let hb = hb_seed(exec, transactional);
    consistent &= hb.find_cycle().is_none();
    if transactional {
        consistent &= stronglift_seed(&exec.com(), &exec.stxn)
            .find_cycle()
            .is_none();
        consistent &= stronglift_seed(&hb, &exec.stxn).find_cycle().is_none();
    }
    consistent
}

/// The sweep configuration: the x86 study of Table 1, trimmed (two threads,
/// two locations, one transaction, no RMW dimension) so that the full
/// |E| ≤ 6 sweep — about ten million candidate executions — finishes in
/// minutes rather than the hours the paper reports for its SAT backend.
fn sweep_config(max_events: usize) -> SynthConfig {
    let mut cfg = SynthConfig::x86(max_events);
    cfg.max_threads = 2;
    cfg.max_locs = 2;
    cfg.rmws = false;
    cfg.max_txns = 1;
    cfg
}

struct Mode {
    name: &'static str,
    executions: usize,
    checks: usize,
    /// How many checks came back consistent — compared across the two modes
    /// to guarantee they computed the same thing.
    consistent: usize,
    seconds: f64,
}

impl Mode {
    fn execs_per_sec(&self) -> f64 {
        self.executions as f64 / self.seconds.max(f64::EPSILON)
    }
}

fn run_baseline(cfg: &SynthConfig, max_events: usize) -> Mode {
    let mut executions = 0usize;
    let mut checks = 0usize;
    let mut consistent = 0usize;
    let start = Instant::now();
    for n in 2..=max_events {
        executions += enumerate_exact_reference(cfg, n, |exec| {
            // The pre-refactor sweep: x86+TM and its baseline model, each
            // recomputing every derived relation from scratch.
            consistent += usize::from(check_seed(exec, true));
            consistent += usize::from(check_seed(exec, false));
            checks += 2;
        });
    }
    Mode {
        name: "baseline",
        executions,
        checks,
        consistent,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// The shared parallel-sweep driver: one memoized view per execution,
/// every model checked through `is_consistent`. The two measured
/// configurations differ only in that predicate:
///
/// * **optimized** — the hand-written axiom predicates
///   (`check_view_reference`), i.e. the previous production pipeline;
/// * **ir** — the axiom-IR evaluator, where shared subexpressions are
///   computed once per execution across both models and each check stops at
///   the first violated axiom, cheapest axioms first.
fn run_parallel(
    name: &'static str,
    cfg: &SynthConfig,
    max_events: usize,
    is_consistent: impl Fn(&dyn MemoryModel, &ExecView<'_>) -> bool + Sync,
) -> Mode {
    let mut executions = 0usize;
    let checks = AtomicUsize::new(0);
    let consistent = AtomicUsize::new(0);
    let start = Instant::now();
    let tm = X86Model::tm();
    let base = X86Model::baseline();
    let models: [&dyn MemoryModel; 2] = [&tm, &base];
    for n in 2..=max_events {
        executions += enumerate_exact(cfg, n, |exec| {
            let view = ExecView::new(exec);
            for model in models {
                if is_consistent(model, &view) {
                    consistent.fetch_add(1, Ordering::Relaxed);
                }
            }
            checks.fetch_add(models.len(), Ordering::Relaxed);
        });
    }
    Mode {
        name,
        executions,
        checks: checks.into_inner(),
        consistent: consistent.into_inner(),
        seconds: start.elapsed().as_secs_f64(),
    }
}

fn main() {
    let max_events: usize = match std::env::args().nth(1) {
        None => 6,
        Some(arg) => match arg.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("usage: bench_synth [max_events]   (got {arg:?})");
                std::process::exit(2);
            }
        },
    };
    let cfg = sweep_config(max_events);

    eprintln!("sweep: x86-trimmed, |E| = 2..={max_events}, 2 models per execution");
    let baseline = run_baseline(&cfg, max_events);
    eprintln!(
        "baseline : {} executions ({} checks) in {:.3}s = {:.0} execs/s",
        baseline.executions,
        baseline.checks,
        baseline.seconds,
        baseline.execs_per_sec()
    );
    let optimized = run_parallel("optimized", &cfg, max_events, |model, view| {
        model.check_view_reference(view).is_consistent()
    });
    eprintln!(
        "optimized: {} executions ({} checks) in {:.3}s = {:.0} execs/s",
        optimized.executions,
        optimized.checks,
        optimized.seconds,
        optimized.execs_per_sec()
    );
    let ir = run_parallel("ir", &cfg, max_events, |model, view| {
        model.is_consistent_view(view)
    });
    eprintln!(
        "ir       : {} executions ({} checks) in {:.3}s = {:.0} execs/s",
        ir.executions,
        ir.checks,
        ir.seconds,
        ir.execs_per_sec()
    );
    for mode in [&optimized, &ir] {
        assert_eq!(
            baseline.executions, mode.executions,
            "all pipelines must visit the same space"
        );
        assert_eq!(
            baseline.consistent, mode.consistent,
            "all pipelines must reach the same verdicts ({} differs)",
            mode.name
        );
    }

    let speedup = optimized.execs_per_sec() / baseline.execs_per_sec();
    let ir_speedup = ir.execs_per_sec() / baseline.execs_per_sec();
    let ir_vs_optimized = ir.execs_per_sec() / optimized.execs_per_sec();
    eprintln!("speedup  : memoized {speedup:.2}x, ir {ir_speedup:.2}x (ir/memoized {ir_vs_optimized:.2}x)");

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"synth-sweep\",");
    let _ = writeln!(json, "  \"config\": \"x86-trimmed\",");
    let _ = writeln!(json, "  \"max_events\": {max_events},");
    let _ = writeln!(json, "  \"models_per_execution\": 2,");
    let _ = writeln!(
        json,
        "  \"threads\": {},",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    for mode in [&baseline, &optimized, &ir] {
        let _ = writeln!(json, "  \"{}\": {{", mode.name);
        let _ = writeln!(json, "    \"executions\": {},", mode.executions);
        let _ = writeln!(json, "    \"checks\": {},", mode.checks);
        let _ = writeln!(json, "    \"seconds\": {:.6},", mode.seconds);
        let _ = writeln!(
            json,
            "    \"executions_per_sec\": {:.1}",
            mode.execs_per_sec()
        );
        let _ = writeln!(json, "  }},");
    }
    let _ = writeln!(json, "  \"speedup\": {speedup:.3},");
    let _ = writeln!(json, "  \"ir_speedup\": {ir_speedup:.3},");
    let _ = writeln!(json, "  \"ir_vs_optimized\": {ir_vs_optimized:.3}");
    json.push_str("}\n");

    std::fs::write("BENCH_synth.json", &json).expect("write BENCH_synth.json");
    println!("{json}");
}

//! Shared helpers for the benchmark harness that regenerates the paper's
//! tables and figures (see the `benches/` directory and EXPERIMENTS.md).
//!
//! Each bench prints the reproduced table/figure data on standard output and
//! then times its hot kernels with [`measure`], so that `cargo bench` both
//! regenerates the evaluation artefacts and measures the cost of producing
//! them. The harness is plain `std::time` (the toolchain is used offline, so
//! no external benchmarking crate is assumed); `bench_synth` additionally
//! emits the machine-readable `BENCH_synth.json` tracked across PRs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use tm_models::{Armv8Model, MemoryModel, PowerModel, X86Model};
use tm_synth::SynthConfig;

/// One Table 1 target: display name, transactional model, baseline model and
/// enumeration configuration.
pub type Table1Target = (
    String,
    Box<dyn MemoryModel>,
    Box<dyn MemoryModel>,
    SynthConfig,
);

/// The architectures whose Table 1 rows we regenerate, with their models and
/// enumeration configurations.
pub fn table1_targets(events: usize) -> Vec<Table1Target> {
    vec![
        (
            "x86".to_string(),
            Box::new(X86Model::tm()) as Box<dyn MemoryModel>,
            Box::new(X86Model::baseline()) as Box<dyn MemoryModel>,
            SynthConfig::x86(events),
        ),
        (
            "Power".to_string(),
            Box::new(PowerModel::tm()),
            Box::new(PowerModel::baseline()),
            SynthConfig::power(events),
        ),
        (
            "ARMv8".to_string(),
            Box::new(Armv8Model::tm()),
            Box::new(Armv8Model::baseline()),
            SynthConfig::armv8(events),
        ),
    ]
}

/// The result of timing one kernel.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Number of timed iterations.
    pub iterations: usize,
    /// Total wall-clock time across the iterations.
    pub total: Duration,
}

impl Measurement {
    /// Mean time per iteration.
    pub fn mean(&self) -> Duration {
        self.total / self.iterations.max(1) as u32
    }
}

/// Times `f` over `iterations` runs (after one untimed warm-up run) and
/// prints a `name: mean ± spread` line in the spirit of a benchmark harness.
pub fn measure(name: &str, iterations: usize, mut f: impl FnMut()) -> Measurement {
    f(); // warm-up
    let mut runs: Vec<Duration> = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let start = Instant::now();
        f();
        runs.push(start.elapsed());
    }
    let total: Duration = runs.iter().sum();
    let mean = total / iterations.max(1) as u32;
    let min = runs.iter().min().copied().unwrap_or_default();
    let max = runs.iter().max().copied().unwrap_or_default();
    println!("bench {name:<40} mean {mean:>12?}  (min {min:?}, max {max:?}, n={iterations})");
    Measurement { iterations, total }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_targets_cover_the_three_architectures() {
        let targets = table1_targets(3);
        assert_eq!(targets.len(), 3);
        for (name, tm, base, cfg) in &targets {
            assert!(!name.is_empty());
            assert!(tm.name().contains("TM") || tm.name().contains('+'));
            assert!(!base.name().contains("TM"));
            assert_eq!(cfg.max_events, 3);
        }
    }

    #[test]
    fn measure_reports_iterations() {
        let m = measure("noop", 3, || {});
        assert_eq!(m.iterations, 3);
        assert!(m.mean() <= m.total);
    }
}

//! Shared helpers for the benchmark harness that regenerates the paper's
//! tables and figures (see the `benches/` directory and EXPERIMENTS.md).
//!
//! Each bench prints the reproduced table/figure data on standard output
//! before handing the hot kernels to Criterion for timing, so that
//! `cargo bench` both regenerates the evaluation artefacts and measures the
//! cost of producing them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tm_models::{Armv8Model, MemoryModel, PowerModel, X86Model};
use tm_synth::SynthConfig;

/// One Table 1 target: display name, transactional model, baseline model and
/// enumeration configuration.
pub type Table1Target = (
    String,
    Box<dyn MemoryModel>,
    Box<dyn MemoryModel>,
    SynthConfig,
);

/// The architectures whose Table 1 rows we regenerate, with their models and
/// enumeration configurations.
pub fn table1_targets(events: usize) -> Vec<Table1Target> {
    vec![
        (
            "x86".to_string(),
            Box::new(X86Model::tm()) as Box<dyn MemoryModel>,
            Box::new(X86Model::baseline()) as Box<dyn MemoryModel>,
            SynthConfig::x86(events),
        ),
        (
            "Power".to_string(),
            Box::new(PowerModel::tm()),
            Box::new(PowerModel::baseline()),
            SynthConfig::power(events),
        ),
        (
            "ARMv8".to_string(),
            Box::new(Armv8Model::tm()),
            Box::new(Armv8Model::baseline()),
            SynthConfig::armv8(events),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_targets_cover_the_three_architectures() {
        let targets = table1_targets(3);
        assert_eq!(targets.len(), 3);
        for (name, tm, base, cfg) in &targets {
            assert!(!name.is_empty());
            assert!(tm.name().contains("TM") || tm.name().contains('+'));
            assert!(!base.name().contains("TM"));
            assert_eq!(cfg.max_events, 3);
        }
    }
}

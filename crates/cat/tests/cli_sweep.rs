//! End-to-end tests of `tm-cat sweep --checkpoint`: the exit-code contract
//! (0 ok / 1 drift / 2 usage / 3 partial / 42 injected crash), crash-then-
//! resume suite identity, and supervised sharding — all through the real
//! binary, the way CI and operators drive it.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_tm-cat");

/// Repo-root model files, relative to this crate's directory (the test
/// CWD).
const TM_MODEL: &str = "../../models/x86_tm.cat";
const BASE_MODEL: &str = "../../models/x86.cat";

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let mut p = std::env::temp_dir();
        p.push(format!("tm-cat-cli-sweep-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        Scratch(p)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn sweep(extra: &[&str]) -> Output {
    Command::new(BIN)
        .args([
            "sweep",
            TM_MODEL,
            "--suites",
            "--baseline",
            BASE_MODEL,
            "--events",
            "3",
            "--config",
            "x86",
        ])
        .args(extra)
        .env_remove("TM_SWEEP_FAIL_PLAN")
        .output()
        .expect("spawn tm-cat")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// The suite summary plus every litmus program after it — the part of the
/// output that must be identical between interrupted and clean runs. The
/// trailing `summary:` line is dropped: it carries run-specific timings
/// and unit counts by design.
fn suites_section(out: &Output) -> String {
    let text = stdout(out);
    let section = match text.find("\nforbid ") {
        Some(at) => &text[at..],
        None => panic!("no forbid line in output:\n{text}"),
    };
    let mut kept = String::new();
    for line in section.lines() {
        if line.starts_with("summary: ") {
            continue;
        }
        kept.push_str(line);
        kept.push('\n');
    }
    kept
}

#[test]
fn crash_resume_reproduces_the_clean_suites_and_exit_codes() {
    let clean = sweep(&[]);
    assert_eq!(clean.status.code(), Some(0));
    let clean_suites = suites_section(&clean);
    assert!(
        clean_suites.starts_with("\nforbid 4 allow "),
        "Table 1 pins x86 |E|=3 Forbid at 4; got:\n{clean_suites}"
    );

    let dir = Scratch::new("crash-resume");
    let ckpt = dir.path().to_str().expect("utf8 temp path");
    let crashed = sweep(&["--checkpoint", ckpt, "--fail-plan", "exit:5"]);
    assert_eq!(
        crashed.status.code(),
        Some(42),
        "injected crash must exit with the injection code, stderr:\n{}",
        String::from_utf8_lossy(&crashed.stderr)
    );

    let resumed = sweep(&["--checkpoint", ckpt, "--resume"]);
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "stderr:\n{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let resumed_out = stdout(&resumed);
    assert!(
        resumed_out.contains("reused from checkpoint"),
        "resume must report reuse:\n{resumed_out}"
    );
    assert_eq!(
        suites_section(&resumed),
        clean_suites,
        "resumed suites must be byte-identical to a clean run"
    );
}

#[test]
fn a_poisoned_unit_degrades_to_exit_three_but_still_reports() {
    let dir = Scratch::new("degraded");
    let ckpt = dir.path().to_str().expect("utf8 temp path");
    let out = sweep(&[
        "--checkpoint",
        ckpt,
        "--fail-plan",
        "panic:3",
        "--retries",
        "1",
        "--backoff-ms",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("quarantined unit"), "stderr:\n{err}");
    assert!(err.contains("DEGRADED"), "stderr:\n{err}");
    // The sweep still produced (degraded) suites rather than dying.
    assert!(
        stdout(&out).contains("\nforbid "),
        "stdout:\n{}",
        stdout(&out)
    );
}

#[test]
fn supervised_shards_match_the_unsharded_run_even_through_a_crash() {
    let clean = sweep(&[]);
    let clean_suites = suites_section(&clean);

    let dir = Scratch::new("supervised");
    let ckpt = dir.path().to_str().expect("utf8 temp path");
    let out = sweep(&[
        "--checkpoint",
        ckpt,
        "--supervise",
        "2",
        "--fail-plan",
        "exit:3",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(
        text.contains("2 launch(es)"),
        "the injected crash must force at least one shard restart:\n{text}"
    );
    assert_eq!(suites_section(&out), clean_suites);
}

#[test]
fn usage_and_io_errors_exit_two() {
    // Unknown option.
    let out = sweep(&["--definitely-not-a-flag"]);
    assert_eq!(out.status.code(), Some(2));

    // Checkpoint knobs without --checkpoint.
    let out = sweep(&["--resume"]);
    assert_eq!(out.status.code(), Some(2));

    // Bad shard spec.
    let dir = Scratch::new("usage");
    let ckpt = dir.path().to_str().expect("utf8 temp path");
    let out = sweep(&["--checkpoint", ckpt, "--shard", "2/2"]);
    assert_eq!(out.status.code(), Some(2));

    // Unreadable model file is an IO error, not a verdict.
    let out = Command::new(BIN)
        .args(["sweep", "/nonexistent/model.cat", "--events", "2"])
        .output()
        .expect("spawn tm-cat");
    assert_eq!(out.status.code(), Some(2));

    // Re-running without --resume refuses to clobber the journal.
    let dir = Scratch::new("noclobber");
    let ckpt = dir.path().to_str().expect("utf8 temp path");
    let first = sweep(&["--checkpoint", ckpt]);
    assert_eq!(first.status.code(), Some(0));
    let second = sweep(&["--checkpoint", ckpt]);
    assert_eq!(second.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&second.stderr).contains("--resume"),
        "stderr:\n{}",
        String::from_utf8_lossy(&second.stderr)
    );
}

#[test]
fn fail_plan_reaches_the_runner_through_the_environment_too() {
    let dir = Scratch::new("env-plan");
    let ckpt = dir.path().to_str().expect("utf8 temp path");
    let out = Command::new(BIN)
        .args([
            "sweep",
            TM_MODEL,
            "--suites",
            "--baseline",
            BASE_MODEL,
            "--events",
            "3",
            "--config",
            "x86",
            "--checkpoint",
            ckpt,
        ])
        .env("TM_SWEEP_FAIL_PLAN", "exit:2")
        .output()
        .expect("spawn tm-cat");
    assert_eq!(out.status.code(), Some(42));
}

//! End-to-end tests of the adaptive scheduler through the real `tm-cat`
//! binary: a SIGKILLed lease-holding shard must lose its leases to the
//! supervisor's reaper, survivors must steal and finish the work, and the
//! final suites must be byte-identical to an unsharded run.

use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_tm-cat");

/// Repo-root model files, relative to this crate's directory (the test
/// CWD).
const TM_MODEL: &str = "../../models/x86_tm.cat";
const BASE_MODEL: &str = "../../models/x86.cat";

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let mut p = std::env::temp_dir();
        p.push(format!("tm-cat-cli-sched-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        Scratch(p)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn sweep(extra: &[&str]) -> Output {
    Command::new(BIN)
        .args([
            "sweep",
            TM_MODEL,
            "--suites",
            "--baseline",
            BASE_MODEL,
            "--events",
            "3",
            "--config",
            "x86",
        ])
        .args(extra)
        .env_remove("TM_SWEEP_FAIL_PLAN")
        .output()
        .expect("spawn tm-cat")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// The suite summary plus every litmus program after it — the part of the
/// output that must be identical between scheduled and unscheduled runs.
/// The trailing `summary:` line is dropped: it carries run-specific timings
/// and unit counts by design.
fn suites_section(out: &Output) -> String {
    let text = stdout(out);
    let section = match text.find("\nforbid ") {
        Some(at) => &text[at..],
        None => panic!("no forbid line in output:\n{text}"),
    };
    let mut kept = String::new();
    for line in section.lines() {
        if line.starts_with("summary: ") {
            continue;
        }
        kept.push_str(line);
        kept.push('\n');
    }
    kept
}

fn lease_files(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("lease"))
                .count()
        })
        .unwrap_or(0)
}

/// The headline crash-tolerance story, end to end: a shard is SIGKILLed
/// while *holding a lease mid-unit* (a stall fail-plan pins it inside a
/// unit so the kill cannot land between units). Its lease file survives the
/// kill, goes stale, and a supervised run over the same checkpoint reaps it
/// — the reassignment is printed — and finishes with full coverage.
#[test]
fn sigkilled_shard_leases_are_reaped_and_survivors_finish() {
    let clean = sweep(&[]);
    assert_eq!(clean.status.code(), Some(0));
    let clean_suites = suites_section(&clean);

    let dir = Scratch::new("sigkill");
    let ckpt = dir.path();
    let leases = ckpt.join("leases");
    std::fs::create_dir_all(&leases).expect("lease dir");
    let shard0 = ckpt.join("shard-0");

    // Launch shard 0 the way the supervisor would, but with a stall plan:
    // after one completed unit it claims the next and stops making
    // progress, holding the lease.
    let mut child = Command::new(BIN)
        .args([
            "sweep",
            TM_MODEL,
            "--suites",
            "--baseline",
            BASE_MODEL,
            "--events",
            "3",
            "--config",
            "x86",
        ])
        .arg("--checkpoint")
        .arg(&shard0)
        .args(["--resume", "--shard", "0/2", "--sched", "on"])
        .arg("--lease-dir")
        .arg(&leases)
        .args(["--fail-plan", "stall:1"])
        .env_remove("TM_SWEEP_FAIL_PLAN")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn shard 0");

    // Wait until it demonstrably holds a lease, then SIGKILL it.
    let deadline = Instant::now() + Duration::from_secs(60);
    while lease_files(&leases) == 0 {
        assert!(
            Instant::now() < deadline,
            "shard 0 never claimed a lease; did it crash on startup?"
        );
        assert!(
            child.try_wait().expect("try_wait").is_none(),
            "shard 0 exited before it could be killed"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    child.kill().expect("SIGKILL shard 0");
    let _ = child.wait();
    assert!(
        lease_files(&leases) > 0,
        "the killed shard's lease must survive the kill"
    );

    // Let the orphaned lease age past the staleness bound, then supervise
    // over the same checkpoint. The supervisor reaps the lease, a live
    // shard steals the unit, and the sweep completes.
    std::thread::sleep(Duration::from_millis(700));
    let out = sweep(&[
        "--checkpoint",
        ckpt.to_str().expect("utf8 temp path"),
        "--supervise",
        "2",
        "--lease-stale-ms",
        "500",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("sweep: reassigned"),
        "the supervisor must report the reaped lease, stderr:\n{err}"
    );
    assert_eq!(
        suites_section(&out),
        clean_suites,
        "suites after a kill-and-steal must be byte-identical to a clean run"
    );
}

/// `--sched off` under supervision restores the static `id % M` sharding:
/// no lease directory appears, and the result still matches a clean run.
#[test]
fn sched_off_supervision_stays_static_and_correct() {
    let clean = sweep(&[]);
    let clean_suites = suites_section(&clean);

    let dir = Scratch::new("static");
    let ckpt = dir.path();
    let out = sweep(&[
        "--checkpoint",
        ckpt.to_str().expect("utf8 temp path"),
        "--supervise",
        "2",
        "--sched",
        "off",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        !ckpt.join("leases").exists(),
        "sched off must not create a lease directory"
    );
    assert_eq!(suites_section(&out), clean_suites);
}

#[test]
fn scheduling_flag_misuse_exits_two() {
    // Lease claiming needs a shard identity.
    let dir = Scratch::new("usage");
    let ckpt = dir.path().to_str().expect("utf8 temp path");
    let leases = format!("{ckpt}/leases");
    let out = sweep(&["--checkpoint", ckpt, "--lease-dir", &leases]);
    assert_eq!(out.status.code(), Some(2));

    // Scheduling knobs hang off the checkpointed runner.
    let out = sweep(&["--max-unit-weight", "100"]);
    assert_eq!(out.status.code(), Some(2));

    // --sched parses strictly.
    let out = sweep(&["--checkpoint", ckpt, "--sched", "sometimes"]);
    assert_eq!(out.status.code(), Some(2));

    // A zero weight bound would split forever.
    let out = sweep(&["--checkpoint", ckpt, "--max-unit-weight", "0"]);
    assert_eq!(out.status.code(), Some(2));
}

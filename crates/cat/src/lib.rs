//! A `.cat`-style model language for transactional weak-memory models.
//!
//! The herd ecosystem exchanges memory models as `.cat` files — small
//! scripts of relation algebra. This crate gives the reproduction the same
//! door: a lexer, a recursive-descent parser, and an elaborator that lower
//! a `.cat` dialect onto the hash-consed axiom IR of [`tm_exec::ir`],
//! producing a [`tm_models::ir::IrModel`] that plugs into everything the
//! built-in catalog plugs into — the litmus verdicts, the exhaustive
//! synthesis sweep, the incremental delta-driven checker, and the
//! metatheory's polarity analysis — **without recompiling anything**.
//!
//! The dialect (see the repository README for the full grammar):
//!
//! * primitive relations `po rf co fr rmw stxn stxnat scr po-loc sloc com
//!   rfe fre tfence mfence sync lwsync dmb dmb.ld …` and event sets `R W F
//!   Acq Rel SC A F.sc …`;
//! * operators `|` (union), `&` (intersection), `\` (difference), `;`
//!   (composition), `A * B` (product of sets), postfix `+ * ?` (closures),
//!   prefix `~` (inverse), `[S]` (identity on a set), and the §3.3
//!   transaction lifts `weaklift(r, t)` / `stronglift(r, t)`;
//! * `let` (and syntactically `let rec`) bindings, `include "file.cat"`,
//!   and axiom heads `acyclic e as Name`, `irreflexive e as Name`,
//!   `empty e as Name`;
//! * `(* … *)` and `//` comments, and an optional leading string literal
//!   naming the model.
//!
//! Every error — lexical, syntactic, or a kind mismatch caught during
//! elaboration — is a [`CatError`] carrying the offending span and
//! rendering compiler-style with the source line and a caret.
//!
//! # Examples
//!
//! ```
//! use tm_cat::load_str;
//! use tm_exec::catalog;
//! use tm_models::MemoryModel;
//!
//! let model = load_str(
//!     "tcoh",
//!     r#"
//!     "SC-per-loc+WeakIsol"
//!     acyclic po-loc | com as Coherence
//!     acyclic weaklift(com, stxn) as WeakIsol
//!     "#,
//! )
//! .unwrap();
//! assert_eq!(model.name(), "SC-per-loc+WeakIsol");
//! assert!(model.is_consistent(&catalog::sb()));
//! assert!(!model.is_consistent(&catalog::lb_txn()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod elab;
pub mod error;
pub mod lexer;
mod parser;
mod prim;
mod print;

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use tm_models::ir::IrModel;

pub use error::{CatError, CatWarning, Snippet, SourceFile, Sources, Span};
pub use print::{print_model, print_target};

use ast::{CatFile, Stmt};

/// How deep `include` chains may nest.
const MAX_INCLUDE_DEPTH: usize = 16;

/// Parses and elaborates `.cat` source held in memory.
///
/// `name_hint` names the model when the source has no leading string
/// literal. `include` paths resolve relative to the current directory.
pub fn load_str(name_hint: &str, text: &str) -> Result<IrModel, CatError> {
    load_str_with_warnings(name_hint, text).map(|(model, _)| model)
}

/// [`load_str`], also returning the linter's findings (see the README's
/// lint catalog) in source order.
pub fn load_str_with_warnings(
    name_hint: &str,
    text: &str,
) -> Result<(IrModel, Vec<CatWarning>), CatError> {
    let mut loader = Loader::new();
    let file = loader.parse_source("<input>".to_string(), text.to_string(), None, 0)?;
    loader.finish(name_hint, file, true)
}

/// Loads, parses and elaborates a `.cat` file from disk, following its
/// `include`s (relative to the including file, cycles rejected).
///
/// The model is named by the file's leading string literal, or its file
/// stem when absent.
pub fn load_file(path: impl AsRef<Path>) -> Result<IrModel, CatError> {
    load_file_with_warnings(path).map(|(model, _)| model)
}

/// [`load_file`], also returning the linter's findings in source order.
pub fn load_file_with_warnings(
    path: impl AsRef<Path>,
) -> Result<(IrModel, Vec<CatWarning>), CatError> {
    let path = path.as_ref();
    let mut loader = Loader::new();
    let file = loader.parse_path(path, 0)?;
    let hint = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "model".to_string());
    loader.finish(&hint, file, true)
}

/// Lints `.cat` source held in memory without requiring a complete model:
/// axiom-less files (fragments meant for `include`) are accepted.
pub fn lint_str(name_hint: &str, text: &str) -> Result<Vec<CatWarning>, CatError> {
    let mut loader = Loader::new();
    let file = loader.parse_source("<input>".to_string(), text.to_string(), None, 0)?;
    loader.finish(name_hint, file, false).map(|(_, w)| w)
}

/// Lints a `.cat` file from disk (includes followed); axiom-less files are
/// accepted.
pub fn lint_file(path: impl AsRef<Path>) -> Result<Vec<CatWarning>, CatError> {
    let path = path.as_ref();
    let mut loader = Loader::new();
    let file = loader.parse_path(path, 0)?;
    let hint = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "model".to_string());
    loader.finish(&hint, file, false).map(|(_, w)| w)
}

struct Loader {
    sources: Sources,
    /// Canonicalised paths currently on the include stack (cycle check).
    in_flight: HashSet<PathBuf>,
}

impl Loader {
    fn new() -> Loader {
        Loader {
            sources: Sources::new(),
            in_flight: HashSet::new(),
        }
    }

    fn parse_path(&mut self, path: &Path, depth: usize) -> Result<CatFile, CatError> {
        let display = path.display().to_string();
        let text = std::fs::read_to_string(path)
            .map_err(|e| CatError::io(display.clone(), format!("cannot read {display}: {e}")))?;
        let canonical = path.canonicalize().unwrap_or_else(|_| path.to_path_buf());
        if !self.in_flight.insert(canonical.clone()) {
            return Err(CatError::io(
                display.clone(),
                format!("include cycle through {display}"),
            ));
        }
        let parent = path.parent().map(Path::to_path_buf);
        let file = self.parse_source(display, text, parent, depth)?;
        self.in_flight.remove(&canonical);
        Ok(file)
    }

    /// Parses one source and splices its `include`s in place.
    fn parse_source(
        &mut self,
        display: String,
        text: String,
        dir: Option<PathBuf>,
        depth: usize,
    ) -> Result<CatFile, CatError> {
        let src = self.sources.add(display, text);
        let tokens = lexer::lex(&self.sources, src)?;
        let file = parser::parse(&self.sources, tokens)?;
        let mut stmts = Vec::with_capacity(file.stmts.len());
        for stmt in file.stmts {
            match stmt {
                Stmt::Include { path, span } => {
                    if depth + 1 > MAX_INCLUDE_DEPTH {
                        return Err(CatError::new(
                            &self.sources,
                            span,
                            format!("includes nest deeper than {MAX_INCLUDE_DEPTH}"),
                        ));
                    }
                    let resolved = match &dir {
                        Some(d) => d.join(&path),
                        None => PathBuf::from(&path),
                    };
                    let included = self.parse_path(&resolved, depth + 1)?;
                    // The included file's own leading name (if any) is
                    // ignored; its statements are spliced in order.
                    stmts.extend(included.stmts);
                }
                other => stmts.push(other),
            }
        }
        Ok(CatFile {
            name: file.name,
            stmts,
        })
    }

    fn finish(
        self,
        name_hint: &str,
        file: CatFile,
        require_axioms: bool,
    ) -> Result<(IrModel, Vec<CatWarning>), CatError> {
        let name = file.name.clone().unwrap_or_else(|| name_hint.to_string());
        let (model, warnings) = elab::elaborate_with_lints(&self.sources, name, &file)?;
        if require_axioms && model.table().axioms().is_empty() {
            return Err(CatError::io(
                "<model>",
                format!(
                    "model `{}` defines no axioms (every consistency check would \
                     trivially pass)",
                    model.table().name()
                ),
            ));
        }
        Ok((model, warnings))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_exec::catalog;
    use tm_models::{MemoryModel, Target};

    #[test]
    fn load_str_builds_a_working_model() {
        let model = load_str("demo", "acyclic po | com as Order\n").unwrap();
        assert_eq!(model.name(), "demo");
        // SC's one axiom: forbids store buffering, allows Fig. 2's run.
        assert!(!model.is_consistent(&catalog::sb()));
        assert!(model.is_consistent(&catalog::fig2()));
    }

    #[test]
    fn shared_subexpressions_are_hash_consed_across_lets_and_axioms() {
        let model = load_str(
            "demo",
            "let a = po | com\nlet b = po | com\nacyclic a as A\nirreflexive b as B\n",
        )
        .unwrap();
        // `a` and `b` intern to the same node, so the two bodies coincide.
        assert_eq!(
            model.table().axioms()[0].body,
            model.table().axioms()[1].body
        );
    }

    #[test]
    fn every_builtin_model_round_trips_through_print_and_parse() {
        for target in Target::ALL {
            let text = print_target(target);
            let model = load_str("roundtrip", &text)
                .unwrap_or_else(|e| panic!("{target}: reparse failed\n{e}\n---\n{text}"));
            let builtin = target.model();
            assert_eq!(model.name(), builtin.name(), "{target}");
            assert_eq!(
                model.axioms(),
                builtin.axioms(),
                "{target}: axiom lists differ\n{text}"
            );
        }
    }

    #[test]
    fn let_rec_allows_in_order_references_within_the_group() {
        // `b` uses the *earlier* binding `a` — sequential, not a fixpoint.
        let model = load_str(
            "demo",
            "let rec a = po-loc | com and b = a | rfe\nacyclic b as Order\n",
        )
        .unwrap();
        assert_eq!(model.axioms(), vec!["Order"]);
        // A *forward* reference within the group is equally legal: the
        // elaborator orders components by dependency, not source position.
        let model = load_str("demo", "let rec a = b and b = po\nacyclic a as A\n").unwrap();
        assert_eq!(model.axioms(), vec!["A"]);
    }

    #[test]
    fn let_rec_solves_genuine_fixpoints() {
        // hb = po | com | hb;hb is the transitive closure of po | com, so
        // the model must agree with SC everywhere the catalog can check.
        let rec_model = load_str(
            "demo",
            "let rec hb = po | com | (hb ; hb)\nacyclic hb as Order\n",
        )
        .unwrap();
        let closed = load_str("demo", "acyclic (po | com)+ as Order\n").unwrap();
        for exec in [
            catalog::sb(),
            catalog::fig1(),
            catalog::fig2(),
            catalog::lb_txn(),
            catalog::mp_txn(),
        ] {
            assert_eq!(
                rec_model.is_consistent(&exec),
                closed.is_consistent(&exec),
                "let rec and +-closure disagree"
            );
        }
    }

    #[test]
    fn non_stratified_recursion_is_rejected_with_the_cycle() {
        let err = load_str("demo", "let rec a = po \\ a\nacyclic a as A\n").unwrap_err();
        assert!(
            err.message.contains("not positively stratified"),
            "{}",
            err.message
        );
        assert!(err.message.contains("`a`"), "{}", err.message);
    }

    #[test]
    fn model_without_axioms_is_rejected() {
        let err = load_str("demo", "let a = po\n").unwrap_err();
        assert!(err.message.contains("defines no axioms"), "{}", err.message);
    }
}

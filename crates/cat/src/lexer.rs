//! The `.cat` lexer: source text to spanned tokens.
//!
//! The token set is small — identifiers (which may contain `.` and `-`, as
//! in `dmb.ld` and `po-loc`), string literals, the operator punctuation of
//! the relation algebra, and a handful of keywords. Comments are OCaml-style
//! `(* ... *)` (nesting) or `//` to end of line.

use crate::error::{CatError, Sources, Span};

/// One lexical token kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or primitive name (`po`, `dmb.ld`, `po-loc`).
    Ident(String),
    /// A double-quoted string literal (model names, include paths).
    Str(String),
    /// `let`
    Let,
    /// `rec`
    Rec,
    /// `and`
    And,
    /// `as`
    As,
    /// `include`
    Include,
    /// `acyclic`
    Acyclic,
    /// `irreflexive`
    Irreflexive,
    /// `empty`
    Empty,
    /// `=`
    Eq,
    /// `|`
    Pipe,
    /// `&`
    Amp,
    /// `;`
    Semi,
    /// `\`
    Backslash,
    /// `+`
    Plus,
    /// `*`
    Star,
    /// `?`
    Question,
    /// `~`
    Tilde,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// End of input.
    Eof,
}

impl Tok {
    /// How the token reads in diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(name) => format!("`{name}`"),
            Tok::Str(_) => "a string literal".to_string(),
            Tok::Let => "`let`".to_string(),
            Tok::Rec => "`rec`".to_string(),
            Tok::And => "`and`".to_string(),
            Tok::As => "`as`".to_string(),
            Tok::Include => "`include`".to_string(),
            Tok::Acyclic => "`acyclic`".to_string(),
            Tok::Irreflexive => "`irreflexive`".to_string(),
            Tok::Empty => "`empty`".to_string(),
            Tok::Eq => "`=`".to_string(),
            Tok::Pipe => "`|`".to_string(),
            Tok::Amp => "`&`".to_string(),
            Tok::Semi => "`;`".to_string(),
            Tok::Backslash => "`\\`".to_string(),
            Tok::Plus => "`+`".to_string(),
            Tok::Star => "`*`".to_string(),
            Tok::Question => "`?`".to_string(),
            Tok::Tilde => "`~`".to_string(),
            Tok::LParen => "`(`".to_string(),
            Tok::RParen => "`)`".to_string(),
            Tok::LBracket => "`[`".to_string(),
            Tok::RBracket => "`]`".to_string(),
            Tok::Comma => "`,`".to_string(),
            Tok::Eof => "end of input".to_string(),
        }
    }
}

/// A token with its source span.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token kind (and payload, for identifiers and strings).
    pub tok: Tok,
    /// Where it sits in the source.
    pub span: Span,
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    // `.` and `-` are name characters (`dmb.ld`, `po-loc`): the dialect has
    // no binary minus or dot operator, so the grammar stays unambiguous.
    c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-'
}

/// Lexes one source file (index `src` in `sources`) into tokens, ending with
/// a [`Tok::Eof`] token.
pub fn lex(sources: &Sources, src: u32) -> Result<Vec<Token>, CatError> {
    let text = sources.file(src).text.clone();
    let bytes: Vec<char> = text.chars().collect();
    // Byte offsets per char index, so spans are byte-based like the text.
    let mut offsets = Vec::with_capacity(bytes.len() + 1);
    let mut off = 0;
    for c in &bytes {
        offsets.push(off);
        off += c.len_utf8();
    }
    offsets.push(off);

    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        let start = offsets[i];
        // Whitespace.
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && bytes.get(i + 1) == Some(&'/') {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Nesting block comment.
        if c == '(' && bytes.get(i + 1) == Some(&'*') {
            let open = Span::new(src, start, offsets[i + 2]);
            let mut depth = 1;
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == '(' && bytes.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == '*' && bytes.get(i + 1) == Some(&')') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            if depth > 0 {
                return Err(CatError::new(sources, open, "unterminated comment"));
            }
            continue;
        }
        // String literal.
        if c == '"' {
            let mut s = String::new();
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] != '"' {
                if bytes[j] == '\n' {
                    break;
                }
                s.push(bytes[j]);
                j += 1;
            }
            if bytes.get(j) != Some(&'"') {
                let span = Span::new(src, start, offsets[j]);
                return Err(CatError::new(sources, span, "unterminated string literal"));
            }
            out.push(Token {
                tok: Tok::Str(s),
                span: Span::new(src, start, offsets[j + 1]),
            });
            i = j + 1;
            continue;
        }
        // Identifier or keyword.
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < bytes.len() && is_ident_continue(bytes[j]) {
                j += 1;
            }
            let word: String = bytes[i..j].iter().collect();
            let tok = match word.as_str() {
                "let" => Tok::Let,
                "rec" => Tok::Rec,
                "and" => Tok::And,
                "as" => Tok::As,
                "include" => Tok::Include,
                "acyclic" => Tok::Acyclic,
                "irreflexive" => Tok::Irreflexive,
                "empty" => Tok::Empty,
                _ => Tok::Ident(word),
            };
            out.push(Token {
                tok,
                span: Span::new(src, start, offsets[j]),
            });
            i = j;
            continue;
        }
        // Punctuation.
        let tok = match c {
            '=' => Tok::Eq,
            '|' => Tok::Pipe,
            '&' => Tok::Amp,
            ';' => Tok::Semi,
            '\\' => Tok::Backslash,
            '+' => Tok::Plus,
            '*' => Tok::Star,
            '?' => Tok::Question,
            '~' => Tok::Tilde,
            '(' => Tok::LParen,
            ')' => Tok::RParen,
            '[' => Tok::LBracket,
            ']' => Tok::RBracket,
            ',' => Tok::Comma,
            other => {
                let span = Span::new(src, start, offsets[i + 1]);
                return Err(CatError::new(
                    sources,
                    span,
                    format!("unexpected character `{other}`"),
                ));
            }
        };
        out.push(Token {
            tok,
            span: Span::new(src, start, offsets[i + 1]),
        });
        i += 1;
    }
    out.push(Token {
        tok: Tok::Eof,
        span: Span::new(src, off, off),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex_str(text: &str) -> Result<Vec<Tok>, CatError> {
        let mut sources = Sources::new();
        let src = sources.add("<test>", text);
        Ok(lex(&sources, src)?.into_iter().map(|t| t.tok).collect())
    }

    #[test]
    fn lexes_identifiers_with_dots_and_dashes() {
        let toks = lex_str("po-loc | dmb.ld ; F.sc").unwrap();
        assert_eq!(
            toks,
            vec![
                Tok::Ident("po-loc".into()),
                Tok::Pipe,
                Tok::Ident("dmb.ld".into()),
                Tok::Semi,
                Tok::Ident("F.sc".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn comments_nest_and_line_comments_stop_at_newline() {
        let toks = lex_str("po (* outer (* inner *) still *) | // rest\nrf").unwrap();
        assert_eq!(
            toks,
            vec![
                Tok::Ident("po".into()),
                Tok::Pipe,
                Tok::Ident("rf".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn rejects_stray_characters_with_a_span() {
        let mut sources = Sources::new();
        let src = sources.add("<test>", "po @ rf");
        let err = lex(&sources, src).unwrap_err();
        assert!(err.message.contains("unexpected character `@`"));
        assert_eq!((err.snippet.line, err.snippet.col), (1, 4));
    }
}

//! `tm-cat` — load, check and sweep `.cat` memory models at runtime.
//!
//! ```text
//! tm-cat list                       # litmus tests and built-in targets
//! tm-cat print <target>             # render a built-in model as .cat
//! tm-cat check <file> [options]     # verdicts on named litmus executions
//! tm-cat sweep <file> [options]     # bounded-exhaustive synthesis sweep
//! tm-cat lint <file> [options]      # semantic static analysis (see README)
//! ```
//!
//! `lint` options:
//!   --deny warnings  exit 1 when any finding is reported (for CI gates)
//!
//! `check` options:
//!   --litmus NAME   check one named execution (repeatable; default: all)
//!   --expect TARGET compare every verdict against a built-in model and
//!                   exit non-zero on any drift
//!   --program       also print each execution's litmus program (§2.2)
//!
//! `sweep` options:
//!   --events N      event bound (default 4)
//!   --config C      enumeration preset: x86 | x86-trimmed | x86-trimmed-3t |
//!                   power | armv8 | cpp
//!   --expect TARGET compare per-execution consistency against a built-in
//!                   model and exit non-zero on any drift
//!   --incremental   drive the delta-threading enumeration instead of the
//!                   per-execution pipeline (verdicts must agree)
//!   --symmetry on|off  `on` visits one canonical representative per
//!                   thread/location-renaming class, reporting both
//!                   representative and orbit-weighted totals (default off)
//!   --suites        synthesise the Forbid/Allow conformance suites (Table 1)
//!                   for the loaded model against --baseline FILE, via the
//!                   incremental pipeline (per-worker stateful checkers,
//!                   savepoint-probed ⊏-minimality walks)
//!
//! `sweep` checkpointing (fault-tolerant runs; see README "Checkpointed
//! sweeps"):
//!   --checkpoint DIR    journal completed work units into DIR; an
//!                       interrupted run resumed from the journal produces
//!                       suites identical to an uninterrupted one
//!   --resume            replay an existing journal and continue it
//!   --shard I/M         run only work units with id % M == I
//!   --supervise M       spawn M shard children (checkpoints DIR/shard-I),
//!                       restart crashed ones, then merge their journals
//!   --budget SECS       wall-clock budget; unfinished units stay pending
//!   --unit-deadline S   per-unit deadline; over-deadline units are retried,
//!                       then quarantined
//!   --retries N         retry attempts per failing unit (default 2)
//!   --backoff-ms MS     base retry backoff, doubled per attempt (default 25)
//!   --sync-batch N      journal records per fsync (default 1)
//!   --fail-plan KIND:K  fault injection: panic|panic-once|exit|stall after
//!                       K claimed units (also: TM_SWEEP_FAIL_PLAN env var)
//!
//! `sweep` scheduling (adaptive dispatch; see README "Scheduling"):
//!   --sched on|off      weight-ordered (heaviest-first) dispatch with
//!                       cooperative unit splitting, and — under
//!                       --supervise — cross-shard work stealing through a
//!                       shared lease directory (default on; `off` restores
//!                       FIFO order and static `id % M` shards)
//!   --max-unit-weight N pre-split any unit whose weight bound exceeds N
//!                       (default: full sweep weight / 4·threads)
//!   --lease-dir DIR     claim units from the whole frontier via atomic
//!                       lease files in DIR instead of a static shard slice
//!                       (needs --shard; --supervise sets this up itself)
//!   --lease-stale-ms MS reap leases idle longer than MS so survivors can
//!                       steal a dead shard's units (default 10000)
//!   --launch N          provenance stamp for lease claims (set by the
//!                       supervisor on restarts; default 0)
//!
//! `sweep` observability (see README "Observability"):
//!   --progress          live stderr progress line (`units done/total,
//!                       execs/s, ETA`); under --supervise the parent
//!                       aggregates per-shard heartbeat files
//!   --report PATH       write the machine-readable end-of-run report
//!                       (`tm-sweep-report/v1`) to PATH
//!   --obs SINK          event sink: null (default) | stderr | json:PATH
//!
//! Every `sweep` run ends with a one-line `summary:` on stdout — units,
//! representatives, executions covered, elapsed, quarantined — on every
//! exit path, including the degraded exit 3.
//!
//! Exit codes: 0 success; 1 verdict drift from --expect or lint findings
//! under --deny warnings; 2 usage, parse or IO error; 3 sweep finished
//! degraded (quarantined units) or ran out of budget with units still
//! pending.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use tm_cat::{lint_file, load_file_with_warnings, print_target};
use tm_exec::{catalog, Execution};
use tm_litmus::from_execution;
use tm_models::ir::IrModel;
use tm_models::{MemoryModel, Target};
use tm_obs::{Obs, SinkKind};
use tm_sweep::{
    merge_sharded, run_sweep, supervise_with, write_report, FailPlan, Heartbeat, SupervisorOptions,
    SweepJob, SweepMode, SweepOptions, SweepOutcome, SweepStatus,
};
use tm_synth::{
    enumerate_exact, enumerate_exact_incremental, enumerate_reduced_incremental,
    synthesise_suites_with, Symmetry, SynthConfig,
};

/// Exit code for a sweep that finished degraded (quarantined units) or ran
/// out of budget with units still pending.
const EXIT_PARTIAL: u8 = 3;

fn named_executions() -> Vec<(&'static str, Execution)> {
    catalog::named()
}

fn parse_target(name: &str) -> Result<Target, String> {
    Target::ALL
        .into_iter()
        .find(|t| t.name() == name)
        .ok_or_else(|| {
            let all: Vec<&str> = Target::ALL.iter().map(|t| t.name()).collect();
            format!(
                "unknown target `{name}` (expected one of: {})",
                all.join(", ")
            )
        })
}

fn parse_config(name: &str, events: usize) -> Result<SynthConfig, String> {
    match name {
        "x86" => Ok(SynthConfig::x86(events)),
        // The trimmed Table-1 study space (the `bench_synth` configuration):
        // no RMWs or fences, two locations, one transaction, and two or
        // three threads. `-3t` is the symmetry-study variant — with a third
        // thread the renaming group is large enough for `--symmetry on` to
        // pay, which is what makes |E| = 7 sweeps of this space tractable.
        "x86-trimmed" | "x86-trimmed-3t" => {
            let mut cfg = SynthConfig::x86(events);
            cfg.max_threads = if name.ends_with("-3t") { 3 } else { 2 };
            cfg.max_locs = 2;
            cfg.rmws = false;
            cfg.max_txns = 1;
            Ok(cfg)
        }
        "power" => Ok(SynthConfig::power(events)),
        "armv8" => Ok(SynthConfig::armv8(events)),
        "cpp" => Ok(SynthConfig::cpp(events)),
        other => Err(format!(
            "unknown config `{other}` (expected x86, x86-trimmed, x86-trimmed-3t, \
             power, armv8 or cpp)"
        )),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  tm-cat list\n  tm-cat print <target>\n  tm-cat check <file.cat> \
         [--litmus NAME]... [--expect TARGET] [--program]\n  tm-cat sweep <file.cat> \
         [--events N] [--config x86|x86-trimmed[-3t]|power|armv8|cpp] [--expect TARGET] \
         [--incremental] \
         [--symmetry on|off]\n                [--suites --baseline <file.cat>] \
         [--checkpoint DIR [--resume] \
         [--shard I/M | --supervise M] [--budget SECS]\n                 [--unit-deadline SECS] \
         [--retries N] [--backoff-ms MS] [--sync-batch N]\n                 [--fail-plan KIND:K] \
         [--sched on|off] [--max-unit-weight N]\n                 [--lease-dir DIR] \
         [--lease-stale-ms MS] [--launch N]\n                 \
         [--progress] [--report PATH] [--obs null|stderr|json:PATH]]\n  \
         tm-cat lint <file.cat> [--deny warnings]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "list" => list(),
        "print" => match args.get(1).map(|t| parse_target(t)) {
            Some(Ok(target)) => {
                print!("{}", print_target(target));
                ExitCode::SUCCESS
            }
            Some(Err(msg)) => {
                eprintln!("tm-cat: {msg}");
                ExitCode::from(2)
            }
            None => usage(),
        },
        "check" => check(&args[1..]),
        "sweep" => sweep(&args[1..]),
        "lint" => lint(&args[1..]),
        _ => usage(),
    }
}

fn list() -> ExitCode {
    println!("litmus executions (tm-cat check --litmus NAME):");
    for (name, exec) in named_executions() {
        println!("  {name:<24} ({} events)", exec.len());
    }
    println!("\nbuilt-in targets (tm-cat print TARGET, --expect TARGET):");
    for target in Target::ALL {
        println!("  {}", target.name());
    }
    ExitCode::SUCCESS
}

/// Loads a `.cat` model or reports the failure as a usage/IO error (exit
/// code 2) — a missing or unparsable file is an operator problem, not a
/// verdict. Lint findings go to stderr (stdout stays machine-greppable)
/// without affecting the exit code; `tm-cat lint --deny warnings` is the
/// gate.
fn load_or_exit(path: &str) -> Result<IrModel, ExitCode> {
    match load_file_with_warnings(path) {
        Ok((model, warnings)) => {
            for w in &warnings {
                eprintln!("{w}\n");
            }
            Ok(model)
        }
        Err(e) => {
            eprintln!("{e}");
            Err(ExitCode::from(2))
        }
    }
}

/// `tm-cat lint <file> [--deny warnings]`: run the semantic linter alone.
/// Exit 0 when clean, 1 when findings exist under `--deny warnings`, 2 on
/// usage/parse/IO errors. Axiom-less fragments (files meant for `include`)
/// lint fine.
fn lint(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let mut deny = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--deny" if args.get(i + 1).map(String::as_str) == Some("warnings") => {
                deny = true;
                i += 2;
            }
            other => {
                eprintln!("tm-cat: unknown option `{other}` (expected --deny warnings)");
                return usage();
            }
        }
    }
    let warnings = match lint_file(path) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    for w in &warnings {
        eprintln!("{w}\n");
    }
    match warnings.len() {
        0 => {
            println!("{path}: clean");
            ExitCode::SUCCESS
        }
        n => {
            println!(
                "{path}: {n} finding(s){}",
                if deny { " (denied)" } else { "" }
            );
            if deny {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let mut litmus: Vec<String> = Vec::new();
    let mut expect: Option<Target> = None;
    let mut program = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--litmus" if i + 1 < args.len() => {
                litmus.push(args[i + 1].clone());
                i += 2;
            }
            "--expect" if i + 1 < args.len() => {
                match parse_target(&args[i + 1]) {
                    Ok(t) => expect = Some(t),
                    Err(msg) => {
                        eprintln!("tm-cat: {msg}");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--program" => {
                program = true;
                i += 1;
            }
            other => {
                eprintln!("tm-cat: unknown option `{other}`");
                return usage();
            }
        }
    }

    let model = match load_or_exit(path) {
        Ok(m) => m,
        Err(code) => return code,
    };
    println!(
        "loaded `{}` from {path} ({} axioms: {})",
        model.name(),
        model.table().axioms().len(),
        model.axioms().join(", ")
    );

    let all = named_executions();
    let selected: Vec<&(&str, Execution)> = if litmus.is_empty() {
        all.iter().collect()
    } else {
        let mut out = Vec::new();
        for want in &litmus {
            match all.iter().find(|(name, _)| name == want) {
                Some(entry) => out.push(entry),
                None => {
                    eprintln!("tm-cat: unknown litmus test `{want}` (see `tm-cat list`)");
                    return ExitCode::from(2);
                }
            }
        }
        out
    };

    let reference = expect.map(|t| t.model());
    let mut drift = 0usize;
    for (name, exec) in &selected {
        let verdict = model.check(exec);
        println!("{name:<24} {verdict}");
        if program {
            println!("{}", from_execution(exec, name));
        }
        if let Some(reference) = &reference {
            let expected = reference.check(exec);
            // Witness-level comparison: names AND cycles must coincide.
            if verdict.violations != expected.violations {
                drift += 1;
                println!("  DRIFT: built-in {expected}");
            }
        }
    }
    if let Some(target) = expect {
        if drift > 0 {
            eprintln!(
                "tm-cat: {drift} verdict(s) drift from built-in `{}`",
                target.name()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "all {} verdicts match built-in `{}`",
            selected.len(),
            target.name()
        );
    }
    ExitCode::SUCCESS
}

/// Everything the `sweep` subcommand parsed from its arguments.
struct SweepArgs {
    path: String,
    events: usize,
    config_name: String,
    expect: Option<Target>,
    incremental: bool,
    symmetry: Symmetry,
    suites: bool,
    baseline_path: Option<String>,
    checkpoint: Option<PathBuf>,
    resume: bool,
    shard: Option<(u32, u32)>,
    supervise: Option<u32>,
    budget: Option<Duration>,
    unit_deadline: Option<Duration>,
    retries: u32,
    backoff: Duration,
    sync_batch: usize,
    fail_plan: Option<FailPlan>,
    sched: bool,
    max_unit_weight: Option<u64>,
    lease_dir: Option<PathBuf>,
    lease_stale_ms: u64,
    launch: u32,
    progress: bool,
    report: Option<PathBuf>,
    obs_sink: SinkKind,
}

fn parse_shard(s: &str) -> Result<(u32, u32), String> {
    let (i, m) = s
        .split_once('/')
        .ok_or_else(|| format!("bad shard `{s}` (expected I/M)"))?;
    let i: u32 = i.parse().map_err(|_| format!("bad shard index `{i}`"))?;
    let m: u32 = m.parse().map_err(|_| format!("bad shard count `{m}`"))?;
    if m == 0 || i >= m {
        return Err(format!("bad shard {i}/{m} (expected 0 <= I < M)"));
    }
    Ok((i, m))
}

fn parse_secs(flag: &str, s: &str) -> Result<Duration, String> {
    let secs: f64 = s
        .parse()
        .map_err(|_| format!("{flag} expects a number of seconds"))?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(format!("{flag} expects a non-negative number of seconds"));
    }
    Ok(Duration::from_secs_f64(secs))
}

fn parse_sweep_args(args: &[String]) -> Result<SweepArgs, ExitCode> {
    let Some(path) = args.first() else {
        return Err(usage());
    };
    let mut parsed = SweepArgs {
        path: path.clone(),
        events: 4,
        config_name: "x86".to_string(),
        expect: None,
        incremental: false,
        symmetry: Symmetry::Full,
        suites: false,
        baseline_path: None,
        checkpoint: None,
        resume: false,
        shard: None,
        supervise: None,
        budget: None,
        unit_deadline: None,
        retries: 2,
        backoff: Duration::from_millis(25),
        sync_batch: 1,
        fail_plan: None,
        sched: true,
        max_unit_weight: None,
        lease_dir: None,
        lease_stale_ms: 10_000,
        launch: 0,
        progress: false,
        report: None,
        obs_sink: SinkKind::Null,
    };
    let fail = |msg: String| {
        eprintln!("tm-cat: {msg}");
        ExitCode::from(2)
    };
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1);
        match flag {
            "--suites" => {
                parsed.suites = true;
                i += 1;
            }
            "--incremental" => {
                parsed.incremental = true;
                i += 1;
            }
            "--resume" => {
                parsed.resume = true;
                i += 1;
            }
            "--progress" => {
                parsed.progress = true;
                i += 1;
            }
            "--baseline" | "--events" | "--config" | "--expect" | "--symmetry" | "--checkpoint"
            | "--shard" | "--supervise" | "--budget" | "--unit-deadline" | "--retries"
            | "--backoff-ms" | "--sync-batch" | "--fail-plan" | "--sched" | "--max-unit-weight"
            | "--lease-dir" | "--lease-stale-ms" | "--launch" | "--report" | "--obs" => {
                let Some(value) = value else {
                    return Err(fail(format!("{flag} expects a value")));
                };
                match flag {
                    "--baseline" => parsed.baseline_path = Some(value.clone()),
                    "--events" => {
                        parsed.events = value
                            .parse()
                            .map_err(|_| fail("--events expects a number".into()))?
                    }
                    "--config" => parsed.config_name = value.clone(),
                    "--expect" => parsed.expect = Some(parse_target(value).map_err(fail)?),
                    "--symmetry" => parsed.symmetry = Symmetry::parse(value).map_err(fail)?,
                    "--checkpoint" => parsed.checkpoint = Some(PathBuf::from(value)),
                    "--shard" => parsed.shard = Some(parse_shard(value).map_err(fail)?),
                    "--supervise" => {
                        let m: u32 = value
                            .parse()
                            .map_err(|_| fail("--supervise expects a shard count".into()))?;
                        if m == 0 {
                            return Err(fail("--supervise expects at least one shard".into()));
                        }
                        parsed.supervise = Some(m);
                    }
                    "--budget" => parsed.budget = Some(parse_secs(flag, value).map_err(fail)?),
                    "--unit-deadline" => {
                        parsed.unit_deadline = Some(parse_secs(flag, value).map_err(fail)?)
                    }
                    "--retries" => {
                        parsed.retries = value
                            .parse()
                            .map_err(|_| fail("--retries expects a number".into()))?
                    }
                    "--backoff-ms" => {
                        let ms: u64 = value
                            .parse()
                            .map_err(|_| fail("--backoff-ms expects milliseconds".into()))?;
                        parsed.backoff = Duration::from_millis(ms);
                    }
                    "--sync-batch" => {
                        let n: usize = value
                            .parse()
                            .map_err(|_| fail("--sync-batch expects a number".into()))?;
                        if n == 0 {
                            return Err(fail("--sync-batch must be at least 1".into()));
                        }
                        parsed.sync_batch = n;
                    }
                    "--fail-plan" => parsed.fail_plan = Some(FailPlan::parse(value).map_err(fail)?),
                    "--sched" => {
                        parsed.sched = match value.as_str() {
                            "on" => true,
                            "off" => false,
                            other => {
                                return Err(fail(format!("--sched expects on|off, got `{other}`")))
                            }
                        }
                    }
                    "--max-unit-weight" => {
                        let n: u64 = value
                            .parse()
                            .map_err(|_| fail("--max-unit-weight expects a number".into()))?;
                        if n == 0 {
                            return Err(fail("--max-unit-weight must be at least 1".into()));
                        }
                        parsed.max_unit_weight = Some(n);
                    }
                    "--lease-dir" => parsed.lease_dir = Some(PathBuf::from(value)),
                    "--lease-stale-ms" => {
                        parsed.lease_stale_ms = value
                            .parse()
                            .map_err(|_| fail("--lease-stale-ms expects milliseconds".into()))?
                    }
                    "--launch" => {
                        parsed.launch = value
                            .parse()
                            .map_err(|_| fail("--launch expects a number".into()))?
                    }
                    "--report" => parsed.report = Some(PathBuf::from(value)),
                    "--obs" => parsed.obs_sink = SinkKind::parse(value).map_err(fail)?,
                    _ => unreachable!("matched above"),
                }
                i += 2;
            }
            other => {
                eprintln!("tm-cat: unknown option `{other}`");
                return Err(usage());
            }
        }
    }
    if parsed.fail_plan.is_none() {
        parsed.fail_plan = FailPlan::from_env().map_err(fail)?;
    }

    // Flag compatibility: checkpointing knobs need --checkpoint; sharding
    // and supervision are mutually exclusive ways to split the space.
    if parsed.checkpoint.is_none()
        && (parsed.resume
            || parsed.shard.is_some()
            || parsed.supervise.is_some()
            || parsed.budget.is_some()
            || parsed.unit_deadline.is_some()
            || parsed.fail_plan.is_some()
            || parsed.max_unit_weight.is_some()
            || parsed.lease_dir.is_some())
    {
        return Err(fail(
            "--resume/--shard/--supervise/--budget/--unit-deadline/--fail-plan/\
             --max-unit-weight/--lease-dir need --checkpoint DIR"
                .into(),
        ));
    }
    // Lease-based claiming replaces the static shard *slice* but still needs
    // the shard *identity* to stamp its claims (the runner enforces this
    // too; failing here gives the nicer message).
    if parsed.lease_dir.is_some() && parsed.shard.is_none() {
        return Err(fail(
            "--lease-dir needs --shard I/M (or use --supervise M, which manages \
             the lease directory itself)"
                .into(),
        ));
    }
    // Progress, reports and event sinks hang off the checkpointed runner
    // (heartbeats and per-unit telemetry live next to the journal).
    if parsed.checkpoint.is_none()
        && (parsed.progress || parsed.report.is_some() || parsed.obs_sink != SinkKind::Null)
    {
        return Err(fail(
            "--progress/--report/--obs need --checkpoint DIR".into(),
        ));
    }
    if parsed.shard.is_some() && parsed.supervise.is_some() {
        return Err(fail(
            "--shard and --supervise are mutually exclusive".into(),
        ));
    }
    if parsed.suites && (parsed.expect.is_some() || parsed.incremental) {
        eprintln!("tm-cat: --suites does not combine with --expect or --incremental");
        return Err(ExitCode::from(2));
    }
    if parsed.suites && parsed.baseline_path.is_none() {
        eprintln!("tm-cat: --suites needs --baseline <file.cat> (the non-TM model)");
        return Err(ExitCode::from(2));
    }
    if parsed.checkpoint.is_some() && parsed.incremental {
        eprintln!("tm-cat: --checkpoint always runs incrementally; drop --incremental");
        return Err(ExitCode::from(2));
    }
    Ok(parsed)
}

fn sweep(args: &[String]) -> ExitCode {
    let parsed = match parse_sweep_args(args) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let config = match parse_config(&parsed.config_name, parsed.events) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("tm-cat: {msg}");
            return ExitCode::from(2);
        }
    };
    let model = match load_or_exit(&parsed.path) {
        Ok(m) => m,
        Err(code) => return code,
    };
    let baseline = match &parsed.baseline_path {
        Some(path) => match load_or_exit(path) {
            Ok(m) => Some(m),
            Err(code) => return code,
        },
        None => None,
    };

    if parsed.supervise.is_some() {
        return sweep_supervised(&parsed);
    }
    if parsed.checkpoint.is_some() {
        return sweep_checkpointed(&parsed, &model, baseline.as_ref(), &config);
    }
    if parsed.suites {
        return sweep_suites(
            &model,
            baseline.as_ref().expect("validated above"),
            &config,
            parsed.events,
            parsed.symmetry,
        );
    }
    sweep_legacy(&parsed, &model, &config)
}

/// The original in-memory sweep: no checkpointing, counts only.
fn sweep_legacy(parsed: &SweepArgs, model: &IrModel, config: &SynthConfig) -> ExitCode {
    let events = parsed.events;
    let incremental = parsed.incremental;
    let reduced = parsed.symmetry.is_reduced();
    println!(
        "sweeping `{}` over the {} space, |E| <= {events}{}{}",
        model.name(),
        parsed.config_name,
        if incremental { " (incremental)" } else { "" },
        if reduced { " (symmetry-reduced)" } else { "" }
    );

    let reference = parsed.expect.map(|t| t.model());
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    let total = AtomicUsize::new(0);
    let consistent = AtomicUsize::new(0);
    let weighted_consistent = AtomicU64::new(0);
    let drift = AtomicUsize::new(0);
    let start = std::time::Instant::now();
    let mut executions = 0usize;
    let mut weighted_executions = 0u64;
    for n in 2..=events {
        if reduced {
            // Symmetry-reduced: visit one canonical representative per
            // isomorphism class, counting each with its orbit size so the
            // totals still describe the full space.
            let tally = enumerate_reduced_incremental(config, n, || {
                let mut checker = model.incremental();
                let (total, consistent, weighted_consistent, drift) =
                    (&total, &consistent, &weighted_consistent, &drift);
                let reference = &reference;
                move |exec: &Execution, delta: &tm_exec::ir::Delta, orbit: u64| {
                    checker.advance(exec, delta);
                    let ok = checker.is_consistent(exec);
                    total.fetch_add(1, Ordering::Relaxed);
                    if ok {
                        consistent.fetch_add(1, Ordering::Relaxed);
                        weighted_consistent.fetch_add(orbit, Ordering::Relaxed);
                    }
                    if let Some(reference) = reference {
                        if reference.is_consistent(exec) != ok {
                            drift.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
            executions += tally.representatives;
            weighted_executions += tally.weighted;
        } else if incremental {
            executions += enumerate_exact_incremental(config, n, || {
                let mut checker = model.incremental();
                let (total, consistent, drift) = (&total, &consistent, &drift);
                let reference = &reference;
                move |exec: &Execution, delta: &tm_exec::ir::Delta| {
                    checker.advance(exec, delta);
                    let ok = checker.is_consistent(exec);
                    total.fetch_add(1, Ordering::Relaxed);
                    if ok {
                        consistent.fetch_add(1, Ordering::Relaxed);
                    }
                    if let Some(reference) = reference {
                        if reference.is_consistent(exec) != ok {
                            drift.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        } else {
            executions += enumerate_exact(config, n, |exec| {
                let ok = model.is_consistent(exec);
                total.fetch_add(1, Ordering::Relaxed);
                if ok {
                    consistent.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(reference) = &reference {
                    if reference.is_consistent(exec) != ok {
                        drift.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    }
    let secs = start.elapsed().as_secs_f64();
    if reduced {
        let consistent = consistent.load(Ordering::Relaxed);
        let weighted_consistent = weighted_consistent.load(Ordering::Relaxed);
        println!(
            "{executions} representatives in {secs:.3}s ({:.0} effective execs/s): \
             {consistent} consistent, {} forbidden",
            weighted_executions as f64 / secs.max(f64::EPSILON),
            executions - consistent,
        );
        println!(
            "orbit-weighted: {weighted_executions} executions: {weighted_consistent} consistent, \
             {} forbidden",
            weighted_executions - weighted_consistent,
        );
    } else {
        println!(
            "{executions} executions in {secs:.3}s ({:.0} execs/s): {} consistent, {} forbidden",
            executions as f64 / secs.max(f64::EPSILON),
            consistent.load(Ordering::Relaxed),
            total.load(Ordering::Relaxed) - consistent.load(Ordering::Relaxed),
        );
    }
    let mut code = ExitCode::SUCCESS;
    if let Some(target) = parsed.expect {
        let drift = drift.load(Ordering::Relaxed);
        if drift > 0 {
            eprintln!(
                "tm-cat: {drift} execution(s) drift from built-in `{}`",
                target.name()
            );
            code = ExitCode::FAILURE;
        } else {
            println!(
                "verdicts match built-in `{}` on the whole space",
                target.name()
            );
        }
    }
    // The in-memory sweep has no work-unit decomposition.
    let covered = if reduced {
        weighted_executions
    } else {
        executions as u64
    };
    print_summary(0, executions as u64, covered, secs, 0);
    code
}

/// `sweep --suites`: synthesise the Forbid/Allow conformance suites for a
/// loaded model against a loaded baseline — the Table 1 row for a model
/// that exists only as `.cat` text. Runs the incremental pipeline (the
/// [`IrModel`] provides a delta-driven checker, so the enumerator mutates
/// one execution per worker in place and the ⊏-minimality walk probes each
/// weakening by savepoint/rollback).
fn sweep_suites(
    model: &IrModel,
    baseline: &IrModel,
    config: &SynthConfig,
    events: usize,
    symmetry: Symmetry,
) -> ExitCode {
    println!(
        "synthesising Forbid/Allow suites: `{}` vs baseline `{}`, |E| = {events}{}",
        model.name(),
        baseline.name(),
        if symmetry.is_reduced() {
            " (symmetry-reduced)"
        } else {
            ""
        }
    );
    let report = synthesise_suites_with(model, baseline, config, events, symmetry);
    if symmetry.is_reduced() {
        println!(
            "{} representatives ({} executions covered) in {:.3}s ({:.0} effective execs/s)",
            report.enumerated,
            report.effective,
            report.elapsed.as_secs_f64(),
            report.effective as f64 / report.elapsed.as_secs_f64().max(f64::EPSILON),
        );
    } else {
        println!(
            "{} executions in {:.3}s ({:.0} execs/s)",
            report.enumerated,
            report.elapsed.as_secs_f64(),
            report.enumerated as f64 / report.elapsed.as_secs_f64().max(f64::EPSILON),
        );
    }
    print_suite_lines(&report);
    let covered = if symmetry.is_reduced() {
        report.effective
    } else {
        report.enumerated as u64
    };
    print_summary(
        0,
        report.enumerated as u64,
        covered,
        report.elapsed.as_secs_f64(),
        0,
    );
    ExitCode::SUCCESS
}

fn print_suite_lines(report: &tm_synth::SuiteReport) {
    let hist = report.forbid_txn_histogram();
    println!(
        "forbid {} allow {} (forbid txn histogram: {} with 1, {} with 2, {} with 3+)",
        report.forbid.len(),
        report.allow.len(),
        hist[1],
        hist[2],
        hist[3],
    );
    for test in &report.forbid {
        println!("\n{}", test.litmus);
    }
}

/// The final one-line `summary:` every sweep prints on stdout, whatever
/// its exit path — scripts can rely on its presence even when the run
/// ends degraded (exit 3).
fn print_summary(units: usize, representatives: u64, covered: u64, secs: f64, quarantined: usize) {
    println!(
        "summary: {units} units, {representatives} representatives, {covered} executions \
         covered, {secs:.3}s elapsed, {quarantined} quarantined"
    );
}

/// Prints what a checkpointed run did and turns its status into an exit
/// code: 0 complete, 1 drift, 3 degraded or out of budget.
fn report_outcome(parsed: &SweepArgs, outcome: &SweepOutcome, secs: f64) -> u8 {
    println!(
        "units: {} total, {} completed ({} reused from checkpoint), {} pending, \
         {} quarantined; {} retry attempt(s) in {secs:.3}s",
        outcome.total_units,
        outcome.completed_units,
        outcome.reused_units,
        outcome.pending_units,
        outcome.quarantined.len(),
        outcome.retried_attempts,
    );
    for q in &outcome.quarantined {
        eprintln!(
            "tm-cat: quarantined unit {:#018x} {} after {} attempt(s): {}",
            q.unit_id,
            if q.label.is_empty() {
                String::new()
            } else {
                format!("({}) ", q.label)
            },
            q.attempts,
            q.reason
        );
    }
    let reduced = parsed.symmetry.is_reduced();
    if let Some(report) = &outcome.suites {
        if reduced {
            println!(
                "{} representatives enumerated ({} executions covered)",
                outcome.visited, outcome.weighted_visited
            );
        } else {
            println!("{} executions enumerated", outcome.visited);
        }
        print_suite_lines(report);
    } else if parsed.suites {
        println!(
            "{} executions enumerated (shard only; merge shard journals for suites)",
            outcome.visited
        );
    } else {
        println!(
            "{} executions: {} consistent, {} forbidden",
            outcome.visited,
            outcome.consistent,
            outcome.visited - outcome.consistent,
        );
        if reduced {
            println!(
                "orbit-weighted: {} executions: {} consistent, {} forbidden",
                outcome.weighted_visited,
                outcome.weighted_consistent,
                outcome.weighted_visited - outcome.weighted_consistent,
            );
        }
    }
    let code = match outcome.status {
        SweepStatus::BudgetExhausted => {
            eprintln!(
                "tm-cat: budget exhausted with {} unit(s) pending; resume with \
                 --checkpoint ... --resume",
                outcome.pending_units
            );
            EXIT_PARTIAL
        }
        SweepStatus::Partial => {
            eprintln!(
                "tm-cat: sweep finished DEGRADED: {} quarantined unit(s) are missing \
                 from the results",
                outcome.quarantined.len()
            );
            EXIT_PARTIAL
        }
        SweepStatus::Complete => {
            if let Some(target) = parsed.expect {
                if outcome.drift > 0 {
                    eprintln!(
                        "tm-cat: {} execution(s) drift from built-in `{}`",
                        outcome.drift,
                        target.name()
                    );
                    1
                } else {
                    println!(
                        "verdicts match built-in `{}` on the whole space",
                        target.name()
                    );
                    0
                }
            } else {
                0
            }
        }
    };
    print_summary(
        outcome.total_units,
        outcome.visited,
        outcome.weighted_visited,
        secs,
        outcome.quarantined.len(),
    );
    code
}

fn sweep_checkpointed(
    parsed: &SweepArgs,
    model: &IrModel,
    baseline: Option<&IrModel>,
    config: &SynthConfig,
) -> ExitCode {
    let reference = parsed.expect.map(|t| t.model());
    let job = SweepJob {
        model,
        baseline: baseline.map(|b| b as &dyn MemoryModel),
        reference: reference.as_deref(),
        mode: if parsed.suites {
            SweepMode::Suites
        } else {
            SweepMode::Counts
        },
        config,
        events: parsed.events,
        symmetry: parsed.symmetry,
    };
    let checkpoint = parsed.checkpoint.clone().expect("checked by caller");
    println!(
        "checkpointed sweep of `{}` (|E| = {}, {}), journal at {}{}",
        model.name(),
        parsed.events,
        if parsed.suites { "suites" } else { "counts" },
        checkpoint.join("sweep.journal").display(),
        match parsed.shard {
            Some((i, m)) => format!(", shard {i}/{m}"),
            None => String::new(),
        }
    );
    // `--obs null` is the fully disabled handle: counters still count (the
    // report reads them back) but events and spans cost nothing.
    let obs = if parsed.obs_sink == SinkKind::Null {
        Obs::disabled()
    } else {
        match Obs::with_sink(parsed.obs_sink.clone()) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("tm-cat: cannot open observability sink: {e}");
                return ExitCode::from(2);
            }
        }
    };
    let opts = SweepOptions {
        resume: parsed.resume,
        shard: parsed.shard,
        budget: parsed.budget,
        unit_deadline: parsed.unit_deadline,
        retries: parsed.retries,
        backoff: parsed.backoff,
        sync_batch: parsed.sync_batch,
        fail_plan: parsed.fail_plan,
        sched: parsed.sched,
        max_unit_weight: parsed.max_unit_weight,
        lease_dir: parsed.lease_dir.clone(),
        launch: parsed.launch,
        obs: obs.clone(),
        progress: parsed.progress,
        ..SweepOptions::new(checkpoint)
    };
    let start = std::time::Instant::now();
    match run_sweep(&job, &opts) {
        Ok(outcome) => {
            if let Some(path) = &parsed.report {
                if let Err(e) = write_report(path, &job, &outcome, &obs) {
                    eprintln!("tm-cat: cannot write report {}: {e}", path.display());
                    return ExitCode::from(2);
                }
                println!("report written to {}", path.display());
            }
            ExitCode::from(report_outcome(
                parsed,
                &outcome,
                start.elapsed().as_secs_f64(),
            ))
        }
        Err(e) => {
            eprintln!("tm-cat: {e}");
            ExitCode::from(2)
        }
    }
}

/// `--supervise M`: run M shard children of this very binary (each with its
/// own checkpoint under the parent directory), restart crashed ones, then
/// merge their journals into the final result.
fn sweep_supervised(parsed: &SweepArgs) -> ExitCode {
    let shards = parsed.supervise.expect("checked by caller");
    let checkpoint = parsed.checkpoint.clone().expect("checked by caller");
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("tm-cat: cannot locate own executable: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "supervising {shards} shard(s) under {}",
        checkpoint.display()
    );

    let shard_dir = |i: u32| checkpoint.join(format!("shard-{i}"));
    let dirs: Vec<PathBuf> = (0..shards).map(shard_dir).collect();
    let start = std::time::Instant::now();

    // With scheduling on, the shards claim units from the whole frontier
    // through a shared lease directory instead of owning a static `id % M`
    // slice; the supervisor reaps stale leases below so survivors steal a
    // dead shard's units.
    let lease_dir = if parsed.sched {
        let dir = checkpoint.join(tm_sweep::LEASE_DIR);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!(
                "tm-cat: cannot create lease directory {}: {e}",
                dir.display()
            );
            return ExitCode::from(2);
        }
        Some(dir)
    } else {
        None
    };
    let stale_after = Duration::from_millis(parsed.lease_stale_ms);

    // Live progress: the children write heartbeat files next to their
    // journals unconditionally; the supervisor folds them into one stderr
    // line, rate-limited so the poll loop stays cheap. Lease-mode shards
    // all report the shared frontier, so their totals max rather than sum.
    let mut last_print = std::time::Instant::now() - Duration::from_secs(1);
    let mut last_reap = std::time::Instant::now();
    let mut eta = tm_obs::RateWindow::new(tm_sweep::report::ETA_WINDOW_SECS);
    let progress_dirs = dirs.clone();
    let reap_dir = lease_dir.clone();
    let on_poll = move || {
        if let Some(dir) = &reap_dir {
            if last_reap.elapsed() >= Duration::from_millis(250) {
                last_reap = std::time::Instant::now();
                if let Ok(n @ 1..) = tm_sweep::reap_stale(dir, stale_after) {
                    eprintln!("sweep: reassigned {n} stale lease(s)");
                }
            }
        }
        if !parsed.progress || last_print.elapsed() < Duration::from_millis(200) {
            return;
        }
        last_print = std::time::Instant::now();
        let hb = if reap_dir.is_some() {
            Heartbeat::aggregate_shared(&progress_dirs)
        } else {
            Heartbeat::aggregate(&progress_dirs)
        };
        if let Some(hb) = hb {
            eta.push(start.elapsed().as_secs_f64(), hb.done as f64);
            eprint!("\r{}", hb.progress_line(eta.rate()));
            use std::io::Write as _;
            let _ = std::io::stderr().flush();
        }
    };

    let sup_opts = SupervisorOptions::new(shards);
    let runs = supervise_with(
        &sup_opts,
        |i, launch| {
            let mut cmd = std::process::Command::new(&exe);
            cmd.arg("sweep").arg(&parsed.path);
            cmd.arg("--events").arg(parsed.events.to_string());
            cmd.arg("--config").arg(&parsed.config_name);
            if parsed.suites {
                cmd.arg("--suites");
                if let Some(b) = &parsed.baseline_path {
                    cmd.arg("--baseline").arg(b);
                }
            }
            if let Some(t) = parsed.expect {
                cmd.arg("--expect").arg(t.name());
            }
            cmd.arg("--symmetry").arg(parsed.symmetry.to_string());
            cmd.arg("--checkpoint").arg(shard_dir(i));
            // --resume makes restarts continue the shard's journal; on the
            // first launch the journal does not exist yet and --resume is a
            // no-op.
            cmd.arg("--resume");
            cmd.arg("--shard").arg(format!("{i}/{shards}"));
            cmd.arg("--sched")
                .arg(if parsed.sched { "on" } else { "off" });
            if let Some(n) = parsed.max_unit_weight {
                cmd.arg("--max-unit-weight").arg(n.to_string());
            }
            if let Some(dir) = &lease_dir {
                cmd.arg("--lease-dir").arg(dir);
                // Stamp claims with the launch generation so a restarted
                // shard's leases are distinguishable from its dead past
                // self's in post-mortems.
                cmd.arg("--launch").arg(launch.to_string());
            }
            if let Some(d) = parsed.unit_deadline {
                cmd.arg("--unit-deadline").arg(d.as_secs_f64().to_string());
            }
            cmd.arg("--retries").arg(parsed.retries.to_string());
            cmd.arg("--backoff-ms")
                .arg(parsed.backoff.as_millis().to_string());
            cmd.arg("--sync-batch").arg(parsed.sync_batch.to_string());
            // Fault injection reaches the first launch only — a restarted
            // shard must be allowed to finish, and the env var would otherwise
            // leak into every generation.
            cmd.env_remove("TM_SWEEP_FAIL_PLAN");
            if launch == 0 {
                if let Some(plan) = parsed.fail_plan {
                    let kind = match plan.kind {
                        tm_sweep::FailKind::Panic => "panic",
                        tm_sweep::FailKind::PanicOnce => "panic-once",
                        tm_sweep::FailKind::Exit => "exit",
                        tm_sweep::FailKind::Stall => "stall",
                    };
                    cmd.arg("--fail-plan")
                        .arg(format!("{kind}:{}", plan.after_units));
                }
            }
            cmd
        },
        on_poll,
    );
    if parsed.progress {
        let hb = if lease_dir.is_some() {
            Heartbeat::aggregate_shared(&dirs)
        } else {
            Heartbeat::aggregate(&dirs)
        };
        if let Some(hb) = hb {
            // A finished run renders ETA 0s regardless of the rate; a
            // budget-stopped one honestly shows `--`.
            eprintln!("\r{}", hb.progress_line(None));
        }
    }
    let runs = match runs {
        Ok(runs) => runs,
        Err(e) => {
            eprintln!("tm-cat: supervisor failed: {e}");
            return ExitCode::from(2);
        }
    };
    let mut all_finished = true;
    for run in &runs {
        println!(
            "shard {}: {} launch(es), final exit {:?}",
            run.index, run.launches, run.exit_code
        );
        if !run.finished() {
            all_finished = false;
            eprintln!(
                "tm-cat: shard {} never finished (last exit {:?})",
                run.index, run.exit_code
            );
        }
    }

    // Merge whatever the shards journalled — even a shard that never
    // finished contributes its completed units.
    let model = match load_or_exit(&parsed.path) {
        Ok(m) => m,
        Err(code) => return code,
    };
    let baseline = match &parsed.baseline_path {
        Some(path) => match load_or_exit(path) {
            Ok(m) => Some(m),
            Err(code) => return code,
        },
        None => None,
    };
    let config = match parse_config(&parsed.config_name, parsed.events) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("tm-cat: {msg}");
            return ExitCode::from(2);
        }
    };
    let reference = parsed.expect.map(|t| t.model());
    let job = SweepJob {
        model: &model,
        baseline: baseline.as_ref().map(|b| b as &dyn MemoryModel),
        reference: reference.as_deref(),
        mode: if parsed.suites {
            SweepMode::Suites
        } else {
            SweepMode::Counts
        },
        config: &config,
        events: parsed.events,
        symmetry: parsed.symmetry,
    };
    match merge_sharded(&job, &dirs) {
        Ok(outcome) => {
            if let Some(path) = &parsed.report {
                if let Err(e) = write_report(path, &job, &outcome, &Obs::disabled()) {
                    eprintln!("tm-cat: cannot write report {}: {e}", path.display());
                    return ExitCode::from(2);
                }
                println!("report written to {}", path.display());
            }
            let code = report_outcome(parsed, &outcome, start.elapsed().as_secs_f64());
            if !all_finished && code == 0 {
                // A shard that crashed out entirely means unknown coverage
                // even if every *journalled* unit completed.
                return ExitCode::from(EXIT_PARTIAL);
            }
            ExitCode::from(code)
        }
        Err(e) => {
            eprintln!("tm-cat: merge failed: {e}");
            ExitCode::from(2)
        }
    }
}

//! `tm-cat` — load, check and sweep `.cat` memory models at runtime.
//!
//! ```text
//! tm-cat list                       # litmus tests and built-in targets
//! tm-cat print <target>             # render a built-in model as .cat
//! tm-cat check <file> [options]     # verdicts on named litmus executions
//! tm-cat sweep <file> [options]     # bounded-exhaustive synthesis sweep
//! ```
//!
//! `check` options:
//!   --litmus NAME   check one named execution (repeatable; default: all)
//!   --expect TARGET compare every verdict against a built-in model and
//!                   exit non-zero on any drift
//!   --program       also print each execution's litmus program (§2.2)
//!
//! `sweep` options:
//!   --events N      event bound (default 4)
//!   --config C      enumeration preset: x86 | power | armv8 | cpp
//!   --expect TARGET compare per-execution consistency against a built-in
//!                   model and exit non-zero on any drift
//!   --incremental   drive the delta-threading enumeration instead of the
//!                   per-execution pipeline (verdicts must agree)
//!   --suites        synthesise the Forbid/Allow conformance suites (Table 1)
//!                   for the loaded model against --baseline FILE, via the
//!                   incremental pipeline (per-worker stateful checkers,
//!                   savepoint-probed ⊏-minimality walks)

use std::process::ExitCode;

use tm_cat::{load_file, print_target};
use tm_exec::{catalog, Execution};
use tm_litmus::from_execution;
use tm_models::ir::IrModel;
use tm_models::{MemoryModel, Target};
use tm_synth::{enumerate_exact, enumerate_exact_incremental, synthesise_suites, SynthConfig};

fn named_executions() -> Vec<(&'static str, Execution)> {
    catalog::named()
}

fn parse_target(name: &str) -> Result<Target, String> {
    Target::ALL
        .into_iter()
        .find(|t| t.name() == name)
        .ok_or_else(|| {
            let all: Vec<&str> = Target::ALL.iter().map(|t| t.name()).collect();
            format!(
                "unknown target `{name}` (expected one of: {})",
                all.join(", ")
            )
        })
}

fn parse_config(name: &str, events: usize) -> Result<SynthConfig, String> {
    match name {
        "x86" => Ok(SynthConfig::x86(events)),
        "power" => Ok(SynthConfig::power(events)),
        "armv8" => Ok(SynthConfig::armv8(events)),
        "cpp" => Ok(SynthConfig::cpp(events)),
        other => Err(format!(
            "unknown config `{other}` (expected x86, power, armv8 or cpp)"
        )),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  tm-cat list\n  tm-cat print <target>\n  tm-cat check <file.cat> \
         [--litmus NAME]... [--expect TARGET] [--program]\n  tm-cat sweep <file.cat> \
         [--events N] [--config x86|power|armv8|cpp] [--expect TARGET] [--incremental] \
         [--suites --baseline <file.cat>]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "list" => list(),
        "print" => match args.get(1).map(|t| parse_target(t)) {
            Some(Ok(target)) => {
                print!("{}", print_target(target));
                ExitCode::SUCCESS
            }
            Some(Err(msg)) => {
                eprintln!("tm-cat: {msg}");
                ExitCode::from(2)
            }
            None => usage(),
        },
        "check" => check(&args[1..]),
        "sweep" => sweep(&args[1..]),
        _ => usage(),
    }
}

fn list() -> ExitCode {
    println!("litmus executions (tm-cat check --litmus NAME):");
    for (name, exec) in named_executions() {
        println!("  {name:<24} ({} events)", exec.len());
    }
    println!("\nbuilt-in targets (tm-cat print TARGET, --expect TARGET):");
    for target in Target::ALL {
        println!("  {}", target.name());
    }
    ExitCode::SUCCESS
}

fn load_or_exit(path: &str) -> Result<IrModel, ExitCode> {
    match load_file(path) {
        Ok(model) => Ok(model),
        Err(e) => {
            eprintln!("{e}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let mut litmus: Vec<String> = Vec::new();
    let mut expect: Option<Target> = None;
    let mut program = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--litmus" if i + 1 < args.len() => {
                litmus.push(args[i + 1].clone());
                i += 2;
            }
            "--expect" if i + 1 < args.len() => {
                match parse_target(&args[i + 1]) {
                    Ok(t) => expect = Some(t),
                    Err(msg) => {
                        eprintln!("tm-cat: {msg}");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--program" => {
                program = true;
                i += 1;
            }
            other => {
                eprintln!("tm-cat: unknown option `{other}`");
                return usage();
            }
        }
    }

    let model = match load_or_exit(path) {
        Ok(m) => m,
        Err(code) => return code,
    };
    println!(
        "loaded `{}` from {path} ({} axioms: {})",
        model.name(),
        model.table().axioms().len(),
        model.axioms().join(", ")
    );

    let all = named_executions();
    let selected: Vec<&(&str, Execution)> = if litmus.is_empty() {
        all.iter().collect()
    } else {
        let mut out = Vec::new();
        for want in &litmus {
            match all.iter().find(|(name, _)| name == want) {
                Some(entry) => out.push(entry),
                None => {
                    eprintln!("tm-cat: unknown litmus test `{want}` (see `tm-cat list`)");
                    return ExitCode::from(2);
                }
            }
        }
        out
    };

    let reference = expect.map(|t| t.model());
    let mut drift = 0usize;
    for (name, exec) in &selected {
        let verdict = model.check(exec);
        println!("{name:<24} {verdict}");
        if program {
            println!("{}", from_execution(exec, name));
        }
        if let Some(reference) = &reference {
            let expected = reference.check(exec);
            // Witness-level comparison: names AND cycles must coincide.
            if verdict.violations != expected.violations {
                drift += 1;
                println!("  DRIFT: built-in {expected}");
            }
        }
    }
    if let Some(target) = expect {
        if drift > 0 {
            eprintln!(
                "tm-cat: {drift} verdict(s) drift from built-in `{}`",
                target.name()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "all {} verdicts match built-in `{}`",
            selected.len(),
            target.name()
        );
    }
    ExitCode::SUCCESS
}

fn sweep(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let mut events = 4usize;
    let mut config_name = "x86".to_string();
    let mut expect: Option<Target> = None;
    let mut incremental = false;
    let mut suites = false;
    let mut baseline_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--suites" => {
                suites = true;
                i += 1;
            }
            "--baseline" if i + 1 < args.len() => {
                baseline_path = Some(args[i + 1].clone());
                i += 2;
            }
            "--events" if i + 1 < args.len() => {
                match args[i + 1].parse() {
                    Ok(n) => events = n,
                    Err(_) => {
                        eprintln!("tm-cat: --events expects a number");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--config" if i + 1 < args.len() => {
                config_name = args[i + 1].clone();
                i += 2;
            }
            "--expect" if i + 1 < args.len() => {
                match parse_target(&args[i + 1]) {
                    Ok(t) => expect = Some(t),
                    Err(msg) => {
                        eprintln!("tm-cat: {msg}");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--incremental" => {
                incremental = true;
                i += 1;
            }
            other => {
                eprintln!("tm-cat: unknown option `{other}`");
                return usage();
            }
        }
    }
    let config = match parse_config(&config_name, events) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("tm-cat: {msg}");
            return ExitCode::from(2);
        }
    };
    let model = match load_or_exit(path) {
        Ok(m) => m,
        Err(code) => return code,
    };
    if suites {
        // Suite synthesis always runs incrementally and has no built-in
        // "expected suite" to diff against: reject rather than silently
        // ignore the flags.
        if expect.is_some() || incremental {
            eprintln!("tm-cat: --suites does not combine with --expect or --incremental");
            return ExitCode::from(2);
        }
        let Some(baseline_path) = baseline_path else {
            eprintln!("tm-cat: --suites needs --baseline <file.cat> (the non-TM model)");
            return ExitCode::from(2);
        };
        let baseline = match load_or_exit(&baseline_path) {
            Ok(m) => m,
            Err(code) => return code,
        };
        return sweep_suites(&model, &baseline, &config, events);
    }
    println!(
        "sweeping `{}` over the {config_name} space, |E| <= {events}{}",
        model.name(),
        if incremental { " (incremental)" } else { "" }
    );

    let reference = expect.map(|t| t.model());
    use std::sync::atomic::{AtomicUsize, Ordering};
    let total = AtomicUsize::new(0);
    let consistent = AtomicUsize::new(0);
    let drift = AtomicUsize::new(0);
    let start = std::time::Instant::now();
    let mut executions = 0usize;
    for n in 2..=events {
        if incremental {
            executions += enumerate_exact_incremental(&config, n, || {
                let mut checker = model.incremental();
                let (total, consistent, drift) = (&total, &consistent, &drift);
                let reference = &reference;
                move |exec: &Execution, delta: &tm_exec::ir::Delta| {
                    checker.advance(exec, delta);
                    let ok = checker.is_consistent(exec);
                    total.fetch_add(1, Ordering::Relaxed);
                    if ok {
                        consistent.fetch_add(1, Ordering::Relaxed);
                    }
                    if let Some(reference) = reference {
                        if reference.is_consistent(exec) != ok {
                            drift.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        } else {
            executions += enumerate_exact(&config, n, |exec| {
                let ok = model.is_consistent(exec);
                total.fetch_add(1, Ordering::Relaxed);
                if ok {
                    consistent.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(reference) = &reference {
                    if reference.is_consistent(exec) != ok {
                        drift.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    }
    let secs = start.elapsed().as_secs_f64();
    println!(
        "{executions} executions in {secs:.3}s ({:.0} execs/s): {} consistent, {} forbidden",
        executions as f64 / secs.max(f64::EPSILON),
        consistent.load(Ordering::Relaxed),
        total.load(Ordering::Relaxed) - consistent.load(Ordering::Relaxed),
    );
    if let Some(target) = expect {
        let drift = drift.load(Ordering::Relaxed);
        if drift > 0 {
            eprintln!(
                "tm-cat: {drift} execution(s) drift from built-in `{}`",
                target.name()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "verdicts match built-in `{}` on the whole space",
            target.name()
        );
    }
    ExitCode::SUCCESS
}

/// `sweep --suites`: synthesise the Forbid/Allow conformance suites for a
/// loaded model against a loaded baseline — the Table 1 row for a model
/// that exists only as `.cat` text. Runs the incremental pipeline (the
/// [`IrModel`] provides a delta-driven checker, so the enumerator mutates
/// one execution per worker in place and the ⊏-minimality walk probes each
/// weakening by savepoint/rollback).
fn sweep_suites(
    model: &IrModel,
    baseline: &IrModel,
    config: &SynthConfig,
    events: usize,
) -> ExitCode {
    println!(
        "synthesising Forbid/Allow suites: `{}` vs baseline `{}`, |E| = {events}",
        model.name(),
        baseline.name()
    );
    let report = synthesise_suites(model, baseline, config, events);
    let hist = report.forbid_txn_histogram();
    println!(
        "{} executions in {:.3}s ({:.0} execs/s)",
        report.enumerated,
        report.elapsed.as_secs_f64(),
        report.enumerated as f64 / report.elapsed.as_secs_f64().max(f64::EPSILON),
    );
    println!(
        "forbid {} allow {} (forbid txn histogram: {} with 1, {} with 2, {} with 3+)",
        report.forbid.len(),
        report.allow.len(),
        hist[1],
        hist[2],
        hist[3],
    );
    for test in &report.forbid {
        println!("\n{}", test.litmus);
    }
    ExitCode::SUCCESS
}

//! Span-carrying diagnostics for the `.cat` front end.
//!
//! Every phase — lexing, parsing, elaboration, file loading — reports a
//! [`CatError`] pointing at the offending source range. Rendering follows
//! the familiar compiler shape:
//!
//! ```text
//! error: unknown name `foo`
//!   --> models/broken.cat:3:9
//!    |
//!  3 | acyclic foo as Order
//!    |         ^^^
//! ```

use std::fmt;

/// A half-open byte range into one source file (see [`Sources`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Index of the source file in the loader's [`Sources`] arena.
    pub src: u32,
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// A span covering `start..end` of source `src`.
    pub fn new(src: u32, start: usize, end: usize) -> Span {
        Span {
            src,
            start: start as u32,
            end: end as u32,
        }
    }

    /// The smallest span covering both `self` and `other` (same source).
    pub fn to(self, other: Span) -> Span {
        Span {
            src: self.src,
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// One loaded source file: display path plus full text, kept so diagnostics
/// can quote the offending line.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// The path as shown in diagnostics (`<input>` for in-memory sources).
    pub path: String,
    /// The complete source text.
    pub text: String,
}

/// The arena of every source file a load touched (the root file plus its
/// transitive `include`s). Spans index into it.
#[derive(Clone, Debug, Default)]
pub struct Sources {
    files: Vec<SourceFile>,
}

impl Sources {
    /// An empty arena.
    pub fn new() -> Sources {
        Sources::default()
    }

    /// Adds a file and returns its index for [`Span::src`].
    pub fn add(&mut self, path: impl Into<String>, text: impl Into<String>) -> u32 {
        self.files.push(SourceFile {
            path: path.into(),
            text: text.into(),
        });
        (self.files.len() - 1) as u32
    }

    /// The file behind a span.
    pub fn file(&self, src: u32) -> &SourceFile {
        &self.files[src as usize]
    }
}

/// The located, quotable part of a diagnostic — everything but the message
/// and severity. Shared by [`CatError`] and [`CatWarning`] so the two render
/// through one code path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snippet {
    /// Display path of the offending file.
    pub path: String,
    /// 1-based line of the span start.
    pub line: u32,
    /// 1-based column (in characters) of the span start.
    pub col: u32,
    /// The full text of the offending line.
    pub line_text: String,
    /// Length of the caret underline, in characters (at least 1).
    pub caret_len: u32,
}

impl Snippet {
    /// Locates `span` in `sources` and captures its line.
    pub fn locate(sources: &Sources, span: Span) -> Snippet {
        let file = sources.file(span.src);
        let start = (span.start as usize).min(file.text.len());
        let end = (span.end as usize).clamp(start, file.text.len());
        let line_start = file.text[..start].rfind('\n').map_or(0, |i| i + 1);
        let line_end = file.text[start..]
            .find('\n')
            .map_or(file.text.len(), |i| start + i);
        let line = file.text[..start].matches('\n').count() as u32 + 1;
        let col = file.text[line_start..start].chars().count() as u32 + 1;
        let caret_end = end.min(line_end).max(start);
        let caret_len = (file.text[start..caret_end].chars().count() as u32).max(1);
        Snippet {
            path: file.path.clone(),
            line,
            col,
            line_text: file.text[line_start..line_end].to_string(),
            caret_len,
        }
    }

    /// Renders `severity: message` plus the location, line and caret.
    fn render(&self, f: &mut fmt::Formatter<'_>, severity: &str, message: &str) -> fmt::Result {
        writeln!(f, "{severity}: {message}")?;
        if self.line == 0 {
            return write!(f, "  --> {}", self.path);
        }
        writeln!(f, "  --> {}:{}:{}", self.path, self.line, self.col)?;
        let gutter = self.line.to_string().len().max(2);
        writeln!(f, "{:>gutter$} |", "")?;
        writeln!(f, "{:>gutter$} | {}", self.line, self.line_text)?;
        write!(
            f,
            "{:>gutter$} | {:>pad$}{}",
            "",
            "",
            "^".repeat(self.caret_len as usize),
            pad = (self.col - 1) as usize
        )
    }
}

/// A diagnostic from any `.cat` phase, fully rendered (the source line is
/// captured at construction so the error outlives the loader).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatError {
    /// The one-line message (`unknown name \`foo\``).
    pub message: String,
    /// The captured location and source line.
    pub snippet: Snippet,
}

impl CatError {
    /// Builds a diagnostic for `span`, quoting its line from `sources`.
    pub fn new(sources: &Sources, span: Span, message: impl Into<String>) -> CatError {
        CatError {
            message: message.into(),
            snippet: Snippet::locate(sources, span),
        }
    }

    /// A diagnostic with a location but no quotable source (I/O errors).
    pub fn io(path: impl Into<String>, message: impl Into<String>) -> CatError {
        CatError {
            message: message.into(),
            snippet: Snippet {
                path: path.into(),
                line: 0,
                col: 0,
                line_text: String::new(),
                caret_len: 0,
            },
        }
    }
}

impl fmt::Display for CatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.snippet.render(f, "error", &self.message)
    }
}

impl std::error::Error for CatError {}

/// One lint finding: a warning class (a stable kebab-case slug, e.g.
/// `unused-let`), a message, and the offending span — rendered exactly like
/// a [`CatError`] but with `warning[class]:` severity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatWarning {
    /// The lint class slug (`unused-let`, `vacuous-axiom`, …).
    pub lint: &'static str,
    /// The one-line message.
    pub message: String,
    /// The captured location and source line.
    pub snippet: Snippet,
}

impl CatWarning {
    /// Builds a warning of class `lint` for `span`.
    pub fn new(
        sources: &Sources,
        span: Span,
        lint: &'static str,
        message: impl Into<String>,
    ) -> CatWarning {
        CatWarning {
            lint,
            message: message.into(),
            snippet: Snippet::locate(sources, span),
        }
    }
}

impl fmt::Display for CatWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.snippet
            .render(f, &format!("warning[{}]", self.lint), &self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_line_and_caret() {
        let mut sources = Sources::new();
        let src = sources.add("m.cat", "let a = po\nacyclic foo as A\n");
        let span = Span::new(src, 19, 22);
        let err = CatError::new(&sources, span, "unknown name `foo`");
        let rendered = err.to_string();
        assert!(rendered.contains("m.cat:2:9"), "{rendered}");
        assert!(rendered.contains("acyclic foo as A"), "{rendered}");
        assert!(rendered.contains("        ^^^"), "{rendered}");
    }

    #[test]
    fn spans_at_eof_still_render() {
        let mut sources = Sources::new();
        let src = sources.add("m.cat", "let x =");
        let span = Span::new(src, 7, 7);
        let err = CatError::new(&sources, span, "expected an expression");
        assert!(err.to_string().contains("m.cat:1:8"));
    }
}

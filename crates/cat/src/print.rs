//! Pretty-printing axiom tables back to `.cat` source.
//!
//! The printer is the inverse of the parser/elaborator pair: it renders a
//! [`ModelAxioms`] table (plus the [`IrPool`] its bodies live in) as a
//! `.cat` file that re-elaborates to a verdict-identical model. Hash-consed
//! nodes referenced more than once inside the model are hoisted into `let`
//! bindings, so the sharing the pool discovered is visible in the text —
//! and re-interning the reparsed text rediscovers exactly the same sharing.
//!
//! Parenthesisation follows the parser's precedence table, with the right
//! operand of each left-associative binary operator printed one level
//! tighter so that nesting survives the round trip.

use std::collections::HashMap;

use tm_exec::ir::{IrPool, RelExpr, RelId, SetBase, SetExpr, SetId};
use tm_models::ir::ModelAxioms;
use tm_models::Target;

use crate::prim::{rel_name, set_name};

// Precedence levels, matching the parser (larger binds tighter).
const UNION: u8 = 1;
const INTER: u8 = 2;
const DIFF: u8 = 3;
const SEQ: u8 = 4;
const CROSS: u8 = 5;
const POSTFIX: u8 = 6;
const ATOM: u8 = 7;

struct Printer<'p> {
    pool: &'p IrPool,
    /// Names of let-bound shared nodes and `let rec` fixpoint components.
    bound: HashMap<RelId, String>,
    /// Names of recursion variables, per the component they stand for.
    var_names: HashMap<u32, String>,
}

/// Renders a model's axiom table as `.cat` source.
pub fn print_model(name: &str, table: &ModelAxioms, pool: &IrPool) -> String {
    // Count how often each relation node is referenced from within this
    // model (axiom bodies and internal edges). Nodes referenced twice or
    // more — shared subexpressions — become `let` bindings.
    let mut uses: HashMap<RelId, usize> = HashMap::new();
    let mut visited: Vec<bool> = vec![false; pool.rel_count()];
    let mut stack: Vec<RelId> = Vec::new();
    for axiom in table.axioms() {
        *uses.entry(axiom.body).or_default() += 1;
        stack.push(axiom.body);
    }
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut visited[id.index()], true) {
            continue;
        }
        for child in rel_children(pool, id) {
            *uses.entry(child).or_default() += 1;
            stack.push(child);
        }
    }
    let mut shared: Vec<RelId> = uses
        .iter()
        .filter(|&(&id, &n)| {
            n >= 2
                // Open subterms of a fixpoint body can only print inside
                // their `let rec` (the recursion variables are scoped to
                // it), and fixpoint components print as a whole group.
                && pool.rel_free_vars(id).is_empty()
                && !matches!(pool.rel_expr(id), RelExpr::Base(_) | RelExpr::Fix(_, _))
        })
        .map(|(&id, _)| id)
        .collect();
    // Children are interned before parents, so ascending id order is a
    // topological order: every binding only mentions earlier bindings.
    shared.sort();

    // Reachable fixpoint groups print as `let rec … and …` statements,
    // placed by their first component's id: after every binding their
    // bodies use, before every binding that uses a component.
    let mut reachable: Vec<RelId> = uses.keys().copied().collect();
    reachable.sort();
    let mut groups: Vec<(RelId, u32)> = Vec::new();
    for &id in &reachable {
        if let RelExpr::Fix(g, _) = pool.rel_expr(id) {
            if !groups.iter().any(|&(_, seen)| seen == g) {
                groups.push((id, g));
            }
        }
    }

    let mut bound: HashMap<RelId, String> = shared
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, format!("x{i}")))
        .collect();
    let mut var_names: HashMap<u32, String> = HashMap::new();
    for &(_, g) in &groups {
        for (i, &var) in pool.fix_vars(g).iter().enumerate() {
            let name = format!("rec{g}_{i}");
            bound.insert(pool.fix_component(g, i as u32), name.clone());
            var_names.insert(var, name);
        }
    }
    let printer = Printer {
        pool,
        bound,
        var_names,
    };

    // Interleave plain bindings and `let rec` groups in id order.
    enum Item {
        Let(RelId),
        Rec(u32),
    }
    let mut items: Vec<(RelId, Item)> = shared.iter().map(|&id| (id, Item::Let(id))).collect();
    items.extend(groups.iter().map(|&(first, g)| (first, Item::Rec(g))));
    items.sort_by_key(|&(key, _)| key);

    let mut out = String::new();
    out.push_str(&format!("\"{name}\"\n"));
    if !items.is_empty() {
        out.push('\n');
    }
    for (_, item) in &items {
        match *item {
            Item::Let(id) => {
                out.push_str(&format!(
                    "let {} = {}\n",
                    printer.bound[&id],
                    printer.rel_def(id)
                ));
            }
            Item::Rec(g) => {
                let stmt = (0..pool.fix_bodies(g).len())
                    .map(|i| {
                        let component = pool.fix_component(g, i as u32);
                        format!(
                            "{} = {}",
                            printer.bound[&component],
                            printer.rel_def(pool.fix_bodies(g)[i])
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(" and ");
                out.push_str(&format!("let rec {stmt}\n"));
            }
        }
    }
    out.push('\n');
    for axiom in table.axioms() {
        let head = match axiom.head {
            tm_exec::ir::AxiomHead::Acyclic => "acyclic",
            tm_exec::ir::AxiomHead::Irreflexive => "irreflexive",
            tm_exec::ir::AxiomHead::Empty => "empty",
        };
        out.push_str(&format!(
            "{head} {} as {}\n",
            printer.rel(axiom.body, UNION),
            axiom.name
        ));
    }
    out
}

/// Renders a built-in catalog model as `.cat` source.
pub fn print_target(target: Target) -> String {
    let cat = tm_models::ir::catalog();
    let table = cat.model(target);
    print_model(table.name(), table, cat.pool())
}

fn rel_children(pool: &IrPool, id: RelId) -> Vec<RelId> {
    match pool.rel_expr(id) {
        RelExpr::Base(_) | RelExpr::IdOn(_) | RelExpr::Cross(_, _) | RelExpr::Var(_) => vec![],
        RelExpr::Seq(a, b)
        | RelExpr::Union(a, b)
        | RelExpr::Inter(a, b)
        | RelExpr::Diff(a, b)
        | RelExpr::WeakLift(a, b)
        | RelExpr::StrongLift(a, b) => vec![a, b],
        RelExpr::Inverse(a) | RelExpr::Opt(a) | RelExpr::Plus(a) | RelExpr::Star(a) => vec![a],
        RelExpr::Fix(g, _) => pool.fix_bodies(g).to_vec(),
    }
}

impl<'p> Printer<'p> {
    /// The definition body of a bound node (does not shortcut to its name).
    fn rel_def(&self, id: RelId) -> String {
        self.rel_node(id, UNION)
    }

    /// A reference to a node: its binding name when bound, else its body.
    fn rel(&self, id: RelId, min: u8) -> String {
        if let Some(name) = self.bound.get(&id) {
            return name.clone();
        }
        self.rel_node(id, min)
    }

    fn rel_node(&self, id: RelId, min: u8) -> String {
        let (text, level) = match self.pool.rel_expr(id) {
            RelExpr::Base(base) => (rel_name(base), ATOM),
            RelExpr::IdOn(s) => (format!("[{}]", self.set(s, UNION)), ATOM),
            RelExpr::Cross(a, b) => (
                format!("{} * {}", self.set(a, POSTFIX), self.set(b, POSTFIX)),
                CROSS,
            ),
            // Union, intersection and composition are associative (and the
            // pool normalises unions/intersections), so chains print flat:
            // `a | b | c` rather than `a | (b | c)`.
            RelExpr::Seq(_, _) => (self.chain(id, " ; ", SEQ), SEQ),
            RelExpr::Union(_, _) => (self.chain(id, " | ", UNION), UNION),
            RelExpr::Inter(_, _) => (self.chain(id, " & ", INTER), INTER),
            RelExpr::Diff(a, b) => (
                format!("{} \\ {}", self.rel(a, DIFF), self.rel(b, DIFF + 1)),
                DIFF,
            ),
            RelExpr::Inverse(a) => (format!("~{}", self.rel(a, ATOM)), POSTFIX),
            RelExpr::Opt(a) => (format!("{}?", self.rel(a, POSTFIX)), POSTFIX),
            RelExpr::Plus(a) => (format!("{}+", self.rel(a, POSTFIX)), POSTFIX),
            RelExpr::Star(a) => (format!("{}*", self.rel(a, POSTFIX)), POSTFIX),
            RelExpr::WeakLift(a, t) => (
                format!("weaklift({}, {})", self.rel(a, UNION), self.rel(t, UNION)),
                ATOM,
            ),
            RelExpr::StrongLift(a, t) => (
                format!("stronglift({}, {})", self.rel(a, UNION), self.rel(t, UNION)),
                ATOM,
            ),
            RelExpr::Var(v) => (
                self.var_names
                    .get(&v)
                    .expect("recursion variable of an unprinted group")
                    .clone(),
                ATOM,
            ),
            // Components are always bound (named in their `let rec`), so
            // `rel` shortcuts before reaching here.
            RelExpr::Fix(_, _) => unreachable!("fixpoint components print by name"),
        };
        if level < min {
            format!("({text})")
        } else {
            text
        }
    }

    /// Flattens a chain of one associative operator into `a OP b OP c`,
    /// stopping at bound nodes (which print as their `let` names).
    fn chain(&self, id: RelId, op: &str, level: u8) -> String {
        let mut leaves = Vec::new();
        self.chain_leaves(id, id, &mut leaves);
        leaves
            .into_iter()
            .map(|leaf| self.rel(leaf, level + 1))
            .collect::<Vec<_>>()
            .join(op)
    }

    fn chain_leaves(&self, root: RelId, id: RelId, out: &mut Vec<RelId>) {
        let same_op = match (self.pool.rel_expr(root), self.pool.rel_expr(id)) {
            (RelExpr::Seq(_, _), RelExpr::Seq(a, b))
            | (RelExpr::Union(_, _), RelExpr::Union(a, b))
            | (RelExpr::Inter(_, _), RelExpr::Inter(a, b)) => Some((a, b)),
            _ => None,
        };
        match same_op {
            Some((a, b)) if id == root || !self.bound.contains_key(&id) => {
                self.chain_leaves(root, a, out);
                self.chain_leaves(root, b, out);
            }
            _ => out.push(id),
        }
    }

    fn set(&self, id: SetId, min: u8) -> String {
        let (text, level) = match self.pool.set_expr(id) {
            SetExpr::Base(SetBase::RmwDomain) => ("domain(rmw)".to_string(), ATOM),
            SetExpr::Base(SetBase::RmwRange) => ("range(rmw)".to_string(), ATOM),
            SetExpr::Base(base) => (set_name(base).expect("named set base"), ATOM),
            SetExpr::Union(a, b) => (
                format!("{} | {}", self.set(a, UNION), self.set(b, UNION + 1)),
                UNION,
            ),
            SetExpr::Inter(a, b) => (
                format!("{} & {}", self.set(a, INTER), self.set(b, INTER + 1)),
                INTER,
            ),
        };
        if level < min {
            format!("({text})")
        } else {
            text
        }
    }
}

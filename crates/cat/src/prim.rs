//! The primitive vocabulary of the dialect: the names under which the
//! [`RelBase`]/[`SetBase`] inputs of the axiom IR appear in `.cat` source.
//!
//! One table serves both directions — the elaborator resolves names through
//! [`lookup`], and the pretty-printer renders IR bases back through
//! [`rel_name`]/[`set_name`] — so the two can never drift apart.

use tm_exec::ir::{RelBase, SetBase};
use tm_exec::Fence;

/// A resolved primitive name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Prim {
    /// A primitive (or view-derived) relation.
    Rel(RelBase),
    /// A primitive event set.
    Set(SetBase),
}

/// The spelling suffix of a fence kind (`dmb.ld`, `F.sc`, …).
fn fence_suffix(f: Fence) -> &'static str {
    match f {
        Fence::MFence => "mfence",
        Fence::Sync => "sync",
        Fence::Lwsync => "lwsync",
        Fence::Isync => "isync",
        Fence::Dmb => "dmb",
        Fence::DmbLd => "dmb.ld",
        Fence::DmbSt => "dmb.st",
        Fence::Isb => "isb",
        Fence::FenceSc => "sc",
        Fence::FenceAcq => "acq",
        Fence::FenceRel => "rel",
    }
}

const ALL_FENCES: [Fence; 11] = [
    Fence::MFence,
    Fence::Sync,
    Fence::Lwsync,
    Fence::Isync,
    Fence::Dmb,
    Fence::DmbLd,
    Fence::DmbSt,
    Fence::Isb,
    Fence::FenceSc,
    Fence::FenceAcq,
    Fence::FenceRel,
];

/// The `.cat` name of a base relation.
pub fn rel_name(base: RelBase) -> String {
    match base {
        RelBase::Po => "po".into(),
        RelBase::Rf => "rf".into(),
        RelBase::Co => "co".into(),
        RelBase::Addr => "addr".into(),
        RelBase::Data => "data".into(),
        RelBase::Ctrl => "ctrl".into(),
        RelBase::Rmw => "rmw".into(),
        RelBase::Stxn => "stxn".into(),
        RelBase::Stxnat => "stxnat".into(),
        RelBase::Scr => "scr".into(),
        RelBase::Sloc => "sloc".into(),
        RelBase::Poloc => "po-loc".into(),
        RelBase::PoDiffLoc => "po-diff-loc".into(),
        RelBase::Fr => "fr".into(),
        RelBase::Rfe => "rfe".into(),
        RelBase::Rfi => "rfi".into(),
        RelBase::Coe => "coe".into(),
        RelBase::Fre => "fre".into(),
        RelBase::Com => "com".into(),
        RelBase::Come => "come".into(),
        RelBase::Ecom => "ecom".into(),
        RelBase::Cnf => "cnf".into(),
        RelBase::Tfence => "tfence".into(),
        RelBase::FenceRel(f) => match f {
            Fence::FenceSc | Fence::FenceAcq | Fence::FenceRel => {
                format!("fence.{}", fence_suffix(f))
            }
            other => fence_suffix(other).to_string(),
        },
    }
}

/// The `.cat` name of a base set. `RmwDomain`/`RmwRange` have no bare name —
/// they are written `domain(rmw)` / `range(rmw)` (the printer special-cases
/// them).
pub fn set_name(base: SetBase) -> Option<String> {
    match base {
        SetBase::Reads => Some("R".into()),
        SetBase::Writes => Some("W".into()),
        SetBase::Fences => Some("F".into()),
        SetBase::Acquires => Some("Acq".into()),
        SetBase::Releases => Some("Rel".into()),
        SetBase::ScEvents => Some("SC".into()),
        SetBase::Atomics => Some("A".into()),
        SetBase::FencesOf(f) => Some(format!("F.{}", fence_suffix(f))),
        SetBase::RmwDomain | SetBase::RmwRange => None,
    }
}

/// Resolves a primitive name. `poloc` is accepted as an alias of `po-loc`.
pub fn lookup(name: &str) -> Option<Prim> {
    let rel = |b| Some(Prim::Rel(b));
    let set = |b| Some(Prim::Set(b));
    match name {
        "po" => rel(RelBase::Po),
        "rf" => rel(RelBase::Rf),
        "co" => rel(RelBase::Co),
        "addr" => rel(RelBase::Addr),
        "data" => rel(RelBase::Data),
        "ctrl" => rel(RelBase::Ctrl),
        "rmw" => rel(RelBase::Rmw),
        "stxn" => rel(RelBase::Stxn),
        "stxnat" => rel(RelBase::Stxnat),
        "scr" => rel(RelBase::Scr),
        "sloc" => rel(RelBase::Sloc),
        "po-loc" | "poloc" => rel(RelBase::Poloc),
        "po-diff-loc" => rel(RelBase::PoDiffLoc),
        "fr" => rel(RelBase::Fr),
        "rfe" => rel(RelBase::Rfe),
        "rfi" => rel(RelBase::Rfi),
        "coe" => rel(RelBase::Coe),
        "fre" => rel(RelBase::Fre),
        "com" => rel(RelBase::Com),
        "come" => rel(RelBase::Come),
        "ecom" => rel(RelBase::Ecom),
        "cnf" => rel(RelBase::Cnf),
        "tfence" => rel(RelBase::Tfence),
        "R" => set(SetBase::Reads),
        "W" => set(SetBase::Writes),
        "F" => set(SetBase::Fences),
        "Acq" => set(SetBase::Acquires),
        "Rel" => set(SetBase::Releases),
        "SC" => set(SetBase::ScEvents),
        "A" => set(SetBase::Atomics),
        _ => {
            for f in ALL_FENCES {
                if name == rel_name(RelBase::FenceRel(f)) {
                    return rel(RelBase::FenceRel(f));
                }
                if Some(name) == set_name(SetBase::FencesOf(f)).as_deref() {
                    return set(SetBase::FencesOf(f));
                }
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rel_base_round_trips_through_its_name() {
        let mut bases = vec![
            RelBase::Po,
            RelBase::Rf,
            RelBase::Co,
            RelBase::Addr,
            RelBase::Data,
            RelBase::Ctrl,
            RelBase::Rmw,
            RelBase::Stxn,
            RelBase::Stxnat,
            RelBase::Scr,
            RelBase::Sloc,
            RelBase::Poloc,
            RelBase::PoDiffLoc,
            RelBase::Fr,
            RelBase::Rfe,
            RelBase::Rfi,
            RelBase::Coe,
            RelBase::Fre,
            RelBase::Com,
            RelBase::Come,
            RelBase::Ecom,
            RelBase::Cnf,
            RelBase::Tfence,
        ];
        bases.extend(ALL_FENCES.map(RelBase::FenceRel));
        for base in bases {
            assert_eq!(lookup(&rel_name(base)), Some(Prim::Rel(base)), "{base:?}");
        }
    }

    #[test]
    fn every_named_set_base_round_trips() {
        let mut bases = vec![
            SetBase::Reads,
            SetBase::Writes,
            SetBase::Fences,
            SetBase::Acquires,
            SetBase::Releases,
            SetBase::ScEvents,
            SetBase::Atomics,
        ];
        bases.extend(ALL_FENCES.map(SetBase::FencesOf));
        for base in bases {
            let name = set_name(base).unwrap();
            assert_eq!(lookup(&name), Some(Prim::Set(base)), "{base:?}");
        }
        assert_eq!(set_name(SetBase::RmwDomain), None);
    }
}

//! The abstract syntax of the `.cat` dialect.
//!
//! Every node carries its [`Span`] so the elaborator can point diagnostics
//! (kind mismatches, unknown names) at the exact source range.

use crate::error::Span;

/// An expression over relations and event sets. Kinds (set vs relation) are
/// not distinguished syntactically — the elaborator infers and checks them.
#[derive(Clone, Debug)]
pub enum Expr {
    /// A name: a primitive, or a `let`-bound definition.
    Name(String, Span),
    /// Union `a | b` (sets or relations).
    Union(Box<Expr>, Box<Expr>, Span),
    /// Intersection `a & b` (sets or relations).
    Inter(Box<Expr>, Box<Expr>, Span),
    /// Difference `a \ b` (relations).
    Diff(Box<Expr>, Box<Expr>, Span),
    /// Composition `a ; b` (relations).
    Seq(Box<Expr>, Box<Expr>, Span),
    /// Cartesian product `A * B` (sets; yields a relation).
    Cross(Box<Expr>, Box<Expr>, Span),
    /// Reflexive closure `a?`.
    Opt(Box<Expr>, Span),
    /// Transitive closure `a+`.
    Plus(Box<Expr>, Span),
    /// Reflexive-transitive closure `a*`.
    Star(Box<Expr>, Span),
    /// Inverse (transpose) `~a`.
    Inverse(Box<Expr>, Span),
    /// Identity restriction `[S]`.
    IdOn(Box<Expr>, Span),
    /// A function application: `weaklift(a, t)`, `domain(rmw)`, ….
    Call(String, Span, Vec<Expr>, Span),
}

impl Expr {
    /// The source range of this expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Name(_, s)
            | Expr::Union(_, _, s)
            | Expr::Inter(_, _, s)
            | Expr::Diff(_, _, s)
            | Expr::Seq(_, _, s)
            | Expr::Cross(_, _, s)
            | Expr::Opt(_, s)
            | Expr::Plus(_, s)
            | Expr::Star(_, s)
            | Expr::Inverse(_, s)
            | Expr::IdOn(_, s)
            | Expr::Call(_, _, _, s) => *s,
        }
    }

    /// True if `name` occurs free in this expression (used to detect
    /// genuinely recursive `let rec` groups).
    pub fn mentions(&self, name: &str) -> bool {
        match self {
            Expr::Name(n, _) => n == name,
            Expr::Union(a, b, _)
            | Expr::Inter(a, b, _)
            | Expr::Diff(a, b, _)
            | Expr::Seq(a, b, _)
            | Expr::Cross(a, b, _) => a.mentions(name) || b.mentions(name),
            Expr::Opt(a, _)
            | Expr::Plus(a, _)
            | Expr::Star(a, _)
            | Expr::Inverse(a, _)
            | Expr::IdOn(a, _) => a.mentions(name),
            Expr::Call(_, _, args, _) => args.iter().any(|a| a.mentions(name)),
        }
    }
}

/// The predicate head of an axiom statement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Head {
    /// `acyclic e`.
    Acyclic,
    /// `irreflexive e`.
    Irreflexive,
    /// `empty e`.
    Empty,
}

/// One `name = expr` binding of a `let` (or `let rec`) statement.
#[derive(Clone, Debug)]
pub struct Binding {
    /// The bound name.
    pub name: String,
    /// Where the name is written.
    pub name_span: Span,
    /// The bound expression.
    pub expr: Expr,
}

/// A top-level statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `let` / `let rec` with one or more `and`-joined bindings.
    Let {
        /// True for `let rec`.
        rec: bool,
        /// The bindings, in source order.
        bindings: Vec<Binding>,
        /// The whole statement's span.
        span: Span,
    },
    /// An axiom: `acyclic e as Name` (the name is optional).
    Axiom {
        /// The head predicate.
        head: Head,
        /// The body expression.
        body: Expr,
        /// The `as` name, if given.
        name: Option<(String, Span)>,
        /// The whole statement's span.
        span: Span,
    },
    /// `include "file.cat"` — spliced in by the loader before elaboration.
    Include {
        /// The literal path as written.
        path: String,
        /// The string literal's span.
        span: Span,
    },
}

/// One parsed `.cat` file: an optional model name (a leading string
/// literal) and the statements in source order.
#[derive(Clone, Debug)]
pub struct CatFile {
    /// The model name, when the file opens with a string literal.
    pub name: Option<String>,
    /// The statements.
    pub stmts: Vec<Stmt>,
}

//! Elaboration: spanned `.cat` syntax into the hash-consed axiom IR.
//!
//! The dialect is kind-checked here — every expression is either an *event
//! set* or a *relation*, the operators demand specific kinds, and mismatches
//! are reported with the span of the offending operand. The output is an
//! [`IrModel`]: a private [`IrPool`](tm_exec::ir::IrPool) holding every
//! lowered node (hash-consed, so repeated subexpressions — across `let`
//! bindings, axioms, or `include`d files — are one node, exactly like the
//! built-in catalog) plus the axiom table in declaration order.

use std::collections::HashMap;

use tm_exec::ir::{AxiomHead, IrPool, RelBase, RelExpr, RelId, SetId};
use tm_models::ir::IrModel;

use crate::ast::{Binding, CatFile, Expr, Head, Stmt};
use crate::error::{CatError, Sources, Span};
use crate::prim::{lookup, Prim};

/// The kind-tagged result of elaborating one expression.
#[derive(Clone, Copy, Debug)]
enum Value {
    Set(SetId),
    Rel(RelId),
}

impl Value {
    fn kind(self) -> &'static str {
        match self {
            Value::Set(_) => "a set",
            Value::Rel(_) => "a relation",
        }
    }
}

struct Elab<'a> {
    sources: &'a Sources,
    pool: IrPool,
    env: HashMap<String, Value>,
}

/// Elaborates a parsed (and include-spliced) file into a model named `name`.
pub fn elaborate(sources: &Sources, name: String, file: &CatFile) -> Result<IrModel, CatError> {
    let mut elab = Elab {
        sources,
        pool: IrPool::new(),
        env: HashMap::new(),
    };
    let mut axioms = Vec::new();
    for stmt in &file.stmts {
        match stmt {
            Stmt::Include { path, span } => {
                // The loader splices includes before elaboration; reaching
                // one here means the caller skipped that pass.
                return Err(elab.err(
                    *span,
                    format!("unresolved include of \"{path}\" (load through the file loader)"),
                ));
            }
            Stmt::Let { rec, bindings, .. } => elab.let_group(*rec, bindings)?,
            Stmt::Axiom {
                head, body, name, ..
            } => {
                let body_id = elab.rel(body)?;
                let axiom_name = match name {
                    Some((n, _)) => n.clone(),
                    None => format!("axiom{}", axioms.len() + 1),
                };
                let head = match head {
                    Head::Acyclic => AxiomHead::Acyclic,
                    Head::Irreflexive => AxiomHead::Irreflexive,
                    Head::Empty => AxiomHead::Empty,
                };
                axioms.push(elab.pool.axiom(axiom_name, head, body_id));
            }
        }
    }
    Ok(IrModel::from_parts(name, elab.pool, axioms))
}

impl<'a> Elab<'a> {
    fn err(&self, span: Span, message: impl Into<String>) -> CatError {
        CatError::new(self.sources, span, message)
    }

    fn let_group(&mut self, rec: bool, bindings: &[Binding]) -> Result<(), CatError> {
        for (i, binding) in bindings.iter().enumerate() {
            if rec {
                // Bindings elaborate in order, so references to *earlier*
                // members of the group are ordinary sequential uses; a
                // reference to the binding itself or a *later* member is a
                // genuine fixpoint, which the IR (a finite DAG with explicit
                // closure operators) has no lowering for. Catch those by
                // name before resolution fails with a misleading "unknown
                // name".
                for other in &bindings[i..] {
                    if binding.expr.mentions(&other.name) {
                        return Err(self.err(
                            binding.name_span,
                            format!(
                                "recursive definition of `{}` (via `{}`) is not supported: the \
                                 IR has no fixpoint operator; express the recursion with the \
                                 closure operators `+` or `*`",
                                binding.name, other.name
                            ),
                        ));
                    }
                }
            }
            let value = self.eval(&binding.expr)?;
            self.env.insert(binding.name.clone(), value);
        }
        Ok(())
    }

    /// Elaborates an expression that must be a relation.
    fn rel(&mut self, e: &Expr) -> Result<RelId, CatError> {
        match self.eval(e)? {
            Value::Rel(id) => Ok(id),
            Value::Set(_) => Err(self.err(
                e.span(),
                "expected a relation, found a set (wrap it as `[S]` to use the identity \
                 relation on it)",
            )),
        }
    }

    /// Elaborates an expression that must be a set.
    fn set(&mut self, e: &Expr, what: &str) -> Result<SetId, CatError> {
        match self.eval(e)? {
            Value::Set(id) => Ok(id),
            Value::Rel(_) => Err(self.err(
                e.span(),
                format!("{what} needs a set, but this expression is a relation"),
            )),
        }
    }

    fn eval(&mut self, e: &Expr) -> Result<Value, CatError> {
        match e {
            Expr::Name(name, span) => {
                if let Some(&v) = self.env.get(name) {
                    return Ok(v);
                }
                match lookup(name) {
                    Some(Prim::Rel(base)) => Ok(Value::Rel(self.pool.base(base))),
                    Some(Prim::Set(base)) => Ok(Value::Set(self.pool.set_base(base))),
                    None => Err(self.err(*span, format!("unknown name `{name}`"))),
                }
            }
            Expr::Union(a, b, span) => {
                let (va, vb) = (self.eval(a)?, self.eval(b)?);
                match (va, vb) {
                    (Value::Rel(a), Value::Rel(b)) => Ok(Value::Rel(self.pool.union(a, b))),
                    (Value::Set(a), Value::Set(b)) => Ok(Value::Set(self.pool.set_union(a, b))),
                    _ => Err(self.kind_mismatch("|", va, vb, *span)),
                }
            }
            Expr::Inter(a, b, span) => {
                let (va, vb) = (self.eval(a)?, self.eval(b)?);
                match (va, vb) {
                    (Value::Rel(a), Value::Rel(b)) => Ok(Value::Rel(self.pool.inter(a, b))),
                    (Value::Set(a), Value::Set(b)) => Ok(Value::Set(self.pool.set_inter(a, b))),
                    _ => Err(self.kind_mismatch("&", va, vb, *span)),
                }
            }
            Expr::Diff(a, b, _) => {
                let (va, vb) = (self.eval(a)?, self.eval(b)?);
                match (va, vb) {
                    (Value::Rel(a), Value::Rel(b)) => Ok(Value::Rel(self.pool.diff(a, b))),
                    (Value::Set(_), _) | (_, Value::Set(_)) => Err(self.err(
                        if matches!(va, Value::Set(_)) {
                            a.span()
                        } else {
                            b.span()
                        },
                        "`\\` subtracts relations; set difference is not supported by the IR",
                    )),
                }
            }
            Expr::Seq(a, b, _) => {
                let left = self.seq_operand(a)?;
                let right = self.seq_operand(b)?;
                Ok(Value::Rel(self.pool.seq(left, right)))
            }
            Expr::Cross(a, b, _) => {
                let sa = self.cross_operand(a)?;
                let sb = self.cross_operand(b)?;
                Ok(Value::Rel(self.pool.cross(sa, sb)))
            }
            Expr::Opt(a, _) => {
                let r = self.postfix_operand(a, "?")?;
                Ok(Value::Rel(self.pool.opt(r)))
            }
            Expr::Plus(a, _) => {
                let r = self.postfix_operand(a, "+")?;
                Ok(Value::Rel(self.pool.plus(r)))
            }
            Expr::Star(a, _) => {
                let r = self.postfix_operand(a, "*")?;
                Ok(Value::Rel(self.pool.star(r)))
            }
            Expr::Inverse(a, _) => {
                let r = self.postfix_operand(a, "~")?;
                Ok(Value::Rel(self.pool.inverse(r)))
            }
            Expr::IdOn(a, _) => {
                let s = self.set(a, "`[_]`")?;
                Ok(Value::Rel(self.pool.id_on(s)))
            }
            Expr::Call(name, name_span, args, span) => self.call(name, *name_span, args, *span),
        }
    }

    fn kind_mismatch(&self, op: &str, va: Value, vb: Value, span: Span) -> CatError {
        self.err(
            span,
            format!(
                "`{op}` needs both operands of the same kind, but the left is {} and the \
                 right is {}",
                va.kind(),
                vb.kind()
            ),
        )
    }

    fn seq_operand(&mut self, e: &Expr) -> Result<RelId, CatError> {
        match self.eval(e)? {
            Value::Rel(id) => Ok(id),
            Value::Set(_) => Err(self.err(
                e.span(),
                "`;` composes relations, but this operand is a set (write `[S]` for the \
                 identity relation on it)",
            )),
        }
    }

    fn cross_operand(&mut self, e: &Expr) -> Result<SetId, CatError> {
        match self.eval(e)? {
            Value::Set(id) => Ok(id),
            Value::Rel(_) => Err(self.err(
                e.span(),
                "`*` is the cartesian product of two sets, but this operand is a relation \
                 (the postfix closure `*` binds only when not followed by an operand)",
            )),
        }
    }

    fn postfix_operand(&mut self, e: &Expr, op: &str) -> Result<RelId, CatError> {
        match self.eval(e)? {
            Value::Rel(id) => Ok(id),
            Value::Set(_) => Err(self.err(
                e.span(),
                format!("`{op}` applies to a relation, but this expression is a set"),
            )),
        }
    }

    fn call(
        &mut self,
        name: &str,
        name_span: Span,
        args: &[Expr],
        span: Span,
    ) -> Result<Value, CatError> {
        let arity = |n: usize| -> Result<(), CatError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(self.err(
                    span,
                    format!("`{name}` takes {n} argument(s), found {}", args.len()),
                ))
            }
        };
        match name {
            "weaklift" | "stronglift" => {
                arity(2)?;
                let r = self.rel(&args[0])?;
                let t = self.rel(&args[1])?;
                Ok(Value::Rel(if name == "weaklift" {
                    self.pool.weaklift(r, t)
                } else {
                    self.pool.stronglift(r, t)
                }))
            }
            "domain" | "range" => {
                arity(1)?;
                let r = self.rel(&args[0])?;
                if self.pool.rel_expr(r) != RelExpr::Base(RelBase::Rmw) {
                    return Err(self.err(
                        args[0].span(),
                        format!("`{name}(...)` is only available for the primitive `rmw` relation"),
                    ));
                }
                Ok(Value::Set(self.pool.set_base(if name == "domain" {
                    tm_exec::ir::SetBase::RmwDomain
                } else {
                    tm_exec::ir::SetBase::RmwRange
                })))
            }
            _ => Err(self.err(name_span, format!("unknown function `{name}`"))),
        }
    }
}

//! Elaboration: spanned `.cat` syntax into the hash-consed axiom IR.
//!
//! The dialect is kind-checked here — every expression is either an *event
//! set* or a *relation*, the operators demand specific kinds, and mismatches
//! are reported with the span of the offending operand. The output is an
//! [`IrModel`]: a private [`IrPool`](tm_exec::ir::IrPool) holding every
//! lowered node (hash-consed, so repeated subexpressions — across `let`
//! bindings, axioms, or `include`d files — are one node, exactly like the
//! built-in catalog) plus the axiom table in declaration order.
//!
//! `let rec … and …` groups are solved here: the group's internal
//! reference graph is split into strongly connected components, components
//! without genuine recursion elaborate sequentially (forward references
//! across components are legal), and genuinely recursive components become
//! [`Fix`](tm_exec::ir::RelExpr::Fix) nodes — after a polarity check that
//! every recursive occurrence is positive, so the least fixpoint exists.
//! Non-stratified recursion (a variable under the right of `\` or inside a
//! lift) is rejected with a spanned diagnostic naming the cycle.
//!
//! Elaboration also drives the linter: it records where every interned node
//! first appears, which bindings each definition and axiom uses, and hands
//! the finished pool to [`tm_exec::ir::analysis`] to derive the semantic
//! warnings (statically-empty subexpressions, vacuous and redundant
//! axioms) next to the syntactic ones (dead and shadowed bindings).

use std::collections::HashMap;

use tm_exec::ir::analysis::Analysis;
use tm_exec::ir::{var_polarity, AxiomHead, IrPool, Polarity, RelBase, RelExpr, RelId, SetId};
use tm_models::ir::IrModel;

use crate::ast::{Binding, CatFile, Expr, Head, Stmt};
use crate::error::{CatError, CatWarning, Sources, Span};
use crate::prim::{lookup, Prim};

/// The kind-tagged result of elaborating one expression.
#[derive(Clone, Copy, Debug)]
enum Value {
    Set(SetId),
    Rel(RelId),
}

impl Value {
    fn kind(self) -> &'static str {
        match self {
            Value::Set(_) => "a set",
            Value::Rel(_) => "a relation",
        }
    }
}

/// Lint bookkeeping for one `let` binding.
struct BindingInfo {
    name: String,
    name_span: Span,
}

/// Lint bookkeeping for one axiom.
struct AxiomInfo {
    name: String,
    head: AxiomHead,
    body: RelId,
    span: Span,
}

struct Elab<'a> {
    sources: &'a Sources,
    pool: IrPool,
    env: HashMap<String, Value>,
    /// Latest binding index for each name (usage attribution).
    binding_of: HashMap<String, usize>,
    bindings: Vec<BindingInfo>,
    /// `(user, used)` edges: `user` is the binding whose definition made the
    /// reference, or `None` for an axiom body. Liveness of bindings is
    /// reachability from the `None` seeds.
    uses: Vec<(Option<usize>, usize)>,
    /// The binding currently elaborating (suppresses self-use edges).
    current: Option<usize>,
    /// First source occurrence of each interned relation node.
    rel_spans: HashMap<RelId, Span>,
    axioms_info: Vec<AxiomInfo>,
    warnings: Vec<CatWarning>,
}

/// Elaborates and lints: the model plus every warning the static analysis
/// and the binding bookkeeping produce, in source order.
pub fn elaborate_with_lints(
    sources: &Sources,
    name: String,
    file: &CatFile,
) -> Result<(IrModel, Vec<CatWarning>), CatError> {
    let mut elab = Elab {
        sources,
        pool: IrPool::new(),
        env: HashMap::new(),
        binding_of: HashMap::new(),
        bindings: Vec::new(),
        uses: Vec::new(),
        current: None,
        rel_spans: HashMap::new(),
        axioms_info: Vec::new(),
        warnings: Vec::new(),
    };
    let mut axioms = Vec::new();
    for stmt in &file.stmts {
        match stmt {
            Stmt::Include { path, span } => {
                // The loader splices includes before elaboration; reaching
                // one here means the caller skipped that pass.
                return Err(elab.err(
                    *span,
                    format!("unresolved include of \"{path}\" (load through the file loader)"),
                ));
            }
            Stmt::Let { rec, bindings, .. } => elab.let_group(*rec, bindings)?,
            Stmt::Axiom {
                head, body, name, ..
            } => {
                let body_id = elab.rel(body)?;
                let axiom_name = match name {
                    Some((n, _)) => n.clone(),
                    None => format!("axiom{}", axioms.len() + 1),
                };
                let head = match head {
                    Head::Acyclic => AxiomHead::Acyclic,
                    Head::Irreflexive => AxiomHead::Irreflexive,
                    Head::Empty => AxiomHead::Empty,
                };
                elab.axioms_info.push(AxiomInfo {
                    name: axiom_name.clone(),
                    head,
                    body: body_id,
                    span: body.span(),
                });
                axioms.push(elab.pool.axiom(axiom_name, head, body_id));
            }
        }
    }
    let warnings = elab.finish_lints();
    Ok((IrModel::from_parts(name, elab.pool, axioms), warnings))
}

/// The relation children of a node, for root-cause filtering of emptiness.
fn rel_children(pool: &IrPool, id: RelId) -> Vec<RelId> {
    match pool.rel_expr(id) {
        RelExpr::Base(_) | RelExpr::IdOn(_) | RelExpr::Cross(_, _) | RelExpr::Var(_) => vec![],
        RelExpr::Seq(a, b)
        | RelExpr::Union(a, b)
        | RelExpr::Inter(a, b)
        | RelExpr::Diff(a, b)
        | RelExpr::WeakLift(a, b)
        | RelExpr::StrongLift(a, b) => vec![a, b],
        RelExpr::Inverse(a) | RelExpr::Opt(a) | RelExpr::Plus(a) | RelExpr::Star(a) => vec![a],
        RelExpr::Fix(g, _) => pool.fix_bodies(g).to_vec(),
    }
}

/// Tarjan's strongly-connected components over a tiny dependency graph,
/// emitted callees-first (every component only depends on earlier ones).
fn sccs(n: usize, deps: &[Vec<usize>]) -> Vec<Vec<usize>> {
    struct St<'d> {
        deps: &'d [Vec<usize>],
        index: Vec<Option<u32>>,
        low: Vec<u32>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: u32,
        out: Vec<Vec<usize>>,
    }
    fn visit(st: &mut St<'_>, v: usize) {
        st.index[v] = Some(st.next);
        st.low[v] = st.next;
        st.next += 1;
        st.stack.push(v);
        st.on_stack[v] = true;
        for w in st.deps[v].clone() {
            if st.index[w].is_none() {
                visit(st, w);
                st.low[v] = st.low[v].min(st.low[w]);
            } else if st.on_stack[w] {
                st.low[v] = st.low[v].min(st.index[w].unwrap());
            }
        }
        if st.low[v] == st.index[v].unwrap() {
            let mut comp = Vec::new();
            loop {
                let w = st.stack.pop().unwrap();
                st.on_stack[w] = false;
                comp.push(w);
                if w == v {
                    break;
                }
            }
            comp.sort_unstable();
            st.out.push(comp);
        }
    }
    let mut st = St {
        deps,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    for v in 0..n {
        if st.index[v].is_none() {
            visit(&mut st, v);
        }
    }
    st.out
}

impl<'a> Elab<'a> {
    fn err(&self, span: Span, message: impl Into<String>) -> CatError {
        CatError::new(self.sources, span, message)
    }

    fn warn(&mut self, span: Span, lint: &'static str, message: impl Into<String>) {
        self.warnings
            .push(CatWarning::new(self.sources, span, lint, message));
    }

    fn let_group(&mut self, rec: bool, bindings: &[Binding]) -> Result<(), CatError> {
        if !rec {
            for binding in bindings {
                self.bind_simple(binding)?;
            }
            return Ok(());
        }
        // In a `let rec` group every member is in scope in every body, so
        // split the internal reference graph into SCCs: non-recursive
        // components elaborate sequentially in dependency order (forward
        // references across components are legal), recursive ones become
        // fixpoint nodes.
        let n = bindings.len();
        let deps: Vec<Vec<usize>> = bindings
            .iter()
            .map(|b| {
                (0..n)
                    .filter(|&j| b.expr.mentions(&bindings[j].name))
                    .collect()
            })
            .collect();
        for comp in sccs(n, &deps) {
            let genuine = comp.len() > 1 || deps[comp[0]].contains(&comp[0]);
            if genuine {
                self.bind_rec_component(bindings, &comp)?;
            } else {
                self.bind_simple(&bindings[comp[0]])?;
            }
        }
        Ok(())
    }

    /// Shadowing lints plus the shared binding registration.
    fn declare(&mut self, binding: &Binding) -> usize {
        if self.env.contains_key(&binding.name) {
            self.warn(
                binding.name_span,
                "shadowed-let",
                format!(
                    "binding `{}` shadows an earlier `let` of the same name",
                    binding.name
                ),
            );
        } else if let Some(prim) = lookup(&binding.name) {
            self.warn(
                binding.name_span,
                "shadowed-let",
                format!(
                    "binding `{}` shadows the primitive {} of the same name",
                    binding.name,
                    match prim {
                        Prim::Rel(_) => "relation",
                        Prim::Set(_) => "set",
                    }
                ),
            );
        }
        let ix = self.bindings.len();
        self.bindings.push(BindingInfo {
            name: binding.name.clone(),
            name_span: binding.name_span,
        });
        ix
    }

    fn bind_simple(&mut self, binding: &Binding) -> Result<(), CatError> {
        let ix = self.declare(binding);
        let prev = self.current.replace(ix);
        let value = self.eval(&binding.expr);
        self.current = prev;
        let value = value?;
        self.env.insert(binding.name.clone(), value);
        self.binding_of.insert(binding.name.clone(), ix);
        Ok(())
    }

    /// Elaborates one genuinely recursive SCC of a `let rec` group into a
    /// mutual fixpoint: fresh recursion variables stand in for the members
    /// while the bodies elaborate, every body must use every variable
    /// positively, and the solved components replace the variables in the
    /// environment.
    fn bind_rec_component(&mut self, bindings: &[Binding], comp: &[usize]) -> Result<(), CatError> {
        let mut vars = Vec::with_capacity(comp.len());
        let mut indices = Vec::with_capacity(comp.len());
        for &m in comp {
            let ix = self.declare(&bindings[m]);
            let var = self.pool.fresh_var();
            self.env.insert(bindings[m].name.clone(), Value::Rel(var));
            self.binding_of.insert(bindings[m].name.clone(), ix);
            vars.push(var);
            indices.push(ix);
        }
        let mut body_ids = Vec::with_capacity(comp.len());
        for (&m, &ix) in comp.iter().zip(&indices) {
            let prev = self.current.replace(ix);
            let value = self.eval(&bindings[m].expr);
            self.current = prev;
            match value? {
                Value::Rel(id) => body_ids.push(id),
                Value::Set(_) => {
                    return Err(self.err(
                        bindings[m].expr.span(),
                        format!(
                            "recursive definition of `{}` must be a relation, but this \
                             expression is a set",
                            bindings[m].name
                        ),
                    ));
                }
            }
        }
        let cycle = comp
            .iter()
            .map(|&m| format!("`{}`", bindings[m].name))
            .collect::<Vec<_>>()
            .join(", ");
        for (&m, &body) in comp.iter().zip(&body_ids) {
            for (&v_m, &var) in comp.iter().zip(&vars) {
                let RelExpr::Var(v) = self.pool.rel_expr(var) else {
                    unreachable!("fresh_var interns a Var node");
                };
                match var_polarity(&self.pool, body, v) {
                    Polarity::Positive | Polarity::Constant => {}
                    Polarity::Negative | Polarity::Mixed => {
                        return Err(self.err(
                            bindings[m].name_span,
                            format!(
                                "recursive cycle through {cycle} is not positively \
                                 stratified: `{}` occurs negatively in the definition of \
                                 `{}` (under the right of `\\`, or inside a lift); only \
                                 positive recursion has a least fixpoint",
                                bindings[v_m].name, bindings[m].name
                            ),
                        ));
                    }
                }
            }
        }
        let solved = self.pool.fix(&vars, &body_ids);
        for ((&m, &fixed), var) in comp.iter().zip(&solved).zip(vars) {
            self.env.insert(bindings[m].name.clone(), Value::Rel(fixed));
            let span = bindings[m].expr.span();
            self.rel_spans.entry(fixed).or_insert(span);
            // The bare variable should never be queried once solved, but
            // give it the same span in case a diagnostic lands on it.
            self.rel_spans.entry(var).or_insert(span);
        }
        Ok(())
    }

    /// The semantic lints, computed once the pool is complete.
    fn finish_lints(&mut self) -> Vec<CatWarning> {
        // Dead bindings: not reachable from any axiom body's uses.
        let mut live = vec![false; self.bindings.len()];
        let mut queue: Vec<usize> = self
            .uses
            .iter()
            .filter(|(from, _)| from.is_none())
            .map(|&(_, to)| to)
            .collect();
        while let Some(ix) = queue.pop() {
            if std::mem::replace(&mut live[ix], true) {
                continue;
            }
            queue.extend(
                self.uses
                    .iter()
                    .filter(|&&(from, _)| from == Some(ix))
                    .map(|&(_, to)| to),
            );
        }
        // An axiom-less file is a library fragment meant for `include`; with
        // no axioms to seed liveness, "unused" would indict every binding.
        if !self.axioms_info.is_empty() {
            for (ix, info) in self.bindings.iter().enumerate() {
                if !live[ix] {
                    self.warnings.push(CatWarning::new(
                        self.sources,
                        info.name_span,
                        "unused-let",
                        format!("binding `{}` is never used by any axiom", info.name),
                    ));
                }
            }
        }

        let analysis = Analysis::new(&self.pool);
        // Statically-empty subexpressions, filtered to root causes: a node
        // whose own children are all non-empty is where the emptiness is
        // introduced; its ancestors would only echo it.
        let mut empties: Vec<(RelId, Span)> = self
            .rel_spans
            .iter()
            .filter(|(&id, _)| {
                analysis.is_empty(id)
                    && !matches!(self.pool.rel_expr(id), RelExpr::Var(_))
                    && rel_children(&self.pool, id)
                        .into_iter()
                        .all(|c| !analysis.is_empty(c))
            })
            .map(|(&id, &span)| (id, span))
            .collect();
        empties.sort_by_key(|&(id, _)| id);
        for (_, span) in empties {
            self.warnings.push(CatWarning::new(
                self.sources,
                span,
                "statically-empty",
                "this expression is provably empty on every well-formed execution \
                 (its operands' event kinds can never meet)",
            ));
        }

        // Vacuous axioms: the head predicate already holds by construction.
        let vacuous: Vec<bool> = self
            .axioms_info
            .iter()
            .map(|ax| analysis.vacuous(ax.head, ax.body))
            .collect();
        for (ax, &vac) in self.axioms_info.iter().zip(&vacuous) {
            if vac {
                let claim = match ax.head {
                    AxiomHead::Acyclic => "acyclic",
                    AxiomHead::Irreflexive => "irreflexive",
                    AxiomHead::Empty => "empty",
                };
                self.warnings.push(CatWarning::new(
                    self.sources,
                    ax.span,
                    "vacuous-axiom",
                    format!(
                        "axiom `{}` is vacuous: its body is provably {claim} on every \
                         well-formed execution, so the axiom constrains nothing",
                        ax.name
                    ),
                ));
            }
        }

        // Redundant axioms: implied by another (stronger) axiom. Vacuous
        // axioms are skipped on both sides — they already warned, and an
        // empty body is "included" in everything.
        for (i, ax) in self.axioms_info.iter().enumerate() {
            if vacuous[i] {
                continue;
            }
            let witness = self.axioms_info.iter().enumerate().find(|&(j, other)| {
                j != i
                    && !vacuous[j]
                    && analysis.implied_by(ax.head, ax.body, other.head, other.body)
                    && (j < i || !analysis.implied_by(other.head, other.body, ax.head, ax.body))
            });
            if let Some((_, other)) = witness {
                self.warnings.push(CatWarning::new(
                    self.sources,
                    ax.span,
                    "redundant-axiom",
                    format!(
                        "axiom `{}` is redundant: every execution satisfying axiom `{}` \
                         already satisfies it",
                        ax.name, other.name
                    ),
                ));
            }
        }

        let mut out = std::mem::take(&mut self.warnings);
        out.sort_by(|a, b| {
            (&a.snippet.path, a.snippet.line, a.snippet.col, a.lint).cmp(&(
                &b.snippet.path,
                b.snippet.line,
                b.snippet.col,
                b.lint,
            ))
        });
        out
    }

    /// Elaborates an expression that must be a relation.
    fn rel(&mut self, e: &Expr) -> Result<RelId, CatError> {
        match self.eval(e)? {
            Value::Rel(id) => Ok(id),
            Value::Set(_) => Err(self.err(
                e.span(),
                "expected a relation, found a set (wrap it as `[S]` to use the identity \
                 relation on it)",
            )),
        }
    }

    /// Elaborates an expression that must be a set.
    fn set(&mut self, e: &Expr, what: &str) -> Result<SetId, CatError> {
        match self.eval(e)? {
            Value::Set(id) => Ok(id),
            Value::Rel(_) => Err(self.err(
                e.span(),
                format!("{what} needs a set, but this expression is a relation"),
            )),
        }
    }

    /// [`eval_inner`](Self::eval_inner) plus the lint bookkeeping: the first
    /// span each relation node elaborates from.
    fn eval(&mut self, e: &Expr) -> Result<Value, CatError> {
        let value = self.eval_inner(e)?;
        if let Value::Rel(id) = value {
            self.rel_spans.entry(id).or_insert_with(|| e.span());
        }
        Ok(value)
    }

    fn eval_inner(&mut self, e: &Expr) -> Result<Value, CatError> {
        match e {
            Expr::Name(name, span) => {
                if let Some(&v) = self.env.get(name) {
                    if let Some(&ix) = self.binding_of.get(name) {
                        if self.current != Some(ix) {
                            self.uses.push((self.current, ix));
                        }
                    }
                    return Ok(v);
                }
                match lookup(name) {
                    Some(Prim::Rel(base)) => Ok(Value::Rel(self.pool.base(base))),
                    Some(Prim::Set(base)) => Ok(Value::Set(self.pool.set_base(base))),
                    None => Err(self.err(*span, format!("unknown name `{name}`"))),
                }
            }
            Expr::Union(a, b, span) => {
                let (va, vb) = (self.eval(a)?, self.eval(b)?);
                match (va, vb) {
                    (Value::Rel(a), Value::Rel(b)) => Ok(Value::Rel(self.pool.union(a, b))),
                    (Value::Set(a), Value::Set(b)) => Ok(Value::Set(self.pool.set_union(a, b))),
                    _ => Err(self.kind_mismatch("|", va, vb, *span)),
                }
            }
            Expr::Inter(a, b, span) => {
                let (va, vb) = (self.eval(a)?, self.eval(b)?);
                match (va, vb) {
                    (Value::Rel(a), Value::Rel(b)) => Ok(Value::Rel(self.pool.inter(a, b))),
                    (Value::Set(a), Value::Set(b)) => Ok(Value::Set(self.pool.set_inter(a, b))),
                    _ => Err(self.kind_mismatch("&", va, vb, *span)),
                }
            }
            Expr::Diff(a, b, _) => {
                let (va, vb) = (self.eval(a)?, self.eval(b)?);
                match (va, vb) {
                    (Value::Rel(a), Value::Rel(b)) => Ok(Value::Rel(self.pool.diff(a, b))),
                    (Value::Set(_), _) | (_, Value::Set(_)) => Err(self.err(
                        if matches!(va, Value::Set(_)) {
                            a.span()
                        } else {
                            b.span()
                        },
                        "`\\` subtracts relations; set difference is not supported by the IR",
                    )),
                }
            }
            Expr::Seq(a, b, _) => {
                let left = self.seq_operand(a)?;
                let right = self.seq_operand(b)?;
                Ok(Value::Rel(self.pool.seq(left, right)))
            }
            Expr::Cross(a, b, _) => {
                let sa = self.cross_operand(a)?;
                let sb = self.cross_operand(b)?;
                Ok(Value::Rel(self.pool.cross(sa, sb)))
            }
            Expr::Opt(a, _) => {
                let r = self.postfix_operand(a, "?")?;
                Ok(Value::Rel(self.pool.opt(r)))
            }
            Expr::Plus(a, _) => {
                let r = self.postfix_operand(a, "+")?;
                Ok(Value::Rel(self.pool.plus(r)))
            }
            Expr::Star(a, _) => {
                let r = self.postfix_operand(a, "*")?;
                Ok(Value::Rel(self.pool.star(r)))
            }
            Expr::Inverse(a, _) => {
                let r = self.postfix_operand(a, "~")?;
                Ok(Value::Rel(self.pool.inverse(r)))
            }
            Expr::IdOn(a, _) => {
                let s = self.set(a, "`[_]`")?;
                Ok(Value::Rel(self.pool.id_on(s)))
            }
            Expr::Call(name, name_span, args, span) => self.call(name, *name_span, args, *span),
        }
    }

    fn kind_mismatch(&self, op: &str, va: Value, vb: Value, span: Span) -> CatError {
        self.err(
            span,
            format!(
                "`{op}` needs both operands of the same kind, but the left is {} and the \
                 right is {}",
                va.kind(),
                vb.kind()
            ),
        )
    }

    fn seq_operand(&mut self, e: &Expr) -> Result<RelId, CatError> {
        match self.eval(e)? {
            Value::Rel(id) => Ok(id),
            Value::Set(_) => Err(self.err(
                e.span(),
                "`;` composes relations, but this operand is a set (write `[S]` for the \
                 identity relation on it)",
            )),
        }
    }

    fn cross_operand(&mut self, e: &Expr) -> Result<SetId, CatError> {
        match self.eval(e)? {
            Value::Set(id) => Ok(id),
            Value::Rel(_) => Err(self.err(
                e.span(),
                "`*` is the cartesian product of two sets, but this operand is a relation \
                 (the postfix closure `*` binds only when not followed by an operand)",
            )),
        }
    }

    fn postfix_operand(&mut self, e: &Expr, op: &str) -> Result<RelId, CatError> {
        match self.eval(e)? {
            Value::Rel(id) => Ok(id),
            Value::Set(_) => Err(self.err(
                e.span(),
                format!("`{op}` applies to a relation, but this expression is a set"),
            )),
        }
    }

    fn call(
        &mut self,
        name: &str,
        name_span: Span,
        args: &[Expr],
        span: Span,
    ) -> Result<Value, CatError> {
        let arity = |n: usize| -> Result<(), CatError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(self.err(
                    span,
                    format!("`{name}` takes {n} argument(s), found {}", args.len()),
                ))
            }
        };
        match name {
            "weaklift" | "stronglift" => {
                arity(2)?;
                let r = self.rel(&args[0])?;
                let t = self.rel(&args[1])?;
                Ok(Value::Rel(if name == "weaklift" {
                    self.pool.weaklift(r, t)
                } else {
                    self.pool.stronglift(r, t)
                }))
            }
            "domain" | "range" => {
                arity(1)?;
                let r = self.rel(&args[0])?;
                if self.pool.rel_expr(r) != RelExpr::Base(RelBase::Rmw) {
                    return Err(self.err(
                        args[0].span(),
                        format!("`{name}(...)` is only available for the primitive `rmw` relation"),
                    ));
                }
                Ok(Value::Set(self.pool.set_base(if name == "domain" {
                    tm_exec::ir::SetBase::RmwDomain
                } else {
                    tm_exec::ir::SetBase::RmwRange
                })))
            }
            _ => Err(self.err(name_span, format!("unknown function `{name}`"))),
        }
    }
}

//! Recursive-descent parser for the `.cat` dialect.
//!
//! Operator precedence, loosest to tightest:
//!
//! | level | operators         | meaning                          |
//! |-------|-------------------|----------------------------------|
//! | 1     | `\|`              | union                            |
//! | 2     | `&`               | intersection                     |
//! | 3     | `\`               | difference (left-associative)    |
//! | 4     | `;`               | composition                      |
//! | 5     | `*` (binary)      | cartesian product of sets        |
//! | 6     | `+` `*` `?` (postfix), `~` (prefix) | closures, inverse |
//!
//! The two readings of `*` are disambiguated by one token of lookahead: a
//! `*` followed by the start of an operand (a name, `(`, `[` or `~`) is the
//! binary product, anything else is the postfix reflexive-transitive
//! closure — so `W * W` is a product while `com* ; rfe?` closes `com`.

use crate::ast::{Binding, CatFile, Expr, Head, Stmt};
use crate::error::{CatError, Sources, Span};
use crate::lexer::{Tok, Token};

struct Parser<'a> {
    sources: &'a Sources,
    tokens: Vec<Token>,
    pos: usize,
}

/// Parses one lexed file.
pub fn parse(sources: &Sources, tokens: Vec<Token>) -> Result<CatFile, CatError> {
    Parser {
        sources,
        tokens,
        pos: 0,
    }
    .file()
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, span: Span, message: impl Into<String>) -> CatError {
        CatError::new(self.sources, span, message)
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<Token, CatError> {
        if *self.peek() == want {
            Ok(self.bump())
        } else {
            Err(self.err(
                self.span(),
                format!("expected {what}, found {}", self.peek().describe()),
            ))
        }
    }

    fn file(&mut self) -> Result<CatFile, CatError> {
        let name = if let Tok::Str(s) = self.peek() {
            let s = s.clone();
            self.bump();
            Some(s)
        } else {
            None
        };
        let mut stmts = Vec::new();
        while *self.peek() != Tok::Eof {
            stmts.push(self.stmt()?);
        }
        Ok(CatFile { name, stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, CatError> {
        match self.peek().clone() {
            Tok::Include => {
                let start = self.bump().span;
                let tok = self.bump();
                match tok.tok {
                    Tok::Str(path) => Ok(Stmt::Include {
                        path,
                        span: start.to(tok.span),
                    }),
                    other => Err(self.err(
                        tok.span,
                        format!(
                            "expected a string literal after `include`, found {}",
                            other.describe()
                        ),
                    )),
                }
            }
            Tok::Let => self.let_stmt(),
            Tok::Acyclic => self.axiom(Head::Acyclic),
            Tok::Irreflexive => self.axiom(Head::Irreflexive),
            Tok::Empty => self.axiom(Head::Empty),
            other => Err(self.err(
                self.span(),
                format!(
                    "expected a statement (`let`, `include`, `acyclic`, `irreflexive` or \
                     `empty`), found {}",
                    other.describe()
                ),
            )),
        }
    }

    fn let_stmt(&mut self) -> Result<Stmt, CatError> {
        let start = self.bump().span; // `let`
        let rec = if *self.peek() == Tok::Rec {
            self.bump();
            true
        } else {
            false
        };
        let what = if rec { "`let rec`" } else { "`let`" };
        let mut bindings = vec![self.binding(what)?];
        while *self.peek() == Tok::And {
            self.bump();
            bindings.push(self.binding(what)?);
        }
        let span = start.to(bindings.last().unwrap().expr.span());
        Ok(Stmt::Let {
            rec,
            bindings,
            span,
        })
    }

    fn binding(&mut self, what: &str) -> Result<Binding, CatError> {
        let tok = self.bump();
        let (name, name_span) = match tok.tok {
            Tok::Ident(name) => (name, tok.span),
            Tok::Eof => {
                return Err(self.err(
                    tok.span,
                    format!("unterminated {what}: expected a binding, found end of input"),
                ))
            }
            other => {
                return Err(self.err(
                    tok.span,
                    format!(
                        "expected a name to bind in {what}, found {}",
                        other.describe()
                    ),
                ))
            }
        };
        self.expect(Tok::Eq, "`=`")?;
        let expr = self.expr()?;
        Ok(Binding {
            name,
            name_span,
            expr,
        })
    }

    fn axiom(&mut self, head: Head) -> Result<Stmt, CatError> {
        let start = self.bump().span;
        let body = self.expr()?;
        let mut span = start.to(body.span());
        let name = if *self.peek() == Tok::As {
            self.bump();
            let tok = self.bump();
            match tok.tok {
                Tok::Ident(name) => {
                    span = span.to(tok.span);
                    Some((name, tok.span))
                }
                other => {
                    return Err(self.err(
                        tok.span,
                        format!(
                            "expected an axiom name after `as`, found {}",
                            other.describe()
                        ),
                    ))
                }
            }
        } else {
            None
        };
        Ok(Stmt::Axiom {
            head,
            body,
            name,
            span,
        })
    }

    // ---- expressions ------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, CatError> {
        self.union()
    }

    fn union(&mut self) -> Result<Expr, CatError> {
        let mut lhs = self.inter()?;
        while *self.peek() == Tok::Pipe {
            self.bump();
            let rhs = self.inter()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Union(Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn inter(&mut self) -> Result<Expr, CatError> {
        let mut lhs = self.diff()?;
        while *self.peek() == Tok::Amp {
            self.bump();
            let rhs = self.diff()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Inter(Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn diff(&mut self) -> Result<Expr, CatError> {
        let mut lhs = self.seq()?;
        while *self.peek() == Tok::Backslash {
            self.bump();
            let rhs = self.seq()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Diff(Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn seq(&mut self) -> Result<Expr, CatError> {
        let mut lhs = self.cross()?;
        while *self.peek() == Tok::Semi {
            self.bump();
            let rhs = self.cross()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Seq(Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn starts_operand(tok: &Tok) -> bool {
        matches!(
            tok,
            Tok::Ident(_) | Tok::LParen | Tok::LBracket | Tok::Tilde
        )
    }

    fn cross(&mut self) -> Result<Expr, CatError> {
        let mut lhs = self.postfix()?;
        while *self.peek() == Tok::Star && Self::starts_operand(self.peek2()) {
            self.bump();
            let rhs = self.postfix()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Cross(Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn postfix(&mut self) -> Result<Expr, CatError> {
        let mut e = self.prefix()?;
        loop {
            match self.peek() {
                Tok::Plus => {
                    let span = e.span().to(self.bump().span);
                    e = Expr::Plus(Box::new(e), span);
                }
                Tok::Question => {
                    let span = e.span().to(self.bump().span);
                    e = Expr::Opt(Box::new(e), span);
                }
                Tok::Star if !Self::starts_operand(self.peek2()) => {
                    let span = e.span().to(self.bump().span);
                    e = Expr::Star(Box::new(e), span);
                }
                _ => return Ok(e),
            }
        }
    }

    fn prefix(&mut self) -> Result<Expr, CatError> {
        if *self.peek() == Tok::Tilde {
            let start = self.bump().span;
            let e = self.prefix()?;
            let span = start.to(e.span());
            return Ok(Expr::Inverse(Box::new(e), span));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, CatError> {
        let tok = self.bump();
        match tok.tok {
            Tok::Ident(name) => {
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let mut args = vec![self.expr()?];
                    while *self.peek() == Tok::Comma {
                        self.bump();
                        args.push(self.expr()?);
                    }
                    let close = self.expect(Tok::RParen, "`)`")?;
                    let span = tok.span.to(close.span);
                    Ok(Expr::Call(name, tok.span, args, span))
                } else {
                    Ok(Expr::Name(name, tok.span))
                }
            }
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::LBracket => {
                let e = self.expr()?;
                let close = self.expect(Tok::RBracket, "`]`")?;
                let span = tok.span.to(close.span);
                Ok(Expr::IdOn(Box::new(e), span))
            }
            other => Err(self.err(
                tok.span,
                format!("expected an expression, found {}", other.describe()),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_str(text: &str) -> Result<CatFile, CatError> {
        let mut sources = Sources::new();
        let src = sources.add("<test>", text);
        let tokens = lex(&sources, src)?;
        parse(&sources, tokens)
    }

    #[test]
    fn parses_a_small_model() {
        let file = parse_str(
            "\"demo\"\nlet hb = po | rf\nacyclic hb as Order\nempty rmw & (fre ; coe) as RMWIsol\n",
        )
        .unwrap();
        assert_eq!(file.name.as_deref(), Some("demo"));
        assert_eq!(file.stmts.len(), 3);
    }

    #[test]
    fn star_is_cross_before_an_operand_and_closure_otherwise() {
        let file = parse_str("acyclic (W * W) | com* as A").unwrap();
        let Stmt::Axiom { body, .. } = &file.stmts[0] else {
            panic!("not an axiom")
        };
        let Expr::Union(l, r, _) = body else {
            panic!("not a union: {body:?}")
        };
        assert!(matches!(**l, Expr::Cross(_, _, _)), "{l:?}");
        assert!(matches!(**r, Expr::Star(_, _)), "{r:?}");
    }

    #[test]
    fn let_rec_groups_with_and() {
        let file = parse_str("let rec a = po and b = a | rf\nacyclic b\n").unwrap();
        let Stmt::Let { rec, bindings, .. } = &file.stmts[0] else {
            panic!("not a let")
        };
        assert!(*rec);
        assert_eq!(bindings.len(), 2);
    }

    #[test]
    fn unterminated_let_rec_reports_the_hole() {
        let err = parse_str("let rec x = po | x and").unwrap_err();
        assert!(
            err.message.contains("unterminated `let rec`"),
            "{}",
            err.message
        );
    }

    #[test]
    fn missing_operand_is_a_parse_error() {
        let err = parse_str("acyclic po | as A").unwrap_err();
        assert!(
            err.message.contains("expected an expression"),
            "{}",
            err.message
        );
    }
}

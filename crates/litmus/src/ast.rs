//! The litmus-test abstract syntax tree.

use std::fmt;

/// The concrete targets a litmus test can be rendered for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Arch {
    /// x86-64 with Intel TSX (`XBEGIN`/`XEND`/`XABORT`).
    X86,
    /// Power with `tbegin.`/`tend.`/`tabort.`.
    Power,
    /// ARMv8 with the unofficial `TXBEGIN`/`TXEND`/`TXABORT` of the paper.
    Armv8,
    /// C++ with `atomic { … }` / `synchronized { … }` transactions.
    Cpp,
}

impl Arch {
    /// All four targets.
    pub const ALL: [Arch; 4] = [Arch::X86, Arch::Power, Arch::Armv8, Arch::Cpp];

    /// A short stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Arch::X86 => "x86",
            Arch::Power => "power",
            Arch::Armv8 => "armv8",
            Arch::Cpp => "cpp",
        }
    }
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A per-thread register, numbered from zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u32);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The consistency mode of a memory access.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// A plain, non-atomic access.
    #[default]
    Plain,
    /// A relaxed atomic access (C++) / ordinary load-store (hardware).
    Relaxed,
    /// Acquire (C++ `memory_order_acquire`, ARMv8 `LDAR`).
    Acquire,
    /// Release (C++ `memory_order_release`, ARMv8 `STLR`).
    Release,
    /// Sequentially consistent (C++ `memory_order_seq_cst`).
    SeqCst,
}

impl AccessMode {
    /// A short suffix used by the generic pretty-printer (empty for plain).
    pub fn suffix(self) -> &'static str {
        match self {
            AccessMode::Plain => "",
            AccessMode::Relaxed => ".rlx",
            AccessMode::Acquire => ".acq",
            AccessMode::Release => ".rel",
            AccessMode::SeqCst => ".sc",
        }
    }
}

/// The kind of a syntactic dependency carried into an instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Address dependency (the register feeds the address computation).
    Addr,
    /// Data dependency (the register feeds the stored value).
    Data,
    /// Control dependency (a conditional branch on the register).
    Ctrl,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepKind::Addr => "addr",
            DepKind::Data => "data",
            DepKind::Ctrl => "ctrl",
        };
        write!(f, "{s}")
    }
}

/// A dependency annotation: this instruction syntactically depends on the
/// value previously loaded into `reg`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Dep {
    /// How the dependency is realised.
    pub kind: DepKind,
    /// The register carrying the dependency.
    pub reg: Reg,
}

/// The fences a litmus test can contain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FenceInstr {
    /// x86 `MFENCE`.
    MFence,
    /// Power `sync`.
    Sync,
    /// Power `lwsync`.
    Lwsync,
    /// Power `isync`.
    Isync,
    /// ARMv8 `DMB ISH`.
    Dmb,
    /// ARMv8 `DMB ISHLD`.
    DmbLd,
    /// ARMv8 `DMB ISHST`.
    DmbSt,
    /// ARMv8 `ISB`.
    Isb,
    /// C++ `atomic_thread_fence(seq_cst)`.
    FenceSc,
    /// C++ `atomic_thread_fence(acquire)`.
    FenceAcq,
    /// C++ `atomic_thread_fence(release)`.
    FenceRel,
}

/// One instruction of a litmus-test thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Instr {
    /// Load from `loc` into `reg`.
    Load {
        /// Destination register.
        reg: Reg,
        /// Source location name.
        loc: String,
        /// Consistency mode.
        mode: AccessMode,
        /// Optional syntactic dependency on an earlier load.
        dep: Option<Dep>,
    },
    /// Store `value` to `loc`.
    Store {
        /// Destination location name.
        loc: String,
        /// The (unique, non-zero) value stored.
        value: u64,
        /// Consistency mode.
        mode: AccessMode,
        /// Optional syntactic dependency on an earlier load.
        dep: Option<Dep>,
    },
    /// An atomic read-modify-write: load `loc` into `reg`, store `value`.
    /// Rendered as a `LOCK`-prefixed instruction on x86 and an
    /// exclusive-pair loop on Power/ARMv8.
    Rmw {
        /// Destination register for the read half.
        reg: Reg,
        /// Location operated on.
        loc: String,
        /// Value written by the write half.
        value: u64,
        /// Consistency mode (acquire/release apply to the halves).
        mode: AccessMode,
    },
    /// A memory fence.
    Fence(FenceInstr),
    /// Begin a transaction; control transfers to the fail handler on abort.
    TxBegin,
    /// Commit the current transaction.
    TxEnd,
    /// Explicitly abort the current transaction.
    TxAbort,
    /// Acquire the mutex named `mutex` (lock-elision tests only).
    Lock {
        /// The mutex name.
        mutex: String,
        /// True if this `lock()` is to be elided (transactionalised).
        elided: bool,
    },
    /// Release the mutex named `mutex` (lock-elision tests only).
    Unlock {
        /// The mutex name.
        mutex: String,
        /// True if the matching `lock()` was elided.
        elided: bool,
    },
}

impl Instr {
    /// The location this instruction accesses, if it is a memory access.
    pub fn loc(&self) -> Option<&str> {
        match self {
            Instr::Load { loc, .. } | Instr::Store { loc, .. } | Instr::Rmw { loc, .. } => {
                Some(loc)
            }
            _ => None,
        }
    }

    /// True if this instruction starts or ends a transaction.
    pub fn is_txn_boundary(&self) -> bool {
        matches!(self, Instr::TxBegin | Instr::TxEnd | Instr::TxAbort)
    }
}

/// One thread of a litmus test.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Thread {
    /// The instructions, in program order.
    pub instrs: Vec<Instr>,
}

impl Thread {
    /// Creates an empty thread.
    pub fn new() -> Thread {
        Thread::default()
    }

    /// True if the thread contains a transaction.
    pub fn has_txn(&self) -> bool {
        self.instrs.iter().any(Instr::is_txn_boundary)
    }
}

/// One conjunct of a postcondition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Cond {
    /// Register `reg` of thread `thread` holds `value` at the end.
    RegEq {
        /// Thread index.
        thread: usize,
        /// Register.
        reg: Reg,
        /// Expected final value.
        value: u64,
    },
    /// Location `loc` holds `value` at the end.
    LocEq {
        /// Location name.
        loc: String,
        /// Expected final value.
        value: u64,
    },
    /// The transaction on thread `thread` committed successfully (its `ok`
    /// flag was not zeroed by the fail handler).
    TxnCommitted {
        /// Thread index.
        thread: usize,
    },
}

/// The final-state postcondition of a litmus test (a conjunction).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Postcondition {
    /// The conjuncts; the test "passes" when all hold simultaneously.
    pub conjuncts: Vec<Cond>,
}

impl Postcondition {
    /// The empty (always-true) postcondition.
    pub fn new() -> Postcondition {
        Postcondition::default()
    }
}

impl fmt::Display for Postcondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conjuncts.is_empty() {
            return write!(f, "true");
        }
        let parts: Vec<String> = self
            .conjuncts
            .iter()
            .map(|c| match c {
                Cond::RegEq { thread, reg, value } => format!("{thread}:{reg} = {value}"),
                Cond::LocEq { loc, value } => format!("{loc} = {value}"),
                Cond::TxnCommitted { thread } => format!("ok{thread} = 1"),
            })
            .collect();
        write!(f, "{}", parts.join(" /\\ "))
    }
}

/// The paper's classification of a test relative to a model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Expectation {
    /// The postcondition must never be observable (the test is in a Forbid
    /// suite).
    Forbidden,
    /// The postcondition is permitted by the model (Allow suite).
    Allowed,
}

/// A complete litmus test: initial state, threads, and postcondition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LitmusTest {
    /// A short name (unique within a suite).
    pub name: String,
    /// Initial values for locations not starting at zero.
    pub init: Vec<(String, u64)>,
    /// The threads.
    pub threads: Vec<Thread>,
    /// The final-state condition identifying the execution of interest.
    pub post: Postcondition,
    /// The verdict of the generating model, if the test came from synthesis.
    pub expectation: Option<Expectation>,
}

impl LitmusTest {
    /// Creates an empty test with the given name.
    pub fn new(name: impl Into<String>) -> LitmusTest {
        LitmusTest {
            name: name.into(),
            init: Vec::new(),
            threads: Vec::new(),
            post: Postcondition::new(),
            expectation: None,
        }
    }

    /// The distinct locations mentioned anywhere in the test.
    pub fn locations(&self) -> Vec<String> {
        let mut locs: Vec<String> = self
            .threads
            .iter()
            .flat_map(|t| t.instrs.iter())
            .filter_map(|i| i.loc().map(str::to_string))
            .collect();
        for (l, _) in &self.init {
            locs.push(l.clone());
        }
        locs.sort();
        locs.dedup();
        locs
    }

    /// True if any thread contains a transaction.
    pub fn has_txn(&self) -> bool {
        self.threads.iter().any(Thread::has_txn)
    }

    /// Total number of instructions across all threads.
    pub fn instr_count(&self) -> usize {
        self.threads.iter().map(|t| t.instrs.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_names_are_stable() {
        assert_eq!(Arch::X86.name(), "x86");
        assert_eq!(Arch::Armv8.to_string(), "armv8");
        assert_eq!(Arch::ALL.len(), 4);
    }

    #[test]
    fn postcondition_renders_as_conjunction() {
        let post = Postcondition {
            conjuncts: vec![
                Cond::RegEq {
                    thread: 1,
                    reg: Reg(0),
                    value: 2,
                },
                Cond::LocEq {
                    loc: "x".into(),
                    value: 2,
                },
                Cond::TxnCommitted { thread: 0 },
            ],
        };
        assert_eq!(post.to_string(), "1:r0 = 2 /\\ x = 2 /\\ ok0 = 1");
        assert_eq!(Postcondition::new().to_string(), "true");
    }

    #[test]
    fn test_collects_locations_and_txn_presence() {
        let mut t = LitmusTest::new("demo");
        t.threads.push(Thread {
            instrs: vec![
                Instr::TxBegin,
                Instr::Store {
                    loc: "x".into(),
                    value: 1,
                    mode: AccessMode::Plain,
                    dep: None,
                },
                Instr::TxEnd,
            ],
        });
        t.threads.push(Thread {
            instrs: vec![Instr::Load {
                reg: Reg(0),
                loc: "y".into(),
                mode: AccessMode::Acquire,
                dep: None,
            }],
        });
        assert_eq!(t.locations(), vec!["x".to_string(), "y".to_string()]);
        assert!(t.has_txn());
        assert_eq!(t.instr_count(), 4);
    }

    #[test]
    fn instr_helpers() {
        let store = Instr::Store {
            loc: "x".into(),
            value: 1,
            mode: AccessMode::Release,
            dep: None,
        };
        assert_eq!(store.loc(), Some("x"));
        assert!(!store.is_txn_boundary());
        assert!(Instr::TxBegin.is_txn_boundary());
        assert_eq!(Instr::Fence(FenceInstr::Sync).loc(), None);
    }

    #[test]
    fn access_mode_suffixes() {
        assert_eq!(AccessMode::Plain.suffix(), "");
        assert_eq!(AccessMode::SeqCst.suffix(), ".sc");
        assert_eq!(AccessMode::default(), AccessMode::Plain);
    }
}

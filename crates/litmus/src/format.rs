//! A compact line-oriented text format for litmus-test suites.
//!
//! Synthesised Forbid/Allow suites are saved in this format (one file can
//! hold many tests) and can be read back for simulation runs. The format is
//! deliberately simple — one instruction per line — so that diffs between
//! suites are reviewable.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use crate::{
    AccessMode, Cond, Dep, DepKind, Expectation, FenceInstr, Instr, LitmusTest, Postcondition, Reg,
    Thread,
};

/// An error produced while parsing the litmus text format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

/// Serialises one litmus test into the text format.
pub fn to_text(test: &LitmusTest) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "test {}", test.name);
    match test.expectation {
        Some(Expectation::Forbidden) => {
            let _ = writeln!(out, "expect forbidden");
        }
        Some(Expectation::Allowed) => {
            let _ = writeln!(out, "expect allowed");
        }
        None => {}
    }
    if !test.init.is_empty() {
        let pairs: Vec<String> = test.init.iter().map(|(l, v)| format!("{l}={v}")).collect();
        let _ = writeln!(out, "init {}", pairs.join(" "));
    }
    for (i, thread) in test.threads.iter().enumerate() {
        let _ = writeln!(out, "thread {i}");
        for instr in &thread.instrs {
            let _ = writeln!(out, "  {}", instr_to_text(instr));
        }
        let _ = writeln!(out, "end");
    }
    let conds: Vec<String> = test
        .post
        .conjuncts
        .iter()
        .map(|c| match c {
            Cond::RegEq { thread, reg, value } => format!("{thread}:{reg}={value}"),
            Cond::LocEq { loc, value } => format!("{loc}={value}"),
            Cond::TxnCommitted { thread } => format!("ok{thread}=1"),
        })
        .collect();
    let _ = writeln!(out, "post {}", conds.join(" & "));
    let _ = writeln!(out, "endtest");
    out
}

/// Serialises a whole suite, separated by blank lines.
pub fn suite_to_text<'a, I: IntoIterator<Item = &'a LitmusTest>>(tests: I) -> String {
    tests
        .into_iter()
        .map(to_text)
        .collect::<Vec<_>>()
        .join("\n")
}

fn instr_to_text(instr: &Instr) -> String {
    match instr {
        Instr::Load {
            reg,
            loc,
            mode,
            dep,
        } => {
            format!("load {reg} {loc} {}{}", mode_name(*mode), dep_text(dep))
        }
        Instr::Store {
            loc,
            value,
            mode,
            dep,
        } => {
            format!("store {loc} {value} {}{}", mode_name(*mode), dep_text(dep))
        }
        Instr::Rmw {
            reg,
            loc,
            value,
            mode,
        } => {
            format!("rmw {reg} {loc} {value} {}", mode_name(*mode))
        }
        Instr::Fence(f) => format!("fence {}", fence_text(*f)),
        Instr::TxBegin => "txbegin".to_string(),
        Instr::TxEnd => "txend".to_string(),
        Instr::TxAbort => "txabort".to_string(),
        Instr::Lock { mutex, elided } => {
            if *elided {
                format!("lock {mutex} elided")
            } else {
                format!("lock {mutex}")
            }
        }
        Instr::Unlock { mutex, elided } => {
            if *elided {
                format!("unlock {mutex} elided")
            } else {
                format!("unlock {mutex}")
            }
        }
    }
}

fn dep_text(dep: &Option<Dep>) -> String {
    match dep {
        Some(d) => format!(" {}={}", d.kind, d.reg),
        None => String::new(),
    }
}

fn mode_name(mode: AccessMode) -> &'static str {
    match mode {
        AccessMode::Plain => "plain",
        AccessMode::Relaxed => "rlx",
        AccessMode::Acquire => "acq",
        AccessMode::Release => "rel",
        AccessMode::SeqCst => "sc",
    }
}

fn fence_text(f: FenceInstr) -> &'static str {
    match f {
        FenceInstr::MFence => "mfence",
        FenceInstr::Sync => "sync",
        FenceInstr::Lwsync => "lwsync",
        FenceInstr::Isync => "isync",
        FenceInstr::Dmb => "dmb",
        FenceInstr::DmbLd => "dmbld",
        FenceInstr::DmbSt => "dmbst",
        FenceInstr::Isb => "isb",
        FenceInstr::FenceSc => "fence_sc",
        FenceInstr::FenceAcq => "fence_acq",
        FenceInstr::FenceRel => "fence_rel",
    }
}

/// Parses a suite of litmus tests from the text format.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the first malformed line.
pub fn parse_suite(text: &str) -> Result<Vec<LitmusTest>, ParseError> {
    let mut tests = Vec::new();
    let mut current: Option<LitmusTest> = None;
    let mut current_thread: Option<Thread> = None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| ParseError {
            line: lineno,
            message,
        };
        let mut words = line.split_whitespace();
        let keyword = words.next().unwrap_or_default();
        let rest: Vec<&str> = words.collect();

        match keyword {
            "test" => {
                if current.is_some() {
                    return Err(err("nested 'test' (missing 'endtest'?)".into()));
                }
                current = Some(LitmusTest::new(rest.join(" ")));
            }
            "expect" => {
                let t = current
                    .as_mut()
                    .ok_or_else(|| err("'expect' outside a test".into()))?;
                t.expectation = Some(match rest.first().copied() {
                    Some("forbidden") => Expectation::Forbidden,
                    Some("allowed") => Expectation::Allowed,
                    other => return Err(err(format!("unknown expectation {other:?}"))),
                });
            }
            "init" => {
                let t = current
                    .as_mut()
                    .ok_or_else(|| err("'init' outside a test".into()))?;
                for pair in &rest {
                    let (loc, v) = pair
                        .split_once('=')
                        .ok_or_else(|| err(format!("bad init binding {pair:?}")))?;
                    let value = v
                        .parse()
                        .map_err(|_| err(format!("bad init value {v:?}")))?;
                    t.init.push((loc.to_string(), value));
                }
            }
            "thread" => {
                if current.is_none() {
                    return Err(err("'thread' outside a test".into()));
                }
                if current_thread.is_some() {
                    return Err(err("nested 'thread' (missing 'end'?)".into()));
                }
                current_thread = Some(Thread::new());
            }
            "end" => {
                let thread = current_thread
                    .take()
                    .ok_or_else(|| err("'end' without a 'thread'".into()))?;
                current
                    .as_mut()
                    .expect("checked when the thread was opened")
                    .threads
                    .push(thread);
            }
            "post" => {
                let t = current
                    .as_mut()
                    .ok_or_else(|| err("'post' outside a test".into()))?;
                t.post = parse_post(&rest.join(" ")).map_err(&err)?;
            }
            "endtest" => {
                if current_thread.is_some() {
                    return Err(err("'endtest' with an unclosed thread".into()));
                }
                let t = current
                    .take()
                    .ok_or_else(|| err("'endtest' without a 'test'".into()))?;
                tests.push(t);
            }
            _ => {
                let thread = current_thread
                    .as_mut()
                    .ok_or_else(|| err(format!("instruction {keyword:?} outside a thread")))?;
                thread
                    .instrs
                    .push(parse_instr(keyword, &rest).map_err(err)?);
            }
        }
    }
    if current.is_some() {
        return Err(ParseError {
            line: text.lines().count(),
            message: "unterminated test (missing 'endtest')".into(),
        });
    }
    Ok(tests)
}

fn parse_instr(keyword: &str, rest: &[&str]) -> Result<Instr, String> {
    let parse_reg = |s: &str| -> Result<Reg, String> {
        s.strip_prefix('r')
            .and_then(|n| n.parse().ok())
            .map(Reg)
            .ok_or_else(|| format!("bad register {s:?}"))
    };
    let parse_mode = |s: Option<&&str>| -> Result<AccessMode, String> {
        match s.copied() {
            None | Some("plain") => Ok(AccessMode::Plain),
            Some("rlx") => Ok(AccessMode::Relaxed),
            Some("acq") => Ok(AccessMode::Acquire),
            Some("rel") => Ok(AccessMode::Release),
            Some("sc") => Ok(AccessMode::SeqCst),
            Some(other) => Err(format!("unknown access mode {other:?}")),
        }
    };
    let parse_dep = |s: Option<&&str>| -> Result<Option<Dep>, String> {
        match s {
            None => Ok(None),
            Some(spec) => {
                let (kind, reg) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("bad dependency {spec:?}"))?;
                let kind = match kind {
                    "addr" => DepKind::Addr,
                    "data" => DepKind::Data,
                    "ctrl" => DepKind::Ctrl,
                    other => return Err(format!("unknown dependency kind {other:?}")),
                };
                Ok(Some(Dep {
                    kind,
                    reg: parse_reg(reg)?,
                }))
            }
        }
    };
    match keyword {
        "load" => Ok(Instr::Load {
            reg: parse_reg(rest.first().ok_or("load needs a register")?)?,
            loc: rest.get(1).ok_or("load needs a location")?.to_string(),
            mode: parse_mode(rest.get(2))?,
            dep: parse_dep(rest.get(3))?,
        }),
        "store" => Ok(Instr::Store {
            loc: rest.first().ok_or("store needs a location")?.to_string(),
            value: rest
                .get(1)
                .and_then(|v| v.parse().ok())
                .ok_or("store needs a value")?,
            mode: parse_mode(rest.get(2))?,
            dep: parse_dep(rest.get(3))?,
        }),
        "rmw" => Ok(Instr::Rmw {
            reg: parse_reg(rest.first().ok_or("rmw needs a register")?)?,
            loc: rest.get(1).ok_or("rmw needs a location")?.to_string(),
            value: rest
                .get(2)
                .and_then(|v| v.parse().ok())
                .ok_or("rmw needs a value")?,
            mode: parse_mode(rest.get(3))?,
        }),
        "fence" => {
            let f = match rest.first().copied() {
                Some("mfence") => FenceInstr::MFence,
                Some("sync") => FenceInstr::Sync,
                Some("lwsync") => FenceInstr::Lwsync,
                Some("isync") => FenceInstr::Isync,
                Some("dmb") => FenceInstr::Dmb,
                Some("dmbld") => FenceInstr::DmbLd,
                Some("dmbst") => FenceInstr::DmbSt,
                Some("isb") => FenceInstr::Isb,
                Some("fence_sc") => FenceInstr::FenceSc,
                Some("fence_acq") => FenceInstr::FenceAcq,
                Some("fence_rel") => FenceInstr::FenceRel,
                other => return Err(format!("unknown fence {other:?}")),
            };
            Ok(Instr::Fence(f))
        }
        "txbegin" => Ok(Instr::TxBegin),
        "txend" => Ok(Instr::TxEnd),
        "txabort" => Ok(Instr::TxAbort),
        "lock" => Ok(Instr::Lock {
            mutex: rest.first().ok_or("lock needs a mutex")?.to_string(),
            elided: rest.get(1) == Some(&"elided"),
        }),
        "unlock" => Ok(Instr::Unlock {
            mutex: rest.first().ok_or("unlock needs a mutex")?.to_string(),
            elided: rest.get(1) == Some(&"elided"),
        }),
        other => Err(format!("unknown instruction {other:?}")),
    }
}

fn parse_post(text: &str) -> Result<Postcondition, String> {
    let mut post = Postcondition::new();
    for part in text.split('&') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (lhs, rhs) = part
            .split_once('=')
            .ok_or_else(|| format!("bad condition {part:?}"))?;
        let (lhs, rhs) = (lhs.trim(), rhs.trim());
        let value: u64 = rhs.parse().map_err(|_| format!("bad value {rhs:?}"))?;
        if let Some((thread, reg)) = lhs.split_once(':') {
            let thread = thread
                .parse()
                .map_err(|_| format!("bad thread index {thread:?}"))?;
            let reg = reg
                .strip_prefix('r')
                .and_then(|n| n.parse().ok())
                .map(Reg)
                .ok_or_else(|| format!("bad register {reg:?}"))?;
            post.conjuncts.push(Cond::RegEq { thread, reg, value });
        } else if let Some(t) = lhs.strip_prefix("ok") {
            let thread = t.parse().map_err(|_| format!("bad ok index {t:?}"))?;
            post.conjuncts.push(Cond::TxnCommitted { thread });
        } else {
            post.conjuncts.push(Cond::LocEq {
                loc: lhs.to_string(),
                value,
            });
        }
    }
    Ok(post)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::from_execution;
    use tm_exec::catalog;

    #[test]
    fn roundtrip_preserves_generated_tests() {
        for (exec, name) in [
            (catalog::sb(), "sb"),
            (catalog::fig2(), "fig2"),
            (catalog::wrc(), "wrc"),
            (catalog::mp_txn(), "mp+txn"),
            (catalog::monotonicity_cex_coalesced(), "rmw-txn"),
            (catalog::fig10_abstract(), "fig10"),
            (catalog::sb_mfence(), "sb+mfence"),
        ] {
            let mut test = from_execution(&exec, name);
            test.expectation = Some(Expectation::Forbidden);
            let text = to_text(&test);
            let parsed = parse_suite(&text).expect("generated text must parse");
            assert_eq!(parsed.len(), 1);
            assert_eq!(parsed[0], test, "roundtrip failed for {name}");
        }
    }

    #[test]
    fn suite_roundtrip() {
        let a = from_execution(&catalog::sb(), "sb");
        let b = from_execution(&catalog::mp(), "mp");
        let text = suite_to_text([&a, &b]);
        let parsed = parse_suite(&text).unwrap();
        assert_eq!(parsed, vec![a, b]);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# a comment\n\ntest t\nthread 0\n  store x 1 plain\nend\npost x=1\nendtest\n";
        let parsed = parse_suite(text).unwrap();
        assert_eq!(parsed[0].name, "t");
        assert_eq!(parsed[0].threads.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "test t\nthread 0\n  bogus r0 x\nend\npost x=1\nendtest\n";
        let err = parse_suite(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn unterminated_test_is_rejected() {
        let err = parse_suite("test t\nthread 0\nend\n").unwrap_err();
        assert!(err.message.contains("endtest"));
    }

    #[test]
    fn instruction_outside_thread_is_rejected() {
        let err = parse_suite("test t\nstore x 1\nendtest\n").unwrap_err();
        assert!(err.message.contains("outside a thread"));
    }

    #[test]
    fn post_parsing_handles_all_condition_kinds() {
        let text = "test t\nthread 0\n  load r0 x acq\n  txbegin\n  store y 1 rel\n  txend\nend\npost 0:r0=2 & y=1 & ok0=1\nendtest\n";
        let parsed = parse_suite(text).unwrap();
        assert_eq!(parsed[0].post.conjuncts.len(), 3);
        assert!(parsed[0]
            .post
            .conjuncts
            .contains(&Cond::TxnCommitted { thread: 0 }));
    }
}

//! Converting candidate executions into litmus tests (§2.2, §3.2).

use std::collections::HashMap;

use tm_exec::{Event, EventKind, Execution, Fence, LockCall};

use crate::{
    AccessMode, Cond, Dep, DepKind, FenceInstr, Instr, LitmusTest, Postcondition, Reg, Thread,
};

/// Converts an execution into a litmus test whose postcondition passes
/// exactly when the execution of interest has been taken.
///
/// Following §2.2:
///
/// * every store writes a unique non-zero value (we number the writes to
///   each location in coherence order, so the final-value conjunct also
///   pins down the co-maximal write);
/// * every read gets a fresh register, and the postcondition asserts it
///   holds the value of the write it observes (or `0` for reads of the
///   initial state);
/// * following §3.2, transactional events are wrapped in `txbegin`/`txend`
///   and the postcondition asserts the transaction committed;
/// * dependencies become syntactic dependency annotations on the target
///   instruction, and RMW pairs collapse into a single RMW instruction;
/// * lock-elision call events (`L`, `U`, `Lᵗ`, `Uᵗ`) become `lock()` /
///   `unlock()` pseudo-instructions marked as elided or not.
///
/// With more than two writes to one location, fully pinning down `co` would
/// need extra observer constraints (footnote 2 of the paper); we reproduce
/// the paper's construction, which constrains the co-maximal write only.
///
/// # Examples
///
/// ```
/// use tm_exec::catalog;
/// use tm_litmus::from_execution;
///
/// let test = from_execution(&catalog::fig2(), "fig2");
/// assert_eq!(test.threads.len(), 2);
/// assert!(test.has_txn());
/// assert_eq!(test.post.to_string(), "0:r0 = 2 /\\ x = 2 /\\ ok0 = 1");
/// ```
pub fn from_execution(exec: &Execution, name: &str) -> LitmusTest {
    let mut test = LitmusTest::new(name);
    let n = exec.len();

    // 1. Unique non-zero values for writes, in coherence order per location.
    let mut value_of: HashMap<usize, u64> = HashMap::new();
    for loc in exec.locations() {
        let mut writes: Vec<usize> = exec
            .writes()
            .iter()
            .filter(|&w| exec.event(w).loc() == Some(loc))
            .collect();
        // co is a strict total order on these writes: sort by number of
        // co-predecessors among them.
        writes.sort_by_key(|&w| exec.co.predecessors(w).count());
        for (i, w) in writes.iter().enumerate() {
            value_of.insert(*w, (i + 1) as u64);
        }
    }

    // 2. Fresh registers for reads (numbered per thread), reusing the same
    //    register for the read half of an RMW.
    let mut reg_of: HashMap<usize, Reg> = HashMap::new();
    let mut next_reg: HashMap<u32, u32> = HashMap::new();
    for e in 0..n {
        if exec.event(e).is_read() {
            let t = exec.event(e).thread.0;
            let r = next_reg.entry(t).or_insert(0);
            reg_of.insert(e, Reg(*r));
            *r += 1;
        }
    }

    // RMW pairing: the write half is folded into the read half's instruction
    // when the two are adjacent in program order.
    let rmw_write_of_read: HashMap<usize, usize> = exec.rmw.iter().collect();
    let rmw_writes: Vec<usize> = rmw_write_of_read.values().copied().collect();

    // Dependency annotations: first incoming dependency edge wins.
    let mut dep_of: HashMap<usize, Dep> = HashMap::new();
    for (kind, rel) in [
        (DepKind::Addr, &exec.addr),
        (DepKind::Data, &exec.data),
        (DepKind::Ctrl, &exec.ctrl),
    ] {
        for (src, dst) in rel.iter() {
            if let Some(&reg) = reg_of.get(&src) {
                dep_of.entry(dst).or_insert(Dep { kind, reg });
            }
        }
    }

    // Transaction boundaries: for each txn class, note its first and last
    // event in program order.
    let mut txn_first: HashMap<usize, ()> = HashMap::new();
    let mut txn_last: HashMap<usize, ()> = HashMap::new();
    for class in exec.txn_classes() {
        let first = *class
            .iter()
            .min_by_key(|&&e| exec.po.predecessors(e).count())
            .expect("transaction classes are non-empty");
        let last = *class
            .iter()
            .max_by_key(|&&e| exec.po.predecessors(e).count())
            .expect("transaction classes are non-empty");
        txn_first.insert(first, ());
        txn_last.insert(last, ());
    }

    // 3. Emit threads in program order.
    let thread_count = exec.thread_count();
    let mut threads_with_txn: Vec<usize> = Vec::new();
    for t in 0..thread_count {
        let mut thread = Thread::new();
        let mut ids: Vec<usize> = (0..n)
            .filter(|&e| exec.event(e).thread.0 as usize == t)
            .collect();
        ids.sort_by_key(|&e| exec.po.predecessors(e).count());
        for e in ids {
            if txn_first.contains_key(&e) {
                thread.instrs.push(Instr::TxBegin);
                if !threads_with_txn.contains(&t) {
                    threads_with_txn.push(t);
                }
            }
            if let Some(instr) = instr_for_event(
                exec,
                e,
                &value_of,
                &reg_of,
                &dep_of,
                &rmw_write_of_read,
                &rmw_writes,
            ) {
                thread.instrs.push(instr);
            }
            if txn_last.contains_key(&e) {
                thread.instrs.push(Instr::TxEnd);
            }
        }
        test.threads.push(thread);
    }

    // 4. Postcondition.
    let mut post = Postcondition::new();
    for r in exec.reads().iter() {
        // The read half of an RMW still constrains its register.
        let observed = exec
            .rf
            .predecessors(r)
            .next()
            .map(|w| value_of[&w])
            .unwrap_or(0);
        post.conjuncts.push(Cond::RegEq {
            thread: exec.event(r).thread.0 as usize,
            reg: reg_of[&r],
            value: observed,
        });
    }
    for loc in exec.locations() {
        let co_max = exec
            .writes()
            .iter()
            .filter(|&w| exec.event(w).loc() == Some(loc))
            .max_by_key(|&w| exec.co.predecessors(w).count());
        if let Some(w) = co_max {
            post.conjuncts.push(Cond::LocEq {
                loc: loc.name(),
                value: value_of[&w],
            });
        }
    }
    for t in threads_with_txn {
        post.conjuncts.push(Cond::TxnCommitted { thread: t });
    }
    test.post = post;
    test
}

fn instr_for_event(
    exec: &Execution,
    e: usize,
    value_of: &HashMap<usize, u64>,
    reg_of: &HashMap<usize, Reg>,
    dep_of: &HashMap<usize, Dep>,
    rmw_write_of_read: &HashMap<usize, usize>,
    rmw_writes: &[usize],
) -> Option<Instr> {
    let event: &Event = exec.event(e);
    let mode = mode_of(event);
    let dep = dep_of.get(&e).copied();
    match event.kind {
        EventKind::Read(loc) => {
            if let Some(&w) = rmw_write_of_read.get(&e) {
                // Fold the RMW pair into one instruction.
                return Some(Instr::Rmw {
                    reg: reg_of[&e],
                    loc: loc.name(),
                    value: value_of[&w],
                    mode,
                });
            }
            Some(Instr::Load {
                reg: reg_of[&e],
                loc: loc.name(),
                mode,
                dep,
            })
        }
        EventKind::Write(loc) => {
            if rmw_writes.contains(&e) {
                // Emitted as part of the read half.
                return None;
            }
            Some(Instr::Store {
                loc: loc.name(),
                value: value_of[&e],
                mode,
                dep,
            })
        }
        EventKind::Fence(f) => Some(Instr::Fence(fence_instr(f))),
        EventKind::LockCall(c) => Some(match c {
            LockCall::Lock => Instr::Lock {
                mutex: "m".to_string(),
                elided: false,
            },
            LockCall::Unlock => Instr::Unlock {
                mutex: "m".to_string(),
                elided: false,
            },
            LockCall::TxLock => Instr::Lock {
                mutex: "m".to_string(),
                elided: true,
            },
            LockCall::TxUnlock => Instr::Unlock {
                mutex: "m".to_string(),
                elided: true,
            },
        }),
    }
}

fn mode_of(event: &Event) -> AccessMode {
    if event.annot.sc {
        AccessMode::SeqCst
    } else if event.annot.acq {
        AccessMode::Acquire
    } else if event.annot.rel {
        AccessMode::Release
    } else if event.annot.atomic {
        AccessMode::Relaxed
    } else {
        AccessMode::Plain
    }
}

fn fence_instr(f: Fence) -> FenceInstr {
    match f {
        Fence::MFence => FenceInstr::MFence,
        Fence::Sync => FenceInstr::Sync,
        Fence::Lwsync => FenceInstr::Lwsync,
        Fence::Isync => FenceInstr::Isync,
        Fence::Dmb => FenceInstr::Dmb,
        Fence::DmbLd => FenceInstr::DmbLd,
        Fence::DmbSt => FenceInstr::DmbSt,
        Fence::Isb => FenceInstr::Isb,
        Fence::FenceSc => FenceInstr::FenceSc,
        Fence::FenceAcq => FenceInstr::FenceAcq,
        Fence::FenceRel => FenceInstr::FenceRel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_exec::catalog;

    #[test]
    fn fig1_matches_the_paper_construction() {
        let test = from_execution(&catalog::fig1(), "fig1");
        assert_eq!(test.threads.len(), 2);
        // Thread 0 is the single store of 1; thread 1 loads then stores 2.
        assert_eq!(test.threads[0].instrs.len(), 1);
        assert_eq!(test.threads[1].instrs.len(), 2);
        assert_eq!(test.post.to_string(), "1:r0 = 2 /\\ x = 2");
        assert!(!test.has_txn());
    }

    #[test]
    fn fig2_wraps_the_transaction_and_checks_ok() {
        let test = from_execution(&catalog::fig2(), "fig2");
        let t0 = &test.threads[0].instrs;
        assert!(matches!(t0[0], Instr::TxBegin));
        assert!(matches!(t0.last().unwrap(), Instr::TxEnd));
        assert!(test
            .post
            .conjuncts
            .contains(&Cond::TxnCommitted { thread: 0 }));
    }

    #[test]
    fn reads_of_initial_state_expect_zero() {
        let test = from_execution(&catalog::sb(), "sb");
        for c in &test.post.conjuncts {
            if let Cond::RegEq { value, .. } = c {
                assert_eq!(*value, 0);
            }
        }
    }

    #[test]
    fn writes_get_unique_values_in_coherence_order() {
        let test = from_execution(&catalog::fig3('d'), "fig3d");
        // Three writes to x, co-ordered w1 -> w -> w2: values 1, 2, 3; the
        // final value is the co-maximal write's.
        let mut values: Vec<u64> = test
            .threads
            .iter()
            .flat_map(|t| t.instrs.iter())
            .filter_map(|i| match i {
                Instr::Store { value, .. } => Some(*value),
                _ => None,
            })
            .collect();
        values.sort_unstable();
        assert_eq!(values, vec![1, 2, 3]);
        assert!(test.post.conjuncts.contains(&Cond::LocEq {
            loc: "x".into(),
            value: 3
        }));
    }

    #[test]
    fn rmw_pairs_collapse_into_one_instruction() {
        let test = from_execution(&catalog::monotonicity_cex_coalesced(), "rmw");
        let instrs = &test.threads[0].instrs;
        let rmw_count = instrs
            .iter()
            .filter(|i| matches!(i, Instr::Rmw { .. }))
            .count();
        assert_eq!(rmw_count, 1);
        // No separate store remains.
        assert!(!instrs.iter().any(|i| matches!(i, Instr::Store { .. })));
    }

    #[test]
    fn dependencies_are_annotated() {
        let test = from_execution(&catalog::wrc(), "wrc");
        let deps: Vec<&Dep> = test
            .threads
            .iter()
            .flat_map(|t| t.instrs.iter())
            .filter_map(|i| match i {
                Instr::Load { dep: Some(d), .. } | Instr::Store { dep: Some(d), .. } => Some(d),
                _ => None,
            })
            .collect();
        assert_eq!(deps.len(), 2);
        assert!(deps.iter().any(|d| d.kind == DepKind::Data));
        assert!(deps.iter().any(|d| d.kind == DepKind::Addr));
    }

    #[test]
    fn lock_calls_become_lock_unlock_instructions() {
        let test = from_execution(&catalog::fig10_abstract(), "fig10");
        let t0 = &test.threads[0].instrs;
        assert!(matches!(t0[0], Instr::Lock { elided: false, .. }));
        assert!(matches!(
            t0.last().unwrap(),
            Instr::Unlock { elided: false, .. }
        ));
        let t1 = &test.threads[1].instrs;
        assert!(matches!(t1[0], Instr::Lock { elided: true, .. }));
    }

    #[test]
    fn fences_survive_conversion() {
        let test = from_execution(&catalog::sb_mfence(), "sb+mfences");
        let fences = test
            .threads
            .iter()
            .flat_map(|t| t.instrs.iter())
            .filter(|i| matches!(i, Instr::Fence(FenceInstr::MFence)))
            .count();
        assert_eq!(fences, 2);
    }
}

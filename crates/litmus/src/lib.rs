//! Litmus tests for transactional weak-memory models.
//!
//! This crate provides the litmus-test layer of the paper's toolflow:
//!
//! * a small cross-architecture program AST ([`LitmusTest`], [`Thread`],
//!   [`Instr`]) covering loads, stores, fences, RMWs, transactions and the
//!   `lock()`/`unlock()` pseudo-calls used for lock-elision checking;
//! * [`from_execution`], the §2.2/§3.2 construction that turns a candidate
//!   execution into a litmus test whose postcondition passes exactly when
//!   that execution was taken;
//! * [`render`], per-architecture pretty-printers (x86/TSX, Power, ARMv8
//!   with the unofficial TM instructions, C++);
//! * a line-oriented text format ([`to_text`], [`parse_suite`]) for saving
//!   and reloading synthesised Forbid/Allow suites; and
//! * a catalog of the hand-written programs of Example 1.1 and Appendix B.
//!
//! # Quick start
//!
//! ```
//! use tm_exec::catalog;
//! use tm_litmus::{from_execution, render, Arch};
//!
//! let test = from_execution(&catalog::power_wrc_tprop1(), "wrc+txn");
//! println!("{test}");                       // generic pseudocode
//! println!("{}", render(&test, Arch::Power)); // Power assembly
//! assert!(render(&test, Arch::Power).contains("tbegin."));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
pub mod catalog;
mod convert;
mod format;
mod print;

pub use ast::{
    AccessMode, Arch, Cond, Dep, DepKind, Expectation, FenceInstr, Instr, LitmusTest,
    Postcondition, Reg, Thread,
};
pub use convert::from_execution;
pub use format::{parse_suite, suite_to_text, to_text, ParseError};
pub use print::render;

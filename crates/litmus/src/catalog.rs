//! Hand-written litmus tests from the paper (Example 1.1 and Appendix B).
//!
//! These complement the generated tests: they spell out the full programs —
//! spinlock loops included — exactly as the paper presents them, and are
//! what the lock-elision examples and the simulator exercise.

use crate::{AccessMode, Cond, Expectation, Instr, LitmusTest, Postcondition, Reg, Thread};

/// The abstract mutual-exclusion test of Example 1.1: two critical regions
/// updating `x`, one of which will be elided. The postcondition `x = 2`
/// must never hold if the lock library is correct.
pub fn example_1_1_abstract() -> LitmusTest {
    let mut test = LitmusTest::new("example-1.1-abstract");
    test.threads.push(Thread {
        instrs: vec![
            Instr::Lock {
                mutex: "m".into(),
                elided: false,
            },
            Instr::Load {
                reg: Reg(0),
                loc: "x".into(),
                mode: AccessMode::Plain,
                dep: None,
            },
            Instr::Store {
                loc: "x".into(),
                value: 2,
                mode: AccessMode::Plain,
                dep: Some(crate::Dep {
                    kind: crate::DepKind::Data,
                    reg: Reg(0),
                }),
            },
            Instr::Unlock {
                mutex: "m".into(),
                elided: false,
            },
        ],
    });
    test.threads.push(Thread {
        instrs: vec![
            Instr::Lock {
                mutex: "m".into(),
                elided: true,
            },
            Instr::Store {
                loc: "x".into(),
                value: 1,
                mode: AccessMode::Plain,
                dep: None,
            },
            Instr::Unlock {
                mutex: "m".into(),
                elided: true,
            },
        ],
    });
    // The forbidden outcome: the locked CR read x = 0 yet its store is not
    // the final value's predecessor — i.e. the elided CR slipped in between.
    // (The paper writes "x = 2" because its store is literally x + 2; our
    // AST stores constants, so the register conjunct pins the same shape.)
    test.post = Postcondition {
        conjuncts: vec![
            Cond::LocEq {
                loc: "x".into(),
                value: 2,
            },
            Cond::RegEq {
                thread: 0,
                reg: Reg(0),
                value: 0,
            },
        ],
    };
    test.expectation = Some(Expectation::Forbidden);
    test
}

/// The concrete ARMv8 program of Example 1.1: the left thread takes the
/// recommended spinlock (acquire exclusive pair, release store), the right
/// thread elides its lock with a transaction that reads the lock variable.
///
/// If `with_dmb_fix` is true, the `DMB` of the §1.1 discussion is appended
/// to the lock acquisition.
pub fn example_1_1_concrete(with_dmb_fix: bool) -> LitmusTest {
    let mut test = LitmusTest::new(if with_dmb_fix {
        "example-1.1-armv8-dmb"
    } else {
        "example-1.1-armv8"
    });
    let mut t0 = vec![
        // Spinlock acquire: LDAXR m / CBNZ / STXR m (modelled as an
        // acquire RMW writing 1 to m).
        Instr::Rmw {
            reg: Reg(0),
            loc: "m".into(),
            value: 1,
            mode: AccessMode::Acquire,
        },
    ];
    if with_dmb_fix {
        t0.push(Instr::Fence(crate::FenceInstr::Dmb));
    }
    t0.extend([
        // Critical region: x <- x + 2 (reads then writes x).
        Instr::Load {
            reg: Reg(1),
            loc: "x".into(),
            mode: AccessMode::Plain,
            dep: None,
        },
        Instr::Store {
            loc: "x".into(),
            value: 2,
            mode: AccessMode::Plain,
            dep: Some(crate::Dep {
                kind: crate::DepKind::Data,
                reg: Reg(1),
            }),
        },
        // Unlock: STLR WZR, [m].
        Instr::Store {
            loc: "m".into(),
            value: 0,
            mode: AccessMode::Release,
            dep: None,
        },
    ]);
    test.threads.push(Thread { instrs: t0 });

    test.threads.push(Thread {
        instrs: vec![
            Instr::TxBegin,
            // Load the lock variable and abort if the lock is taken.
            Instr::Load {
                reg: Reg(0),
                loc: "m".into(),
                mode: AccessMode::Plain,
                dep: None,
            },
            // x <- 1 inside the transaction.
            Instr::Store {
                loc: "x".into(),
                value: 1,
                mode: AccessMode::Plain,
                dep: None,
            },
            Instr::TxEnd,
        ],
    });
    test.post = Postcondition {
        conjuncts: vec![
            Cond::LocEq {
                loc: "x".into(),
                value: 2,
            },
            Cond::RegEq {
                thread: 1,
                reg: Reg(0),
                value: 0,
            },
            Cond::TxnCommitted { thread: 1 },
        ],
    };
    test.expectation = Some(if with_dmb_fix {
        Expectation::Forbidden
    } else {
        Expectation::Allowed
    });
    test
}

/// The Appendix B variant: the locked CR stores to `x` twice and the elided
/// CR loads `x`, observing the intermediate value.
pub fn appendix_b_concrete(with_dmb_fix: bool) -> LitmusTest {
    let mut test = LitmusTest::new(if with_dmb_fix {
        "appendix-b-armv8-dmb"
    } else {
        "appendix-b-armv8"
    });
    let mut t0 = vec![Instr::Rmw {
        reg: Reg(0),
        loc: "m".into(),
        value: 3,
        mode: AccessMode::Acquire,
    }];
    if with_dmb_fix {
        t0.push(Instr::Fence(crate::FenceInstr::Dmb));
    }
    t0.extend([
        Instr::Store {
            loc: "x".into(),
            value: 1,
            mode: AccessMode::Plain,
            dep: None,
        },
        Instr::Store {
            loc: "x".into(),
            value: 2,
            mode: AccessMode::Plain,
            dep: None,
        },
        Instr::Store {
            loc: "m".into(),
            value: 0,
            mode: AccessMode::Release,
            dep: None,
        },
    ]);
    test.threads.push(Thread { instrs: t0 });
    test.threads.push(Thread {
        instrs: vec![
            Instr::TxBegin,
            Instr::Load {
                reg: Reg(0),
                loc: "m".into(),
                mode: AccessMode::Plain,
                dep: None,
            },
            Instr::Load {
                reg: Reg(1),
                loc: "x".into(),
                mode: AccessMode::Plain,
                dep: None,
            },
            Instr::TxEnd,
        ],
    });
    test.post = Postcondition {
        conjuncts: vec![
            Cond::RegEq {
                thread: 1,
                reg: Reg(1),
                value: 1,
            },
            Cond::RegEq {
                thread: 1,
                reg: Reg(0),
                value: 0,
            },
            Cond::TxnCommitted { thread: 1 },
        ],
    };
    test.expectation = Some(if with_dmb_fix {
        Expectation::Forbidden
    } else {
        Expectation::Allowed
    });
    test
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{render, Arch};

    #[test]
    fn example_1_1_tests_have_the_expected_shape() {
        let abs = example_1_1_abstract();
        assert_eq!(abs.threads.len(), 2);
        assert_eq!(abs.expectation, Some(Expectation::Forbidden));
        assert!(!abs.has_txn());

        let conc = example_1_1_concrete(false);
        assert!(conc.has_txn());
        assert_eq!(conc.expectation, Some(Expectation::Allowed));
        let fixed = example_1_1_concrete(true);
        assert_eq!(fixed.expectation, Some(Expectation::Forbidden));
        assert_eq!(fixed.instr_count(), conc.instr_count() + 1);
    }

    #[test]
    fn concrete_tests_render_on_armv8() {
        let asm = render(&example_1_1_concrete(false), Arch::Armv8);
        assert!(asm.contains("LDAXR"));
        assert!(asm.contains("STLR"));
        assert!(asm.contains("TXBEGIN"));
        let fixed = render(&example_1_1_concrete(true), Arch::Armv8);
        assert!(fixed.contains("DMB ISH"));
    }

    #[test]
    fn appendix_b_expects_the_intermediate_value() {
        let t = appendix_b_concrete(false);
        assert!(t.post.conjuncts.contains(&Cond::RegEq {
            thread: 1,
            reg: Reg(1),
            value: 1
        }));
    }

    #[test]
    fn text_format_roundtrip_for_catalog_tests() {
        for t in [
            example_1_1_abstract(),
            example_1_1_concrete(false),
            example_1_1_concrete(true),
            appendix_b_concrete(false),
        ] {
            let text = crate::to_text(&t);
            let parsed = crate::parse_suite(&text).unwrap();
            assert_eq!(parsed, vec![t]);
        }
    }
}

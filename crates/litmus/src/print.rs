//! Rendering litmus tests as generic pseudocode and per-architecture
//! assembly / C++.

use std::fmt;
use std::fmt::Write as _;

use crate::{AccessMode, Arch, Dep, DepKind, FenceInstr, Instr, LitmusTest, Reg, Thread};

impl fmt::Display for LitmusTest {
    /// Generic pseudocode rendering, in the style of the paper's examples.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{{ {} }}", self.name)?;
        let init: Vec<String> = self
            .locations()
            .iter()
            .map(|l| {
                let v = self
                    .init
                    .iter()
                    .find(|(n, _)| n == l)
                    .map(|(_, v)| *v)
                    .unwrap_or(0);
                format!("{l} = {v}")
            })
            .collect();
        writeln!(f, "Initially: {}", init.join(", "))?;
        for (i, t) in self.threads.iter().enumerate() {
            writeln!(f, "P{i}:")?;
            for instr in &t.instrs {
                writeln!(f, "  {}", pseudo(instr))?;
            }
        }
        writeln!(f, "Test: {}", self.post)
    }
}

fn pseudo(instr: &Instr) -> String {
    match instr {
        Instr::Load {
            reg,
            loc,
            mode,
            dep,
        } => {
            format!("{reg} <- load{}({loc}){}", mode.suffix(), dep_note(dep))
        }
        Instr::Store {
            loc,
            value,
            mode,
            dep,
        } => {
            format!("store{}({loc}, {value}){}", mode.suffix(), dep_note(dep))
        }
        Instr::Rmw {
            reg,
            loc,
            value,
            mode,
        } => {
            format!("{reg} <- rmw{}({loc}, {value})", mode.suffix())
        }
        Instr::Fence(f) => format!("fence({})", fence_name(*f)),
        Instr::TxBegin => "txbegin".to_string(),
        Instr::TxEnd => "txend".to_string(),
        Instr::TxAbort => "txabort".to_string(),
        Instr::Lock { mutex, elided } => {
            if *elided {
                format!("lock({mutex})  // elided")
            } else {
                format!("lock({mutex})")
            }
        }
        Instr::Unlock { mutex, elided } => {
            if *elided {
                format!("unlock({mutex})  // elided")
            } else {
                format!("unlock({mutex})")
            }
        }
    }
}

fn dep_note(dep: &Option<Dep>) -> String {
    match dep {
        Some(d) => format!("  // {} dep on {}", d.kind, d.reg),
        None => String::new(),
    }
}

fn fence_name(f: FenceInstr) -> &'static str {
    match f {
        FenceInstr::MFence => "mfence",
        FenceInstr::Sync => "sync",
        FenceInstr::Lwsync => "lwsync",
        FenceInstr::Isync => "isync",
        FenceInstr::Dmb => "dmb",
        FenceInstr::DmbLd => "dmb ld",
        FenceInstr::DmbSt => "dmb st",
        FenceInstr::Isb => "isb",
        FenceInstr::FenceSc => "seq_cst",
        FenceInstr::FenceAcq => "acquire",
        FenceInstr::FenceRel => "release",
    }
}

/// Renders a litmus test for a concrete target architecture.
///
/// The output is human-oriented assembly (or C++), faithful to the
/// instruction selection described in the paper: TSX `XBEGIN`/`XEND` on x86,
/// `tbegin.`/`tend.` on Power, the unofficial `TXBEGIN`/`TXEND` on ARMv8,
/// and `atomic`/`synchronized` blocks in C++. Dependencies are realised with
/// the usual false-dependency idioms.
///
/// # Examples
///
/// ```
/// use tm_exec::catalog;
/// use tm_litmus::{from_execution, render, Arch};
///
/// let test = from_execution(&catalog::fig2(), "fig2");
/// let asm = render(&test, Arch::Armv8);
/// assert!(asm.contains("TXBEGIN"));
/// ```
pub fn render(test: &LitmusTest, arch: Arch) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} \"{}\"", arch_header(arch), test.name);
    let init: Vec<String> = test
        .locations()
        .iter()
        .map(|l| {
            let v = test
                .init
                .iter()
                .find(|(n, _)| n == l)
                .map(|(_, v)| *v)
                .unwrap_or(0);
            format!("{l}={v}")
        })
        .collect();
    let _ = writeln!(out, "{{ {} }}", init.join("; "));
    for (i, thread) in test.threads.iter().enumerate() {
        let _ = writeln!(out, "P{i}:");
        let body = match arch {
            Arch::X86 => render_x86_thread(thread, i),
            Arch::Power => render_power_thread(thread, i),
            Arch::Armv8 => render_armv8_thread(thread, i),
            Arch::Cpp => render_cpp_thread(thread, i),
        };
        out.push_str(&body);
    }
    let _ = writeln!(out, "exists ({})", test.post);
    out
}

fn arch_header(arch: Arch) -> &'static str {
    match arch {
        Arch::X86 => "X86",
        Arch::Power => "PPC",
        Arch::Armv8 => "AArch64",
        Arch::Cpp => "C",
    }
}

fn render_x86_thread(thread: &Thread, tid: usize) -> String {
    let mut out = String::new();
    for instr in &thread.instrs {
        let line = match instr {
            Instr::Load { reg, loc, .. } => format!("MOV E{}X, [{loc}]", reg_letter(*reg)),
            Instr::Store { loc, value, .. } => format!("MOV [{loc}], ${value}"),
            Instr::Rmw {
                reg, loc, value, ..
            } => {
                format!(
                    "LOCK XCHG E{}X, [{loc}]  ; writes {value}",
                    reg_letter(*reg)
                )
            }
            Instr::Fence(FenceInstr::MFence) => "MFENCE".to_string(),
            Instr::Fence(f) => format!("; fence {}", fence_name(*f)),
            Instr::TxBegin => format!("XBEGIN Lfail{tid}"),
            Instr::TxEnd => "XEND".to_string(),
            Instr::TxAbort => "XABORT $0".to_string(),
            Instr::Lock { mutex, elided } => lock_comment("x86", mutex, *elided, true),
            Instr::Unlock { mutex, elided } => lock_comment("x86", mutex, *elided, false),
        };
        let _ = writeln!(out, "  {line}");
    }
    out
}

fn render_power_thread(thread: &Thread, tid: usize) -> String {
    let mut out = String::new();
    for instr in &thread.instrs {
        let line = match instr {
            Instr::Load { reg, loc, dep, .. } => match dep {
                Some(d) if d.kind == DepKind::Addr => format!(
                    "xor r9,r{0},r{0} ; lwzx r{1},r9,{loc}",
                    d.reg.0 + 10,
                    reg.0 + 10
                ),
                _ => format!("lwz r{},0({loc})", reg.0 + 10),
            },
            Instr::Store {
                loc, value, dep, ..
            } => {
                match dep {
                    Some(d) if d.kind == DepKind::Data => format!(
                        "xor r9,r{0},r{0} ; addi r9,r9,{value} ; stw r9,0({loc})",
                        d.reg.0 + 10
                    ),
                    Some(d) if d.kind == DepKind::Ctrl => {
                        format!("cmpw r{},r{0} ; beq Lc{tid} ; Lc{tid}: li r8,{value} ; stw r8,0({loc})", d.reg.0 + 10)
                    }
                    _ => format!("li r8,{value} ; stw r8,0({loc})"),
                }
            }
            Instr::Rmw {
                reg, loc, value, ..
            } => format!(
                "Lrmw{tid}: lwarx r{0},0,{loc} ; li r8,{value} ; stwcx. r8,0,{loc} ; bne Lrmw{tid}",
                reg.0 + 10
            ),
            Instr::Fence(FenceInstr::Sync) => "sync".to_string(),
            Instr::Fence(FenceInstr::Lwsync) => "lwsync".to_string(),
            Instr::Fence(FenceInstr::Isync) => "isync".to_string(),
            Instr::Fence(f) => format!("# fence {}", fence_name(*f)),
            Instr::TxBegin => format!("tbegin. ; beq Lfail{tid}"),
            Instr::TxEnd => "tend.".to_string(),
            Instr::TxAbort => "tabort. 0".to_string(),
            Instr::Lock { mutex, elided } => lock_comment("power", mutex, *elided, true),
            Instr::Unlock { mutex, elided } => lock_comment("power", mutex, *elided, false),
        };
        let _ = writeln!(out, "  {line}");
    }
    out
}

fn render_armv8_thread(thread: &Thread, tid: usize) -> String {
    let mut out = String::new();
    for instr in &thread.instrs {
        let line = match instr {
            Instr::Load {
                reg,
                loc,
                mode,
                dep,
            } => {
                let op = if *mode == AccessMode::Acquire || *mode == AccessMode::SeqCst {
                    "LDAR"
                } else {
                    "LDR"
                };
                match dep {
                    Some(d) if d.kind == DepKind::Addr => format!(
                        "EOR W9,W{0},W{0} ; {op} W{1},[X_{loc},W9,SXTW]",
                        d.reg.0 + 2,
                        reg.0 + 2
                    ),
                    _ => format!("{op} W{},[X_{loc}]", reg.0 + 2),
                }
            }
            Instr::Store {
                loc,
                value,
                mode,
                dep,
            } => {
                let op = if *mode == AccessMode::Release || *mode == AccessMode::SeqCst {
                    "STLR"
                } else {
                    "STR"
                };
                match dep {
                    Some(d) if d.kind == DepKind::Data => format!(
                        "EOR W9,W{0},W{0} ; ADD W9,W9,#{value} ; {op} W9,[X_{loc}]",
                        d.reg.0 + 2
                    ),
                    Some(d) if d.kind == DepKind::Ctrl => format!(
                        "CBNZ W{0},Lc{tid} ; Lc{tid}: MOV W8,#{value} ; {op} W8,[X_{loc}]",
                        d.reg.0 + 2
                    ),
                    _ => format!("MOV W8,#{value} ; {op} W8,[X_{loc}]"),
                }
            }
            Instr::Rmw {
                reg,
                loc,
                value,
                mode,
            } => {
                let (ld, st) = if *mode == AccessMode::Acquire || *mode == AccessMode::SeqCst {
                    ("LDAXR", "STXR")
                } else {
                    ("LDXR", "STXR")
                };
                format!(
                    "Lrmw{tid}: {ld} W{0},[X_{loc}] ; MOV W8,#{value} ; {st} W7,W8,[X_{loc}] ; CBNZ W7,Lrmw{tid}",
                    reg.0 + 2
                )
            }
            Instr::Fence(FenceInstr::Dmb) => "DMB ISH".to_string(),
            Instr::Fence(FenceInstr::DmbLd) => "DMB ISHLD".to_string(),
            Instr::Fence(FenceInstr::DmbSt) => "DMB ISHST".to_string(),
            Instr::Fence(FenceInstr::Isb) => "ISB".to_string(),
            Instr::Fence(f) => format!("// fence {}", fence_name(*f)),
            Instr::TxBegin => format!("TXBEGIN Lfail{tid}"),
            Instr::TxEnd => "TXEND".to_string(),
            Instr::TxAbort => "TXABORT".to_string(),
            Instr::Lock { mutex, elided } => lock_comment("armv8", mutex, *elided, true),
            Instr::Unlock { mutex, elided } => lock_comment("armv8", mutex, *elided, false),
        };
        let _ = writeln!(out, "  {line}");
    }
    out
}

fn render_cpp_thread(thread: &Thread, _tid: usize) -> String {
    let mut out = String::new();
    let mut indent = 2usize;
    for instr in &thread.instrs {
        let line = match instr {
            Instr::Load { reg, loc, mode, .. } => match mode {
                AccessMode::Plain => format!("int {reg} = {loc};"),
                _ => format!(
                    "int {reg} = atomic_load_explicit(&{loc}, {});",
                    cpp_order(*mode)
                ),
            },
            Instr::Store {
                loc, value, mode, ..
            } => match mode {
                AccessMode::Plain => format!("{loc} = {value};"),
                _ => format!(
                    "atomic_store_explicit(&{loc}, {value}, {});",
                    cpp_order(*mode)
                ),
            },
            Instr::Rmw {
                reg,
                loc,
                value,
                mode,
            } => format!(
                "int {reg} = atomic_exchange_explicit(&{loc}, {value}, {});",
                cpp_order(*mode)
            ),
            Instr::Fence(FenceInstr::FenceSc) => {
                "atomic_thread_fence(memory_order_seq_cst);".to_string()
            }
            Instr::Fence(FenceInstr::FenceAcq) => {
                "atomic_thread_fence(memory_order_acquire);".to_string()
            }
            Instr::Fence(FenceInstr::FenceRel) => {
                "atomic_thread_fence(memory_order_release);".to_string()
            }
            Instr::Fence(f) => format!("/* fence {} */", fence_name(*f)),
            Instr::TxBegin => {
                let l = format!("{}atomic {{", " ".repeat(indent));
                indent += 2;
                let _ = writeln!(out, "{l}");
                continue;
            }
            Instr::TxEnd => {
                indent = indent.saturating_sub(2);
                let _ = writeln!(out, "{}}}", " ".repeat(indent));
                continue;
            }
            Instr::TxAbort => "abort();".to_string(),
            Instr::Lock { mutex, elided } => {
                if *elided {
                    format!("m_{mutex}.lock();  /* elided */")
                } else {
                    format!("m_{mutex}.lock();")
                }
            }
            Instr::Unlock { mutex, .. } => format!("m_{mutex}.unlock();"),
        };
        let _ = writeln!(out, "{}{line}", " ".repeat(indent));
    }
    out
}

fn cpp_order(mode: AccessMode) -> &'static str {
    match mode {
        AccessMode::Plain | AccessMode::Relaxed => "memory_order_relaxed",
        AccessMode::Acquire => "memory_order_acquire",
        AccessMode::Release => "memory_order_release",
        AccessMode::SeqCst => "memory_order_seq_cst",
    }
}

fn lock_comment(arch: &str, mutex: &str, elided: bool, is_lock: bool) -> String {
    let call = if is_lock { "lock" } else { "unlock" };
    if elided {
        format!("; {call}({mutex}) [elided, {arch}]")
    } else {
        format!("; {call}({mutex}) [{arch} spinlock]")
    }
}

fn reg_letter(reg: Reg) -> char {
    match reg.0 % 4 {
        0 => 'A',
        1 => 'B',
        2 => 'C',
        _ => 'D',
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::from_execution;
    use tm_exec::catalog;

    #[test]
    fn pseudocode_mentions_every_thread_and_the_postcondition() {
        let test = from_execution(&catalog::sb_txn(), "sb+txn");
        let text = test.to_string();
        assert!(text.contains("P0:") && text.contains("P1:"));
        assert!(text.contains("txbegin") && text.contains("txend"));
        assert!(text.contains("Test:"));
    }

    #[test]
    fn x86_rendering_uses_tsx_mnemonics() {
        let test = from_execution(&catalog::fig2(), "fig2");
        let asm = render(&test, Arch::X86);
        assert!(asm.contains("XBEGIN") && asm.contains("XEND"));
        assert!(asm.contains("MOV"));
        assert!(asm.contains("exists"));
    }

    #[test]
    fn power_rendering_uses_tbegin_and_exclusives() {
        let test = from_execution(&catalog::monotonicity_cex_coalesced(), "rmw-in-txn");
        let asm = render(&test, Arch::Power);
        assert!(asm.contains("tbegin.") && asm.contains("tend."));
        assert!(asm.contains("lwarx") && asm.contains("stwcx."));
    }

    #[test]
    fn armv8_rendering_uses_acquire_release_and_dependencies() {
        let test = from_execution(&catalog::wrc(), "wrc");
        let asm = render(&test, Arch::Armv8);
        assert!(asm.contains("EOR W9"));
        assert!(asm.contains("LDR"));
        let mp_test = {
            let mut b = tm_exec::ExecutionBuilder::new();
            b.push(tm_exec::Event::write(0, 0).with_annot(tm_exec::Annot::release()));
            b.push(tm_exec::Event::read(1, 0).with_annot(tm_exec::Annot::acquire()));
            from_execution(&b.build().unwrap(), "ra")
        };
        let asm = render(&mp_test, Arch::Armv8);
        assert!(asm.contains("STLR") && asm.contains("LDAR"));
    }

    #[test]
    fn cpp_rendering_uses_atomic_blocks_and_orders() {
        let test = from_execution(&catalog::mp_txn(), "mp+txn");
        let src = render(&test, Arch::Cpp);
        assert!(src.contains("atomic {") && src.contains("}"));
        let sc_test = {
            let mut b = tm_exec::ExecutionBuilder::new();
            b.push(tm_exec::Event::write(0, 0).with_annot(tm_exec::Annot::seq_cst()));
            from_execution(&b.build().unwrap(), "sc")
        };
        let src = render(&sc_test, Arch::Cpp);
        assert!(src.contains("memory_order_seq_cst"));
    }

    #[test]
    fn mfence_and_dmb_render_as_fences() {
        let test = from_execution(&catalog::sb_mfence(), "sb+mfence");
        assert!(render(&test, Arch::X86).contains("MFENCE"));
        let mut b = tm_exec::ExecutionBuilder::new();
        b.push(tm_exec::Event::write(0, 0));
        b.push(tm_exec::Event::fence(0, tm_exec::Fence::Dmb));
        b.push(tm_exec::Event::read(0, 1));
        let test = from_execution(&b.build().unwrap(), "dmb");
        assert!(render(&test, Arch::Armv8).contains("DMB ISH"));
    }
}

//! Memoized views of executions: compute each derived relation once.
//!
//! A consistency check mentions the same derived relations (`sloc`, `fr`,
//! `com`, fence relations, …) many times: within one model different axioms
//! share them, and the synthesis sweep checks every candidate execution
//! against *several* models. The methods on [`Execution`] recompute from
//! scratch on every call, which is fine for one-off queries but dominates the
//! bounded-exhaustive hot path.
//!
//! [`ExecView`] wraps a borrowed [`Execution`] and computes each derived
//! relation lazily, at most once, caching it in a
//! [`OnceCell`](std::cell::OnceCell). A view is cheap to construct (no
//! relation is computed up front), is meant to live exactly as long as one
//! execution is being checked, and can be shared by every model checking that
//! execution. Views are intentionally `!Sync`: in the parallel synthesis
//! pipeline each worker builds its own view per candidate.
//!
//! For measurement and cross-checking, [`ExecView::uncached`] builds a view
//! that recomputes on every access — the pre-memoization behaviour — so the
//! two modes can be benchmarked and tested against each other.
//!
//! # Examples
//!
//! ```
//! use tm_exec::{catalog, ExecView};
//!
//! let exec = catalog::sb();
//! let view = ExecView::new(&exec);
//! // Both calls below compute `fr` once; the second hits the cache.
//! assert_eq!(view.fr().len(), 2);
//! assert!(view.com().is_subset_of(&view.com()));
//! ```

use std::borrow::Cow;
use std::cell::OnceCell;

use tm_relation::{ElemSet, Relation};

use crate::{Event, Execution, Fence};

/// A lazily-memoized bundle of the derived relations of one [`Execution`].
///
/// Every getter mirrors the equally-named method on [`Execution`] and returns
/// a [`Cow`]: borrowed from the cache in the default memoized mode, owned
/// (freshly recomputed) in [`uncached`](ExecView::uncached) mode. Model
/// checks should be written against a view so that one execution checked by
/// several models shares all of this work.
pub struct ExecView<'e> {
    exec: &'e Execution,
    memoized: bool,
    // Event sets.
    reads: OnceCell<ElemSet>,
    writes: OnceCell<ElemSet>,
    fences: OnceCell<ElemSet>,
    acquires: OnceCell<ElemSet>,
    releases: OnceCell<ElemSet>,
    sc_events: OnceCell<ElemSet>,
    atomics: OnceCell<ElemSet>,
    // Identity lifts used all over the models.
    id_reads: OnceCell<Relation>,
    id_writes: OnceCell<Relation>,
    // Derived relations.
    sloc: OnceCell<Relation>,
    same_thread: OnceCell<Relation>,
    poloc: OnceCell<Relation>,
    po_diff_loc: OnceCell<Relation>,
    fr: OnceCell<Relation>,
    com: OnceCell<Relation>,
    ecom: OnceCell<Relation>,
    cnf: OnceCell<Relation>,
    rfe: OnceCell<Relation>,
    rfi: OnceCell<Relation>,
    coe: OnceCell<Relation>,
    fre: OnceCell<Relation>,
    come: OnceCell<Relation>,
    tfence: OnceCell<Relation>,
    fence_sets: [OnceCell<ElemSet>; Fence::COUNT],
    fence_rels: [OnceCell<Relation>; Fence::COUNT],
    // Per-execution memo table of the axiom-IR evaluator (see `crate::ir`):
    // one slot per interned expression, claimed by the first pool that
    // evaluates against this view. Any subexpression shared by two axioms
    // or two models is computed once — this is what replaced the hand-picked
    // per-axiom caches the view used to carry before the IR existed.
    ir: OnceCell<crate::ir::IrMemo>,
}

impl<'e> ExecView<'e> {
    /// Creates a memoizing view of `exec`.
    pub fn new(exec: &'e Execution) -> ExecView<'e> {
        ExecView {
            exec,
            memoized: true,
            reads: OnceCell::new(),
            writes: OnceCell::new(),
            fences: OnceCell::new(),
            acquires: OnceCell::new(),
            releases: OnceCell::new(),
            sc_events: OnceCell::new(),
            atomics: OnceCell::new(),
            id_reads: OnceCell::new(),
            id_writes: OnceCell::new(),
            sloc: OnceCell::new(),
            same_thread: OnceCell::new(),
            poloc: OnceCell::new(),
            po_diff_loc: OnceCell::new(),
            fr: OnceCell::new(),
            com: OnceCell::new(),
            ecom: OnceCell::new(),
            cnf: OnceCell::new(),
            rfe: OnceCell::new(),
            rfi: OnceCell::new(),
            coe: OnceCell::new(),
            fre: OnceCell::new(),
            come: OnceCell::new(),
            tfence: OnceCell::new(),
            fence_sets: std::array::from_fn(|_| OnceCell::new()),
            fence_rels: std::array::from_fn(|_| OnceCell::new()),
            ir: OnceCell::new(),
        }
    }

    /// Creates a view that recomputes every derived relation on each access —
    /// the pre-memoization behaviour. Used by the benchmark harness as the
    /// "before" baseline and by the regression tests that pin the memoized
    /// and unmemoized paths to identical verdicts.
    pub fn uncached(exec: &'e Execution) -> ExecView<'e> {
        ExecView {
            memoized: false,
            ..ExecView::new(exec)
        }
    }

    /// The underlying execution.
    pub fn exec(&self) -> &'e Execution {
        self.exec
    }

    /// True if this view caches derived relations (the default).
    pub fn is_memoized(&self) -> bool {
        self.memoized
    }

    /// The per-execution memo table for the axiom-IR evaluator, shared by
    /// every evaluator of the same pool over this view.
    ///
    /// Returns `None` on uncached views (which promise to recompute
    /// everything) and when a *different* pool already claimed the table;
    /// the evaluator then falls back to a private memo.
    pub(crate) fn ir_memo(
        &self,
        stamp: u64,
        rel_count: usize,
        set_count: usize,
    ) -> Option<&crate::ir::IrMemo> {
        if !self.memoized {
            return None;
        }
        let memo = self
            .ir
            .get_or_init(|| crate::ir::IrMemo::new(stamp, rel_count, set_count));
        memo.fits(stamp, rel_count, set_count).then_some(memo)
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.exec.len()
    }

    /// True if the execution has no events.
    pub fn is_empty(&self) -> bool {
        self.exec.is_empty()
    }

    /// The event with identifier `id`.
    pub fn event(&self, id: usize) -> &Event {
        self.exec.event(id)
    }

    /// Program order (primitive; stored, never recomputed).
    pub fn po(&self) -> &Relation {
        &self.exec.po
    }

    /// Reads-from (primitive).
    pub fn rf(&self) -> &Relation {
        &self.exec.rf
    }

    /// Coherence (primitive).
    pub fn co(&self) -> &Relation {
        &self.exec.co
    }

    fn rel<'s>(
        &self,
        cell: &'s OnceCell<Relation>,
        compute: impl FnOnce() -> Relation,
    ) -> Cow<'s, Relation> {
        if self.memoized {
            Cow::Borrowed(cell.get_or_init(compute))
        } else {
            Cow::Owned(compute())
        }
    }

    fn set<'s>(
        &self,
        cell: &'s OnceCell<ElemSet>,
        compute: impl FnOnce() -> ElemSet,
    ) -> Cow<'s, ElemSet> {
        if self.memoized {
            Cow::Borrowed(cell.get_or_init(compute))
        } else {
            Cow::Owned(compute())
        }
    }

    // ---- event sets -----------------------------------------------------

    /// The set `R` of read events.
    pub fn reads(&self) -> Cow<'_, ElemSet> {
        self.set(&self.reads, || self.exec.reads())
    }

    /// The set `W` of write events.
    pub fn writes(&self) -> Cow<'_, ElemSet> {
        self.set(&self.writes, || self.exec.writes())
    }

    /// The set `F` of fence events.
    pub fn fences(&self) -> Cow<'_, ElemSet> {
        self.set(&self.fences, || self.exec.fences())
    }

    /// The set `Acq` of acquire events.
    pub fn acquires(&self) -> Cow<'_, ElemSet> {
        self.set(&self.acquires, || self.exec.acquires())
    }

    /// The set `Rel` of release events.
    pub fn releases(&self) -> Cow<'_, ElemSet> {
        self.set(&self.releases, || self.exec.releases())
    }

    /// The set `SC` of seq_cst events.
    pub fn sc_events(&self) -> Cow<'_, ElemSet> {
        self.set(&self.sc_events, || self.exec.sc_events())
    }

    /// The set `Ato` of C++ atomic events.
    pub fn atomics(&self) -> Cow<'_, ElemSet> {
        self.set(&self.atomics, || self.exec.atomics())
    }

    /// Fence events of exactly the given kind.
    pub fn fences_of(&self, kind: Fence) -> Cow<'_, ElemSet> {
        self.set(&self.fence_sets[kind.index()], || self.exec.fences_of(kind))
    }

    /// The identity relation `[R]` on reads.
    pub fn id_reads(&self) -> Cow<'_, Relation> {
        self.rel(&self.id_reads, || Relation::identity_on(&self.reads()))
    }

    /// The identity relation `[W]` on writes.
    pub fn id_writes(&self) -> Cow<'_, Relation> {
        self.rel(&self.id_writes, || Relation::identity_on(&self.writes()))
    }

    // ---- derived relations ----------------------------------------------

    /// Same-location pairs (see [`Execution::sloc`]).
    pub fn sloc(&self) -> Cow<'_, Relation> {
        self.rel(&self.sloc, || self.exec.sloc())
    }

    /// Same-thread pairs (see [`Execution::same_thread`]).
    pub fn same_thread(&self) -> Cow<'_, Relation> {
        self.rel(&self.same_thread, || self.exec.same_thread())
    }

    /// Restricts `r` to inter-thread (external) pairs.
    pub fn external(&self, r: &Relation) -> Relation {
        let mut out = r.clone();
        out.difference_in_place(&self.same_thread());
        out
    }

    /// Restricts `r` to intra-thread (internal) pairs.
    pub fn internal(&self, r: &Relation) -> Relation {
        let mut out = r.clone();
        out.intersect_in_place(&self.same_thread());
        out
    }

    /// Program order restricted to same-location accesses.
    pub fn poloc(&self) -> Cow<'_, Relation> {
        self.rel(&self.poloc, || {
            let mut out = self.exec.po.clone();
            out.intersect_in_place(&self.sloc());
            out
        })
    }

    /// Program order between accesses of different locations.
    pub fn po_diff_loc(&self) -> Cow<'_, Relation> {
        self.rel(&self.po_diff_loc, || {
            let mut out = self.exec.po.clone();
            out.difference_in_place(&self.sloc());
            out
        })
    }

    /// From-read: `fr = ([R] ; sloc ; [W]) \ (rf⁻¹ ; (co⁻¹)*)`.
    pub fn fr(&self) -> Cow<'_, Relation> {
        self.rel(&self.fr, || {
            let mut r_to_w = self.id_reads().compose(&self.sloc());
            r_to_w = r_to_w.compose(&self.id_writes());
            let excluded = self
                .exec
                .rf
                .inverse()
                .compose(&self.exec.co.inverse().reflexive_transitive_closure());
            r_to_w.difference_in_place(&excluded);
            r_to_w
        })
    }

    /// External reads-from.
    pub fn rfe(&self) -> Cow<'_, Relation> {
        self.rel(&self.rfe, || self.external(&self.exec.rf))
    }

    /// Internal reads-from.
    pub fn rfi(&self) -> Cow<'_, Relation> {
        self.rel(&self.rfi, || self.internal(&self.exec.rf))
    }

    /// External coherence edges.
    pub fn coe(&self) -> Cow<'_, Relation> {
        self.rel(&self.coe, || self.external(&self.exec.co))
    }

    /// External from-read edges.
    pub fn fre(&self) -> Cow<'_, Relation> {
        self.rel(&self.fre, || self.external(&self.fr()))
    }

    /// Communication: `com = rf ∪ co ∪ fr`.
    pub fn com(&self) -> Cow<'_, Relation> {
        self.rel(&self.com, || {
            let mut out = self.fr().into_owned();
            out.union_in_place(&self.exec.rf);
            out.union_in_place(&self.exec.co);
            out
        })
    }

    /// External communication edges.
    pub fn come(&self) -> Cow<'_, Relation> {
        self.rel(&self.come, || self.external(&self.com()))
    }

    /// Extended communication: `ecom = com ∪ (co ; rf)`.
    pub fn ecom(&self) -> Cow<'_, Relation> {
        self.rel(&self.ecom, || {
            let mut out = self.com().into_owned();
            out.union_in_place(&self.exec.co.compose(&self.exec.rf));
            out
        })
    }

    /// The conflict relation (C++ Fig. 9).
    pub fn cnf(&self) -> Cow<'_, Relation> {
        self.rel(&self.cnf, || self.exec.cnf())
    }

    /// The implicit transaction fence relation.
    pub fn tfence(&self) -> Cow<'_, Relation> {
        self.rel(&self.tfence, || self.exec.tfence())
    }

    /// The per-architecture fence relation for fences of kind `kind`.
    pub fn fence_rel(&self, kind: Fence) -> Cow<'_, Relation> {
        self.rel(&self.fence_rels[kind.index()], || {
            let id_f = Relation::identity_on(&self.fences_of(kind));
            self.exec.po.compose(&id_f).compose(&self.exec.po)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    /// Every getter of the memoized view must agree with the equally-named
    /// recomputing method on `Execution`, on a representative sample.
    #[test]
    fn view_matches_execution_derived_relations() {
        for exec in [
            catalog::sb(),
            catalog::sb_txn(),
            catalog::mp_txn(),
            catalog::fig2(),
            catalog::power_wrc_tprop1(),
            catalog::power_iriw_two_txns(),
            catalog::example_1_1_concrete(false),
        ] {
            for view in [ExecView::new(&exec), ExecView::uncached(&exec)] {
                assert_eq!(*view.sloc(), exec.sloc());
                assert_eq!(*view.same_thread(), exec.same_thread());
                assert_eq!(*view.poloc(), exec.poloc());
                assert_eq!(*view.po_diff_loc(), exec.po_diff_loc());
                assert_eq!(*view.fr(), exec.fr());
                assert_eq!(*view.com(), exec.com());
                assert_eq!(*view.ecom(), exec.ecom());
                assert_eq!(*view.cnf(), exec.cnf());
                assert_eq!(*view.rfe(), exec.rfe());
                assert_eq!(*view.rfi(), exec.rfi());
                assert_eq!(*view.coe(), exec.coe());
                assert_eq!(*view.fre(), exec.fre());
                assert_eq!(*view.come(), exec.come());
                assert_eq!(*view.tfence(), exec.tfence());
                assert_eq!(*view.reads(), exec.reads());
                assert_eq!(*view.writes(), exec.writes());
                for kind in [Fence::MFence, Fence::Sync, Fence::Lwsync, Fence::Dmb] {
                    assert_eq!(*view.fence_rel(kind), exec.fence_rel(kind));
                    assert_eq!(*view.fences_of(kind), exec.fences_of(kind));
                }
            }
        }
    }

    #[test]
    fn repeated_access_returns_the_cached_relation() {
        let exec = catalog::sb();
        let view = ExecView::new(&exec);
        let first = view.fr().into_owned();
        // Second access must be the same value (and, internally, the same
        // cached allocation — Cow::Borrowed both times).
        assert!(matches!(view.fr(), Cow::Borrowed(_)));
        assert_eq!(*view.fr(), first);
        assert!(view.is_memoized());
        assert!(!ExecView::uncached(&exec).is_memoized());
    }
}

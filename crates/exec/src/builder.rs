//! Incremental construction of well-formed executions.

use tm_relation::Relation;

use crate::{check_well_formed, Event, Execution, WellFormednessError};

/// Builds an [`Execution`] incrementally.
///
/// Events are appended with [`push`]; program order within each thread is
/// the order of insertion. Primitive edges (`rf`, `co`, dependencies, `rmw`)
/// are added by event identifier, and transactions / critical regions are
/// declared over sets of identifiers. [`build`] assembles the relations and
/// checks well-formedness (§2.1, §3.1).
///
/// [`push`]: ExecutionBuilder::push
/// [`build`]: ExecutionBuilder::build
///
/// # Examples
///
/// ```
/// use tm_exec::{Event, ExecutionBuilder};
///
/// // Fig. 2 of the paper: a transactional store-and-load racing a store.
/// let mut b = ExecutionBuilder::new();
/// let a = b.push(Event::write(0, 0));
/// let bb = b.push(Event::read(0, 0));
/// let c = b.push(Event::write(1, 0));
/// b.txn(&[a, bb]);
/// b.rf(c, bb);
/// b.co(a, c);
/// let exec = b.build()?;
/// assert_eq!(exec.txn_classes(), vec![vec![a, bb]]);
/// # Ok::<(), tm_exec::WellFormednessError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct ExecutionBuilder {
    events: Vec<Event>,
    po_extra: Vec<(usize, usize)>,
    rf: Vec<(usize, usize)>,
    co: Vec<(usize, usize)>,
    addr: Vec<(usize, usize)>,
    data: Vec<(usize, usize)>,
    ctrl: Vec<(usize, usize)>,
    rmw: Vec<(usize, usize)>,
    txns: Vec<(Vec<usize>, bool)>,
    crs: Vec<(Vec<usize>, bool)>,
}

impl ExecutionBuilder {
    /// Creates an empty builder.
    pub fn new() -> ExecutionBuilder {
        ExecutionBuilder::default()
    }

    /// Appends an event, returning its identifier. Program order on each
    /// thread follows insertion order.
    pub fn push(&mut self, event: Event) -> usize {
        self.events.push(event);
        self.events.len() - 1
    }

    /// Number of events pushed so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no event has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds a reads-from edge from write `w` to read `r`.
    pub fn rf(&mut self, w: usize, r: usize) -> &mut Self {
        self.rf.push((w, r));
        self
    }

    /// Adds a coherence edge from write `w1` to write `w2`.
    pub fn co(&mut self, w1: usize, w2: usize) -> &mut Self {
        self.co.push((w1, w2));
        self
    }

    /// Declares a total coherence order over `writes` (in the given order).
    pub fn co_order(&mut self, writes: &[usize]) -> &mut Self {
        for (i, &a) in writes.iter().enumerate() {
            for &b in &writes[i + 1..] {
                self.co.push((a, b));
            }
        }
        self
    }

    /// Adds an address dependency from read `r` to event `e`.
    pub fn addr(&mut self, r: usize, e: usize) -> &mut Self {
        self.addr.push((r, e));
        self
    }

    /// Adds a data dependency from read `r` to write `w`.
    pub fn data(&mut self, r: usize, w: usize) -> &mut Self {
        self.data.push((r, w));
        self
    }

    /// Adds a control dependency from `src` to event `e`.
    pub fn ctrl(&mut self, src: usize, e: usize) -> &mut Self {
        self.ctrl.push((src, e));
        self
    }

    /// Pairs the read and write of a read-modify-write operation.
    pub fn rmw(&mut self, r: usize, w: usize) -> &mut Self {
        self.rmw.push((r, w));
        self
    }

    /// Adds an explicit program-order edge (rarely needed: insertion order
    /// already defines po; this exists for exotic event interleavings).
    pub fn po(&mut self, a: usize, b: usize) -> &mut Self {
        self.po_extra.push((a, b));
        self
    }

    /// Declares that `events` form one successful (relaxed) transaction.
    pub fn txn(&mut self, events: &[usize]) -> &mut Self {
        self.txns.push((events.to_vec(), false));
        self
    }

    /// Declares that `events` form one successful *atomic* transaction
    /// (C++ `atomic { … }`; implies membership of `stxn` and `stxnat`).
    pub fn atomic_txn(&mut self, events: &[usize]) -> &mut Self {
        self.txns.push((events.to_vec(), true));
        self
    }

    /// Declares that `events` form one critical region protected by a real
    /// lock acquisition (lock-elision checking, §8.3).
    pub fn cr(&mut self, events: &[usize]) -> &mut Self {
        self.crs.push((events.to_vec(), false));
        self
    }

    /// Declares that `events` form one critical region that will be
    /// transactionalised (elided).
    pub fn txn_cr(&mut self, events: &[usize]) -> &mut Self {
        self.crs.push((events.to_vec(), true));
        self
    }

    /// Assembles the execution without checking well-formedness.
    ///
    /// Useful for constructing intentionally ill-formed executions in tests;
    /// prefer [`ExecutionBuilder::build`] everywhere else.
    pub fn build_unchecked(&self) -> Execution {
        let n = self.events.len();
        let mut exec = Execution::with_events(self.events.clone());

        // Program order: per thread, insertion order; transitively closed.
        let mut po = Relation::new(n);
        let threads: Vec<u32> = {
            let mut t: Vec<u32> = self.events.iter().map(|e| e.thread.0).collect();
            t.sort_unstable();
            t.dedup();
            t
        };
        for t in threads {
            let ids: Vec<usize> = (0..n).filter(|&i| self.events[i].thread.0 == t).collect();
            for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    po.insert(a, b);
                }
            }
        }
        for &(a, b) in &self.po_extra {
            po.insert(a, b);
        }
        exec.po = po.transitive_closure();

        let fill = |pairs: &[(usize, usize)]| Relation::from_pairs(n, pairs.iter().copied());
        exec.rf = fill(&self.rf);
        exec.co = fill(&self.co).transitive_closure();
        exec.addr = fill(&self.addr);
        exec.data = fill(&self.data);
        exec.ctrl = fill(&self.ctrl);
        exec.rmw = fill(&self.rmw);

        let mut stxn = Relation::new(n);
        let mut stxnat = Relation::new(n);
        for (class, atomic) in &self.txns {
            for &a in class {
                for &b in class {
                    stxn.insert(a, b);
                    if *atomic {
                        stxnat.insert(a, b);
                    }
                }
            }
        }
        exec.stxn = stxn;
        exec.stxnat = stxnat;

        let mut scr = Relation::new(n);
        let mut scrt = Relation::new(n);
        for (class, transactionalised) in &self.crs {
            for &a in class {
                for &b in class {
                    scr.insert(a, b);
                    if *transactionalised {
                        scrt.insert(a, b);
                    }
                }
            }
        }
        exec.scr = scr;
        exec.scrt = scrt;
        exec
    }

    /// Assembles the execution and checks well-formedness.
    ///
    /// # Errors
    ///
    /// Returns the first [`WellFormednessError`] found, if any.
    pub fn build(&self) -> Result<Execution, WellFormednessError> {
        let exec = self.build_unchecked();
        check_well_formed(&exec)?;
        Ok(exec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Annot, Fence};

    #[test]
    fn po_follows_insertion_order_per_thread() {
        let mut b = ExecutionBuilder::new();
        let a0 = b.push(Event::write(0, 0));
        let b1 = b.push(Event::read(1, 0));
        let a1 = b.push(Event::read(0, 1));
        let e = b.build().unwrap();
        assert!(e.po.contains(a0, a1));
        assert!(!e.po.contains(a0, b1));
        assert!(!e.po.contains(b1, a1));
    }

    #[test]
    fn co_order_declares_total_order() {
        let mut b = ExecutionBuilder::new();
        let w1 = b.push(Event::write(0, 0));
        let w2 = b.push(Event::write(1, 0));
        let w3 = b.push(Event::write(2, 0));
        b.co_order(&[w1, w2, w3]);
        let e = b.build().unwrap();
        assert!(e.co.contains(w1, w2) && e.co.contains(w2, w3) && e.co.contains(w1, w3));
    }

    #[test]
    fn co_is_transitively_closed_on_build() {
        let mut b = ExecutionBuilder::new();
        let w1 = b.push(Event::write(0, 0));
        let w2 = b.push(Event::write(1, 0));
        let w3 = b.push(Event::write(2, 0));
        b.co(w1, w2);
        b.co(w2, w3);
        let e = b.build().unwrap();
        assert!(e.co.contains(w1, w3));
    }

    #[test]
    fn txn_and_atomic_txn_populate_both_relations() {
        let mut b = ExecutionBuilder::new();
        let a = b.push(Event::write(0, 0));
        let c = b.push(Event::read(0, 1));
        let d = b.push(Event::write(1, 1));
        let f = b.push(Event::read(1, 0));
        b.txn(&[a, c]);
        b.atomic_txn(&[d, f]);
        let e = b.build().unwrap();
        assert!(e.stxn.contains(a, c));
        assert!(!e.stxnat.contains(a, c));
        assert!(e.stxn.contains(d, f));
        assert!(e.stxnat.contains(d, f));
    }

    #[test]
    fn build_rejects_ill_formed_rf() {
        let mut b = ExecutionBuilder::new();
        let r1 = b.push(Event::read(0, 0));
        let r2 = b.push(Event::read(1, 0));
        b.rf(r1, r2); // reads-from must start at a write
        assert!(b.build().is_err());
    }

    #[test]
    fn builder_supports_fences_and_annotations() {
        let mut b = ExecutionBuilder::new();
        let w = b.push(Event::write(0, 0).with_annot(Annot::release()));
        let f = b.push(Event::fence(0, Fence::Dmb));
        let r = b.push(Event::read(1, 0).with_annot(Annot::acquire()));
        b.rf(w, r);
        let e = b.build().unwrap();
        assert!(e.releases().contains(w));
        assert!(e.acquires().contains(r));
        assert!(e.fences_of(Fence::Dmb).contains(f));
    }
}

//! A declarative relational-algebra IR for memory-model axioms.
//!
//! The paper defines every model — SC/TSC, x86 ± TM, Power ± TM, ARMv8 ± TM
//! and C++ ± TM — as a handful of axioms (`acyclic`/`irreflexive`/`empty`
//! heads) over derived relations built from a small operator vocabulary:
//! composition `;`, union `∪`, intersection `∩`, difference `\`, inverse
//! `r⁻¹`, the closures `r?`/`r⁺`/`r*`, identity restrictions `[S]`, and the
//! transaction lifts `weaklift`/`stronglift`. This module makes that
//! vocabulary first-class:
//!
//! * [`RelExpr`] nodes (and [`SetExpr`] nodes for event sets) are interned
//!   into an [`IrPool`] with hash-consing, so a subexpression written twice —
//!   inside one axiom, across two axioms, or across two *models* — is one
//!   node with one identity;
//! * an [`IrEval`] evaluates interned expressions against an [`ExecView`],
//!   memoizing each node's value per execution. Because identical
//!   subexpressions share a node, common-subexpression elimination falls out
//!   of the representation: the shared node is computed once no matter how
//!   many axioms of how many models mention it. This generalises the four
//!   hand-picked memoized axiom bodies the view used to carry;
//! * an [`Axiom`] pairs a body with an [`AxiomHead`] and a syntactic cost
//!   estimate, so a consistency sweep can check cheapest axioms first and
//!   stop at the first violation;
//! * [`rel_polarity`] computes the syntactic polarity of a base relation
//!   inside an expression, which the metatheory uses to *derive* §8.1
//!   monotonicity from axiom structure (see [`txn_polarity`]).
//!
//! The pool is deliberately independent of any concrete model: `tm-models`
//! builds one shared catalog for the paper's models, and user-defined models
//! can build their own pools with the same constructors.
//!
//! # Examples
//!
//! ```
//! use tm_exec::ir::{AxiomHead, IrEval, IrPool, RelBase};
//! use tm_exec::{catalog, ExecView};
//!
//! let mut pool = IrPool::new();
//! let po = pool.base(RelBase::Po);
//! let com = pool.base(RelBase::Com);
//! let hb = pool.union(po, com);
//! // Writing the union again yields the same node: hash-consing.
//! assert_eq!(hb, pool.union(com, po));
//! let order = pool.axiom("Order", AxiomHead::Acyclic, hb);
//!
//! let exec = catalog::sb();
//! let view = ExecView::new(&exec);
//! let eval = IrEval::new(&pool, &view);
//! // Store buffering has a po ∪ com cycle: the SC Order axiom fails.
//! assert!(!eval.holds(&order));
//! assert!(eval.witness(&order).is_some());
//! ```

use std::cell::OnceCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use tm_relation::{ElemSet, Relation};

use crate::{ExecView, Execution, Fence};

pub mod analysis;

/// Base event sets an [`ExecView`] can provide.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SetBase {
    /// The set `R` of read events.
    Reads,
    /// The set `W` of write events.
    Writes,
    /// The set `F` of fence events (any kind).
    Fences,
    /// The set `Acq` of acquire events.
    Acquires,
    /// The set `Rel` of release events.
    Releases,
    /// The set `SC` of seq_cst events.
    ScEvents,
    /// The set `Ato` of C++ atomic events.
    Atomics,
    /// Fence events of exactly one kind.
    FencesOf(Fence),
    /// Sources of the `rmw` pairing (the reads of RMWs).
    RmwDomain,
    /// Targets of the `rmw` pairing (the writes of RMWs).
    RmwRange,
}

/// Base (primitive or view-derived) relations an [`ExecView`] can provide.
///
/// Everything here is either stored on the [`Execution`] or memoized on the
/// view, so a base node costs one lookup however often it is mentioned.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RelBase {
    /// Program order.
    Po,
    /// Reads-from.
    Rf,
    /// Coherence.
    Co,
    /// Address dependencies.
    Addr,
    /// Data dependencies.
    Data,
    /// Control dependencies.
    Ctrl,
    /// Read-modify-write pairing.
    Rmw,
    /// Same-successful-transaction.
    Stxn,
    /// Same-successful-atomic-transaction.
    Stxnat,
    /// Same-critical-region.
    Scr,
    /// Same-location pairs.
    Sloc,
    /// Program order restricted to same-location accesses.
    Poloc,
    /// Program order between different locations.
    PoDiffLoc,
    /// From-read.
    Fr,
    /// External reads-from.
    Rfe,
    /// Internal reads-from.
    Rfi,
    /// External coherence.
    Coe,
    /// External from-read.
    Fre,
    /// Communication `rf ∪ co ∪ fr`.
    Com,
    /// External communication.
    Come,
    /// Extended communication `com ∪ (co ; rf)`.
    Ecom,
    /// The C++ conflict relation.
    Cnf,
    /// Implicit transaction-boundary fences.
    Tfence,
    /// The per-architecture fence relation `po ; [F_kind] ; po`.
    FenceRel(Fence),
}

/// An interned set expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SetExpr {
    /// A base set provided by the view.
    Base(SetBase),
    /// Set union.
    Union(SetId, SetId),
    /// Set intersection.
    Inter(SetId, SetId),
}

/// An interned relation expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RelExpr {
    /// A base relation provided by the view.
    Base(RelBase),
    /// The identity relation `[S]` on a set.
    IdOn(SetId),
    /// The cartesian product `A × B` of two sets.
    Cross(SetId, SetId),
    /// Relational composition `a ; b`.
    Seq(RelId, RelId),
    /// Union `a ∪ b`.
    Union(RelId, RelId),
    /// Intersection `a ∩ b`.
    Inter(RelId, RelId),
    /// Difference `a \ b`.
    Diff(RelId, RelId),
    /// Inverse `a⁻¹`.
    Inverse(RelId),
    /// Reflexive closure `a?`.
    Opt(RelId),
    /// Transitive closure `a⁺`.
    Plus(RelId),
    /// Reflexive-transitive closure `a*`.
    Star(RelId),
    /// `weaklift(a, t) = t ; (a \ t) ; t` (§3.3).
    WeakLift(RelId, RelId),
    /// `stronglift(a, t) = t? ; (a \ t) ; t?` (§3.3).
    StrongLift(RelId, RelId),
    /// A recursion variable bound by a [`RelExpr::Fix`] group. The index is
    /// pool-unique (see [`IrPool::fresh_var`]), so a `Var` node is never
    /// shared across groups. Evaluating a free `Var` outside its group
    /// panics: the elaborator only ever nests one under its `Fix`.
    Var(u32),
    /// Component `i` of mutual fixpoint group `g`: the least solution of
    /// `x₁ = body₁, …, xₙ = bodyₙ` where each `bodyᵢ` may mention the
    /// group's [`Var`](RelExpr::Var) nodes. Groups live in a side table on
    /// the pool ([`IrPool::fix_vars`]/[`IrPool::fix_bodies`]) so this node
    /// stays `Copy`. Built by [`IrPool::fix`] from positively-stratified
    /// `let rec` groups; evaluated by naive Kleene iteration.
    Fix(u32, u32),
}

/// Identity of an interned [`SetExpr`] within one [`IrPool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SetId(u32);

/// Identity of an interned [`RelExpr`] within one [`IrPool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(u32);

impl RelId {
    /// The dense index of this expression in its pool.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl SetId {
    /// The dense index of this expression in its pool.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The predicate an [`Axiom`] applies to its body relation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AxiomHead {
    /// `acyclic(body)`.
    Acyclic,
    /// `irreflexive(body)`.
    Irreflexive,
    /// `empty(body)`.
    Empty,
}

/// One named axiom of a memory model: a head predicate over an interned
/// body, plus a syntactic cost estimate used to order early-exit checks.
///
/// Names are [`Cow`](std::borrow::Cow) so the built-in catalog pays nothing
/// (string literals) while runtime-loaded models — e.g. those parsed from
/// `.cat` source by the `tm-cat` crate — carry names owned by the axiom.
#[derive(Clone, Debug)]
pub struct Axiom {
    /// The axiom's name as it appears in verdicts (e.g. `"Order"`).
    pub name: std::borrow::Cow<'static, str>,
    /// The predicate applied to the body.
    pub head: AxiomHead,
    /// The interned body relation.
    pub body: RelId,
    /// Estimated evaluation cost (arbitrary units; larger = slower). Used to
    /// check cheap axioms first when only a boolean verdict is needed.
    pub cost: u32,
}

/// One mutual fixpoint group: the bound recursion variables and the bodies
/// they solve, in component order.
#[derive(Debug)]
struct FixGroup {
    vars: Box<[u32]>,
    bodies: Box<[RelId]>,
}

static POOL_STAMPS: AtomicU64 = AtomicU64::new(1);

/// A hash-consing arena of [`RelExpr`]/[`SetExpr`] nodes.
///
/// Interning the same structural expression twice returns the same id, so
/// node identity doubles as a memoization key: see [`IrEval`]. Unions and
/// intersections are normalised by operand order, making them commutative at
/// the representation level (`a ∪ b` and `b ∪ a` are one node).
#[derive(Debug, Default)]
pub struct IrPool {
    stamp: u64,
    rels: Vec<RelExpr>,
    rel_costs: Vec<u32>,
    /// Sorted free recursion variables of each node (empty for almost all).
    rel_vars: Vec<Box<[u32]>>,
    rel_index: HashMap<RelExpr, RelId>,
    sets: Vec<SetExpr>,
    set_index: HashMap<SetExpr, SetId>,
    fix_groups: Vec<FixGroup>,
    next_var: u32,
}

impl IrPool {
    /// Creates an empty pool with a process-unique stamp (used to keep two
    /// pools' memo tables apart when both evaluate against one view).
    pub fn new() -> IrPool {
        IrPool {
            stamp: POOL_STAMPS.fetch_add(1, Ordering::Relaxed),
            ..IrPool::default()
        }
    }

    /// The process-unique identity of this pool.
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Number of interned relation expressions.
    pub fn rel_count(&self) -> usize {
        self.rels.len()
    }

    /// Number of interned set expressions.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// Every interned relation id, in ascending (topological) order.
    pub fn rel_ids(&self) -> impl Iterator<Item = RelId> + '_ {
        (0..self.rels.len() as u32).map(RelId)
    }

    /// The node behind a relation id.
    pub fn rel_expr(&self, id: RelId) -> RelExpr {
        self.rels[id.index()]
    }

    /// The node behind a set id.
    pub fn set_expr(&self, id: SetId) -> SetExpr {
        self.sets[id.index()]
    }

    /// The syntactic cost estimate of a relation expression.
    pub fn rel_cost(&self, id: RelId) -> u32 {
        self.rel_costs[id.index()]
    }

    /// The sorted free recursion variables of a node (empty for every node
    /// outside an open `let rec` body).
    pub fn rel_free_vars(&self, id: RelId) -> &[u32] {
        &self.rel_vars[id.index()]
    }

    /// The number of mutual fixpoint groups registered by [`fix`](Self::fix).
    pub fn fix_group_count(&self) -> usize {
        self.fix_groups.len()
    }

    /// The interned [`RelExpr::Fix`] node of component `i` of group `g`
    /// (interned by [`fix`](Self::fix), so the lookup always succeeds).
    pub fn fix_component(&self, g: u32, i: u32) -> RelId {
        self.rel_index[&RelExpr::Fix(g, i)]
    }

    /// The bound variable indices of fixpoint group `g`.
    pub fn fix_vars(&self, g: u32) -> &[u32] {
        &self.fix_groups[g as usize].vars
    }

    /// The component bodies of fixpoint group `g`.
    pub fn fix_bodies(&self, g: u32) -> &[RelId] {
        &self.fix_groups[g as usize].bodies
    }

    fn intern_set(&mut self, node: SetExpr) -> SetId {
        if let Some(&id) = self.set_index.get(&node) {
            return id;
        }
        let id = SetId(self.sets.len() as u32);
        self.sets.push(node);
        self.set_index.insert(node, id);
        id
    }

    fn intern_rel(&mut self, node: RelExpr) -> RelId {
        if let Some(&id) = self.rel_index.get(&node) {
            return id;
        }
        let cost = self.cost_of(node);
        let vars = self.vars_of(node);
        let id = RelId(self.rels.len() as u32);
        self.rels.push(node);
        self.rel_costs.push(cost);
        self.rel_vars.push(vars);
        self.rel_index.insert(node, id);
        id
    }

    /// The sorted free recursion variables of a node about to be interned
    /// (children are already interned, so their lists are available).
    fn vars_of(&self, node: RelExpr) -> Box<[u32]> {
        let of = |id: RelId| self.rel_vars[id.index()].iter().copied();
        let mut out: Vec<u32> = match node {
            RelExpr::Base(_) | RelExpr::IdOn(_) | RelExpr::Cross(_, _) => return Box::new([]),
            RelExpr::Var(v) => vec![v],
            RelExpr::Seq(a, b)
            | RelExpr::Union(a, b)
            | RelExpr::Inter(a, b)
            | RelExpr::Diff(a, b)
            | RelExpr::WeakLift(a, b)
            | RelExpr::StrongLift(a, b) => of(a).chain(of(b)).collect(),
            RelExpr::Inverse(a) | RelExpr::Opt(a) | RelExpr::Plus(a) | RelExpr::Star(a) => {
                of(a).collect()
            }
            // A Fix node closes over its group's variables.
            RelExpr::Fix(g, _) => {
                let group = &self.fix_groups[g as usize];
                group
                    .bodies
                    .iter()
                    .flat_map(|&b| of(b))
                    .filter(|v| !group.vars.contains(v))
                    .collect()
            }
        };
        out.sort_unstable();
        out.dedup();
        out.into_boxed_slice()
    }

    /// Cost heuristic: base lookups are nearly free (memoized on the view),
    /// boolean combinations are linear in the bit matrix, compositions cost
    /// more, closures and lifts the most.
    fn cost_of(&self, node: RelExpr) -> u32 {
        let c = |id: RelId| self.rel_costs[id.index()];
        match node {
            RelExpr::Base(_) => 1,
            RelExpr::IdOn(_) | RelExpr::Cross(_, _) => 2,
            RelExpr::Union(a, b) | RelExpr::Inter(a, b) | RelExpr::Diff(a, b) => c(a) + c(b) + 1,
            RelExpr::Seq(a, b) => c(a) + c(b) + 4,
            RelExpr::Inverse(a) => c(a) + 2,
            RelExpr::Opt(a) => c(a) + 1,
            RelExpr::Plus(a) | RelExpr::Star(a) => c(a) + 12,
            RelExpr::WeakLift(a, t) | RelExpr::StrongLift(a, t) => c(a) + c(t) + 10,
            RelExpr::Var(_) => 1,
            // Kleene iteration re-evaluates every body of the group until
            // stable: comfortably the priciest operator.
            RelExpr::Fix(g, _) => {
                let group = &self.fix_groups[g as usize];
                group.bodies.iter().map(|&b| c(b)).sum::<u32>() + 16
            }
        }
    }

    // ---- set constructors -------------------------------------------------

    /// Interns a base set.
    pub fn set_base(&mut self, base: SetBase) -> SetId {
        self.intern_set(SetExpr::Base(base))
    }

    /// Interns a set union (normalised: commutative).
    pub fn set_union(&mut self, a: SetId, b: SetId) -> SetId {
        if a == b {
            return a;
        }
        let (a, b) = (a.min(b), a.max(b));
        self.intern_set(SetExpr::Union(a, b))
    }

    /// Interns a set intersection (normalised: commutative).
    pub fn set_inter(&mut self, a: SetId, b: SetId) -> SetId {
        if a == b {
            return a;
        }
        let (a, b) = (a.min(b), a.max(b));
        self.intern_set(SetExpr::Inter(a, b))
    }

    // ---- relation constructors --------------------------------------------

    /// Interns a base relation.
    pub fn base(&mut self, base: RelBase) -> RelId {
        self.intern_rel(RelExpr::Base(base))
    }

    /// Interns the identity `[S]` on a set.
    pub fn id_on(&mut self, set: SetId) -> RelId {
        self.intern_rel(RelExpr::IdOn(set))
    }

    /// Interns the cartesian product of two sets.
    pub fn cross(&mut self, a: SetId, b: SetId) -> RelId {
        self.intern_rel(RelExpr::Cross(a, b))
    }

    /// Interns a composition `a ; b`.
    pub fn seq(&mut self, a: RelId, b: RelId) -> RelId {
        self.intern_rel(RelExpr::Seq(a, b))
    }

    /// Interns the composition of a whole chain, left to right.
    ///
    /// # Panics
    ///
    /// Panics if `chain` is empty.
    pub fn seq_all(&mut self, chain: &[RelId]) -> RelId {
        let (&first, rest) = chain.split_first().expect("seq_all of an empty chain");
        rest.iter().fold(first, |acc, &next| self.seq(acc, next))
    }

    /// Interns a union (normalised: commutative, idempotent).
    pub fn union(&mut self, a: RelId, b: RelId) -> RelId {
        if a == b {
            return a;
        }
        let (a, b) = (a.min(b), a.max(b));
        self.intern_rel(RelExpr::Union(a, b))
    }

    /// Interns the union of a whole list of relations.
    ///
    /// Operands are sorted first so that any two unions of the same parts —
    /// however they were written — intern to the same node tree.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn union_all(&mut self, parts: &[RelId]) -> RelId {
        let mut sorted = parts.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let (&first, rest) = sorted.split_first().expect("union_all of an empty list");
        rest.iter().fold(first, |acc, &next| self.union(acc, next))
    }

    /// Interns an intersection (normalised: commutative, idempotent).
    pub fn inter(&mut self, a: RelId, b: RelId) -> RelId {
        if a == b {
            return a;
        }
        let (a, b) = (a.min(b), a.max(b));
        self.intern_rel(RelExpr::Inter(a, b))
    }

    /// Interns a difference `a \ b`.
    pub fn diff(&mut self, a: RelId, b: RelId) -> RelId {
        self.intern_rel(RelExpr::Diff(a, b))
    }

    /// Interns an inverse `a⁻¹`.
    pub fn inverse(&mut self, a: RelId) -> RelId {
        self.intern_rel(RelExpr::Inverse(a))
    }

    /// Interns a reflexive closure `a?`.
    pub fn opt(&mut self, a: RelId) -> RelId {
        self.intern_rel(RelExpr::Opt(a))
    }

    /// Interns a transitive closure `a⁺`.
    pub fn plus(&mut self, a: RelId) -> RelId {
        self.intern_rel(RelExpr::Plus(a))
    }

    /// Interns a reflexive-transitive closure `a*`.
    pub fn star(&mut self, a: RelId) -> RelId {
        self.intern_rel(RelExpr::Star(a))
    }

    /// Interns `weaklift(a, t)`.
    pub fn weaklift(&mut self, a: RelId, t: RelId) -> RelId {
        self.intern_rel(RelExpr::WeakLift(a, t))
    }

    /// Interns `stronglift(a, t)`.
    pub fn stronglift(&mut self, a: RelId, t: RelId) -> RelId {
        self.intern_rel(RelExpr::StrongLift(a, t))
    }

    /// Interns a fresh recursion variable. The index is unique within the
    /// pool, so two `let rec` groups never alias each other's variables.
    pub fn fresh_var(&mut self) -> RelId {
        let v = self.next_var;
        self.next_var += 1;
        self.intern_rel(RelExpr::Var(v))
    }

    /// Closes a mutual fixpoint group: `vars[i]` (each a
    /// [`fresh_var`](IrPool::fresh_var) node) is bound to the least solution
    /// of `bodies[i]`, and the returned ids — one per component — denote
    /// those solutions. Callers must ensure every body is *positive* in
    /// every bound variable (see [`var_polarity`]); Kleene iteration from
    /// the empty relations then converges to the least fixpoint.
    ///
    /// # Panics
    ///
    /// Panics if `vars` and `bodies` differ in length, are empty, or if a
    /// `vars` element is not a [`RelExpr::Var`] node.
    pub fn fix(&mut self, vars: &[RelId], bodies: &[RelId]) -> Vec<RelId> {
        assert_eq!(vars.len(), bodies.len(), "one body per bound variable");
        assert!(!vars.is_empty(), "fix of an empty group");
        let indices: Box<[u32]> = vars
            .iter()
            .map(|&v| match self.rel_expr(v) {
                RelExpr::Var(i) => i,
                other => panic!("fix binder must be a Var node, got {other:?}"),
            })
            .collect();
        // Register the group first so cost/free-var computation for the new
        // Fix nodes can see the bodies.
        let g = self.fix_groups.len() as u32;
        self.fix_groups.push(FixGroup {
            vars: indices,
            bodies: bodies.into(),
        });
        (0..vars.len() as u32)
            .map(|i| self.intern_rel(RelExpr::Fix(g, i)))
            .collect()
    }

    /// Builds an [`Axiom`] over an interned body, computing its cost. The
    /// name may be a `&'static str` (free) or an owned `String` (runtime
    /// models loaded from text).
    pub fn axiom(
        &mut self,
        name: impl Into<std::borrow::Cow<'static, str>>,
        head: AxiomHead,
        body: RelId,
    ) -> Axiom {
        let head_cost = match head {
            AxiomHead::Acyclic => 3,
            AxiomHead::Irreflexive | AxiomHead::Empty => 1,
        };
        Axiom {
            name: name.into(),
            head,
            body,
            cost: self.rel_cost(body) + head_cost,
        }
    }
}

/// Per-execution memo table for one pool's expressions, hosted on an
/// [`ExecView`] so that every axiom of every model checking that execution
/// shares it.
#[derive(Debug)]
pub struct IrMemo {
    stamp: u64,
    rels: Box<[OnceCell<Relation>]>,
    sets: Box<[OnceCell<ElemSet>]>,
}

impl IrMemo {
    pub(crate) fn new(stamp: u64, rel_count: usize, set_count: usize) -> IrMemo {
        IrMemo {
            stamp,
            rels: (0..rel_count).map(|_| OnceCell::new()).collect(),
            sets: (0..set_count).map(|_| OnceCell::new()).collect(),
        }
    }

    pub(crate) fn fits(&self, stamp: u64, rel_count: usize, set_count: usize) -> bool {
        self.stamp == stamp && self.rels.len() >= rel_count && self.sets.len() >= set_count
    }
}

enum Slots<'a> {
    /// The view's per-execution memo: shared with every other evaluator of
    /// the same pool on the same view (cross-axiom and cross-model CSE).
    Shared(&'a IrMemo),
    /// A private memo: used on uncached views (which promise to recompute)
    /// and when a different pool already claimed the view's memo.
    Local(IrMemo),
}

/// An evaluator of interned expressions against one [`ExecView`].
///
/// Each node's value is computed at most once per execution (see [`IrMemo`]);
/// base nodes delegate to the view's own memoized getters. The evaluator is
/// cheap to construct, so model checks build one per check call and still
/// share all node values through the view.
pub struct IrEval<'a> {
    pool: &'a IrPool,
    view: &'a ExecView<'a>,
    slots: Slots<'a>,
}

impl<'a> IrEval<'a> {
    /// Creates an evaluator for `pool` over `view`.
    pub fn new(pool: &'a IrPool, view: &'a ExecView<'a>) -> IrEval<'a> {
        let slots = match view.ir_memo(pool.stamp(), pool.rel_count(), pool.set_count()) {
            Some(memo) => Slots::Shared(memo),
            None => Slots::Local(IrMemo::new(
                pool.stamp(),
                pool.rel_count(),
                pool.set_count(),
            )),
        };
        IrEval { pool, view, slots }
    }

    /// The view this evaluator reads base relations from.
    pub fn view(&self) -> &'a ExecView<'a> {
        self.view
    }

    fn rel_slot(&self, id: RelId) -> &OnceCell<Relation> {
        match &self.slots {
            Slots::Shared(memo) => &memo.rels[id.index()],
            Slots::Local(memo) => &memo.rels[id.index()],
        }
    }

    fn set_slot(&self, id: SetId) -> &OnceCell<ElemSet> {
        match &self.slots {
            Slots::Shared(memo) => &memo.sets[id.index()],
            Slots::Local(memo) => &memo.sets[id.index()],
        }
    }

    /// The value of a set expression.
    pub fn set(&self, id: SetId) -> std::borrow::Cow<'_, ElemSet> {
        use std::borrow::Cow;
        match self.pool.set_expr(id) {
            SetExpr::Base(base) => match base {
                SetBase::Reads => self.view.reads(),
                SetBase::Writes => self.view.writes(),
                SetBase::Fences => self.view.fences(),
                SetBase::Acquires => self.view.acquires(),
                SetBase::Releases => self.view.releases(),
                SetBase::ScEvents => self.view.sc_events(),
                SetBase::Atomics => self.view.atomics(),
                SetBase::FencesOf(kind) => self.view.fences_of(kind),
                SetBase::RmwDomain => Cow::Borrowed(
                    self.set_slot(id)
                        .get_or_init(|| self.view.exec().rmw.domain()),
                ),
                SetBase::RmwRange => Cow::Borrowed(
                    self.set_slot(id)
                        .get_or_init(|| self.view.exec().rmw.range()),
                ),
            },
            _ => Cow::Borrowed(self.set_slot(id).get_or_init(|| self.compute_set(id))),
        }
    }

    fn compute_set(&self, id: SetId) -> ElemSet {
        match self.pool.set_expr(id) {
            SetExpr::Base(_) => unreachable!("base sets are served by the view"),
            SetExpr::Union(a, b) => self.set(a).union(&self.set(b)),
            SetExpr::Inter(a, b) => self.set(a).intersection(&self.set(b)),
        }
    }

    /// The value of a relation expression.
    pub fn rel(&self, id: RelId) -> std::borrow::Cow<'_, Relation> {
        use std::borrow::Cow;
        match self.pool.rel_expr(id) {
            RelExpr::Base(base) => self.base_rel(base),
            _ => Cow::Borrowed(self.rel_slot(id).get_or_init(|| self.compute_rel(id))),
        }
    }

    fn base_rel(&self, base: RelBase) -> std::borrow::Cow<'_, Relation> {
        use std::borrow::Cow;
        let exec = self.view.exec();
        match base {
            RelBase::Po => Cow::Borrowed(self.view.po()),
            RelBase::Rf => Cow::Borrowed(self.view.rf()),
            RelBase::Co => Cow::Borrowed(self.view.co()),
            RelBase::Addr => Cow::Borrowed(&exec.addr),
            RelBase::Data => Cow::Borrowed(&exec.data),
            RelBase::Ctrl => Cow::Borrowed(&exec.ctrl),
            RelBase::Rmw => Cow::Borrowed(&exec.rmw),
            RelBase::Stxn => Cow::Borrowed(&exec.stxn),
            RelBase::Stxnat => Cow::Borrowed(&exec.stxnat),
            RelBase::Scr => Cow::Borrowed(&exec.scr),
            RelBase::Sloc => self.view.sloc(),
            RelBase::Poloc => self.view.poloc(),
            RelBase::PoDiffLoc => self.view.po_diff_loc(),
            RelBase::Fr => self.view.fr(),
            RelBase::Rfe => self.view.rfe(),
            RelBase::Rfi => self.view.rfi(),
            RelBase::Coe => self.view.coe(),
            RelBase::Fre => self.view.fre(),
            RelBase::Com => self.view.com(),
            RelBase::Come => self.view.come(),
            RelBase::Ecom => self.view.ecom(),
            RelBase::Cnf => self.view.cnf(),
            RelBase::Tfence => self.view.tfence(),
            RelBase::FenceRel(kind) => self.view.fence_rel(kind),
        }
    }

    fn compute_rel(&self, id: RelId) -> Relation {
        match self.pool.rel_expr(id) {
            RelExpr::Base(_) => unreachable!("base relations are served by the view"),
            RelExpr::IdOn(s) => Relation::identity_on(&self.set(s)),
            RelExpr::Cross(a, b) => Relation::cross(&self.set(a), &self.set(b)),
            RelExpr::Seq(a, b) => self.rel(a).compose(&self.rel(b)),
            RelExpr::Union(a, b) => {
                let mut out = self.rel(a).into_owned();
                out.union_in_place(&self.rel(b));
                out
            }
            RelExpr::Inter(a, b) => {
                let mut out = self.rel(a).into_owned();
                out.intersect_in_place(&self.rel(b));
                out
            }
            RelExpr::Diff(a, b) => {
                let mut out = self.rel(a).into_owned();
                out.difference_in_place(&self.rel(b));
                out
            }
            RelExpr::Inverse(a) => self.rel(a).inverse(),
            RelExpr::Opt(a) => self.rel(a).reflexive_closure(),
            RelExpr::Plus(a) => {
                let mut out = self.rel(a).into_owned();
                out.transitive_closure_in_place();
                out
            }
            RelExpr::Star(a) => {
                let mut out = self.rel(a).into_owned();
                out.transitive_closure_in_place();
                for e in 0..out.universe() {
                    out.insert(e, e);
                }
                out
            }
            RelExpr::WeakLift(a, t) => Execution::weaklift(&self.rel(a), &self.rel(t)),
            RelExpr::StrongLift(a, t) => Execution::stronglift(&self.rel(a), &self.rel(t)),
            RelExpr::Var(_) => {
                panic!("free recursion variable evaluated outside its fixpoint group")
            }
            RelExpr::Fix(g, i) => self.fix_rel(g, i, &HashMap::new()),
        }
    }

    /// Component `i` of fixpoint group `g` by naive Kleene iteration: every
    /// component starts at the empty relation and the bodies are re-evaluated
    /// under the growing environment until nothing changes. The universe is
    /// finite and the elaborator guarantees positivity, so the iterates
    /// ascend and converge.
    fn fix_rel(&self, g: u32, i: u32, outer: &HashMap<u32, Relation>) -> Relation {
        let vars = self.pool.fix_vars(g);
        let bodies = self.pool.fix_bodies(g);
        let n = self.view.exec().len();
        let mut env = outer.clone();
        for &v in vars {
            env.insert(v, Relation::new(n));
        }
        loop {
            let next: Vec<Relation> = bodies.iter().map(|&b| self.rel_with_env(b, &env)).collect();
            let stable = vars.iter().zip(&next).all(|(v, value)| env[v] == *value);
            for (v, value) in vars.iter().zip(next) {
                env.insert(*v, value);
            }
            if stable {
                return env.remove(&vars[i as usize]).unwrap();
            }
        }
    }

    /// Evaluates a node under an environment for its free recursion
    /// variables. Var-free subtrees fall back to the memoized [`rel`] path,
    /// so only the spine actually touching the variables is re-evaluated
    /// per Kleene round.
    fn rel_with_env(&self, id: RelId, env: &HashMap<u32, Relation>) -> Relation {
        if self.pool.rel_free_vars(id).is_empty() {
            return self.rel(id).into_owned();
        }
        let r = |x: RelId| self.rel_with_env(x, env);
        match self.pool.rel_expr(id) {
            RelExpr::Var(v) => env
                .get(&v)
                .expect("free recursion variable outside its fixpoint group")
                .clone(),
            RelExpr::Fix(g, i) => self.fix_rel(g, i, env),
            RelExpr::Base(_) | RelExpr::IdOn(_) | RelExpr::Cross(_, _) => {
                unreachable!("leaf nodes have no free variables")
            }
            RelExpr::Seq(a, b) => r(a).compose(&r(b)),
            RelExpr::Union(a, b) => {
                let mut out = r(a);
                out.union_in_place(&r(b));
                out
            }
            RelExpr::Inter(a, b) => {
                let mut out = r(a);
                out.intersect_in_place(&r(b));
                out
            }
            RelExpr::Diff(a, b) => {
                let mut out = r(a);
                out.difference_in_place(&r(b));
                out
            }
            RelExpr::Inverse(a) => r(a).inverse(),
            RelExpr::Opt(a) => r(a).reflexive_closure(),
            RelExpr::Plus(a) => {
                let mut out = r(a);
                out.transitive_closure_in_place();
                out
            }
            RelExpr::Star(a) => {
                let mut out = r(a);
                out.transitive_closure_in_place();
                for e in 0..out.universe() {
                    out.insert(e, e);
                }
                out
            }
            RelExpr::WeakLift(a, t) => Execution::weaklift(&r(a), &r(t)),
            RelExpr::StrongLift(a, t) => Execution::stronglift(&r(a), &r(t)),
        }
    }

    /// True if the axiom holds on this execution. Does not extract a witness,
    /// so this is the fast path for early-exit sweeps.
    pub fn holds(&self, axiom: &Axiom) -> bool {
        let body = self.rel(axiom.body);
        match axiom.head {
            AxiomHead::Acyclic => body.is_acyclic(),
            AxiomHead::Irreflexive => body.is_irreflexive(),
            AxiomHead::Empty => body.is_empty(),
        }
    }

    /// A witness of the axiom's violation (`None` if it holds): a cycle for
    /// `acyclic`, a fixed point for `irreflexive`, the first pair for
    /// `empty` — matching what the hand-written checks used to report.
    pub fn witness(&self, axiom: &Axiom) -> Option<Vec<usize>> {
        let body = self.rel(axiom.body);
        match axiom.head {
            AxiomHead::Acyclic => body.find_cycle(),
            AxiomHead::Irreflexive => (0..body.universe())
                .find(|&a| body.contains(a, a))
                .map(|a| vec![a]),
            AxiomHead::Empty => body.iter().next().map(|(a, b)| vec![a, b]),
        }
    }
}

// ---- polarity analysis ----------------------------------------------------

/// The syntactic polarity of a base relation's occurrences in an expression.
///
/// If growing the base relation can only grow the expression's value the
/// polarity is [`Positive`](Polarity::Positive); if it can only shrink it,
/// [`Negative`](Polarity::Negative); occurrences under both signs are
/// [`Mixed`](Polarity::Mixed), and no occurrence at all is
/// [`Constant`](Polarity::Constant).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Polarity {
    /// The expression does not depend on the base relation.
    Constant,
    /// Monotonically non-decreasing in the base relation.
    Positive,
    /// Monotonically non-increasing in the base relation.
    Negative,
    /// Occurs under both signs; no monotonicity conclusion is possible.
    Mixed,
}

impl Polarity {
    /// Least upper bound in the lattice `Constant < {Positive, Negative} < Mixed`.
    pub fn join(self, other: Polarity) -> Polarity {
        use Polarity::*;
        match (self, other) {
            (Constant, p) | (p, Constant) => p,
            (Positive, Positive) => Positive,
            (Negative, Negative) => Negative,
            _ => Mixed,
        }
    }

    /// Flips the sign (under a difference's right operand).
    pub fn negate(self) -> Polarity {
        match self {
            Polarity::Positive => Polarity::Negative,
            Polarity::Negative => Polarity::Positive,
            p => p,
        }
    }
}

/// The polarity of a set expression with respect to the base relations
/// classified by `of`: almost every base set is an event-kind predicate and
/// thus constant, but `RmwDomain`/`RmwRange` are derived from the `rmw`
/// relation (monotonically — growing `rmw` grows both projections), and set
/// union/intersection are monotone in each operand.
pub fn set_polarity(pool: &IrPool, id: SetId, of: &impl Fn(RelBase) -> Polarity) -> Polarity {
    match pool.set_expr(id) {
        SetExpr::Base(SetBase::RmwDomain | SetBase::RmwRange) => of(RelBase::Rmw),
        SetExpr::Base(_) => Polarity::Constant,
        SetExpr::Union(a, b) | SetExpr::Inter(a, b) => {
            set_polarity(pool, a, of).join(set_polarity(pool, b, of))
        }
    }
}

/// Computes the syntactic polarity of `id` with respect to the base
/// relations classified by `of`.
///
/// Every operator of the IR except difference is monotone in each operand,
/// so polarities join; the right operand of `\` is negated. `IdOn`/`Cross`
/// take the polarity of their sets (see [`set_polarity`] — event-kind sets
/// are constant, but the RMW projections track `rmw`).
pub fn rel_polarity(pool: &IrPool, id: RelId, of: &impl Fn(RelBase) -> Polarity) -> Polarity {
    match pool.rel_expr(id) {
        RelExpr::Base(base) => of(base),
        RelExpr::IdOn(s) => set_polarity(pool, s, of),
        RelExpr::Cross(a, b) => set_polarity(pool, a, of).join(set_polarity(pool, b, of)),
        RelExpr::Seq(a, b) | RelExpr::Union(a, b) | RelExpr::Inter(a, b) => {
            rel_polarity(pool, a, of).join(rel_polarity(pool, b, of))
        }
        RelExpr::Diff(a, b) => rel_polarity(pool, a, of).join(rel_polarity(pool, b, of).negate()),
        RelExpr::Inverse(a) | RelExpr::Opt(a) | RelExpr::Plus(a) | RelExpr::Star(a) => {
            rel_polarity(pool, a, of)
        }
        // lift(r, t) = t⟨?⟩ ; (r \ t) ; t⟨?⟩ — t occurs both positively
        // (the outer compositions) and negatively (the difference).
        RelExpr::WeakLift(a, t) | RelExpr::StrongLift(a, t) => {
            let pt = rel_polarity(pool, t, of);
            rel_polarity(pool, a, of).join(pt).join(pt.negate())
        }
        // A recursion variable carries no base relation.
        RelExpr::Var(_) => Polarity::Constant,
        // The fixpoint joins its bodies' polarities (the bound variables
        // themselves are positive by stratification, so they add nothing).
        RelExpr::Fix(g, _) => pool.fix_bodies(g).iter().fold(Polarity::Constant, |p, &b| {
            p.join(rel_polarity(pool, b, of))
        }),
    }
}

/// The syntactic polarity of recursion variable `v` in `id` — the
/// stratification check behind `let rec`: a body must be `Constant` or
/// `Positive` in every variable of its group for Kleene iteration to be
/// monotone (and the least fixpoint to exist).
pub fn var_polarity(pool: &IrPool, id: RelId, v: u32) -> Polarity {
    // A node whose free variables exclude `v` is constant in it — this also
    // covers Fix nodes that rebind `v` (impossible today: variables are
    // pool-unique, but cheap to keep correct).
    if !pool.rel_free_vars(id).contains(&v) {
        return Polarity::Constant;
    }
    match pool.rel_expr(id) {
        RelExpr::Var(w) => {
            if w == v {
                Polarity::Positive
            } else {
                Polarity::Constant
            }
        }
        RelExpr::Base(_) | RelExpr::IdOn(_) | RelExpr::Cross(_, _) => Polarity::Constant,
        RelExpr::Seq(a, b) | RelExpr::Union(a, b) | RelExpr::Inter(a, b) => {
            var_polarity(pool, a, v).join(var_polarity(pool, b, v))
        }
        RelExpr::Diff(a, b) => var_polarity(pool, a, v).join(var_polarity(pool, b, v).negate()),
        RelExpr::Inverse(a) | RelExpr::Opt(a) | RelExpr::Plus(a) | RelExpr::Star(a) => {
            var_polarity(pool, a, v)
        }
        RelExpr::WeakLift(a, t) | RelExpr::StrongLift(a, t) => {
            let pt = var_polarity(pool, t, v);
            var_polarity(pool, a, v).join(pt).join(pt.negate())
        }
        RelExpr::Fix(g, _) => pool
            .fix_bodies(g)
            .iter()
            .fold(Polarity::Constant, |p, &b| p.join(var_polarity(pool, b, v))),
    }
}

/// The polarity of `id` in the *transactional structure* of an execution:
/// `stxn`/`stxnat` count positively, and `tfence` — whose definition
/// `po ∩ ((¬stxn ; stxn) ∪ (stxn ; ¬stxn))` mentions `stxn` under both
/// signs — counts as mixed.
///
/// If every axiom body of a model is `Constant` or `Positive` here, shrinking
/// the transactions of an execution shrinks every axiom body, so a consistent
/// execution stays consistent under every transaction reduction: §8.1
/// monotonicity holds *by construction*. `Mixed` is inconclusive (the model
/// may still be monotone, as x86 is), never wrong.
pub fn txn_polarity(pool: &IrPool, id: RelId) -> Polarity {
    rel_polarity(pool, id, &|base| match base {
        RelBase::Stxn | RelBase::Stxnat => Polarity::Positive,
        RelBase::Tfence => Polarity::Mixed,
        _ => Polarity::Constant,
    })
}

// ---- incremental evaluation ------------------------------------------------

/// A bitmask over the *mutable inputs* of an execution: the primitive
/// relations an enumerator edits between sibling candidates (`po`, `rf`,
/// `co`, the dependency relations, `rmw`, and the transaction/region
/// memberships).
///
/// Every interned expression node carries a **dependency footprint** — the
/// mask of inputs its value transitively reads — computed once per pool by
/// [`IncrementalEval::new`]. Applying a [`Delta`] then touches only the
/// nodes whose footprint intersects the delta's mask; everything else keeps
/// its cached value across sibling candidates in the enumeration tree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct DeltaMask(u16);

impl DeltaMask {
    /// The empty mask: nothing changed.
    pub const NONE: DeltaMask = DeltaMask(0);
    /// Program order changed.
    pub const PO: DeltaMask = DeltaMask(1 << 0);
    /// Reads-from changed.
    pub const RF: DeltaMask = DeltaMask(1 << 1);
    /// Coherence changed.
    pub const CO: DeltaMask = DeltaMask(1 << 2);
    /// Address dependencies changed.
    pub const ADDR: DeltaMask = DeltaMask(1 << 3);
    /// Data dependencies changed.
    pub const DATA: DeltaMask = DeltaMask(1 << 4);
    /// Control dependencies changed.
    pub const CTRL: DeltaMask = DeltaMask(1 << 5);
    /// The RMW pairing changed.
    pub const RMW: DeltaMask = DeltaMask(1 << 6);
    /// Successful-transaction membership changed.
    pub const STXN: DeltaMask = DeltaMask(1 << 7);
    /// Atomic-transaction membership changed.
    pub const STXNAT: DeltaMask = DeltaMask(1 << 8);
    /// Critical-region membership changed.
    pub const SCR: DeltaMask = DeltaMask(1 << 9);
    /// Event annotations changed (the ⊏ downgrade step of §4.2 edits the
    /// acquire/release/sc/atomic flags in place, which moves events between
    /// the `Acq`/`Rel`/`SC`/`Ato` base sets).
    pub const ANNOT: DeltaMask = DeltaMask(1 << 10);
    /// Every input changed.
    pub const ALL: DeltaMask = DeltaMask((1 << 11) - 1);

    /// True if no input is in the mask.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if the two masks share an input.
    pub fn intersects(self, other: DeltaMask) -> bool {
        self.0 & other.0 != 0
    }

    /// The mutable input a *primitive* base relation reads, or `None` for
    /// the derived bases (whose footprints combine several inputs).
    pub fn of_primitive(base: RelBase) -> Option<DeltaMask> {
        match base {
            RelBase::Po => Some(DeltaMask::PO),
            RelBase::Rf => Some(DeltaMask::RF),
            RelBase::Co => Some(DeltaMask::CO),
            RelBase::Addr => Some(DeltaMask::ADDR),
            RelBase::Data => Some(DeltaMask::DATA),
            RelBase::Ctrl => Some(DeltaMask::CTRL),
            RelBase::Rmw => Some(DeltaMask::RMW),
            RelBase::Stxn => Some(DeltaMask::STXN),
            RelBase::Stxnat => Some(DeltaMask::STXNAT),
            RelBase::Scr => Some(DeltaMask::SCR),
            _ => None,
        }
    }
}

impl std::ops::BitOr for DeltaMask {
    type Output = DeltaMask;
    fn bitor(self, rhs: DeltaMask) -> DeltaMask {
        DeltaMask(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for DeltaMask {
    fn bitor_assign(&mut self, rhs: DeltaMask) {
        self.0 |= rhs.0;
    }
}

/// The footprint of a base relation, split by sign: `(positive, negative)`.
///
/// An input in the positive mask only grows the base monotonically, so its
/// pair-level delta is the base's own delta (filtered, for the derived
/// bases). An input in the negative mask (which also covers mixed
/// occurrences — e.g. `stxn` in `tfence`, or `rf`/`co` in `fr`, which this
/// crate defines by *subtracting* a growing exclusion set) means the base
/// is re-read from the execution and diffed when that input changes; the
/// exact diff then maintains every dependent node all the same.
fn base_masks(base: RelBase) -> (DeltaMask, DeltaMask) {
    use RelBase::*;
    let rfco = DeltaMask::RF | DeltaMask::CO;
    match base {
        Po | Poloc | PoDiffLoc | FenceRel(_) => (DeltaMask::PO, DeltaMask::NONE),
        Rf | Rfe | Rfi => (DeltaMask::RF, DeltaMask::NONE),
        Co | Coe => (DeltaMask::CO, DeltaMask::NONE),
        Addr => (DeltaMask::ADDR, DeltaMask::NONE),
        Data => (DeltaMask::DATA, DeltaMask::NONE),
        Ctrl => (DeltaMask::CTRL, DeltaMask::NONE),
        Rmw => (DeltaMask::RMW, DeltaMask::NONE),
        Stxn => (DeltaMask::STXN, DeltaMask::NONE),
        Stxnat => (DeltaMask::STXNAT, DeltaMask::NONE),
        Scr => (DeltaMask::SCR, DeltaMask::NONE),
        // Event-kind structure only: constant while the shape is fixed.
        Sloc | Cnf => (DeltaMask::NONE, DeltaMask::NONE),
        // fr subtracts an exclusion set that grows with rf and co, so it can
        // only *shrink* under additions; everything built on it is tainted.
        Fr | Fre => (DeltaMask::NONE, rfco),
        Com | Come | Ecom => (rfco, rfco),
        // tfence = po ∩ ((¬stxn ; stxn) ∪ (stxn ; ¬stxn)): mixed in stxn.
        Tfence => (DeltaMask::PO | DeltaMask::STXN, DeltaMask::STXN),
    }
}

fn set_base_masks(base: SetBase) -> (DeltaMask, DeltaMask) {
    match base {
        SetBase::RmwDomain | SetBase::RmwRange => (DeltaMask::RMW, DeltaMask::NONE),
        // Annotation flags move events in and out of these sets. Annotation
        // edits carry no pair-level record, but base sets are re-read from
        // the execution and diffed, which is exact in both directions — so
        // these stay positive-only and their dependents stay on the
        // maintained path under downgrade probes.
        SetBase::Acquires | SetBase::Releases | SetBase::ScEvents | SetBase::Atomics => {
            (DeltaMask::ANNOT, DeltaMask::NONE)
        }
        _ => (DeltaMask::NONE, DeltaMask::NONE),
    }
}

/// A record of edits applied to an execution since the last
/// [`IncrementalEval::apply`], built through the `add_edge`/`remove_edge`
/// hooks as the enumerator (or a ⊏-weakening probe) mutates the execution
/// in place.
///
/// Both additions **and removals** are recorded pair by pair, so the
/// evaluator can maintain every affected node exactly — growing and
/// shrinking cached values in place — rather than invalidating by
/// footprint. A *full* delta announces a brand-new execution (every cache
/// is dropped), a *coarse* delta ([`Delta::touch`]) marks input families
/// without pair detail (affected base relations are re-read from the
/// execution and diffed), and [`Delta::touch_annots`] records in-place
/// event-annotation edits (which have no pair representation at all).
///
/// Edits must describe **true membership transitions**: record `add_edge`
/// only for pairs that were absent and `remove_edge` only for pairs that
/// were present. A pair may be edited several times in one delta (the
/// odometer walk removes and re-adds); the *net* effect is what propagates.
#[derive(Clone, Debug)]
pub struct Delta {
    mask: DeltaMask,
    additions_only: bool,
    full: bool,
    coarse: bool,
    edits: Vec<(RelBase, u32, u32, bool)>,
}

impl Default for Delta {
    fn default() -> Delta {
        Delta::new()
    }
}

impl Delta {
    /// An empty delta: nothing changed yet.
    pub fn new() -> Delta {
        Delta {
            mask: DeltaMask::NONE,
            additions_only: true,
            full: false,
            coarse: false,
            edits: Vec::new(),
        }
    }

    /// The delta that invalidates everything — used when a new execution
    /// replaces the previous one (new shape vector, new universe).
    pub fn everything() -> Delta {
        Delta {
            mask: DeltaMask::ALL,
            additions_only: false,
            full: true,
            coarse: true,
            edits: Vec::new(),
        }
    }

    /// Forgets all recorded edits (after the consumer has applied them).
    pub fn clear(&mut self) {
        self.mask = DeltaMask::NONE;
        self.additions_only = true;
        self.full = false;
        self.coarse = false;
        self.edits.clear();
    }

    /// Records the addition of pair `(a, b)` to a primitive base relation.
    ///
    /// # Panics
    ///
    /// Panics if `base` is a derived relation — only the primitives stored
    /// on the [`Execution`] can be edited directly.
    pub fn add_edge(&mut self, base: RelBase, a: usize, b: usize) {
        let mask = DeltaMask::of_primitive(base)
            .unwrap_or_else(|| panic!("{base:?} is derived, not an editable input"));
        self.mask |= mask;
        self.edits.push((base, a as u32, b as u32, true));
    }

    /// Records the removal of pair `(a, b)` from a primitive base relation.
    ///
    /// Removals are maintained exactly, like additions: counting-based
    /// deletion through joins, DRed-style rederivation through closures.
    ///
    /// # Panics
    ///
    /// Panics if `base` is a derived relation.
    pub fn remove_edge(&mut self, base: RelBase, a: usize, b: usize) {
        let mask = DeltaMask::of_primitive(base)
            .unwrap_or_else(|| panic!("{base:?} is derived, not an editable input"));
        self.mask |= mask;
        self.additions_only = false;
        self.edits.push((base, a as u32, b as u32, false));
    }

    /// Marks whole input families as changed without pair-level detail.
    /// Affected base relations are re-read from the execution and diffed
    /// against their cached values; derived nodes are then maintained from
    /// the resulting exact deltas as usual.
    pub fn touch(&mut self, mask: DeltaMask) {
        self.mask |= mask;
        self.additions_only = false;
        self.coarse = true;
    }

    /// Records that event annotations changed in place (the ⊏ downgrade
    /// step). The annotation-derived base sets (`Acq`, `Rel`, `SC`, `Ato`)
    /// are re-read from the execution and diffed.
    pub fn touch_annots(&mut self) {
        self.mask |= DeltaMask::ANNOT;
        self.additions_only = false;
    }

    /// The inputs this delta touches.
    pub fn mask(&self) -> DeltaMask {
        self.mask
    }

    /// True if no edit has been recorded.
    pub fn is_empty(&self) -> bool {
        self.mask.is_empty() && !self.full
    }

    /// True if every recorded edit was an addition.
    pub fn is_additions_only(&self) -> bool {
        self.additions_only
    }

    /// True if this delta replaces the execution wholesale.
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// True if [`Delta::touch`] marked a family without pair detail.
    pub fn is_coarse(&self) -> bool {
        self.coarse
    }

    /// The net added and removed pairs of one primitive family, as
    /// relations over `universe`. Replays the edit log in order, so a pair
    /// removed and later re-added nets out.
    fn net_relations(&self, family: RelBase, universe: usize) -> (Relation, Relation) {
        let mut add = Relation::new(universe);
        let mut del = Relation::new(universe);
        for &(base, a, b, added) in &self.edits {
            if base != family {
                continue;
            }
            let (a, b) = (a as usize, b as usize);
            if added {
                add.insert(a, b);
                del.remove(a, b);
            } else {
                del.insert(a, b);
                add.remove(a, b);
            }
        }
        (add, del)
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct HeadCache {
    acyclic: Option<bool>,
    irreflexive: Option<bool>,
    empty: Option<bool>,
}

impl HeadCache {
    /// All three head predicates are anti-monotone in the body: growing the
    /// body can only *break* them, shrinking it can only *repair* them. A
    /// cached verdict therefore survives a grow-only delta if it was `false`
    /// and a shrink-only delta if it was `true`; mixed deltas clear it.
    fn refine(&mut self, grew: bool, shrank: bool) {
        let keep = |v: &mut Option<bool>| {
            *v = match *v {
                Some(false) if !shrank => Some(false),
                Some(true) if !grew => Some(true),
                _ => None,
            };
        };
        keep(&mut self.acyclic);
        keep(&mut self.irreflexive);
        keep(&mut self.empty);
    }
}

/// Counters describing how [`IncrementalEval::apply`] absorbed its deltas;
/// read them with [`IncrementalEval::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Derived nodes whose cached value was grown/shrunk *in place* by an
    /// exact delta rule (semi-naïve addition, counting-based deletion
    /// through joins, DRed rederivation through closures).
    pub maintained: u64,
    /// Base nodes re-read from the execution and diffed against their
    /// cached value (the monotone derived bases such as `rfe`, primitives
    /// under coarse deltas, and the `rmw` projections).
    pub rebased: u64,
    /// Nodes *non-monotone* in a changed input (and their dependents)
    /// dropped for lazy recomputation on next use — the deliberate lazy
    /// path, not a fallback: early-exit consistency sweeps never pay for
    /// bodies they do not query.
    pub dropped: u64,
    /// *Maintainable* monotone nodes (every input monotone under the
    /// delta, every child valued) dropped without maintenance — the
    /// footprint-invalidation fallback removals used to force. Zero since
    /// counting-based deletion; the parity tests pin it at zero over whole
    /// enumeration sweeps.
    pub invalidated: u64,
    /// Full resets (a brand-new execution or a universe change).
    pub resets: u64,
    /// `Fix` nodes dropped for lazy re-iteration because a delta touched
    /// their footprint. Fixpoints have no exact maintenance rule — they ride
    /// the footprint-invalidation fallback path by design, and this counter
    /// (not `dropped`) records it.
    pub fix_reevals: u64,
    /// Axiom verdict queries answered by [`IncrementalEval::holds`] —
    /// cache hits and full evaluations together.
    pub axiom_queries: u64,
    /// The subset of `axiom_queries` answered from the per-`(body, head)`
    /// verdict cache without touching the body relation.
    pub axiom_cache_hits: u64,
}

impl MaintenanceStats {
    /// Folds `other` into `self`, field by field — the rollup the sweep
    /// report aggregates across work units.
    pub fn merge(&mut self, other: MaintenanceStats) {
        self.maintained += other.maintained;
        self.rebased += other.rebased;
        self.dropped += other.dropped;
        self.invalidated += other.invalidated;
        self.resets += other.resets;
        self.fix_reevals += other.fix_reevals;
        self.axiom_queries += other.axiom_queries;
        self.axiom_cache_hits += other.axiom_cache_hits;
    }
}

/// How one node fared during a propagation pass: untouched, edited with the
/// exact pairs that appeared and disappeared, or holding no cached value.
enum Shift<T> {
    /// Value unchanged (footprint disjoint, or the edits cancelled out).
    Clean,
    /// Value updated in place; `add`/`del` are exactly `new \ old` and
    /// `old \ new`.
    Edited { add: T, del: T },
    /// No cached value: the node stays lazy (parents cannot hold values
    /// either, so nothing consumes this).
    Missing,
}

/// One relation node's journalled state: value, head verdicts, supports.
type SavedRel = (usize, Option<Relation>, HeadCache, Option<Box<[u32]>>);

/// The per-node state a savepoint journal captures on first touch.
struct Journal {
    universe: usize,
    rel_saved: Vec<bool>,
    set_saved: Vec<bool>,
    rels: Vec<SavedRel>,
    sets: Vec<(usize, Option<ElemSet>)>,
}

/// The outcome of maintaining one relation node under a delta.
struct RelUpdate {
    new: Relation,
    add: Relation,
    del: Relation,
    /// Updated support counts, for `Seq` nodes whose counting table was
    /// built or advanced by this delta.
    counts: Option<Box<[u32]>>,
    /// The node was re-read from the execution rather than delta-maintained
    /// (derived bases, coarse touches).
    rebased: bool,
}

/// A *stateful* evaluator of interned expressions that survives across the
/// candidates of an enumeration sweep — the incremental sibling of the
/// per-execution [`IrEval`].
///
/// Where [`IrEval`] memoizes within one execution and is discarded with its
/// [`ExecView`], an `IncrementalEval` keeps every node value alive and is
/// told *what changed* between candidates through [`Delta`]s:
///
/// * nodes whose dependency footprint is disjoint from the delta keep their
///   cached values (and cached head verdicts) untouched;
/// * every other node holding a value is **maintained in place** with an
///   *exact* delta (`add = new \ old`, `del = old \ new`) derived from its
///   children's deltas: additions flow through the semi-naïve rules
///   (`Δ(a ∪ b) = Δa ∪ Δb`, `Δ(a ; b) = Δa;b ∪ a;Δb`,
///   `Δ(a⁺) = (a⁺? ; Δa ; a⁺?)⁺`, …), removals through **counting-based
///   deletion** — `;` nodes keep a per-pair support count of join witnesses,
///   decremented as pairs disappear — and through **DRed-style
///   rederivation** for the closures (over-delete everything a removed pair
///   could have derived, then rederive from what survives);
/// * base relations the view derives non-monotonically (`fr`, `tfence`, the
///   annotation sets, …) are re-read from the mutated execution and diffed,
///   so even their dependents stay maintained rather than invalidated;
/// * head verdicts survive one-sided deltas: every head predicate is
///   anti-monotone in its body, so a `false` survives grow-only and a
///   `true` survives shrink-only deltas.
///
/// A [`savepoint`](IncrementalEval::savepoint)/[`rollback`](IncrementalEval::rollback)
/// journal snapshots each node's state on first touch, so a caller can
/// probe a delta (a ⊏-weakening of the current candidate, say) and undo it
/// in O(touched nodes).
///
/// The caller owns the evolving [`Execution`] and must mutate it *before*
/// applying the matching delta; `tm_synth`'s incremental enumeration drives
/// exactly this protocol.
pub struct IncrementalEval<'p> {
    pool: &'p IrPool,
    universe: usize,
    rel_vals: Vec<Option<Relation>>,
    set_vals: Vec<Option<ElemSet>>,
    heads: Vec<HeadCache>,
    /// Per-pair join-witness counts for `Seq` nodes, built lazily the first
    /// time a node is maintained and kept in lock-step with its value.
    seq_counts: Vec<Option<Box<[u32]>>>,
    rel_pos: Vec<DeltaMask>,
    rel_neg: Vec<DeltaMask>,
    set_neg: Vec<DeltaMask>,
    /// For each [`DeltaMask`] input bit, the relation/set nodes whose
    /// footprint contains it (ascending) — a delta visits the union of its
    /// bits' lists instead of scanning the whole pool.
    rel_touched_by: Vec<Vec<u32>>,
    set_touched_by: Vec<Vec<u32>>,
    /// Per-node delta records for the current propagation epoch. Stamps
    /// avoid clearing the arrays between deltas: a stale entry reads as
    /// [`Shift::Clean`].
    rel_shift: Vec<Shift<Relation>>,
    set_shift: Vec<Shift<ElemSet>>,
    rel_shift_epoch: Vec<u64>,
    set_shift_epoch: Vec<u64>,
    epoch: u64,
    scratch_ids: Vec<u32>,
    journal: Option<Journal>,
    stats: MaintenanceStats,
}

/// The number of distinct [`DeltaMask`] input bits.
const MASK_BITS: usize = 11;

impl<'p> IncrementalEval<'p> {
    /// Creates an evaluator for `pool`, computing every node's dependency
    /// footprint bottom-up (children are always interned before parents, so
    /// one ascending pass suffices).
    pub fn new(pool: &'p IrPool) -> IncrementalEval<'p> {
        let mut set_pos = Vec::with_capacity(pool.set_count());
        let mut set_neg = Vec::with_capacity(pool.set_count());
        for i in 0..pool.set_count() {
            let (p, n) = match pool.set_expr(SetId(i as u32)) {
                SetExpr::Base(b) => set_base_masks(b),
                SetExpr::Union(a, b) | SetExpr::Inter(a, b) => (
                    set_pos[a.index()] | set_pos[b.index()],
                    set_neg[a.index()] | set_neg[b.index()],
                ),
            };
            set_pos.push(p);
            set_neg.push(n);
        }
        let mut rel_pos: Vec<DeltaMask> = Vec::with_capacity(pool.rel_count());
        let mut rel_neg: Vec<DeltaMask> = Vec::with_capacity(pool.rel_count());
        for i in 0..pool.rel_count() {
            let (p, n) = match pool.rel_expr(RelId(i as u32)) {
                RelExpr::Base(b) => base_masks(b),
                RelExpr::IdOn(s) => (set_pos[s.index()], set_neg[s.index()]),
                RelExpr::Cross(a, b) => (
                    set_pos[a.index()] | set_pos[b.index()],
                    set_neg[a.index()] | set_neg[b.index()],
                ),
                RelExpr::Seq(a, b) | RelExpr::Union(a, b) | RelExpr::Inter(a, b) => (
                    rel_pos[a.index()] | rel_pos[b.index()],
                    rel_neg[a.index()] | rel_neg[b.index()],
                ),
                // The right operand of a difference flips sign.
                RelExpr::Diff(a, b) => (
                    rel_pos[a.index()] | rel_neg[b.index()],
                    rel_neg[a.index()] | rel_pos[b.index()],
                ),
                RelExpr::Inverse(a) | RelExpr::Opt(a) | RelExpr::Plus(a) | RelExpr::Star(a) => {
                    (rel_pos[a.index()], rel_neg[a.index()])
                }
                // lift(r, t) = t⟨?⟩ ; (r \ t) ; t⟨?⟩ — t occurs mixed.
                RelExpr::WeakLift(a, t) | RelExpr::StrongLift(a, t) => {
                    let mixed = rel_pos[t.index()] | rel_neg[t.index()];
                    (rel_pos[a.index()] | mixed, rel_neg[a.index()] | mixed)
                }
                // A variable reads nothing itself; its group's Fix nodes
                // carry the bodies' footprints.
                RelExpr::Var(_) => (DeltaMask::NONE, DeltaMask::NONE),
                // A fixpoint has no exact maintenance rule: treat its whole
                // footprint as mixed so any relevant delta drops it to the
                // lazy re-iteration path (counted as `fix_reevals`).
                RelExpr::Fix(g, _) => {
                    let mut m = DeltaMask::NONE;
                    for &b in pool.fix_bodies(g) {
                        m |= rel_pos[b.index()] | rel_neg[b.index()];
                    }
                    (m, m)
                }
            };
            rel_pos.push(p);
            rel_neg.push(n);
        }
        let mut rel_touched_by: Vec<Vec<u32>> = vec![Vec::new(); MASK_BITS];
        let mut set_touched_by: Vec<Vec<u32>> = vec![Vec::new(); MASK_BITS];
        for bit in 0..MASK_BITS {
            let bit_mask = DeltaMask(1 << bit);
            for i in 0..pool.rel_count() {
                if (rel_pos[i] | rel_neg[i]).intersects(bit_mask) {
                    rel_touched_by[bit].push(i as u32);
                }
            }
            for i in 0..pool.set_count() {
                if (set_pos[i] | set_neg[i]).intersects(bit_mask) {
                    set_touched_by[bit].push(i as u32);
                }
            }
        }
        IncrementalEval {
            pool,
            universe: 0,
            rel_vals: vec![None; pool.rel_count()],
            set_vals: vec![None; pool.set_count()],
            heads: vec![HeadCache::default(); pool.rel_count()],
            seq_counts: vec![None; pool.rel_count()],
            rel_pos,
            rel_neg,
            set_neg,
            rel_touched_by,
            set_touched_by,
            rel_shift: (0..pool.rel_count()).map(|_| Shift::Clean).collect(),
            set_shift: (0..pool.set_count()).map(|_| Shift::Clean).collect(),
            rel_shift_epoch: vec![0; pool.rel_count()],
            set_shift_epoch: vec![0; pool.set_count()],
            epoch: 0,
            scratch_ids: Vec::new(),
            journal: None,
            stats: MaintenanceStats::default(),
        }
    }

    /// The pool this evaluator interprets.
    pub fn pool(&self) -> &'p IrPool {
        self.pool
    }

    /// The full dependency footprint of a relation node.
    pub fn footprint(&self, id: RelId) -> DeltaMask {
        self.rel_pos[id.index()] | self.rel_neg[id.index()]
    }

    /// The inputs in which a relation node is *not* monotonically
    /// non-decreasing (negative or mixed occurrences). Purely informational
    /// since counting-based deletion landed: every node is maintained with
    /// exact deltas whichever sign an input occurs under.
    pub fn nonmonotone_inputs(&self, id: RelId) -> DeltaMask {
        self.rel_neg[id.index()]
    }

    /// The maintenance counters accumulated since construction.
    pub fn stats(&self) -> MaintenanceStats {
        self.stats
    }

    /// Starts recording undo information: every node state subsequently
    /// changed (by [`apply`](IncrementalEval::apply), lazy evaluation or
    /// verdict caching) is snapshotted on first touch, so a later
    /// [`rollback`](IncrementalEval::rollback) restores this exact state in
    /// O(touched nodes). One savepoint may be active at a time.
    ///
    /// # Panics
    ///
    /// Panics if a savepoint is already active.
    pub fn savepoint(&mut self) {
        assert!(
            self.journal.is_none(),
            "IncrementalEval supports one active savepoint at a time"
        );
        self.journal = Some(Journal {
            universe: self.universe,
            rel_saved: vec![false; self.pool.rel_count()],
            set_saved: vec![false; self.pool.set_count()],
            rels: Vec::new(),
            sets: Vec::new(),
        });
    }

    /// Restores the state captured by the active savepoint and ends it.
    ///
    /// # Panics
    ///
    /// Panics if no savepoint is active.
    pub fn rollback(&mut self) {
        let journal = self
            .journal
            .take()
            .expect("rollback without an active savepoint");
        self.universe = journal.universe;
        for (i, val, heads, counts) in journal.rels {
            self.rel_vals[i] = val;
            self.heads[i] = heads;
            self.seq_counts[i] = counts;
        }
        for (i, val) in journal.sets {
            self.set_vals[i] = val;
        }
    }

    /// Ends the active savepoint, keeping every change made since it.
    ///
    /// # Panics
    ///
    /// Panics if no savepoint is active.
    pub fn commit(&mut self) {
        assert!(
            self.journal.take().is_some(),
            "commit without an active savepoint"
        );
    }

    fn journal_rel(&mut self, i: usize) {
        if let Some(journal) = &mut self.journal {
            if !journal.rel_saved[i] {
                journal.rel_saved[i] = true;
                journal.rels.push((
                    i,
                    self.rel_vals[i].clone(),
                    self.heads[i],
                    self.seq_counts[i].clone(),
                ));
            }
        }
    }

    fn journal_set(&mut self, i: usize) {
        if let Some(journal) = &mut self.journal {
            if !journal.set_saved[i] {
                journal.set_saved[i] = true;
                journal.sets.push((i, self.set_vals[i].clone()));
            }
        }
    }

    /// Drops every cached value: the next queries recompute from `exec`.
    pub fn reset(&mut self, exec: &Execution) {
        if self.journal.is_some() {
            for i in 0..self.pool.rel_count() {
                self.journal_rel(i);
            }
            for i in 0..self.pool.set_count() {
                self.journal_set(i);
            }
        }
        self.universe = exec.len();
        self.rel_vals.iter_mut().for_each(|v| *v = None);
        self.set_vals.iter_mut().for_each(|v| *v = None);
        self.seq_counts.iter_mut().for_each(|c| *c = None);
        self.heads
            .iter_mut()
            .for_each(|h| *h = HeadCache::default());
        self.stats.resets += 1;
    }

    /// Absorbs one delta: the caller has already mutated `exec` accordingly.
    ///
    /// Full deltas (and universe changes) reset everything; every other
    /// delta — additions, removals, annotation edits, coarse touches — is
    /// propagated through the valued nodes in place, children before
    /// parents, leaving each with an exact `new \ old` / `old \ new` record
    /// for its own parents.
    pub fn apply(&mut self, exec: &Execution, delta: &Delta) {
        if delta.is_full() || exec.len() != self.universe {
            self.reset(exec);
            return;
        }
        if delta.is_empty() {
            return;
        }
        self.propagate(exec, delta);
    }

    /// One ascending maintenance sweep over the touched nodes (children
    /// before parents; sets before relations, which consume them). Only the
    /// nodes whose footprint the delta intersects are visited, via the
    /// per-input lists built at construction.
    fn propagate(&mut self, exec: &Execution, delta: &Delta) {
        let mask = delta.mask();
        self.epoch += 1;

        let mut ids = std::mem::take(&mut self.scratch_ids);
        Self::collect_touched(&self.set_touched_by, mask, &mut ids);
        for &id in &ids {
            let i = id as usize;
            if self.set_vals[i].is_none() {
                self.set_shift[i] = Shift::Missing;
                self.set_shift_epoch[i] = self.epoch;
                continue;
            }
            if self.set_neg[i].intersects(mask) {
                // Non-monotone in a changed input (the annotation sets):
                // drop for lazy recomputation on next use.
                self.journal_set(i);
                self.set_vals[i] = None;
                self.stats.dropped += 1;
                self.set_shift[i] = Shift::Missing;
                self.set_shift_epoch[i] = self.epoch;
                continue;
            }
            let computed: Option<ElemSet> = match self.pool.set_expr(SetId(i as u32)) {
                SetExpr::Base(base) => {
                    self.stats.rebased += 1;
                    Some(Self::base_set_value(exec, base))
                }
                SetExpr::Union(a, b) => {
                    match (&self.set_vals[a.index()], &self.set_vals[b.index()]) {
                        (Some(va), Some(vb)) => Some(va.union(vb)),
                        _ => None,
                    }
                }
                SetExpr::Inter(a, b) => {
                    match (&self.set_vals[a.index()], &self.set_vals[b.index()]) {
                        (Some(va), Some(vb)) => Some(va.intersection(vb)),
                        _ => None,
                    }
                }
            };
            match computed {
                None => {
                    debug_assert!(false, "valued set node with an unvalued child");
                    self.journal_set(i);
                    self.set_vals[i] = None;
                    self.stats.invalidated += 1;
                    self.set_shift[i] = Shift::Missing;
                    self.set_shift_epoch[i] = self.epoch;
                }
                Some(new) => {
                    let old = self.set_vals[i].as_ref().unwrap();
                    let add = new.difference(old);
                    let del = old.difference(&new);
                    if add.is_empty() && del.is_empty() {
                        // Stale stamp: parents read this as Clean.
                        continue;
                    }
                    self.journal_set(i);
                    self.set_vals[i] = Some(new);
                    self.set_shift[i] = Shift::Edited { add, del };
                    self.set_shift_epoch[i] = self.epoch;
                }
            }
        }

        Self::collect_touched(&self.rel_touched_by, mask, &mut ids);
        for &id in &ids {
            let i = id as usize;
            if self.rel_vals[i].is_none() {
                self.rel_shift[i] = Shift::Missing;
                self.rel_shift_epoch[i] = self.epoch;
                continue;
            }
            if self.rel_neg[i].intersects(mask) {
                // Non-monotone in a changed input (fr and its dependents
                // under rf/co edits, tfence under stxn flips, …): drop for
                // lazy recomputation — an early-exit sweep only ever pays
                // for the bodies it actually queries. Fixpoints always land
                // here (their footprint is declared mixed) and keep their
                // own counter: re-iteration is their designed fallback, not
                // a maintenance failure.
                self.journal_rel(i);
                self.rel_vals[i] = None;
                self.heads[i] = HeadCache::default();
                self.seq_counts[i] = None;
                if matches!(self.pool.rel_expr(RelId(i as u32)), RelExpr::Fix(_, _)) {
                    self.stats.fix_reevals += 1;
                } else {
                    self.stats.dropped += 1;
                }
                self.rel_shift[i] = Shift::Missing;
                self.rel_shift_epoch[i] = self.epoch;
                continue;
            }
            match self.shift_rel(exec, delta, RelId(i as u32)) {
                None => {
                    // A needed child was dropped (a difference whose
                    // subtrahend is non-monotone, say): this node cannot be
                    // maintained either and follows it to the lazy path.
                    self.journal_rel(i);
                    self.rel_vals[i] = None;
                    self.heads[i] = HeadCache::default();
                    self.seq_counts[i] = None;
                    self.stats.dropped += 1;
                    self.rel_shift[i] = Shift::Missing;
                    self.rel_shift_epoch[i] = self.epoch;
                }
                Some(update) => {
                    if update.rebased {
                        self.stats.rebased += 1;
                    }
                    let grew = !update.add.is_empty();
                    let shrank = !update.del.is_empty();
                    if grew || shrank || update.counts.is_some() {
                        self.journal_rel(i);
                        if let Some(counts) = update.counts {
                            self.seq_counts[i] = Some(counts);
                        }
                        if grew || shrank {
                            self.rel_vals[i] = Some(update.new);
                            self.heads[i].refine(grew, shrank);
                            self.stats.maintained += 1;
                        }
                    }
                    if grew || shrank {
                        self.rel_shift[i] = Shift::Edited {
                            add: update.add,
                            del: update.del,
                        };
                        self.rel_shift_epoch[i] = self.epoch;
                    }
                }
            }
        }
        self.scratch_ids = ids;
    }

    /// The ascending union of the touched-node lists of the mask's bits.
    fn collect_touched(lists: &[Vec<u32>], mask: DeltaMask, out: &mut Vec<u32>) {
        out.clear();
        let mut hit = 0usize;
        for (bit, list) in lists.iter().enumerate() {
            if mask.intersects(DeltaMask(1 << bit)) && !list.is_empty() {
                out.extend_from_slice(list);
                hit += 1;
            }
        }
        if hit > 1 {
            out.sort_unstable();
            out.dedup();
        }
    }

    /// Maintains one valued relation node under a delta, returning its new
    /// value and the exact pairs that appeared and disappeared — or `None`
    /// if a child it needs holds no value (an invariant breach).
    fn shift_rel(&self, exec: &Execution, delta: &Delta, id: RelId) -> Option<RelUpdate> {
        let i = id.index();
        let old = self.rel_vals[i].as_ref().unwrap();
        let empty = Relation::new(self.universe);
        // A child's exact (add, del) — empty pair when it was untouched
        // this epoch (a stale stamp reads as Clean).
        let parts = |r: RelId| -> Option<(&Relation, &Relation)> {
            if self.rel_shift_epoch[r.index()] != self.epoch {
                return Some((&empty, &empty));
            }
            match &self.rel_shift[r.index()] {
                Shift::Clean => Some((&empty, &empty)),
                Shift::Edited { add, del } => Some((add, del)),
                Shift::Missing => None,
            }
        };
        let set_parts = |s: SetId| -> Option<(Option<&ElemSet>, Option<&ElemSet>)> {
            if self.set_shift_epoch[s.index()] != self.epoch {
                return Some((None, None));
            }
            match &self.set_shift[s.index()] {
                Shift::Clean => Some((None, None)),
                Shift::Edited { add, del } => Some((Some(add), Some(del))),
                Shift::Missing => None,
            }
        };
        let val = |r: RelId| self.rel_vals[r.index()].as_ref();
        let set_val = |s: SetId| self.set_vals[s.index()].as_ref();
        // Finalises a directly recomputed value into an exact update.
        let diffed = |new: Relation| -> RelUpdate {
            let add = new.difference(old);
            let del = old.difference(&new);
            RelUpdate {
                new,
                add,
                del,
                counts: None,
                rebased: false,
            }
        };
        // Finalises an exact (add, del) pair into the updated value.
        let applied = |add: Relation, del: Relation| -> RelUpdate {
            let mut new = old.clone();
            new.union_in_place(&add);
            new.difference_in_place(&del);
            RelUpdate {
                new,
                add,
                del,
                counts: None,
                rebased: false,
            }
        };
        // The edits cancelled out below this node: nothing to store.
        let unchanged = || RelUpdate {
            new: Relation::new(self.universe),
            add: Relation::new(self.universe),
            del: Relation::new(self.universe),
            counts: None,
            rebased: false,
        };

        let update = match self.pool.rel_expr(id) {
            RelExpr::Base(base) => {
                if let (Some(_), false) = (DeltaMask::of_primitive(base), delta.is_coarse()) {
                    // Primitive family with a pair-exact edit log: net the
                    // log against the cached value.
                    let (net_add, net_del) = delta.net_relations(base, self.universe);
                    let add = net_add.difference(old);
                    let del = net_del.intersection(old);
                    let update = applied(add, del);
                    debug_assert_eq!(
                        update.new,
                        Self::base_value(exec, base),
                        "delta edit log out of sync with the execution for {base:?}"
                    );
                    update
                } else {
                    // Derived bases (fr, tfence, rfe, …) and coarse touches:
                    // re-read from the execution and diff.
                    RelUpdate {
                        rebased: true,
                        ..diffed(Self::base_value(exec, base))
                    }
                }
            }
            RelExpr::IdOn(s) => {
                let (sa, sd) = set_parts(s)?;
                let add = sa.map_or_else(|| empty.clone(), Relation::identity_on);
                let del = sd.map_or_else(|| empty.clone(), Relation::identity_on);
                applied(add, del)
            }
            RelExpr::Cross(a, b) => {
                let (sa, sb) = (set_parts(a)?, set_parts(b)?);
                if sa.0.is_none() && sa.1.is_none() && sb.0.is_none() && sb.1.is_none() {
                    return Some(unchanged());
                }
                diffed(Relation::cross(set_val(a)?, set_val(b)?))
            }
            RelExpr::Seq(a, b) => {
                let ((add_a, del_a), (add_b, del_b)) = (parts(a)?, parts(b)?);
                if add_a.is_empty() && del_a.is_empty() && add_b.is_empty() && del_b.is_empty() {
                    return Some(unchanged());
                }
                let (new_a, new_b) = (val(a)?, val(b)?);
                let counting =
                    self.seq_counts[i].is_some() || !del_a.is_empty() || !del_b.is_empty();
                if !counting {
                    // Pure additions with no live counting table: the plain
                    // semi-naïve join delta, no per-pair bookkeeping.
                    let mut d = add_a.compose(new_b);
                    d.union_in_place(&new_a.compose(add_b));
                    let add = d.difference(old);
                    applied(add, empty.clone())
                } else {
                    // A removal reached this node (or one did before):
                    // maintain the per-pair support counts.
                    return Some(self.shift_seq(id, old, new_a, new_b, add_a, del_a, add_b, del_b));
                }
            }
            RelExpr::Union(a, b) => {
                let ((add_a, del_a), (add_b, del_b)) = (parts(a)?, parts(b)?);
                // A pair joins the union iff it joined either operand and
                // was not already present; it leaves iff it left every
                // operand that held it and neither holds it now.
                let mut add = add_a.union(add_b);
                add.difference_in_place(old);
                let mut del = del_a.union(del_b);
                del.difference_in_place(val(a)?);
                del.difference_in_place(val(b)?);
                applied(add, del)
            }
            RelExpr::Inter(a, b) => {
                let mut new = val(a)?.clone();
                new.intersect_in_place(val(b)?);
                diffed(new)
            }
            RelExpr::Diff(a, b) => {
                let mut new = val(a)?.clone();
                new.difference_in_place(val(b)?);
                diffed(new)
            }
            RelExpr::Inverse(a) => {
                let (add_a, del_a) = parts(a)?;
                applied(add_a.inverse(), del_a.inverse())
            }
            RelExpr::Opt(a) => diffed(val(a)?.reflexive_closure()),
            RelExpr::Plus(a) => {
                let (add_a, del_a) = parts(a)?;
                if del_a.is_empty() {
                    // Semi-naïve growth: (a ∪ Δ)⁺ = a⁺ ∪ (a⁺? ; Δ ; a⁺?)⁺ —
                    // every new path alternates old paths and new edges.
                    let oldq = old.reflexive_closure();
                    let mut d = oldq.compose(add_a).compose(&oldq);
                    d.transitive_closure_in_place();
                    let add = d.difference(old);
                    applied(add, empty.clone())
                } else {
                    // DRed: over-delete every pair whose derivations could
                    // pass through a removed edge, then rederive from the
                    // survivors plus the new child value. Any pair with an
                    // intact path avoids the over-delete set entirely, so
                    // closing (old \ over) ∪ new_a is exactly new_a⁺.
                    let oldq = old.reflexive_closure();
                    let over = oldq.compose(del_a).compose(&oldq);
                    let mut seed = old.difference(&over);
                    seed.union_in_place(val(a)?);
                    seed.transitive_closure_in_place();
                    diffed(seed)
                }
            }
            RelExpr::Star(a) => {
                let (add_a, del_a) = parts(a)?;
                if del_a.is_empty() {
                    // The reflexive old value is its own spine.
                    let mut d = old.compose(add_a).compose(old);
                    d.transitive_closure_in_place();
                    let add = d.difference(old);
                    applied(add, empty.clone())
                } else {
                    let over = old.compose(del_a).compose(old);
                    let mut seed = old.difference(&over);
                    seed.union_in_place(val(a)?);
                    seed.transitive_closure_in_place();
                    for e in 0..self.universe {
                        seed.insert(e, e);
                    }
                    diffed(seed)
                }
            }
            RelExpr::WeakLift(a, t) | RelExpr::StrongLift(a, t) => {
                let strong = matches!(self.pool.rel_expr(id), RelExpr::StrongLift(_, _));
                let (add_a, del_a) = parts(a)?;
                let (add_t, del_t) = parts(t)?;
                let lift = |r: &Relation, t: &Relation| {
                    if strong {
                        Execution::stronglift(r, t)
                    } else {
                        Execution::weaklift(r, t)
                    }
                };
                if del_a.is_empty() && add_t.is_empty() && del_t.is_empty() {
                    // The lift distributes over unions of its first operand.
                    let d = lift(add_a, val(t)?);
                    let add = d.difference(old);
                    applied(add, empty.clone())
                } else {
                    diffed(lift(val(a)?, val(t)?))
                }
            }
            // Vars have empty footprints and Fix nodes declare their whole
            // footprint mixed, so neither ever reaches the maintained path.
            RelExpr::Var(_) | RelExpr::Fix(_, _) => {
                unreachable!("recursion nodes are never delta-maintained")
            }
        };
        Some(update)
    }

    /// Counting-based maintenance of a `Seq` node: the per-pair support
    /// count is the number of join witnesses `y` with `a(x, y) ∧ b(y, z)`;
    /// additions increment, removals decrement, and a pair lives exactly
    /// while its count is positive. The table is built lazily from the
    /// operands' pre-delta values the first time the node is maintained.
    #[allow(clippy::too_many_arguments)]
    fn shift_seq(
        &self,
        id: RelId,
        old: &Relation,
        new_a: &Relation,
        new_b: &Relation,
        add_a: &Relation,
        del_a: &Relation,
        add_b: &Relation,
        del_b: &Relation,
    ) -> RelUpdate {
        let n = self.universe;
        // Reconstruct the pre-delta operands (`new \ add ∪ del`).
        let rewind = |new: &Relation, add: &Relation, del: &Relation| {
            let mut old = new.clone();
            old.difference_in_place(add);
            old.union_in_place(del);
            old
        };
        let old_b = rewind(new_b, add_b, del_b);
        let mut counts: Box<[u32]> = match &self.seq_counts[id.index()] {
            Some(counts) => counts.clone(),
            None => {
                let old_a = rewind(new_a, add_a, del_a);
                let mut counts = vec![0u32; n * n].into_boxed_slice();
                for (x, y) in old_a.iter() {
                    for z in old_b.successors(y) {
                        counts[x * n + z] += 1;
                    }
                }
                counts
            }
        };
        // Σ old_a·old_b  →  Σ new_a·old_b  →  Σ new_a·new_b.
        for (x, y) in add_a.iter() {
            for z in old_b.successors(y) {
                counts[x * n + z] += 1;
            }
        }
        for (x, y) in del_a.iter() {
            for z in old_b.successors(y) {
                counts[x * n + z] -= 1;
            }
        }
        for (y, z) in add_b.iter() {
            for x in new_a.predecessors(y) {
                counts[x * n + z] += 1;
            }
        }
        for (y, z) in del_b.iter() {
            for x in new_a.predecessors(y) {
                counts[x * n + z] -= 1;
            }
        }
        let mut new = Relation::new(n);
        for x in 0..n {
            for z in 0..n {
                if counts[x * n + z] > 0 {
                    new.insert(x, z);
                }
            }
        }
        let add = new.difference(old);
        let del = old.difference(&new);
        RelUpdate {
            new,
            add,
            del,
            counts: Some(counts),
            rebased: false,
        }
    }

    /// The value of a base set, recomputed from the execution.
    fn base_set_value(exec: &Execution, base: SetBase) -> ElemSet {
        match base {
            SetBase::Reads => exec.reads(),
            SetBase::Writes => exec.writes(),
            SetBase::Fences => exec.fences(),
            SetBase::Acquires => exec.acquires(),
            SetBase::Releases => exec.releases(),
            SetBase::ScEvents => exec.sc_events(),
            SetBase::Atomics => exec.atomics(),
            SetBase::FencesOf(kind) => exec.fences_of(kind),
            SetBase::RmwDomain => exec.rmw.domain(),
            SetBase::RmwRange => exec.rmw.range(),
        }
    }

    /// The current value of a set expression, computing it if missing.
    pub fn set(&mut self, exec: &Execution, id: SetId) -> &ElemSet {
        self.ensure_set(exec, id);
        self.set_vals[id.index()].as_ref().unwrap()
    }

    fn ensure_set(&mut self, exec: &Execution, id: SetId) {
        if self.set_vals[id.index()].is_some() {
            return;
        }
        let value = match self.pool.set_expr(id) {
            SetExpr::Base(base) => Self::base_set_value(exec, base),
            SetExpr::Union(a, b) => {
                self.ensure_set(exec, a);
                self.ensure_set(exec, b);
                self.set_vals[a.index()]
                    .as_ref()
                    .unwrap()
                    .union(self.set_vals[b.index()].as_ref().unwrap())
            }
            SetExpr::Inter(a, b) => {
                self.ensure_set(exec, a);
                self.ensure_set(exec, b);
                self.set_vals[a.index()]
                    .as_ref()
                    .unwrap()
                    .intersection(self.set_vals[b.index()].as_ref().unwrap())
            }
        };
        self.journal_set(id.index());
        self.set_vals[id.index()] = Some(value);
    }

    /// The current value of a relation expression, computing it if missing.
    pub fn rel(&mut self, exec: &Execution, id: RelId) -> &Relation {
        self.ensure_rel(exec, id);
        self.rel_vals[id.index()].as_ref().unwrap()
    }

    fn ensure_rel(&mut self, exec: &Execution, id: RelId) {
        if self.rel_vals[id.index()].is_some() {
            return;
        }
        let value = match self.pool.rel_expr(id) {
            RelExpr::Base(base) => Self::base_value(exec, base),
            RelExpr::IdOn(s) => {
                self.ensure_set(exec, s);
                Relation::identity_on(self.set_vals[s.index()].as_ref().unwrap())
            }
            RelExpr::Cross(a, b) => {
                self.ensure_set(exec, a);
                self.ensure_set(exec, b);
                Relation::cross(
                    self.set_vals[a.index()].as_ref().unwrap(),
                    self.set_vals[b.index()].as_ref().unwrap(),
                )
            }
            RelExpr::Seq(a, b) => {
                self.ensure_rel(exec, a);
                self.ensure_rel(exec, b);
                self.rel_vals[a.index()]
                    .as_ref()
                    .unwrap()
                    .compose(self.rel_vals[b.index()].as_ref().unwrap())
            }
            RelExpr::Union(a, b) => {
                self.ensure_rel(exec, a);
                self.ensure_rel(exec, b);
                let mut out = self.rel_vals[a.index()].as_ref().unwrap().clone();
                out.union_in_place(self.rel_vals[b.index()].as_ref().unwrap());
                out
            }
            RelExpr::Inter(a, b) => {
                self.ensure_rel(exec, a);
                self.ensure_rel(exec, b);
                let mut out = self.rel_vals[a.index()].as_ref().unwrap().clone();
                out.intersect_in_place(self.rel_vals[b.index()].as_ref().unwrap());
                out
            }
            RelExpr::Diff(a, b) => {
                self.ensure_rel(exec, a);
                self.ensure_rel(exec, b);
                let mut out = self.rel_vals[a.index()].as_ref().unwrap().clone();
                out.difference_in_place(self.rel_vals[b.index()].as_ref().unwrap());
                out
            }
            RelExpr::Inverse(a) => {
                self.ensure_rel(exec, a);
                self.rel_vals[a.index()].as_ref().unwrap().inverse()
            }
            RelExpr::Opt(a) => {
                self.ensure_rel(exec, a);
                self.rel_vals[a.index()]
                    .as_ref()
                    .unwrap()
                    .reflexive_closure()
            }
            RelExpr::Plus(a) => {
                self.ensure_rel(exec, a);
                let mut out = self.rel_vals[a.index()].as_ref().unwrap().clone();
                out.transitive_closure_in_place();
                out
            }
            RelExpr::Star(a) => {
                self.ensure_rel(exec, a);
                let mut out = self.rel_vals[a.index()].as_ref().unwrap().clone();
                out.transitive_closure_in_place();
                for e in 0..out.universe() {
                    out.insert(e, e);
                }
                out
            }
            RelExpr::WeakLift(a, t) => {
                self.ensure_rel(exec, a);
                self.ensure_rel(exec, t);
                Execution::weaklift(
                    self.rel_vals[a.index()].as_ref().unwrap(),
                    self.rel_vals[t.index()].as_ref().unwrap(),
                )
            }
            RelExpr::StrongLift(a, t) => {
                self.ensure_rel(exec, a);
                self.ensure_rel(exec, t);
                Execution::stronglift(
                    self.rel_vals[a.index()].as_ref().unwrap(),
                    self.rel_vals[t.index()].as_ref().unwrap(),
                )
            }
            RelExpr::Var(_) => {
                panic!("free recursion variable evaluated outside its fixpoint group")
            }
            RelExpr::Fix(g, i) => self.fix_rel(exec, g, i, &HashMap::new()),
        };
        self.journal_rel(id.index());
        self.rel_vals[id.index()] = Some(value);
    }

    /// Naive Kleene iteration for a fixpoint component, the lazy analogue of
    /// [`IrEval`]'s: var-free subtrees go through [`ensure_rel`] and stay
    /// cached across re-iterations, only the variable-touching spine is
    /// recomputed per round.
    fn fix_rel(
        &mut self,
        exec: &Execution,
        g: u32,
        i: u32,
        outer: &HashMap<u32, Relation>,
    ) -> Relation {
        let vars: Vec<u32> = self.pool.fix_vars(g).to_vec();
        let bodies: Vec<RelId> = self.pool.fix_bodies(g).to_vec();
        let mut env = outer.clone();
        for &v in &vars {
            env.insert(v, Relation::new(self.universe));
        }
        loop {
            let next: Vec<Relation> = bodies
                .iter()
                .map(|&b| self.rel_with_env(exec, b, &env))
                .collect();
            let stable = vars.iter().zip(&next).all(|(v, value)| env[v] == *value);
            for (v, value) in vars.iter().zip(next) {
                env.insert(*v, value);
            }
            if stable {
                return env.remove(&vars[i as usize]).unwrap();
            }
        }
    }

    fn rel_with_env(
        &mut self,
        exec: &Execution,
        id: RelId,
        env: &HashMap<u32, Relation>,
    ) -> Relation {
        if self.pool.rel_free_vars(id).is_empty() {
            self.ensure_rel(exec, id);
            return self.rel_vals[id.index()].as_ref().unwrap().clone();
        }
        match self.pool.rel_expr(id) {
            RelExpr::Var(v) => env
                .get(&v)
                .expect("free recursion variable outside its fixpoint group")
                .clone(),
            RelExpr::Fix(g, i) => self.fix_rel(exec, g, i, env),
            RelExpr::Base(_) | RelExpr::IdOn(_) | RelExpr::Cross(_, _) => {
                unreachable!("leaf nodes have no free variables")
            }
            RelExpr::Seq(a, b) => self
                .rel_with_env(exec, a, env)
                .compose(&self.rel_with_env(exec, b, env)),
            RelExpr::Union(a, b) => {
                let mut out = self.rel_with_env(exec, a, env);
                out.union_in_place(&self.rel_with_env(exec, b, env));
                out
            }
            RelExpr::Inter(a, b) => {
                let mut out = self.rel_with_env(exec, a, env);
                out.intersect_in_place(&self.rel_with_env(exec, b, env));
                out
            }
            RelExpr::Diff(a, b) => {
                let mut out = self.rel_with_env(exec, a, env);
                out.difference_in_place(&self.rel_with_env(exec, b, env));
                out
            }
            RelExpr::Inverse(a) => self.rel_with_env(exec, a, env).inverse(),
            RelExpr::Opt(a) => self.rel_with_env(exec, a, env).reflexive_closure(),
            RelExpr::Plus(a) => {
                let mut out = self.rel_with_env(exec, a, env);
                out.transitive_closure_in_place();
                out
            }
            RelExpr::Star(a) => {
                let mut out = self.rel_with_env(exec, a, env);
                out.transitive_closure_in_place();
                for e in 0..out.universe() {
                    out.insert(e, e);
                }
                out
            }
            RelExpr::WeakLift(a, t) => Execution::weaklift(
                &self.rel_with_env(exec, a, env),
                &self.rel_with_env(exec, t, env),
            ),
            RelExpr::StrongLift(a, t) => Execution::stronglift(
                &self.rel_with_env(exec, a, env),
                &self.rel_with_env(exec, t, env),
            ),
        }
    }

    /// The value of a base relation, recomputed from the execution (the
    /// incremental analogue of the view's memoized getters).
    fn base_value(exec: &Execution, base: RelBase) -> Relation {
        match base {
            RelBase::Po => exec.po.clone(),
            RelBase::Rf => exec.rf.clone(),
            RelBase::Co => exec.co.clone(),
            RelBase::Addr => exec.addr.clone(),
            RelBase::Data => exec.data.clone(),
            RelBase::Ctrl => exec.ctrl.clone(),
            RelBase::Rmw => exec.rmw.clone(),
            RelBase::Stxn => exec.stxn.clone(),
            RelBase::Stxnat => exec.stxnat.clone(),
            RelBase::Scr => exec.scr.clone(),
            RelBase::Sloc => exec.sloc(),
            RelBase::Poloc => exec.poloc(),
            RelBase::PoDiffLoc => exec.po_diff_loc(),
            RelBase::Fr => exec.fr(),
            RelBase::Rfe => exec.rfe(),
            RelBase::Rfi => exec.rfi(),
            RelBase::Coe => exec.coe(),
            RelBase::Fre => exec.fre(),
            RelBase::Com => exec.com(),
            RelBase::Come => exec.come(),
            RelBase::Ecom => exec.ecom(),
            RelBase::Cnf => exec.cnf(),
            RelBase::Tfence => exec.tfence(),
            RelBase::FenceRel(kind) => exec.fence_rel(kind),
        }
    }

    /// True if the axiom holds on the current execution. The verdict is
    /// cached per `(body, head)` and survives deltas that leave the body's
    /// footprint untouched — the fast path of the incremental sweep.
    pub fn holds(&mut self, exec: &Execution, axiom: &Axiom) -> bool {
        self.stats.axiom_queries += 1;
        let i = axiom.body.index();
        let cached = match axiom.head {
            AxiomHead::Acyclic => self.heads[i].acyclic,
            AxiomHead::Irreflexive => self.heads[i].irreflexive,
            AxiomHead::Empty => self.heads[i].empty,
        };
        if let Some(v) = cached {
            self.stats.axiom_cache_hits += 1;
            return v;
        }
        self.ensure_rel(exec, axiom.body);
        let body = self.rel_vals[i].as_ref().unwrap();
        let v = match axiom.head {
            AxiomHead::Acyclic => body.is_acyclic(),
            AxiomHead::Irreflexive => body.is_irreflexive(),
            AxiomHead::Empty => body.is_empty(),
        };
        self.journal_rel(i);
        match axiom.head {
            AxiomHead::Acyclic => self.heads[i].acyclic = Some(v),
            AxiomHead::Irreflexive => self.heads[i].irreflexive = Some(v),
            AxiomHead::Empty => self.heads[i].empty = Some(v),
        }
        v
    }

    /// A witness of the axiom's violation, matching [`IrEval::witness`].
    pub fn witness(&mut self, exec: &Execution, axiom: &Axiom) -> Option<Vec<usize>> {
        self.ensure_rel(exec, axiom.body);
        let body = self.rel_vals[axiom.body.index()].as_ref().unwrap();
        match axiom.head {
            AxiomHead::Acyclic => body.find_cycle(),
            AxiomHead::Irreflexive => (0..body.universe())
                .find(|&a| body.contains(a, a))
                .map(|a| vec![a]),
            AxiomHead::Empty => body.iter().next().map(|(a, b)| vec![a, b]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{catalog, Annot};

    fn eval_pair<'a>(pool: &'a IrPool, view: &'a ExecView<'a>) -> IrEval<'a> {
        IrEval::new(pool, view)
    }

    #[test]
    fn hash_consing_shares_nodes_across_expressions() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let com = p.base(RelBase::Com);
        let u1 = p.union(po, com);
        let u2 = p.union(com, po);
        assert_eq!(u1, u2);
        let all = p.union_all(&[com, po, com]);
        assert_eq!(all, u1);
        let s1 = p.seq(po, com);
        let s2 = p.seq(po, com);
        assert_eq!(s1, s2);
        // Composition is not commutative: different node.
        assert_ne!(s1, p.seq(com, po));
        // po, com, po ∪ com, po ; com, com ; po — and nothing else.
        assert_eq!(p.rel_count(), 5);
    }

    #[test]
    fn evaluation_matches_direct_computation() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let rf = p.base(RelBase::Rf);
        let fr = p.base(RelBase::Fr);
        let com = p.base(RelBase::Com);
        let seq = p.seq(rf, po);
        let u = p.union(po, com);
        let star = p.star(rf);
        let inv = p.inverse(rf);
        let reads = p.set_base(SetBase::Reads);
        let writes = p.set_base(SetBase::Writes);
        let id_r = p.id_on(reads);
        let wr = p.cross(writes, reads);
        let restricted = p.seq(id_r, fr);

        for exec in [
            catalog::sb(),
            catalog::mp_txn(),
            catalog::power_wrc_tprop1(),
        ] {
            let view = ExecView::new(&exec);
            let e = eval_pair(&p, &view);
            assert_eq!(*e.rel(seq), exec.rf.compose(&exec.po));
            assert_eq!(*e.rel(u), exec.po.union(&exec.com()));
            assert_eq!(*e.rel(star), exec.rf.reflexive_transitive_closure());
            assert_eq!(*e.rel(inv), exec.rf.inverse());
            assert_eq!(
                *e.rel(wr),
                tm_relation::Relation::cross(&exec.writes(), &exec.reads())
            );
            assert_eq!(
                *e.rel(restricted),
                tm_relation::Relation::identity_on(&exec.reads()).compose(&exec.fr())
            );
        }
    }

    #[test]
    fn lifts_evaluate_through_execution_helpers() {
        let mut p = IrPool::new();
        let com = p.base(RelBase::Com);
        let stxn = p.base(RelBase::Stxn);
        let weak = p.weaklift(com, stxn);
        let strong = p.stronglift(com, stxn);
        let exec = catalog::fig2();
        let view = ExecView::new(&exec);
        let e = eval_pair(&p, &view);
        assert_eq!(*e.rel(weak), Execution::weaklift(&exec.com(), &exec.stxn));
        assert_eq!(
            *e.rel(strong),
            Execution::stronglift(&exec.com(), &exec.stxn)
        );
    }

    #[test]
    fn axiom_heads_and_witnesses() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let com = p.base(RelBase::Com);
        let hb = p.union(po, com);
        let order = p.axiom("Order", AxiomHead::Acyclic, hb);
        let rmw = p.base(RelBase::Rmw);
        let empty_rmw = p.axiom("NoRmw", AxiomHead::Empty, rmw);

        let sb = catalog::sb();
        let view = ExecView::new(&sb);
        let e = eval_pair(&p, &view);
        assert!(!e.holds(&order));
        let cycle = e.witness(&order).expect("sb has an SC cycle");
        assert!(cycle.len() >= 2);
        assert!(e.holds(&empty_rmw));
        assert_eq!(e.witness(&empty_rmw), None);

        let mp_txn = catalog::mp_txn();
        let view = ExecView::new(&mp_txn);
        let e = eval_pair(&p, &view);
        assert!(!e.holds(&order));
    }

    #[test]
    fn memo_is_shared_through_the_view() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let com = p.base(RelBase::Com);
        let hb = p.union(po, com);
        let exec = catalog::sb();
        let view = ExecView::new(&exec);
        let first = eval_pair(&p, &view);
        let value = first.rel(hb).into_owned();
        // A second evaluator over the same view sees the cached value.
        let second = eval_pair(&p, &view);
        assert!(matches!(second.slots, Slots::Shared(_)));
        assert_eq!(*second.rel(hb), value);
        // An uncached view gets a private memo but the same values.
        let fresh_view = ExecView::uncached(&exec);
        let third = eval_pair(&p, &fresh_view);
        assert!(matches!(third.slots, Slots::Local(_)));
        assert_eq!(*third.rel(hb), value);
    }

    #[test]
    fn second_pool_falls_back_to_a_local_memo() {
        let mut p1 = IrPool::new();
        let hb1 = {
            let po = p1.base(RelBase::Po);
            let com = p1.base(RelBase::Com);
            p1.union(po, com)
        };
        let mut p2 = IrPool::new();
        let hb2 = {
            let po = p2.base(RelBase::Po);
            let com = p2.base(RelBase::Com);
            p2.union(po, com)
        };
        assert_ne!(p1.stamp(), p2.stamp());
        let exec = catalog::sb();
        let view = ExecView::new(&exec);
        let e1 = eval_pair(&p1, &view);
        let _ = e1.rel(hb1);
        let e2 = eval_pair(&p2, &view);
        assert!(matches!(e2.slots, Slots::Local(_)));
        assert_eq!(*e2.rel(hb2), *e1.rel(hb1));
    }

    #[test]
    fn polarity_analysis_follows_the_rules() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let com = p.base(RelBase::Com);
        let stxn = p.base(RelBase::Stxn);
        let tfence = p.base(RelBase::Tfence);

        assert_eq!(txn_polarity(&p, po), Polarity::Constant);
        assert_eq!(txn_polarity(&p, stxn), Polarity::Positive);
        assert_eq!(txn_polarity(&p, tfence), Polarity::Mixed);

        let pos = p.seq(stxn, po);
        assert_eq!(txn_polarity(&p, pos), Polarity::Positive);
        let neg = p.diff(po, stxn);
        assert_eq!(txn_polarity(&p, neg), Polarity::Negative);
        let mixed = p.union(pos, neg);
        assert_eq!(txn_polarity(&p, mixed), Polarity::Mixed);
        let lifted = p.stronglift(com, stxn);
        assert_eq!(txn_polarity(&p, lifted), Polarity::Mixed);
        let closure = p.plus(pos);
        assert_eq!(txn_polarity(&p, closure), Polarity::Positive);
    }

    #[test]
    fn polarity_sees_through_relation_derived_sets() {
        // [dom(rmw) ∪ ran(rmw)] ; po — the x86 "implied" shape — must track
        // the rmw relation, even though it goes through set nodes.
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let dom = p.set_base(SetBase::RmwDomain);
        let ran = p.set_base(SetBase::RmwRange);
        let locked = p.set_union(dom, ran);
        let id_l = p.id_on(locked);
        let implied = p.seq(id_l, po);
        let of_rmw = |base: RelBase| {
            if base == RelBase::Rmw {
                Polarity::Positive
            } else {
                Polarity::Constant
            }
        };
        assert_eq!(rel_polarity(&p, implied, &of_rmw), Polarity::Positive);
        // Event-kind sets stay constant.
        let reads = p.set_base(SetBase::Reads);
        let id_r = p.id_on(reads);
        assert_eq!(rel_polarity(&p, id_r, &of_rmw), Polarity::Constant);
        // And nothing here depends on the transactional structure.
        assert_eq!(txn_polarity(&p, implied), Polarity::Constant);
    }

    /// A pool exercising every operator over the inputs the enumerator
    /// mutates, with an axiom per interesting head.
    fn incremental_fixture() -> (IrPool, Vec<Axiom>) {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let rf = p.base(RelBase::Rf);
        let co = p.base(RelBase::Co);
        let com = p.base(RelBase::Com);
        let stxn = p.base(RelBase::Stxn);
        let tfence = p.base(RelBase::Tfence);
        let rfe = p.base(RelBase::Rfe);
        let poloc = p.base(RelBase::Poloc);
        let reads = p.set_base(SetBase::Reads);
        let dom = p.set_base(SetBase::RmwDomain);
        let ran = p.set_base(SetBase::RmwRange);
        let locked = p.set_union(dom, ran);
        let id_l = p.id_on(locked);
        let implied = p.seq(id_l, po);
        let hb = {
            let u = p.union_all(&[po, rfe, implied, tfence]);
            p.plus(u)
        };
        let lifted = p.stronglift(com, stxn);
        let weak = p.weaklift(com, stxn);
        let poloc_com = p.union(poloc, com);
        let rf_star = p.star(rf);
        let inv = p.inverse(rf);
        let co_minus_rf = p.diff(co, rf);
        let id_r = p.id_on(reads);
        let chained = p.seq_all(&[id_r, rf_star, inv]);
        let axioms = vec![
            p.axiom("Order", AxiomHead::Acyclic, hb),
            p.axiom("Coherence", AxiomHead::Acyclic, poloc_com),
            p.axiom("StrongIsol", AxiomHead::Acyclic, lifted),
            p.axiom("WeakIsol", AxiomHead::Acyclic, weak),
            p.axiom("NoCoNotRf", AxiomHead::Empty, co_minus_rf),
            p.axiom("Chained", AxiomHead::Irreflexive, chained),
        ];
        (p, axioms)
    }

    /// Asserts the incremental evaluator agrees with a from-scratch
    /// [`IrEval`] on every axiom of the fixture.
    fn assert_matches_scratch(
        pool: &IrPool,
        axioms: &[Axiom],
        inc: &mut IncrementalEval<'_>,
        exec: &Execution,
        context: &str,
    ) {
        let view = ExecView::new(exec);
        let scratch = IrEval::new(pool, &view);
        for axiom in axioms {
            assert_eq!(
                *inc.rel(exec, axiom.body),
                *scratch.rel(axiom.body),
                "{context}: body of {} diverged",
                axiom.name
            );
            assert_eq!(
                inc.holds(exec, axiom),
                scratch.holds(axiom),
                "{context}: verdict of {} diverged",
                axiom.name
            );
            assert_eq!(
                inc.witness(exec, axiom),
                scratch.witness(axiom),
                "{context}: witness of {} diverged",
                axiom.name
            );
        }
    }

    #[test]
    fn incremental_matches_scratch_under_additions() {
        let (pool, axioms) = incremental_fixture();
        let mut exec = catalog::mp();
        let mut inc = IncrementalEval::new(&pool);
        inc.apply(&exec, &Delta::everything());
        assert_matches_scratch(&pool, &axioms, &mut inc, &exec, "initial");

        // Pure additions: rf, co, rmw and dependency edges appear one at a
        // time — the semi-naïve path.
        let additions = [
            (RelBase::Co, 0, 2),
            (RelBase::Rf, 0, 3),
            (RelBase::Addr, 2, 3),
            (RelBase::Rmw, 2, 3),
            (RelBase::Data, 0, 1),
        ];
        for (step, &(base, a, b)) in additions.iter().enumerate() {
            let target = match base {
                RelBase::Rf => &mut exec.rf,
                RelBase::Co => &mut exec.co,
                RelBase::Addr => &mut exec.addr,
                RelBase::Data => &mut exec.data,
                RelBase::Rmw => &mut exec.rmw,
                _ => unreachable!(),
            };
            target.insert(a, b);
            let mut delta = Delta::new();
            delta.add_edge(base, a, b);
            assert!(delta.is_additions_only());
            inc.apply(&exec, &delta);
            assert_matches_scratch(&pool, &axioms, &mut inc, &exec, &format!("add {step}"));
        }
    }

    #[test]
    fn incremental_matches_scratch_under_removals_and_txn_flips() {
        let (pool, axioms) = incremental_fixture();
        let mut exec = catalog::mp_txn();
        let mut inc = IncrementalEval::new(&pool);
        inc.apply(&exec, &Delta::everything());
        assert_matches_scratch(&pool, &axioms, &mut inc, &exec, "initial");

        // Remove an rf edge: invalidation path.
        let (w, r) = exec.rf.iter().next().expect("mp_txn has rf edges");
        exec.rf.remove(w, r);
        let mut delta = Delta::new();
        delta.remove_edge(RelBase::Rf, w, r);
        assert!(!delta.is_additions_only());
        inc.apply(&exec, &delta);
        assert_matches_scratch(&pool, &axioms, &mut inc, &exec, "rf removal");

        // Dissolve the first transaction: stxn removals touch tfence (mixed
        // polarity) and the lifts.
        let txn_pairs: Vec<(usize, usize)> = exec.stxn.iter().collect();
        let mut delta = Delta::new();
        for &(a, b) in &txn_pairs {
            exec.stxn.remove(a, b);
            delta.remove_edge(RelBase::Stxn, a, b);
        }
        inc.apply(&exec, &delta);
        assert_matches_scratch(&pool, &axioms, &mut inc, &exec, "txn dissolved");

        // Grow a fresh transaction by additions only.
        let mut delta = Delta::new();
        for a in [0usize, 1] {
            for b in [0usize, 1] {
                exec.stxn.insert(a, b);
                delta.add_edge(RelBase::Stxn, a, b);
            }
        }
        inc.apply(&exec, &delta);
        assert_matches_scratch(&pool, &axioms, &mut inc, &exec, "txn regrown");
    }

    #[test]
    fn untouched_footprints_keep_cached_values_and_verdicts() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let rf = p.base(RelBase::Rf);
        let stxn = p.base(RelBase::Stxn);
        let po_rf = p.union(po, rf);
        let lifted = p.stronglift(po_rf, stxn);
        let order = p.axiom("Order", AxiomHead::Acyclic, po_rf);
        let txn_order = p.axiom("TxnOrder", AxiomHead::Acyclic, lifted);

        let mut inc = IncrementalEval::new(&p);
        // po ∪ rf depends on po and rf only; the lift also tracks stxn.
        assert!(inc.footprint(po_rf).intersects(DeltaMask::RF));
        assert!(!inc.footprint(po_rf).intersects(DeltaMask::STXN));
        assert!(inc.footprint(lifted).intersects(DeltaMask::STXN));
        assert!(inc.nonmonotone_inputs(lifted).intersects(DeltaMask::STXN));
        assert!(inc.nonmonotone_inputs(po_rf).is_empty());

        let mut exec = catalog::sb();
        inc.apply(&exec, &Delta::everything());
        let before = inc.rel(&exec, po_rf).clone();
        assert!(inc.holds(&exec, &order));
        assert!(inc.holds(&exec, &txn_order));

        // A transaction flip must not disturb the po ∪ rf node...
        exec.stxn.insert(0, 0);
        exec.stxn.insert(1, 1);
        exec.stxn.insert(0, 1);
        exec.stxn.insert(1, 0);
        let mut delta = Delta::new();
        for (a, b) in [(0, 0), (1, 1), (0, 1), (1, 0)] {
            delta.add_edge(RelBase::Stxn, a, b);
        }
        inc.apply(&exec, &delta);
        assert_eq!(*inc.rel(&exec, po_rf), before);
        assert!(inc.holds(&exec, &order));
        // ...while the lifted node sees the new transaction.
        let view = ExecView::new(&exec);
        let scratch = IrEval::new(&p, &view);
        assert_eq!(inc.holds(&exec, &txn_order), scratch.holds(&txn_order));
    }

    #[test]
    fn removals_are_maintained_not_invalidated() {
        let (pool, axioms) = incremental_fixture();
        let mut exec = catalog::mp_txn();
        let mut inc = IncrementalEval::new(&pool);
        inc.apply(&exec, &Delta::everything());
        // Materialise every axiom body, then remove edges one at a time.
        assert_matches_scratch(&pool, &axioms, &mut inc, &exec, "initial");
        let removals: Vec<(RelBase, usize, usize)> = exec
            .rf
            .iter()
            .map(|(a, b)| (RelBase::Rf, a, b))
            .chain(exec.co.iter().map(|(a, b)| (RelBase::Co, a, b)))
            .chain(exec.stxn.iter().map(|(a, b)| (RelBase::Stxn, a, b)))
            .collect();
        for (base, a, b) in removals {
            match base {
                RelBase::Rf => exec.rf.remove(a, b),
                RelBase::Co => exec.co.remove(a, b),
                RelBase::Stxn => exec.stxn.remove(a, b),
                _ => unreachable!(),
            };
            let mut delta = Delta::new();
            delta.remove_edge(base, a, b);
            inc.apply(&exec, &delta);
            assert_matches_scratch(&pool, &axioms, &mut inc, &exec, "removal");
        }
        let stats = inc.stats();
        assert_eq!(
            stats.invalidated, 0,
            "removals must be maintained, never invalidated by footprint"
        );
        assert!(
            stats.maintained > 0,
            "derived nodes were maintained in place"
        );
        assert!(stats.rebased > 0, "derived bases were re-read and diffed");
    }

    #[test]
    fn seq_support_counts_track_join_witnesses() {
        let mut p = IrPool::new();
        let rf = p.base(RelBase::Rf);
        let co = p.base(RelBase::Co);
        let seq = p.seq(rf, co);
        // Not a well-formed execution — the IR is pure relational algebra.
        let mut exec = catalog::sb();
        exec.rf.clear();
        exec.co.clear();
        for (a, b) in [(0, 1), (0, 2)] {
            exec.rf.insert(a, b);
        }
        for (a, b) in [(1, 3), (2, 3)] {
            exec.co.insert(a, b);
        }
        let mut inc = IncrementalEval::new(&p);
        inc.apply(&exec, &Delta::everything());
        assert!(inc.rel(&exec, seq).contains(0, 3));

        // (0, 3) has two witnesses: dropping one keeps the pair alive …
        exec.rf.remove(0, 1);
        let mut delta = Delta::new();
        delta.remove_edge(RelBase::Rf, 0, 1);
        inc.apply(&exec, &delta);
        assert!(inc.rel(&exec, seq).contains(0, 3));

        // … and dropping the second deletes it, with no invalidation.
        exec.rf.remove(0, 2);
        let mut delta = Delta::new();
        delta.remove_edge(RelBase::Rf, 0, 2);
        inc.apply(&exec, &delta);
        assert!(!inc.rel(&exec, seq).contains(0, 3));
        assert_eq!(inc.stats().invalidated, 0);
    }

    #[test]
    fn savepoint_rollback_restores_probe_state() {
        let (pool, axioms) = incremental_fixture();
        let mut exec = catalog::mp_txn();
        let mut inc = IncrementalEval::new(&pool);
        inc.apply(&exec, &Delta::everything());
        assert_matches_scratch(&pool, &axioms, &mut inc, &exec, "initial");

        // Probe an edge removal and roll it back.
        let (w, r) = exec.rf.iter().next().expect("mp_txn has rf edges");
        inc.savepoint();
        exec.rf.remove(w, r);
        let mut delta = Delta::new();
        delta.remove_edge(RelBase::Rf, w, r);
        inc.apply(&exec, &delta);
        assert_matches_scratch(&pool, &axioms, &mut inc, &exec, "probe");
        inc.rollback();
        exec.rf.insert(w, r);
        assert_matches_scratch(&pool, &axioms, &mut inc, &exec, "rolled back");

        // A probe across a universe change (event removal) also rolls back.
        let smaller = exec.remove_event(0);
        inc.savepoint();
        inc.apply(&smaller, &Delta::everything());
        assert_matches_scratch(&pool, &axioms, &mut inc, &smaller, "smaller probe");
        inc.rollback();
        assert_matches_scratch(&pool, &axioms, &mut inc, &exec, "universe restored");

        // Commit keeps the probed state instead.
        inc.savepoint();
        exec.stxn.clear();
        inc.apply(&exec, &Delta::everything());
        inc.commit();
        assert_matches_scratch(&pool, &axioms, &mut inc, &exec, "committed");
    }

    #[test]
    fn annotation_edits_propagate_through_touch_annots() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let acq = p.set_base(SetBase::Acquires);
        let id_acq = p.id_on(acq);
        let acq_po = p.seq(id_acq, po);
        let order = p.axiom("AcqOrder", AxiomHead::Empty, acq_po);

        let mut exec = catalog::mp();
        exec.events[2].annot = Annot::acquire();
        let mut inc = IncrementalEval::new(&p);
        inc.apply(&exec, &Delta::everything());
        let before = inc.holds(&exec, &order);

        // Downgrade the acquire in place; only ANNOT-sensitive nodes move.
        exec.events[2].annot = Annot::PLAIN;
        let mut delta = Delta::new();
        delta.touch_annots();
        assert!(!delta.is_additions_only());
        inc.apply(&exec, &delta);
        let view = ExecView::new(&exec);
        let scratch = IrEval::new(&p, &view);
        assert_eq!(inc.holds(&exec, &order), scratch.holds(&order));
        assert_eq!(*inc.rel(&exec, acq_po), *scratch.rel(acq_po));
        assert_ne!(before, inc.holds(&exec, &order));
        // Every node here is monotone (annotation sets rebase exactly), so
        // the annotation probe maintains in place — nothing drops.
        assert_eq!(inc.stats().invalidated, 0);
        assert_eq!(inc.stats().dropped, 0);
        assert!(
            inc.stats().rebased > 0,
            "annotation sets re-read and diffed"
        );
    }

    /// In a pool built purely from monotone operators over monotone bases,
    /// *no* drop is legitimate: every removal delta must be absorbed by
    /// counting-based deletion / DRed rederivation in place. This is the
    /// falsifiable form of the no-invalidation guarantee — reintroducing
    /// any footprint-style fallback for removals surfaces here as
    /// `dropped > 0`, whichever counter it bumps.
    #[test]
    fn monotone_pool_removals_never_drop_any_node() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let rf = p.base(RelBase::Rf);
        let co = p.base(RelBase::Co);
        let rfe = p.base(RelBase::Rfe);
        let dom = p.set_base(SetBase::RmwDomain);
        let ran = p.set_base(SetBase::RmwRange);
        let locked = p.set_union(dom, ran);
        let id_l = p.id_on(locked);
        let implied = p.seq(id_l, po);
        let hb = {
            let u = p.union_all(&[po, rfe, implied, co]);
            p.plus(u)
        };
        let rf_co = p.seq(rf, co);
        let rf_star = p.star(rf);
        let inv = p.inverse(co);
        let opt = p.opt(rf_co);
        let axioms = vec![
            p.axiom("Order", AxiomHead::Acyclic, hb),
            p.axiom("RfCo", AxiomHead::Irreflexive, rf_co),
            p.axiom("Star", AxiomHead::Acyclic, rf_star),
            p.axiom("Inv", AxiomHead::Acyclic, inv),
            p.axiom("Opt", AxiomHead::Irreflexive, opt),
        ];

        let mut exec = catalog::mp();
        let mut inc = IncrementalEval::new(&p);
        inc.apply(&exec, &Delta::everything());
        assert_matches_scratch(&p, &axioms, &mut inc, &exec, "initial");

        // Toggle every editable family this pool reads, on and off.
        let mut rng_state = 0x5eedu64;
        let mut rng = move || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (rng_state >> 33) as usize
        };
        let n = exec.len();
        for step in 0..60 {
            let (family, a, b) = (
                [RelBase::Rf, RelBase::Co, RelBase::Rmw][rng() % 3],
                rng() % n,
                rng() % n,
            );
            let rel = match family {
                RelBase::Rf => &mut exec.rf,
                RelBase::Co => &mut exec.co,
                RelBase::Rmw => &mut exec.rmw,
                _ => unreachable!(),
            };
            let mut delta = Delta::new();
            if rel.contains(a, b) {
                rel.remove(a, b);
                delta.remove_edge(family, a, b);
            } else {
                rel.insert(a, b);
                delta.add_edge(family, a, b);
            }
            inc.apply(&exec, &delta);
            assert_matches_scratch(&p, &axioms, &mut inc, &exec, &format!("toggle {step}"));
        }
        let stats = inc.stats();
        assert_eq!(stats.invalidated, 0, "invariant-breach fallback fired");
        assert_eq!(
            stats.dropped, 0,
            "a monotone node was dropped instead of maintained"
        );
        assert!(stats.maintained > 0);
    }

    #[test]
    fn full_delta_resets_across_universes() {
        let (pool, axioms) = incremental_fixture();
        let mut inc = IncrementalEval::new(&pool);
        for exec in [
            catalog::sb(),
            catalog::power_wrc_tprop1(),
            catalog::mp_txn(),
        ] {
            inc.apply(&exec, &Delta::everything());
            assert_matches_scratch(&pool, &axioms, &mut inc, &exec, "reset");
        }
    }

    #[test]
    fn fix_computes_the_plus_closure() {
        // let rec hb = po | com | (hb ; hb)  ≡  (po ∪ com)⁺.
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let com = p.base(RelBase::Com);
        let v = p.fresh_var();
        let vv = p.seq(v, v);
        let body = p.union_all(&[po, com, vv]);
        let hb = p.fix(&[v], &[body])[0];
        let u = p.union(po, com);
        let plus = p.plus(u);
        for exec in [catalog::sb(), catalog::mp_txn()] {
            let view = ExecView::new(&exec);
            let e = eval_pair(&p, &view);
            assert_eq!(*e.rel(hb), *e.rel(plus));
        }
    }

    #[test]
    fn mutual_fix_groups_solve_jointly() {
        // let rec a = rf | b and b = co | a: both components converge on
        // rf ∪ co.
        let mut p = IrPool::new();
        let rf = p.base(RelBase::Rf);
        let co = p.base(RelBase::Co);
        let va = p.fresh_var();
        let vb = p.fresh_var();
        let body_a = p.union(rf, vb);
        let body_b = p.union(co, va);
        let fixed = p.fix(&[va, vb], &[body_a, body_b]);
        let rf_co = p.union(rf, co);
        let exec = catalog::sb();
        let view = ExecView::new(&exec);
        let e = eval_pair(&p, &view);
        assert_eq!(*e.rel(fixed[0]), *e.rel(rf_co));
        assert_eq!(*e.rel(fixed[1]), *e.rel(rf_co));
    }

    #[test]
    fn var_polarity_tracks_recursion_signs() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let com = p.base(RelBase::Com);
        let v = p.fresh_var();
        let RelExpr::Var(idx) = p.rel_expr(v) else {
            unreachable!()
        };
        assert_eq!(var_polarity(&p, v, idx), Polarity::Positive);
        assert_eq!(var_polarity(&p, po, idx), Polarity::Constant);
        let grow = p.seq(v, po);
        assert_eq!(var_polarity(&p, grow, idx), Polarity::Positive);
        let closed = p.plus(grow);
        assert_eq!(var_polarity(&p, closed, idx), Polarity::Positive);
        let negated = p.diff(com, v);
        assert_eq!(var_polarity(&p, negated, idx), Polarity::Negative);
        let mixed = p.union(grow, negated);
        assert_eq!(var_polarity(&p, mixed, idx), Polarity::Mixed);
        let lifted = p.stronglift(com, v);
        assert_eq!(var_polarity(&p, lifted, idx), Polarity::Mixed);
    }

    #[test]
    fn incremental_fix_reiterates_under_deltas() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let rfe = p.base(RelBase::Rfe);
        let v = p.fresh_var();
        let vv = p.seq(v, v);
        let body = p.union_all(&[po, rfe, vv]);
        let hb = p.fix(&[v], &[body])[0];
        let axioms = vec![p.axiom("Order", AxiomHead::Acyclic, hb)];

        let mut inc = IncrementalEval::new(&p);
        // The fixpoint's footprint is its bodies', on both signs.
        assert!(inc.footprint(hb).intersects(DeltaMask::PO));
        assert!(inc.footprint(hb).intersects(DeltaMask::RF));
        assert!(inc.nonmonotone_inputs(hb).intersects(DeltaMask::RF));

        let mut exec = catalog::mp();
        inc.apply(&exec, &Delta::everything());
        assert_matches_scratch(&p, &axioms, &mut inc, &exec, "initial");

        exec.rf.insert(0, 3);
        let mut delta = Delta::new();
        delta.add_edge(RelBase::Rf, 0, 3);
        inc.apply(&exec, &delta);
        assert_matches_scratch(&p, &axioms, &mut inc, &exec, "rf added");

        exec.rf.remove(0, 3);
        let mut delta = Delta::new();
        delta.remove_edge(RelBase::Rf, 0, 3);
        inc.apply(&exec, &delta);
        assert_matches_scratch(&p, &axioms, &mut inc, &exec, "rf removed");

        let stats = inc.stats();
        assert!(stats.fix_reevals > 0, "fix nodes re-iterate, not maintain");
        assert_eq!(stats.invalidated, 0);
    }

    #[test]
    fn costs_order_cheap_axioms_first() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let rf = p.base(RelBase::Rf);
        let cheap = p.axiom("Cheap", AxiomHead::Empty, rf);
        let seq = p.seq(po, rf);
        let closed = p.star(seq);
        let pricey = p.axiom("Pricey", AxiomHead::Acyclic, closed);
        assert!(cheap.cost < pricey.cost);
    }
}

//! A declarative relational-algebra IR for memory-model axioms.
//!
//! The paper defines every model — SC/TSC, x86 ± TM, Power ± TM, ARMv8 ± TM
//! and C++ ± TM — as a handful of axioms (`acyclic`/`irreflexive`/`empty`
//! heads) over derived relations built from a small operator vocabulary:
//! composition `;`, union `∪`, intersection `∩`, difference `\`, inverse
//! `r⁻¹`, the closures `r?`/`r⁺`/`r*`, identity restrictions `[S]`, and the
//! transaction lifts `weaklift`/`stronglift`. This module makes that
//! vocabulary first-class:
//!
//! * [`RelExpr`] nodes (and [`SetExpr`] nodes for event sets) are interned
//!   into an [`IrPool`] with hash-consing, so a subexpression written twice —
//!   inside one axiom, across two axioms, or across two *models* — is one
//!   node with one identity;
//! * an [`IrEval`] evaluates interned expressions against an [`ExecView`],
//!   memoizing each node's value per execution. Because identical
//!   subexpressions share a node, common-subexpression elimination falls out
//!   of the representation: the shared node is computed once no matter how
//!   many axioms of how many models mention it. This generalises the four
//!   hand-picked memoized axiom bodies the view used to carry;
//! * an [`Axiom`] pairs a body with an [`AxiomHead`] and a syntactic cost
//!   estimate, so a consistency sweep can check cheapest axioms first and
//!   stop at the first violation;
//! * [`rel_polarity`] computes the syntactic polarity of a base relation
//!   inside an expression, which the metatheory uses to *derive* §8.1
//!   monotonicity from axiom structure (see [`txn_polarity`]).
//!
//! The pool is deliberately independent of any concrete model: `tm-models`
//! builds one shared catalog for the paper's models, and user-defined models
//! can build their own pools with the same constructors.
//!
//! # Examples
//!
//! ```
//! use tm_exec::ir::{AxiomHead, IrEval, IrPool, RelBase};
//! use tm_exec::{catalog, ExecView};
//!
//! let mut pool = IrPool::new();
//! let po = pool.base(RelBase::Po);
//! let com = pool.base(RelBase::Com);
//! let hb = pool.union(po, com);
//! // Writing the union again yields the same node: hash-consing.
//! assert_eq!(hb, pool.union(com, po));
//! let order = pool.axiom("Order", AxiomHead::Acyclic, hb);
//!
//! let exec = catalog::sb();
//! let view = ExecView::new(&exec);
//! let eval = IrEval::new(&pool, &view);
//! // Store buffering has a po ∪ com cycle: the SC Order axiom fails.
//! assert!(!eval.holds(&order));
//! assert!(eval.witness(&order).is_some());
//! ```

use std::cell::OnceCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use tm_relation::{ElemSet, Relation};

use crate::{ExecView, Execution, Fence};

/// Base event sets an [`ExecView`] can provide.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SetBase {
    /// The set `R` of read events.
    Reads,
    /// The set `W` of write events.
    Writes,
    /// The set `F` of fence events (any kind).
    Fences,
    /// The set `Acq` of acquire events.
    Acquires,
    /// The set `Rel` of release events.
    Releases,
    /// The set `SC` of seq_cst events.
    ScEvents,
    /// The set `Ato` of C++ atomic events.
    Atomics,
    /// Fence events of exactly one kind.
    FencesOf(Fence),
    /// Sources of the `rmw` pairing (the reads of RMWs).
    RmwDomain,
    /// Targets of the `rmw` pairing (the writes of RMWs).
    RmwRange,
}

/// Base (primitive or view-derived) relations an [`ExecView`] can provide.
///
/// Everything here is either stored on the [`Execution`] or memoized on the
/// view, so a base node costs one lookup however often it is mentioned.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RelBase {
    /// Program order.
    Po,
    /// Reads-from.
    Rf,
    /// Coherence.
    Co,
    /// Address dependencies.
    Addr,
    /// Data dependencies.
    Data,
    /// Control dependencies.
    Ctrl,
    /// Read-modify-write pairing.
    Rmw,
    /// Same-successful-transaction.
    Stxn,
    /// Same-successful-atomic-transaction.
    Stxnat,
    /// Same-critical-region.
    Scr,
    /// Same-location pairs.
    Sloc,
    /// Program order restricted to same-location accesses.
    Poloc,
    /// Program order between different locations.
    PoDiffLoc,
    /// From-read.
    Fr,
    /// External reads-from.
    Rfe,
    /// Internal reads-from.
    Rfi,
    /// External coherence.
    Coe,
    /// External from-read.
    Fre,
    /// Communication `rf ∪ co ∪ fr`.
    Com,
    /// External communication.
    Come,
    /// Extended communication `com ∪ (co ; rf)`.
    Ecom,
    /// The C++ conflict relation.
    Cnf,
    /// Implicit transaction-boundary fences.
    Tfence,
    /// The per-architecture fence relation `po ; [F_kind] ; po`.
    FenceRel(Fence),
}

/// An interned set expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SetExpr {
    /// A base set provided by the view.
    Base(SetBase),
    /// Set union.
    Union(SetId, SetId),
    /// Set intersection.
    Inter(SetId, SetId),
}

/// An interned relation expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RelExpr {
    /// A base relation provided by the view.
    Base(RelBase),
    /// The identity relation `[S]` on a set.
    IdOn(SetId),
    /// The cartesian product `A × B` of two sets.
    Cross(SetId, SetId),
    /// Relational composition `a ; b`.
    Seq(RelId, RelId),
    /// Union `a ∪ b`.
    Union(RelId, RelId),
    /// Intersection `a ∩ b`.
    Inter(RelId, RelId),
    /// Difference `a \ b`.
    Diff(RelId, RelId),
    /// Inverse `a⁻¹`.
    Inverse(RelId),
    /// Reflexive closure `a?`.
    Opt(RelId),
    /// Transitive closure `a⁺`.
    Plus(RelId),
    /// Reflexive-transitive closure `a*`.
    Star(RelId),
    /// `weaklift(a, t) = t ; (a \ t) ; t` (§3.3).
    WeakLift(RelId, RelId),
    /// `stronglift(a, t) = t? ; (a \ t) ; t?` (§3.3).
    StrongLift(RelId, RelId),
}

/// Identity of an interned [`SetExpr`] within one [`IrPool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SetId(u32);

/// Identity of an interned [`RelExpr`] within one [`IrPool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(u32);

impl RelId {
    /// The dense index of this expression in its pool.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl SetId {
    /// The dense index of this expression in its pool.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The predicate an [`Axiom`] applies to its body relation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AxiomHead {
    /// `acyclic(body)`.
    Acyclic,
    /// `irreflexive(body)`.
    Irreflexive,
    /// `empty(body)`.
    Empty,
}

/// One named axiom of a memory model: a head predicate over an interned
/// body, plus a syntactic cost estimate used to order early-exit checks.
#[derive(Clone, Copy, Debug)]
pub struct Axiom {
    /// The axiom's name as it appears in verdicts (e.g. `"Order"`).
    pub name: &'static str,
    /// The predicate applied to the body.
    pub head: AxiomHead,
    /// The interned body relation.
    pub body: RelId,
    /// Estimated evaluation cost (arbitrary units; larger = slower). Used to
    /// check cheap axioms first when only a boolean verdict is needed.
    pub cost: u32,
}

static POOL_STAMPS: AtomicU64 = AtomicU64::new(1);

/// A hash-consing arena of [`RelExpr`]/[`SetExpr`] nodes.
///
/// Interning the same structural expression twice returns the same id, so
/// node identity doubles as a memoization key: see [`IrEval`]. Unions and
/// intersections are normalised by operand order, making them commutative at
/// the representation level (`a ∪ b` and `b ∪ a` are one node).
#[derive(Debug, Default)]
pub struct IrPool {
    stamp: u64,
    rels: Vec<RelExpr>,
    rel_costs: Vec<u32>,
    rel_index: HashMap<RelExpr, RelId>,
    sets: Vec<SetExpr>,
    set_index: HashMap<SetExpr, SetId>,
}

impl IrPool {
    /// Creates an empty pool with a process-unique stamp (used to keep two
    /// pools' memo tables apart when both evaluate against one view).
    pub fn new() -> IrPool {
        IrPool {
            stamp: POOL_STAMPS.fetch_add(1, Ordering::Relaxed),
            ..IrPool::default()
        }
    }

    /// The process-unique identity of this pool.
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Number of interned relation expressions.
    pub fn rel_count(&self) -> usize {
        self.rels.len()
    }

    /// Number of interned set expressions.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// The node behind a relation id.
    pub fn rel_expr(&self, id: RelId) -> RelExpr {
        self.rels[id.index()]
    }

    /// The node behind a set id.
    pub fn set_expr(&self, id: SetId) -> SetExpr {
        self.sets[id.index()]
    }

    /// The syntactic cost estimate of a relation expression.
    pub fn rel_cost(&self, id: RelId) -> u32 {
        self.rel_costs[id.index()]
    }

    fn intern_set(&mut self, node: SetExpr) -> SetId {
        if let Some(&id) = self.set_index.get(&node) {
            return id;
        }
        let id = SetId(self.sets.len() as u32);
        self.sets.push(node);
        self.set_index.insert(node, id);
        id
    }

    fn intern_rel(&mut self, node: RelExpr) -> RelId {
        if let Some(&id) = self.rel_index.get(&node) {
            return id;
        }
        let cost = self.cost_of(node);
        let id = RelId(self.rels.len() as u32);
        self.rels.push(node);
        self.rel_costs.push(cost);
        self.rel_index.insert(node, id);
        id
    }

    /// Cost heuristic: base lookups are nearly free (memoized on the view),
    /// boolean combinations are linear in the bit matrix, compositions cost
    /// more, closures and lifts the most.
    fn cost_of(&self, node: RelExpr) -> u32 {
        let c = |id: RelId| self.rel_costs[id.index()];
        match node {
            RelExpr::Base(_) => 1,
            RelExpr::IdOn(_) | RelExpr::Cross(_, _) => 2,
            RelExpr::Union(a, b) | RelExpr::Inter(a, b) | RelExpr::Diff(a, b) => c(a) + c(b) + 1,
            RelExpr::Seq(a, b) => c(a) + c(b) + 4,
            RelExpr::Inverse(a) => c(a) + 2,
            RelExpr::Opt(a) => c(a) + 1,
            RelExpr::Plus(a) | RelExpr::Star(a) => c(a) + 12,
            RelExpr::WeakLift(a, t) | RelExpr::StrongLift(a, t) => c(a) + c(t) + 10,
        }
    }

    // ---- set constructors -------------------------------------------------

    /// Interns a base set.
    pub fn set_base(&mut self, base: SetBase) -> SetId {
        self.intern_set(SetExpr::Base(base))
    }

    /// Interns a set union (normalised: commutative).
    pub fn set_union(&mut self, a: SetId, b: SetId) -> SetId {
        if a == b {
            return a;
        }
        let (a, b) = (a.min(b), a.max(b));
        self.intern_set(SetExpr::Union(a, b))
    }

    /// Interns a set intersection (normalised: commutative).
    pub fn set_inter(&mut self, a: SetId, b: SetId) -> SetId {
        if a == b {
            return a;
        }
        let (a, b) = (a.min(b), a.max(b));
        self.intern_set(SetExpr::Inter(a, b))
    }

    // ---- relation constructors --------------------------------------------

    /// Interns a base relation.
    pub fn base(&mut self, base: RelBase) -> RelId {
        self.intern_rel(RelExpr::Base(base))
    }

    /// Interns the identity `[S]` on a set.
    pub fn id_on(&mut self, set: SetId) -> RelId {
        self.intern_rel(RelExpr::IdOn(set))
    }

    /// Interns the cartesian product of two sets.
    pub fn cross(&mut self, a: SetId, b: SetId) -> RelId {
        self.intern_rel(RelExpr::Cross(a, b))
    }

    /// Interns a composition `a ; b`.
    pub fn seq(&mut self, a: RelId, b: RelId) -> RelId {
        self.intern_rel(RelExpr::Seq(a, b))
    }

    /// Interns the composition of a whole chain, left to right.
    ///
    /// # Panics
    ///
    /// Panics if `chain` is empty.
    pub fn seq_all(&mut self, chain: &[RelId]) -> RelId {
        let (&first, rest) = chain.split_first().expect("seq_all of an empty chain");
        rest.iter().fold(first, |acc, &next| self.seq(acc, next))
    }

    /// Interns a union (normalised: commutative, idempotent).
    pub fn union(&mut self, a: RelId, b: RelId) -> RelId {
        if a == b {
            return a;
        }
        let (a, b) = (a.min(b), a.max(b));
        self.intern_rel(RelExpr::Union(a, b))
    }

    /// Interns the union of a whole list of relations.
    ///
    /// Operands are sorted first so that any two unions of the same parts —
    /// however they were written — intern to the same node tree.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn union_all(&mut self, parts: &[RelId]) -> RelId {
        let mut sorted = parts.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let (&first, rest) = sorted.split_first().expect("union_all of an empty list");
        rest.iter().fold(first, |acc, &next| self.union(acc, next))
    }

    /// Interns an intersection (normalised: commutative, idempotent).
    pub fn inter(&mut self, a: RelId, b: RelId) -> RelId {
        if a == b {
            return a;
        }
        let (a, b) = (a.min(b), a.max(b));
        self.intern_rel(RelExpr::Inter(a, b))
    }

    /// Interns a difference `a \ b`.
    pub fn diff(&mut self, a: RelId, b: RelId) -> RelId {
        self.intern_rel(RelExpr::Diff(a, b))
    }

    /// Interns an inverse `a⁻¹`.
    pub fn inverse(&mut self, a: RelId) -> RelId {
        self.intern_rel(RelExpr::Inverse(a))
    }

    /// Interns a reflexive closure `a?`.
    pub fn opt(&mut self, a: RelId) -> RelId {
        self.intern_rel(RelExpr::Opt(a))
    }

    /// Interns a transitive closure `a⁺`.
    pub fn plus(&mut self, a: RelId) -> RelId {
        self.intern_rel(RelExpr::Plus(a))
    }

    /// Interns a reflexive-transitive closure `a*`.
    pub fn star(&mut self, a: RelId) -> RelId {
        self.intern_rel(RelExpr::Star(a))
    }

    /// Interns `weaklift(a, t)`.
    pub fn weaklift(&mut self, a: RelId, t: RelId) -> RelId {
        self.intern_rel(RelExpr::WeakLift(a, t))
    }

    /// Interns `stronglift(a, t)`.
    pub fn stronglift(&mut self, a: RelId, t: RelId) -> RelId {
        self.intern_rel(RelExpr::StrongLift(a, t))
    }

    /// Builds an [`Axiom`] over an interned body, computing its cost.
    pub fn axiom(&mut self, name: &'static str, head: AxiomHead, body: RelId) -> Axiom {
        let head_cost = match head {
            AxiomHead::Acyclic => 3,
            AxiomHead::Irreflexive | AxiomHead::Empty => 1,
        };
        Axiom {
            name,
            head,
            body,
            cost: self.rel_cost(body) + head_cost,
        }
    }
}

/// Per-execution memo table for one pool's expressions, hosted on an
/// [`ExecView`] so that every axiom of every model checking that execution
/// shares it.
#[derive(Debug)]
pub struct IrMemo {
    stamp: u64,
    rels: Box<[OnceCell<Relation>]>,
    sets: Box<[OnceCell<ElemSet>]>,
}

impl IrMemo {
    pub(crate) fn new(stamp: u64, rel_count: usize, set_count: usize) -> IrMemo {
        IrMemo {
            stamp,
            rels: (0..rel_count).map(|_| OnceCell::new()).collect(),
            sets: (0..set_count).map(|_| OnceCell::new()).collect(),
        }
    }

    pub(crate) fn fits(&self, stamp: u64, rel_count: usize, set_count: usize) -> bool {
        self.stamp == stamp && self.rels.len() >= rel_count && self.sets.len() >= set_count
    }
}

enum Slots<'a> {
    /// The view's per-execution memo: shared with every other evaluator of
    /// the same pool on the same view (cross-axiom and cross-model CSE).
    Shared(&'a IrMemo),
    /// A private memo: used on uncached views (which promise to recompute)
    /// and when a different pool already claimed the view's memo.
    Local(IrMemo),
}

/// An evaluator of interned expressions against one [`ExecView`].
///
/// Each node's value is computed at most once per execution (see [`IrMemo`]);
/// base nodes delegate to the view's own memoized getters. The evaluator is
/// cheap to construct, so model checks build one per check call and still
/// share all node values through the view.
pub struct IrEval<'a> {
    pool: &'a IrPool,
    view: &'a ExecView<'a>,
    slots: Slots<'a>,
}

impl<'a> IrEval<'a> {
    /// Creates an evaluator for `pool` over `view`.
    pub fn new(pool: &'a IrPool, view: &'a ExecView<'a>) -> IrEval<'a> {
        let slots = match view.ir_memo(pool.stamp(), pool.rel_count(), pool.set_count()) {
            Some(memo) => Slots::Shared(memo),
            None => Slots::Local(IrMemo::new(
                pool.stamp(),
                pool.rel_count(),
                pool.set_count(),
            )),
        };
        IrEval { pool, view, slots }
    }

    /// The view this evaluator reads base relations from.
    pub fn view(&self) -> &'a ExecView<'a> {
        self.view
    }

    fn rel_slot(&self, id: RelId) -> &OnceCell<Relation> {
        match &self.slots {
            Slots::Shared(memo) => &memo.rels[id.index()],
            Slots::Local(memo) => &memo.rels[id.index()],
        }
    }

    fn set_slot(&self, id: SetId) -> &OnceCell<ElemSet> {
        match &self.slots {
            Slots::Shared(memo) => &memo.sets[id.index()],
            Slots::Local(memo) => &memo.sets[id.index()],
        }
    }

    /// The value of a set expression.
    pub fn set(&self, id: SetId) -> std::borrow::Cow<'_, ElemSet> {
        use std::borrow::Cow;
        match self.pool.set_expr(id) {
            SetExpr::Base(base) => match base {
                SetBase::Reads => self.view.reads(),
                SetBase::Writes => self.view.writes(),
                SetBase::Fences => self.view.fences(),
                SetBase::Acquires => self.view.acquires(),
                SetBase::Releases => self.view.releases(),
                SetBase::ScEvents => self.view.sc_events(),
                SetBase::Atomics => self.view.atomics(),
                SetBase::FencesOf(kind) => self.view.fences_of(kind),
                SetBase::RmwDomain => Cow::Borrowed(
                    self.set_slot(id)
                        .get_or_init(|| self.view.exec().rmw.domain()),
                ),
                SetBase::RmwRange => Cow::Borrowed(
                    self.set_slot(id)
                        .get_or_init(|| self.view.exec().rmw.range()),
                ),
            },
            _ => Cow::Borrowed(self.set_slot(id).get_or_init(|| self.compute_set(id))),
        }
    }

    fn compute_set(&self, id: SetId) -> ElemSet {
        match self.pool.set_expr(id) {
            SetExpr::Base(_) => unreachable!("base sets are served by the view"),
            SetExpr::Union(a, b) => self.set(a).union(&self.set(b)),
            SetExpr::Inter(a, b) => self.set(a).intersection(&self.set(b)),
        }
    }

    /// The value of a relation expression.
    pub fn rel(&self, id: RelId) -> std::borrow::Cow<'_, Relation> {
        use std::borrow::Cow;
        match self.pool.rel_expr(id) {
            RelExpr::Base(base) => self.base_rel(base),
            _ => Cow::Borrowed(self.rel_slot(id).get_or_init(|| self.compute_rel(id))),
        }
    }

    fn base_rel(&self, base: RelBase) -> std::borrow::Cow<'_, Relation> {
        use std::borrow::Cow;
        let exec = self.view.exec();
        match base {
            RelBase::Po => Cow::Borrowed(self.view.po()),
            RelBase::Rf => Cow::Borrowed(self.view.rf()),
            RelBase::Co => Cow::Borrowed(self.view.co()),
            RelBase::Addr => Cow::Borrowed(&exec.addr),
            RelBase::Data => Cow::Borrowed(&exec.data),
            RelBase::Ctrl => Cow::Borrowed(&exec.ctrl),
            RelBase::Rmw => Cow::Borrowed(&exec.rmw),
            RelBase::Stxn => Cow::Borrowed(&exec.stxn),
            RelBase::Stxnat => Cow::Borrowed(&exec.stxnat),
            RelBase::Scr => Cow::Borrowed(&exec.scr),
            RelBase::Sloc => self.view.sloc(),
            RelBase::Poloc => self.view.poloc(),
            RelBase::PoDiffLoc => self.view.po_diff_loc(),
            RelBase::Fr => self.view.fr(),
            RelBase::Rfe => self.view.rfe(),
            RelBase::Rfi => self.view.rfi(),
            RelBase::Coe => self.view.coe(),
            RelBase::Fre => self.view.fre(),
            RelBase::Com => self.view.com(),
            RelBase::Come => self.view.come(),
            RelBase::Ecom => self.view.ecom(),
            RelBase::Cnf => self.view.cnf(),
            RelBase::Tfence => self.view.tfence(),
            RelBase::FenceRel(kind) => self.view.fence_rel(kind),
        }
    }

    fn compute_rel(&self, id: RelId) -> Relation {
        match self.pool.rel_expr(id) {
            RelExpr::Base(_) => unreachable!("base relations are served by the view"),
            RelExpr::IdOn(s) => Relation::identity_on(&self.set(s)),
            RelExpr::Cross(a, b) => Relation::cross(&self.set(a), &self.set(b)),
            RelExpr::Seq(a, b) => self.rel(a).compose(&self.rel(b)),
            RelExpr::Union(a, b) => {
                let mut out = self.rel(a).into_owned();
                out.union_in_place(&self.rel(b));
                out
            }
            RelExpr::Inter(a, b) => {
                let mut out = self.rel(a).into_owned();
                out.intersect_in_place(&self.rel(b));
                out
            }
            RelExpr::Diff(a, b) => {
                let mut out = self.rel(a).into_owned();
                out.difference_in_place(&self.rel(b));
                out
            }
            RelExpr::Inverse(a) => self.rel(a).inverse(),
            RelExpr::Opt(a) => self.rel(a).reflexive_closure(),
            RelExpr::Plus(a) => {
                let mut out = self.rel(a).into_owned();
                out.transitive_closure_in_place();
                out
            }
            RelExpr::Star(a) => {
                let mut out = self.rel(a).into_owned();
                out.transitive_closure_in_place();
                for e in 0..out.universe() {
                    out.insert(e, e);
                }
                out
            }
            RelExpr::WeakLift(a, t) => Execution::weaklift(&self.rel(a), &self.rel(t)),
            RelExpr::StrongLift(a, t) => Execution::stronglift(&self.rel(a), &self.rel(t)),
        }
    }

    /// True if the axiom holds on this execution. Does not extract a witness,
    /// so this is the fast path for early-exit sweeps.
    pub fn holds(&self, axiom: &Axiom) -> bool {
        let body = self.rel(axiom.body);
        match axiom.head {
            AxiomHead::Acyclic => body.is_acyclic(),
            AxiomHead::Irreflexive => body.is_irreflexive(),
            AxiomHead::Empty => body.is_empty(),
        }
    }

    /// A witness of the axiom's violation (`None` if it holds): a cycle for
    /// `acyclic`, a fixed point for `irreflexive`, the first pair for
    /// `empty` — matching what the hand-written checks used to report.
    pub fn witness(&self, axiom: &Axiom) -> Option<Vec<usize>> {
        let body = self.rel(axiom.body);
        match axiom.head {
            AxiomHead::Acyclic => body.find_cycle(),
            AxiomHead::Irreflexive => (0..body.universe())
                .find(|&a| body.contains(a, a))
                .map(|a| vec![a]),
            AxiomHead::Empty => body.iter().next().map(|(a, b)| vec![a, b]),
        }
    }
}

// ---- polarity analysis ----------------------------------------------------

/// The syntactic polarity of a base relation's occurrences in an expression.
///
/// If growing the base relation can only grow the expression's value the
/// polarity is [`Positive`](Polarity::Positive); if it can only shrink it,
/// [`Negative`](Polarity::Negative); occurrences under both signs are
/// [`Mixed`](Polarity::Mixed), and no occurrence at all is
/// [`Constant`](Polarity::Constant).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Polarity {
    /// The expression does not depend on the base relation.
    Constant,
    /// Monotonically non-decreasing in the base relation.
    Positive,
    /// Monotonically non-increasing in the base relation.
    Negative,
    /// Occurs under both signs; no monotonicity conclusion is possible.
    Mixed,
}

impl Polarity {
    /// Least upper bound in the lattice `Constant < {Positive, Negative} < Mixed`.
    pub fn join(self, other: Polarity) -> Polarity {
        use Polarity::*;
        match (self, other) {
            (Constant, p) | (p, Constant) => p,
            (Positive, Positive) => Positive,
            (Negative, Negative) => Negative,
            _ => Mixed,
        }
    }

    /// Flips the sign (under a difference's right operand).
    pub fn negate(self) -> Polarity {
        match self {
            Polarity::Positive => Polarity::Negative,
            Polarity::Negative => Polarity::Positive,
            p => p,
        }
    }
}

/// The polarity of a set expression with respect to the base relations
/// classified by `of`: almost every base set is an event-kind predicate and
/// thus constant, but `RmwDomain`/`RmwRange` are derived from the `rmw`
/// relation (monotonically — growing `rmw` grows both projections), and set
/// union/intersection are monotone in each operand.
pub fn set_polarity(pool: &IrPool, id: SetId, of: &impl Fn(RelBase) -> Polarity) -> Polarity {
    match pool.set_expr(id) {
        SetExpr::Base(SetBase::RmwDomain | SetBase::RmwRange) => of(RelBase::Rmw),
        SetExpr::Base(_) => Polarity::Constant,
        SetExpr::Union(a, b) | SetExpr::Inter(a, b) => {
            set_polarity(pool, a, of).join(set_polarity(pool, b, of))
        }
    }
}

/// Computes the syntactic polarity of `id` with respect to the base
/// relations classified by `of`.
///
/// Every operator of the IR except difference is monotone in each operand,
/// so polarities join; the right operand of `\` is negated. `IdOn`/`Cross`
/// take the polarity of their sets (see [`set_polarity`] — event-kind sets
/// are constant, but the RMW projections track `rmw`).
pub fn rel_polarity(pool: &IrPool, id: RelId, of: &impl Fn(RelBase) -> Polarity) -> Polarity {
    match pool.rel_expr(id) {
        RelExpr::Base(base) => of(base),
        RelExpr::IdOn(s) => set_polarity(pool, s, of),
        RelExpr::Cross(a, b) => set_polarity(pool, a, of).join(set_polarity(pool, b, of)),
        RelExpr::Seq(a, b) | RelExpr::Union(a, b) | RelExpr::Inter(a, b) => {
            rel_polarity(pool, a, of).join(rel_polarity(pool, b, of))
        }
        RelExpr::Diff(a, b) => rel_polarity(pool, a, of).join(rel_polarity(pool, b, of).negate()),
        RelExpr::Inverse(a) | RelExpr::Opt(a) | RelExpr::Plus(a) | RelExpr::Star(a) => {
            rel_polarity(pool, a, of)
        }
        // lift(r, t) = t⟨?⟩ ; (r \ t) ; t⟨?⟩ — t occurs both positively
        // (the outer compositions) and negatively (the difference).
        RelExpr::WeakLift(a, t) | RelExpr::StrongLift(a, t) => {
            let pt = rel_polarity(pool, t, of);
            rel_polarity(pool, a, of).join(pt).join(pt.negate())
        }
    }
}

/// The polarity of `id` in the *transactional structure* of an execution:
/// `stxn`/`stxnat` count positively, and `tfence` — whose definition
/// `po ∩ ((¬stxn ; stxn) ∪ (stxn ; ¬stxn))` mentions `stxn` under both
/// signs — counts as mixed.
///
/// If every axiom body of a model is `Constant` or `Positive` here, shrinking
/// the transactions of an execution shrinks every axiom body, so a consistent
/// execution stays consistent under every transaction reduction: §8.1
/// monotonicity holds *by construction*. `Mixed` is inconclusive (the model
/// may still be monotone, as x86 is), never wrong.
pub fn txn_polarity(pool: &IrPool, id: RelId) -> Polarity {
    rel_polarity(pool, id, &|base| match base {
        RelBase::Stxn | RelBase::Stxnat => Polarity::Positive,
        RelBase::Tfence => Polarity::Mixed,
        _ => Polarity::Constant,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn eval_pair<'a>(pool: &'a IrPool, view: &'a ExecView<'a>) -> IrEval<'a> {
        IrEval::new(pool, view)
    }

    #[test]
    fn hash_consing_shares_nodes_across_expressions() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let com = p.base(RelBase::Com);
        let u1 = p.union(po, com);
        let u2 = p.union(com, po);
        assert_eq!(u1, u2);
        let all = p.union_all(&[com, po, com]);
        assert_eq!(all, u1);
        let s1 = p.seq(po, com);
        let s2 = p.seq(po, com);
        assert_eq!(s1, s2);
        // Composition is not commutative: different node.
        assert_ne!(s1, p.seq(com, po));
        // po, com, po ∪ com, po ; com, com ; po — and nothing else.
        assert_eq!(p.rel_count(), 5);
    }

    #[test]
    fn evaluation_matches_direct_computation() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let rf = p.base(RelBase::Rf);
        let fr = p.base(RelBase::Fr);
        let com = p.base(RelBase::Com);
        let seq = p.seq(rf, po);
        let u = p.union(po, com);
        let star = p.star(rf);
        let inv = p.inverse(rf);
        let reads = p.set_base(SetBase::Reads);
        let writes = p.set_base(SetBase::Writes);
        let id_r = p.id_on(reads);
        let wr = p.cross(writes, reads);
        let restricted = p.seq(id_r, fr);

        for exec in [
            catalog::sb(),
            catalog::mp_txn(),
            catalog::power_wrc_tprop1(),
        ] {
            let view = ExecView::new(&exec);
            let e = eval_pair(&p, &view);
            assert_eq!(*e.rel(seq), exec.rf.compose(&exec.po));
            assert_eq!(*e.rel(u), exec.po.union(&exec.com()));
            assert_eq!(*e.rel(star), exec.rf.reflexive_transitive_closure());
            assert_eq!(*e.rel(inv), exec.rf.inverse());
            assert_eq!(
                *e.rel(wr),
                tm_relation::Relation::cross(&exec.writes(), &exec.reads())
            );
            assert_eq!(
                *e.rel(restricted),
                tm_relation::Relation::identity_on(&exec.reads()).compose(&exec.fr())
            );
        }
    }

    #[test]
    fn lifts_evaluate_through_execution_helpers() {
        let mut p = IrPool::new();
        let com = p.base(RelBase::Com);
        let stxn = p.base(RelBase::Stxn);
        let weak = p.weaklift(com, stxn);
        let strong = p.stronglift(com, stxn);
        let exec = catalog::fig2();
        let view = ExecView::new(&exec);
        let e = eval_pair(&p, &view);
        assert_eq!(*e.rel(weak), Execution::weaklift(&exec.com(), &exec.stxn));
        assert_eq!(
            *e.rel(strong),
            Execution::stronglift(&exec.com(), &exec.stxn)
        );
    }

    #[test]
    fn axiom_heads_and_witnesses() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let com = p.base(RelBase::Com);
        let hb = p.union(po, com);
        let order = p.axiom("Order", AxiomHead::Acyclic, hb);
        let rmw = p.base(RelBase::Rmw);
        let empty_rmw = p.axiom("NoRmw", AxiomHead::Empty, rmw);

        let sb = catalog::sb();
        let view = ExecView::new(&sb);
        let e = eval_pair(&p, &view);
        assert!(!e.holds(&order));
        let cycle = e.witness(&order).expect("sb has an SC cycle");
        assert!(cycle.len() >= 2);
        assert!(e.holds(&empty_rmw));
        assert_eq!(e.witness(&empty_rmw), None);

        let mp_txn = catalog::mp_txn();
        let view = ExecView::new(&mp_txn);
        let e = eval_pair(&p, &view);
        assert!(!e.holds(&order));
    }

    #[test]
    fn memo_is_shared_through_the_view() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let com = p.base(RelBase::Com);
        let hb = p.union(po, com);
        let exec = catalog::sb();
        let view = ExecView::new(&exec);
        let first = eval_pair(&p, &view);
        let value = first.rel(hb).into_owned();
        // A second evaluator over the same view sees the cached value.
        let second = eval_pair(&p, &view);
        assert!(matches!(second.slots, Slots::Shared(_)));
        assert_eq!(*second.rel(hb), value);
        // An uncached view gets a private memo but the same values.
        let fresh_view = ExecView::uncached(&exec);
        let third = eval_pair(&p, &fresh_view);
        assert!(matches!(third.slots, Slots::Local(_)));
        assert_eq!(*third.rel(hb), value);
    }

    #[test]
    fn second_pool_falls_back_to_a_local_memo() {
        let mut p1 = IrPool::new();
        let hb1 = {
            let po = p1.base(RelBase::Po);
            let com = p1.base(RelBase::Com);
            p1.union(po, com)
        };
        let mut p2 = IrPool::new();
        let hb2 = {
            let po = p2.base(RelBase::Po);
            let com = p2.base(RelBase::Com);
            p2.union(po, com)
        };
        assert_ne!(p1.stamp(), p2.stamp());
        let exec = catalog::sb();
        let view = ExecView::new(&exec);
        let e1 = eval_pair(&p1, &view);
        let _ = e1.rel(hb1);
        let e2 = eval_pair(&p2, &view);
        assert!(matches!(e2.slots, Slots::Local(_)));
        assert_eq!(*e2.rel(hb2), *e1.rel(hb1));
    }

    #[test]
    fn polarity_analysis_follows_the_rules() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let com = p.base(RelBase::Com);
        let stxn = p.base(RelBase::Stxn);
        let tfence = p.base(RelBase::Tfence);

        assert_eq!(txn_polarity(&p, po), Polarity::Constant);
        assert_eq!(txn_polarity(&p, stxn), Polarity::Positive);
        assert_eq!(txn_polarity(&p, tfence), Polarity::Mixed);

        let pos = p.seq(stxn, po);
        assert_eq!(txn_polarity(&p, pos), Polarity::Positive);
        let neg = p.diff(po, stxn);
        assert_eq!(txn_polarity(&p, neg), Polarity::Negative);
        let mixed = p.union(pos, neg);
        assert_eq!(txn_polarity(&p, mixed), Polarity::Mixed);
        let lifted = p.stronglift(com, stxn);
        assert_eq!(txn_polarity(&p, lifted), Polarity::Mixed);
        let closure = p.plus(pos);
        assert_eq!(txn_polarity(&p, closure), Polarity::Positive);
    }

    #[test]
    fn polarity_sees_through_relation_derived_sets() {
        // [dom(rmw) ∪ ran(rmw)] ; po — the x86 "implied" shape — must track
        // the rmw relation, even though it goes through set nodes.
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let dom = p.set_base(SetBase::RmwDomain);
        let ran = p.set_base(SetBase::RmwRange);
        let locked = p.set_union(dom, ran);
        let id_l = p.id_on(locked);
        let implied = p.seq(id_l, po);
        let of_rmw = |base: RelBase| {
            if base == RelBase::Rmw {
                Polarity::Positive
            } else {
                Polarity::Constant
            }
        };
        assert_eq!(rel_polarity(&p, implied, &of_rmw), Polarity::Positive);
        // Event-kind sets stay constant.
        let reads = p.set_base(SetBase::Reads);
        let id_r = p.id_on(reads);
        assert_eq!(rel_polarity(&p, id_r, &of_rmw), Polarity::Constant);
        // And nothing here depends on the transactional structure.
        assert_eq!(txn_polarity(&p, implied), Polarity::Constant);
    }

    #[test]
    fn costs_order_cheap_axioms_first() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let rf = p.base(RelBase::Rf);
        let cheap = p.axiom("Cheap", AxiomHead::Empty, rf);
        let seq = p.seq(po, rf);
        let closed = p.star(seq);
        let pricey = p.axiom("Pricey", AxiomHead::Acyclic, closed);
        assert!(cheap.cost < pricey.cost);
    }
}

//! A declarative relational-algebra IR for memory-model axioms.
//!
//! The paper defines every model — SC/TSC, x86 ± TM, Power ± TM, ARMv8 ± TM
//! and C++ ± TM — as a handful of axioms (`acyclic`/`irreflexive`/`empty`
//! heads) over derived relations built from a small operator vocabulary:
//! composition `;`, union `∪`, intersection `∩`, difference `\`, inverse
//! `r⁻¹`, the closures `r?`/`r⁺`/`r*`, identity restrictions `[S]`, and the
//! transaction lifts `weaklift`/`stronglift`. This module makes that
//! vocabulary first-class:
//!
//! * [`RelExpr`] nodes (and [`SetExpr`] nodes for event sets) are interned
//!   into an [`IrPool`] with hash-consing, so a subexpression written twice —
//!   inside one axiom, across two axioms, or across two *models* — is one
//!   node with one identity;
//! * an [`IrEval`] evaluates interned expressions against an [`ExecView`],
//!   memoizing each node's value per execution. Because identical
//!   subexpressions share a node, common-subexpression elimination falls out
//!   of the representation: the shared node is computed once no matter how
//!   many axioms of how many models mention it. This generalises the four
//!   hand-picked memoized axiom bodies the view used to carry;
//! * an [`Axiom`] pairs a body with an [`AxiomHead`] and a syntactic cost
//!   estimate, so a consistency sweep can check cheapest axioms first and
//!   stop at the first violation;
//! * [`rel_polarity`] computes the syntactic polarity of a base relation
//!   inside an expression, which the metatheory uses to *derive* §8.1
//!   monotonicity from axiom structure (see [`txn_polarity`]).
//!
//! The pool is deliberately independent of any concrete model: `tm-models`
//! builds one shared catalog for the paper's models, and user-defined models
//! can build their own pools with the same constructors.
//!
//! # Examples
//!
//! ```
//! use tm_exec::ir::{AxiomHead, IrEval, IrPool, RelBase};
//! use tm_exec::{catalog, ExecView};
//!
//! let mut pool = IrPool::new();
//! let po = pool.base(RelBase::Po);
//! let com = pool.base(RelBase::Com);
//! let hb = pool.union(po, com);
//! // Writing the union again yields the same node: hash-consing.
//! assert_eq!(hb, pool.union(com, po));
//! let order = pool.axiom("Order", AxiomHead::Acyclic, hb);
//!
//! let exec = catalog::sb();
//! let view = ExecView::new(&exec);
//! let eval = IrEval::new(&pool, &view);
//! // Store buffering has a po ∪ com cycle: the SC Order axiom fails.
//! assert!(!eval.holds(&order));
//! assert!(eval.witness(&order).is_some());
//! ```

use std::cell::OnceCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use tm_relation::{ElemSet, Relation};

use crate::{ExecView, Execution, Fence};

/// Base event sets an [`ExecView`] can provide.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SetBase {
    /// The set `R` of read events.
    Reads,
    /// The set `W` of write events.
    Writes,
    /// The set `F` of fence events (any kind).
    Fences,
    /// The set `Acq` of acquire events.
    Acquires,
    /// The set `Rel` of release events.
    Releases,
    /// The set `SC` of seq_cst events.
    ScEvents,
    /// The set `Ato` of C++ atomic events.
    Atomics,
    /// Fence events of exactly one kind.
    FencesOf(Fence),
    /// Sources of the `rmw` pairing (the reads of RMWs).
    RmwDomain,
    /// Targets of the `rmw` pairing (the writes of RMWs).
    RmwRange,
}

/// Base (primitive or view-derived) relations an [`ExecView`] can provide.
///
/// Everything here is either stored on the [`Execution`] or memoized on the
/// view, so a base node costs one lookup however often it is mentioned.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RelBase {
    /// Program order.
    Po,
    /// Reads-from.
    Rf,
    /// Coherence.
    Co,
    /// Address dependencies.
    Addr,
    /// Data dependencies.
    Data,
    /// Control dependencies.
    Ctrl,
    /// Read-modify-write pairing.
    Rmw,
    /// Same-successful-transaction.
    Stxn,
    /// Same-successful-atomic-transaction.
    Stxnat,
    /// Same-critical-region.
    Scr,
    /// Same-location pairs.
    Sloc,
    /// Program order restricted to same-location accesses.
    Poloc,
    /// Program order between different locations.
    PoDiffLoc,
    /// From-read.
    Fr,
    /// External reads-from.
    Rfe,
    /// Internal reads-from.
    Rfi,
    /// External coherence.
    Coe,
    /// External from-read.
    Fre,
    /// Communication `rf ∪ co ∪ fr`.
    Com,
    /// External communication.
    Come,
    /// Extended communication `com ∪ (co ; rf)`.
    Ecom,
    /// The C++ conflict relation.
    Cnf,
    /// Implicit transaction-boundary fences.
    Tfence,
    /// The per-architecture fence relation `po ; [F_kind] ; po`.
    FenceRel(Fence),
}

/// An interned set expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SetExpr {
    /// A base set provided by the view.
    Base(SetBase),
    /// Set union.
    Union(SetId, SetId),
    /// Set intersection.
    Inter(SetId, SetId),
}

/// An interned relation expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RelExpr {
    /// A base relation provided by the view.
    Base(RelBase),
    /// The identity relation `[S]` on a set.
    IdOn(SetId),
    /// The cartesian product `A × B` of two sets.
    Cross(SetId, SetId),
    /// Relational composition `a ; b`.
    Seq(RelId, RelId),
    /// Union `a ∪ b`.
    Union(RelId, RelId),
    /// Intersection `a ∩ b`.
    Inter(RelId, RelId),
    /// Difference `a \ b`.
    Diff(RelId, RelId),
    /// Inverse `a⁻¹`.
    Inverse(RelId),
    /// Reflexive closure `a?`.
    Opt(RelId),
    /// Transitive closure `a⁺`.
    Plus(RelId),
    /// Reflexive-transitive closure `a*`.
    Star(RelId),
    /// `weaklift(a, t) = t ; (a \ t) ; t` (§3.3).
    WeakLift(RelId, RelId),
    /// `stronglift(a, t) = t? ; (a \ t) ; t?` (§3.3).
    StrongLift(RelId, RelId),
}

/// Identity of an interned [`SetExpr`] within one [`IrPool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SetId(u32);

/// Identity of an interned [`RelExpr`] within one [`IrPool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(u32);

impl RelId {
    /// The dense index of this expression in its pool.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl SetId {
    /// The dense index of this expression in its pool.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The predicate an [`Axiom`] applies to its body relation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AxiomHead {
    /// `acyclic(body)`.
    Acyclic,
    /// `irreflexive(body)`.
    Irreflexive,
    /// `empty(body)`.
    Empty,
}

/// One named axiom of a memory model: a head predicate over an interned
/// body, plus a syntactic cost estimate used to order early-exit checks.
///
/// Names are [`Cow`](std::borrow::Cow) so the built-in catalog pays nothing
/// (string literals) while runtime-loaded models — e.g. those parsed from
/// `.cat` source by the `tm-cat` crate — carry names owned by the axiom.
#[derive(Clone, Debug)]
pub struct Axiom {
    /// The axiom's name as it appears in verdicts (e.g. `"Order"`).
    pub name: std::borrow::Cow<'static, str>,
    /// The predicate applied to the body.
    pub head: AxiomHead,
    /// The interned body relation.
    pub body: RelId,
    /// Estimated evaluation cost (arbitrary units; larger = slower). Used to
    /// check cheap axioms first when only a boolean verdict is needed.
    pub cost: u32,
}

static POOL_STAMPS: AtomicU64 = AtomicU64::new(1);

/// A hash-consing arena of [`RelExpr`]/[`SetExpr`] nodes.
///
/// Interning the same structural expression twice returns the same id, so
/// node identity doubles as a memoization key: see [`IrEval`]. Unions and
/// intersections are normalised by operand order, making them commutative at
/// the representation level (`a ∪ b` and `b ∪ a` are one node).
#[derive(Debug, Default)]
pub struct IrPool {
    stamp: u64,
    rels: Vec<RelExpr>,
    rel_costs: Vec<u32>,
    rel_index: HashMap<RelExpr, RelId>,
    sets: Vec<SetExpr>,
    set_index: HashMap<SetExpr, SetId>,
}

impl IrPool {
    /// Creates an empty pool with a process-unique stamp (used to keep two
    /// pools' memo tables apart when both evaluate against one view).
    pub fn new() -> IrPool {
        IrPool {
            stamp: POOL_STAMPS.fetch_add(1, Ordering::Relaxed),
            ..IrPool::default()
        }
    }

    /// The process-unique identity of this pool.
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Number of interned relation expressions.
    pub fn rel_count(&self) -> usize {
        self.rels.len()
    }

    /// Number of interned set expressions.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// The node behind a relation id.
    pub fn rel_expr(&self, id: RelId) -> RelExpr {
        self.rels[id.index()]
    }

    /// The node behind a set id.
    pub fn set_expr(&self, id: SetId) -> SetExpr {
        self.sets[id.index()]
    }

    /// The syntactic cost estimate of a relation expression.
    pub fn rel_cost(&self, id: RelId) -> u32 {
        self.rel_costs[id.index()]
    }

    fn intern_set(&mut self, node: SetExpr) -> SetId {
        if let Some(&id) = self.set_index.get(&node) {
            return id;
        }
        let id = SetId(self.sets.len() as u32);
        self.sets.push(node);
        self.set_index.insert(node, id);
        id
    }

    fn intern_rel(&mut self, node: RelExpr) -> RelId {
        if let Some(&id) = self.rel_index.get(&node) {
            return id;
        }
        let cost = self.cost_of(node);
        let id = RelId(self.rels.len() as u32);
        self.rels.push(node);
        self.rel_costs.push(cost);
        self.rel_index.insert(node, id);
        id
    }

    /// Cost heuristic: base lookups are nearly free (memoized on the view),
    /// boolean combinations are linear in the bit matrix, compositions cost
    /// more, closures and lifts the most.
    fn cost_of(&self, node: RelExpr) -> u32 {
        let c = |id: RelId| self.rel_costs[id.index()];
        match node {
            RelExpr::Base(_) => 1,
            RelExpr::IdOn(_) | RelExpr::Cross(_, _) => 2,
            RelExpr::Union(a, b) | RelExpr::Inter(a, b) | RelExpr::Diff(a, b) => c(a) + c(b) + 1,
            RelExpr::Seq(a, b) => c(a) + c(b) + 4,
            RelExpr::Inverse(a) => c(a) + 2,
            RelExpr::Opt(a) => c(a) + 1,
            RelExpr::Plus(a) | RelExpr::Star(a) => c(a) + 12,
            RelExpr::WeakLift(a, t) | RelExpr::StrongLift(a, t) => c(a) + c(t) + 10,
        }
    }

    // ---- set constructors -------------------------------------------------

    /// Interns a base set.
    pub fn set_base(&mut self, base: SetBase) -> SetId {
        self.intern_set(SetExpr::Base(base))
    }

    /// Interns a set union (normalised: commutative).
    pub fn set_union(&mut self, a: SetId, b: SetId) -> SetId {
        if a == b {
            return a;
        }
        let (a, b) = (a.min(b), a.max(b));
        self.intern_set(SetExpr::Union(a, b))
    }

    /// Interns a set intersection (normalised: commutative).
    pub fn set_inter(&mut self, a: SetId, b: SetId) -> SetId {
        if a == b {
            return a;
        }
        let (a, b) = (a.min(b), a.max(b));
        self.intern_set(SetExpr::Inter(a, b))
    }

    // ---- relation constructors --------------------------------------------

    /// Interns a base relation.
    pub fn base(&mut self, base: RelBase) -> RelId {
        self.intern_rel(RelExpr::Base(base))
    }

    /// Interns the identity `[S]` on a set.
    pub fn id_on(&mut self, set: SetId) -> RelId {
        self.intern_rel(RelExpr::IdOn(set))
    }

    /// Interns the cartesian product of two sets.
    pub fn cross(&mut self, a: SetId, b: SetId) -> RelId {
        self.intern_rel(RelExpr::Cross(a, b))
    }

    /// Interns a composition `a ; b`.
    pub fn seq(&mut self, a: RelId, b: RelId) -> RelId {
        self.intern_rel(RelExpr::Seq(a, b))
    }

    /// Interns the composition of a whole chain, left to right.
    ///
    /// # Panics
    ///
    /// Panics if `chain` is empty.
    pub fn seq_all(&mut self, chain: &[RelId]) -> RelId {
        let (&first, rest) = chain.split_first().expect("seq_all of an empty chain");
        rest.iter().fold(first, |acc, &next| self.seq(acc, next))
    }

    /// Interns a union (normalised: commutative, idempotent).
    pub fn union(&mut self, a: RelId, b: RelId) -> RelId {
        if a == b {
            return a;
        }
        let (a, b) = (a.min(b), a.max(b));
        self.intern_rel(RelExpr::Union(a, b))
    }

    /// Interns the union of a whole list of relations.
    ///
    /// Operands are sorted first so that any two unions of the same parts —
    /// however they were written — intern to the same node tree.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn union_all(&mut self, parts: &[RelId]) -> RelId {
        let mut sorted = parts.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let (&first, rest) = sorted.split_first().expect("union_all of an empty list");
        rest.iter().fold(first, |acc, &next| self.union(acc, next))
    }

    /// Interns an intersection (normalised: commutative, idempotent).
    pub fn inter(&mut self, a: RelId, b: RelId) -> RelId {
        if a == b {
            return a;
        }
        let (a, b) = (a.min(b), a.max(b));
        self.intern_rel(RelExpr::Inter(a, b))
    }

    /// Interns a difference `a \ b`.
    pub fn diff(&mut self, a: RelId, b: RelId) -> RelId {
        self.intern_rel(RelExpr::Diff(a, b))
    }

    /// Interns an inverse `a⁻¹`.
    pub fn inverse(&mut self, a: RelId) -> RelId {
        self.intern_rel(RelExpr::Inverse(a))
    }

    /// Interns a reflexive closure `a?`.
    pub fn opt(&mut self, a: RelId) -> RelId {
        self.intern_rel(RelExpr::Opt(a))
    }

    /// Interns a transitive closure `a⁺`.
    pub fn plus(&mut self, a: RelId) -> RelId {
        self.intern_rel(RelExpr::Plus(a))
    }

    /// Interns a reflexive-transitive closure `a*`.
    pub fn star(&mut self, a: RelId) -> RelId {
        self.intern_rel(RelExpr::Star(a))
    }

    /// Interns `weaklift(a, t)`.
    pub fn weaklift(&mut self, a: RelId, t: RelId) -> RelId {
        self.intern_rel(RelExpr::WeakLift(a, t))
    }

    /// Interns `stronglift(a, t)`.
    pub fn stronglift(&mut self, a: RelId, t: RelId) -> RelId {
        self.intern_rel(RelExpr::StrongLift(a, t))
    }

    /// Builds an [`Axiom`] over an interned body, computing its cost. The
    /// name may be a `&'static str` (free) or an owned `String` (runtime
    /// models loaded from text).
    pub fn axiom(
        &mut self,
        name: impl Into<std::borrow::Cow<'static, str>>,
        head: AxiomHead,
        body: RelId,
    ) -> Axiom {
        let head_cost = match head {
            AxiomHead::Acyclic => 3,
            AxiomHead::Irreflexive | AxiomHead::Empty => 1,
        };
        Axiom {
            name: name.into(),
            head,
            body,
            cost: self.rel_cost(body) + head_cost,
        }
    }
}

/// Per-execution memo table for one pool's expressions, hosted on an
/// [`ExecView`] so that every axiom of every model checking that execution
/// shares it.
#[derive(Debug)]
pub struct IrMemo {
    stamp: u64,
    rels: Box<[OnceCell<Relation>]>,
    sets: Box<[OnceCell<ElemSet>]>,
}

impl IrMemo {
    pub(crate) fn new(stamp: u64, rel_count: usize, set_count: usize) -> IrMemo {
        IrMemo {
            stamp,
            rels: (0..rel_count).map(|_| OnceCell::new()).collect(),
            sets: (0..set_count).map(|_| OnceCell::new()).collect(),
        }
    }

    pub(crate) fn fits(&self, stamp: u64, rel_count: usize, set_count: usize) -> bool {
        self.stamp == stamp && self.rels.len() >= rel_count && self.sets.len() >= set_count
    }
}

enum Slots<'a> {
    /// The view's per-execution memo: shared with every other evaluator of
    /// the same pool on the same view (cross-axiom and cross-model CSE).
    Shared(&'a IrMemo),
    /// A private memo: used on uncached views (which promise to recompute)
    /// and when a different pool already claimed the view's memo.
    Local(IrMemo),
}

/// An evaluator of interned expressions against one [`ExecView`].
///
/// Each node's value is computed at most once per execution (see [`IrMemo`]);
/// base nodes delegate to the view's own memoized getters. The evaluator is
/// cheap to construct, so model checks build one per check call and still
/// share all node values through the view.
pub struct IrEval<'a> {
    pool: &'a IrPool,
    view: &'a ExecView<'a>,
    slots: Slots<'a>,
}

impl<'a> IrEval<'a> {
    /// Creates an evaluator for `pool` over `view`.
    pub fn new(pool: &'a IrPool, view: &'a ExecView<'a>) -> IrEval<'a> {
        let slots = match view.ir_memo(pool.stamp(), pool.rel_count(), pool.set_count()) {
            Some(memo) => Slots::Shared(memo),
            None => Slots::Local(IrMemo::new(
                pool.stamp(),
                pool.rel_count(),
                pool.set_count(),
            )),
        };
        IrEval { pool, view, slots }
    }

    /// The view this evaluator reads base relations from.
    pub fn view(&self) -> &'a ExecView<'a> {
        self.view
    }

    fn rel_slot(&self, id: RelId) -> &OnceCell<Relation> {
        match &self.slots {
            Slots::Shared(memo) => &memo.rels[id.index()],
            Slots::Local(memo) => &memo.rels[id.index()],
        }
    }

    fn set_slot(&self, id: SetId) -> &OnceCell<ElemSet> {
        match &self.slots {
            Slots::Shared(memo) => &memo.sets[id.index()],
            Slots::Local(memo) => &memo.sets[id.index()],
        }
    }

    /// The value of a set expression.
    pub fn set(&self, id: SetId) -> std::borrow::Cow<'_, ElemSet> {
        use std::borrow::Cow;
        match self.pool.set_expr(id) {
            SetExpr::Base(base) => match base {
                SetBase::Reads => self.view.reads(),
                SetBase::Writes => self.view.writes(),
                SetBase::Fences => self.view.fences(),
                SetBase::Acquires => self.view.acquires(),
                SetBase::Releases => self.view.releases(),
                SetBase::ScEvents => self.view.sc_events(),
                SetBase::Atomics => self.view.atomics(),
                SetBase::FencesOf(kind) => self.view.fences_of(kind),
                SetBase::RmwDomain => Cow::Borrowed(
                    self.set_slot(id)
                        .get_or_init(|| self.view.exec().rmw.domain()),
                ),
                SetBase::RmwRange => Cow::Borrowed(
                    self.set_slot(id)
                        .get_or_init(|| self.view.exec().rmw.range()),
                ),
            },
            _ => Cow::Borrowed(self.set_slot(id).get_or_init(|| self.compute_set(id))),
        }
    }

    fn compute_set(&self, id: SetId) -> ElemSet {
        match self.pool.set_expr(id) {
            SetExpr::Base(_) => unreachable!("base sets are served by the view"),
            SetExpr::Union(a, b) => self.set(a).union(&self.set(b)),
            SetExpr::Inter(a, b) => self.set(a).intersection(&self.set(b)),
        }
    }

    /// The value of a relation expression.
    pub fn rel(&self, id: RelId) -> std::borrow::Cow<'_, Relation> {
        use std::borrow::Cow;
        match self.pool.rel_expr(id) {
            RelExpr::Base(base) => self.base_rel(base),
            _ => Cow::Borrowed(self.rel_slot(id).get_or_init(|| self.compute_rel(id))),
        }
    }

    fn base_rel(&self, base: RelBase) -> std::borrow::Cow<'_, Relation> {
        use std::borrow::Cow;
        let exec = self.view.exec();
        match base {
            RelBase::Po => Cow::Borrowed(self.view.po()),
            RelBase::Rf => Cow::Borrowed(self.view.rf()),
            RelBase::Co => Cow::Borrowed(self.view.co()),
            RelBase::Addr => Cow::Borrowed(&exec.addr),
            RelBase::Data => Cow::Borrowed(&exec.data),
            RelBase::Ctrl => Cow::Borrowed(&exec.ctrl),
            RelBase::Rmw => Cow::Borrowed(&exec.rmw),
            RelBase::Stxn => Cow::Borrowed(&exec.stxn),
            RelBase::Stxnat => Cow::Borrowed(&exec.stxnat),
            RelBase::Scr => Cow::Borrowed(&exec.scr),
            RelBase::Sloc => self.view.sloc(),
            RelBase::Poloc => self.view.poloc(),
            RelBase::PoDiffLoc => self.view.po_diff_loc(),
            RelBase::Fr => self.view.fr(),
            RelBase::Rfe => self.view.rfe(),
            RelBase::Rfi => self.view.rfi(),
            RelBase::Coe => self.view.coe(),
            RelBase::Fre => self.view.fre(),
            RelBase::Com => self.view.com(),
            RelBase::Come => self.view.come(),
            RelBase::Ecom => self.view.ecom(),
            RelBase::Cnf => self.view.cnf(),
            RelBase::Tfence => self.view.tfence(),
            RelBase::FenceRel(kind) => self.view.fence_rel(kind),
        }
    }

    fn compute_rel(&self, id: RelId) -> Relation {
        match self.pool.rel_expr(id) {
            RelExpr::Base(_) => unreachable!("base relations are served by the view"),
            RelExpr::IdOn(s) => Relation::identity_on(&self.set(s)),
            RelExpr::Cross(a, b) => Relation::cross(&self.set(a), &self.set(b)),
            RelExpr::Seq(a, b) => self.rel(a).compose(&self.rel(b)),
            RelExpr::Union(a, b) => {
                let mut out = self.rel(a).into_owned();
                out.union_in_place(&self.rel(b));
                out
            }
            RelExpr::Inter(a, b) => {
                let mut out = self.rel(a).into_owned();
                out.intersect_in_place(&self.rel(b));
                out
            }
            RelExpr::Diff(a, b) => {
                let mut out = self.rel(a).into_owned();
                out.difference_in_place(&self.rel(b));
                out
            }
            RelExpr::Inverse(a) => self.rel(a).inverse(),
            RelExpr::Opt(a) => self.rel(a).reflexive_closure(),
            RelExpr::Plus(a) => {
                let mut out = self.rel(a).into_owned();
                out.transitive_closure_in_place();
                out
            }
            RelExpr::Star(a) => {
                let mut out = self.rel(a).into_owned();
                out.transitive_closure_in_place();
                for e in 0..out.universe() {
                    out.insert(e, e);
                }
                out
            }
            RelExpr::WeakLift(a, t) => Execution::weaklift(&self.rel(a), &self.rel(t)),
            RelExpr::StrongLift(a, t) => Execution::stronglift(&self.rel(a), &self.rel(t)),
        }
    }

    /// True if the axiom holds on this execution. Does not extract a witness,
    /// so this is the fast path for early-exit sweeps.
    pub fn holds(&self, axiom: &Axiom) -> bool {
        let body = self.rel(axiom.body);
        match axiom.head {
            AxiomHead::Acyclic => body.is_acyclic(),
            AxiomHead::Irreflexive => body.is_irreflexive(),
            AxiomHead::Empty => body.is_empty(),
        }
    }

    /// A witness of the axiom's violation (`None` if it holds): a cycle for
    /// `acyclic`, a fixed point for `irreflexive`, the first pair for
    /// `empty` — matching what the hand-written checks used to report.
    pub fn witness(&self, axiom: &Axiom) -> Option<Vec<usize>> {
        let body = self.rel(axiom.body);
        match axiom.head {
            AxiomHead::Acyclic => body.find_cycle(),
            AxiomHead::Irreflexive => (0..body.universe())
                .find(|&a| body.contains(a, a))
                .map(|a| vec![a]),
            AxiomHead::Empty => body.iter().next().map(|(a, b)| vec![a, b]),
        }
    }
}

// ---- polarity analysis ----------------------------------------------------

/// The syntactic polarity of a base relation's occurrences in an expression.
///
/// If growing the base relation can only grow the expression's value the
/// polarity is [`Positive`](Polarity::Positive); if it can only shrink it,
/// [`Negative`](Polarity::Negative); occurrences under both signs are
/// [`Mixed`](Polarity::Mixed), and no occurrence at all is
/// [`Constant`](Polarity::Constant).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Polarity {
    /// The expression does not depend on the base relation.
    Constant,
    /// Monotonically non-decreasing in the base relation.
    Positive,
    /// Monotonically non-increasing in the base relation.
    Negative,
    /// Occurs under both signs; no monotonicity conclusion is possible.
    Mixed,
}

impl Polarity {
    /// Least upper bound in the lattice `Constant < {Positive, Negative} < Mixed`.
    pub fn join(self, other: Polarity) -> Polarity {
        use Polarity::*;
        match (self, other) {
            (Constant, p) | (p, Constant) => p,
            (Positive, Positive) => Positive,
            (Negative, Negative) => Negative,
            _ => Mixed,
        }
    }

    /// Flips the sign (under a difference's right operand).
    pub fn negate(self) -> Polarity {
        match self {
            Polarity::Positive => Polarity::Negative,
            Polarity::Negative => Polarity::Positive,
            p => p,
        }
    }
}

/// The polarity of a set expression with respect to the base relations
/// classified by `of`: almost every base set is an event-kind predicate and
/// thus constant, but `RmwDomain`/`RmwRange` are derived from the `rmw`
/// relation (monotonically — growing `rmw` grows both projections), and set
/// union/intersection are monotone in each operand.
pub fn set_polarity(pool: &IrPool, id: SetId, of: &impl Fn(RelBase) -> Polarity) -> Polarity {
    match pool.set_expr(id) {
        SetExpr::Base(SetBase::RmwDomain | SetBase::RmwRange) => of(RelBase::Rmw),
        SetExpr::Base(_) => Polarity::Constant,
        SetExpr::Union(a, b) | SetExpr::Inter(a, b) => {
            set_polarity(pool, a, of).join(set_polarity(pool, b, of))
        }
    }
}

/// Computes the syntactic polarity of `id` with respect to the base
/// relations classified by `of`.
///
/// Every operator of the IR except difference is monotone in each operand,
/// so polarities join; the right operand of `\` is negated. `IdOn`/`Cross`
/// take the polarity of their sets (see [`set_polarity`] — event-kind sets
/// are constant, but the RMW projections track `rmw`).
pub fn rel_polarity(pool: &IrPool, id: RelId, of: &impl Fn(RelBase) -> Polarity) -> Polarity {
    match pool.rel_expr(id) {
        RelExpr::Base(base) => of(base),
        RelExpr::IdOn(s) => set_polarity(pool, s, of),
        RelExpr::Cross(a, b) => set_polarity(pool, a, of).join(set_polarity(pool, b, of)),
        RelExpr::Seq(a, b) | RelExpr::Union(a, b) | RelExpr::Inter(a, b) => {
            rel_polarity(pool, a, of).join(rel_polarity(pool, b, of))
        }
        RelExpr::Diff(a, b) => rel_polarity(pool, a, of).join(rel_polarity(pool, b, of).negate()),
        RelExpr::Inverse(a) | RelExpr::Opt(a) | RelExpr::Plus(a) | RelExpr::Star(a) => {
            rel_polarity(pool, a, of)
        }
        // lift(r, t) = t⟨?⟩ ; (r \ t) ; t⟨?⟩ — t occurs both positively
        // (the outer compositions) and negatively (the difference).
        RelExpr::WeakLift(a, t) | RelExpr::StrongLift(a, t) => {
            let pt = rel_polarity(pool, t, of);
            rel_polarity(pool, a, of).join(pt).join(pt.negate())
        }
    }
}

/// The polarity of `id` in the *transactional structure* of an execution:
/// `stxn`/`stxnat` count positively, and `tfence` — whose definition
/// `po ∩ ((¬stxn ; stxn) ∪ (stxn ; ¬stxn))` mentions `stxn` under both
/// signs — counts as mixed.
///
/// If every axiom body of a model is `Constant` or `Positive` here, shrinking
/// the transactions of an execution shrinks every axiom body, so a consistent
/// execution stays consistent under every transaction reduction: §8.1
/// monotonicity holds *by construction*. `Mixed` is inconclusive (the model
/// may still be monotone, as x86 is), never wrong.
pub fn txn_polarity(pool: &IrPool, id: RelId) -> Polarity {
    rel_polarity(pool, id, &|base| match base {
        RelBase::Stxn | RelBase::Stxnat => Polarity::Positive,
        RelBase::Tfence => Polarity::Mixed,
        _ => Polarity::Constant,
    })
}

// ---- incremental evaluation ------------------------------------------------

/// A bitmask over the *mutable inputs* of an execution: the primitive
/// relations an enumerator edits between sibling candidates (`po`, `rf`,
/// `co`, the dependency relations, `rmw`, and the transaction/region
/// memberships).
///
/// Every interned expression node carries a **dependency footprint** — the
/// mask of inputs its value transitively reads — computed once per pool by
/// [`IncrementalEval::new`]. Applying a [`Delta`] then touches only the
/// nodes whose footprint intersects the delta's mask; everything else keeps
/// its cached value across sibling candidates in the enumeration tree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct DeltaMask(u16);

impl DeltaMask {
    /// The empty mask: nothing changed.
    pub const NONE: DeltaMask = DeltaMask(0);
    /// Program order changed.
    pub const PO: DeltaMask = DeltaMask(1 << 0);
    /// Reads-from changed.
    pub const RF: DeltaMask = DeltaMask(1 << 1);
    /// Coherence changed.
    pub const CO: DeltaMask = DeltaMask(1 << 2);
    /// Address dependencies changed.
    pub const ADDR: DeltaMask = DeltaMask(1 << 3);
    /// Data dependencies changed.
    pub const DATA: DeltaMask = DeltaMask(1 << 4);
    /// Control dependencies changed.
    pub const CTRL: DeltaMask = DeltaMask(1 << 5);
    /// The RMW pairing changed.
    pub const RMW: DeltaMask = DeltaMask(1 << 6);
    /// Successful-transaction membership changed.
    pub const STXN: DeltaMask = DeltaMask(1 << 7);
    /// Atomic-transaction membership changed.
    pub const STXNAT: DeltaMask = DeltaMask(1 << 8);
    /// Critical-region membership changed.
    pub const SCR: DeltaMask = DeltaMask(1 << 9);
    /// Every input changed.
    pub const ALL: DeltaMask = DeltaMask((1 << 10) - 1);

    /// True if no input is in the mask.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if the two masks share an input.
    pub fn intersects(self, other: DeltaMask) -> bool {
        self.0 & other.0 != 0
    }

    /// The mutable input a *primitive* base relation reads, or `None` for
    /// the derived bases (whose footprints combine several inputs).
    pub fn of_primitive(base: RelBase) -> Option<DeltaMask> {
        match base {
            RelBase::Po => Some(DeltaMask::PO),
            RelBase::Rf => Some(DeltaMask::RF),
            RelBase::Co => Some(DeltaMask::CO),
            RelBase::Addr => Some(DeltaMask::ADDR),
            RelBase::Data => Some(DeltaMask::DATA),
            RelBase::Ctrl => Some(DeltaMask::CTRL),
            RelBase::Rmw => Some(DeltaMask::RMW),
            RelBase::Stxn => Some(DeltaMask::STXN),
            RelBase::Stxnat => Some(DeltaMask::STXNAT),
            RelBase::Scr => Some(DeltaMask::SCR),
            _ => None,
        }
    }
}

impl std::ops::BitOr for DeltaMask {
    type Output = DeltaMask;
    fn bitor(self, rhs: DeltaMask) -> DeltaMask {
        DeltaMask(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for DeltaMask {
    fn bitor_assign(&mut self, rhs: DeltaMask) {
        self.0 |= rhs.0;
    }
}

/// The footprint of a base relation, split by sign: `(positive, negative)`.
///
/// An input in the positive mask only can be maintained under edge
/// *addition* by semi-naïve delta propagation; an input in the negative
/// mask (which also covers mixed occurrences — e.g. `stxn` in `tfence`, or
/// `rf`/`co` in `fr`, which this crate defines by *subtracting* a growing
/// exclusion set) forces re-evaluation when it changes.
fn base_masks(base: RelBase) -> (DeltaMask, DeltaMask) {
    use RelBase::*;
    let rfco = DeltaMask::RF | DeltaMask::CO;
    match base {
        Po | Poloc | PoDiffLoc | FenceRel(_) => (DeltaMask::PO, DeltaMask::NONE),
        Rf | Rfe | Rfi => (DeltaMask::RF, DeltaMask::NONE),
        Co | Coe => (DeltaMask::CO, DeltaMask::NONE),
        Addr => (DeltaMask::ADDR, DeltaMask::NONE),
        Data => (DeltaMask::DATA, DeltaMask::NONE),
        Ctrl => (DeltaMask::CTRL, DeltaMask::NONE),
        Rmw => (DeltaMask::RMW, DeltaMask::NONE),
        Stxn => (DeltaMask::STXN, DeltaMask::NONE),
        Stxnat => (DeltaMask::STXNAT, DeltaMask::NONE),
        Scr => (DeltaMask::SCR, DeltaMask::NONE),
        // Event-kind structure only: constant while the shape is fixed.
        Sloc | Cnf => (DeltaMask::NONE, DeltaMask::NONE),
        // fr subtracts an exclusion set that grows with rf and co, so it can
        // only *shrink* under additions; everything built on it is tainted.
        Fr | Fre => (DeltaMask::NONE, rfco),
        Com | Come | Ecom => (rfco, rfco),
        // tfence = po ∩ ((¬stxn ; stxn) ∪ (stxn ; ¬stxn)): mixed in stxn.
        Tfence => (DeltaMask::PO | DeltaMask::STXN, DeltaMask::STXN),
    }
}

fn set_base_masks(base: SetBase) -> (DeltaMask, DeltaMask) {
    match base {
        SetBase::RmwDomain | SetBase::RmwRange => (DeltaMask::RMW, DeltaMask::NONE),
        _ => (DeltaMask::NONE, DeltaMask::NONE),
    }
}

/// A record of edits applied to an execution since the last
/// [`IncrementalEval::apply`], built through the `add_edge`/`remove_edge`
/// hooks as the enumerator mutates the execution in place.
///
/// The delta distinguishes pure *additions* (which monotone nodes absorb by
/// semi-naïve propagation) from edits involving removals (which fall back
/// to footprint-based invalidation), and a *full* delta (a brand-new
/// execution: every cache is dropped).
#[derive(Clone, Debug)]
pub struct Delta {
    mask: DeltaMask,
    additions_only: bool,
    full: bool,
    added: Vec<(RelBase, usize, usize)>,
}

impl Default for Delta {
    fn default() -> Delta {
        Delta::new()
    }
}

impl Delta {
    /// An empty delta: nothing changed yet.
    pub fn new() -> Delta {
        Delta {
            mask: DeltaMask::NONE,
            additions_only: true,
            full: false,
            added: Vec::new(),
        }
    }

    /// The delta that invalidates everything — used when a new execution
    /// replaces the previous one (new shape vector, new universe).
    pub fn everything() -> Delta {
        Delta {
            mask: DeltaMask::ALL,
            additions_only: false,
            full: true,
            added: Vec::new(),
        }
    }

    /// Forgets all recorded edits (after the consumer has applied them).
    pub fn clear(&mut self) {
        self.mask = DeltaMask::NONE;
        self.additions_only = true;
        self.full = false;
        self.added.clear();
    }

    /// Records the addition of pair `(a, b)` to a primitive base relation.
    ///
    /// # Panics
    ///
    /// Panics if `base` is a derived relation — only the primitives stored
    /// on the [`Execution`] can be edited directly.
    pub fn add_edge(&mut self, base: RelBase, a: usize, b: usize) {
        let mask = DeltaMask::of_primitive(base)
            .unwrap_or_else(|| panic!("{base:?} is derived, not an editable input"));
        self.mask |= mask;
        self.added.push((base, a, b));
    }

    /// Records the removal of pair `(a, b)` from a primitive base relation.
    ///
    /// Removals disable semi-naïve maintenance for this delta: affected
    /// nodes are invalidated and recomputed on next use.
    ///
    /// # Panics
    ///
    /// Panics if `base` is a derived relation.
    pub fn remove_edge(&mut self, base: RelBase, _a: usize, _b: usize) {
        let mask = DeltaMask::of_primitive(base)
            .unwrap_or_else(|| panic!("{base:?} is derived, not an editable input"));
        self.mask |= mask;
        self.additions_only = false;
    }

    /// Marks whole input families as changed without pair-level detail
    /// (treated like removals: invalidation, not propagation).
    pub fn touch(&mut self, mask: DeltaMask) {
        self.mask |= mask;
        self.additions_only = false;
    }

    /// The inputs this delta touches.
    pub fn mask(&self) -> DeltaMask {
        self.mask
    }

    /// True if no edit has been recorded.
    pub fn is_empty(&self) -> bool {
        self.mask.is_empty() && !self.full
    }

    /// True if every recorded edit was an addition.
    pub fn is_additions_only(&self) -> bool {
        self.additions_only
    }

    /// True if this delta replaces the execution wholesale.
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// The added pairs of one primitive family, as a relation over
    /// `universe`.
    fn added_relation(&self, family: RelBase, universe: usize) -> Relation {
        let mut d = Relation::new(universe);
        for &(base, a, b) in &self.added {
            if base == family {
                d.insert(a, b);
            }
        }
        d
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct HeadCache {
    acyclic: Option<bool>,
    irreflexive: Option<bool>,
    empty: Option<bool>,
}

/// How one node fared during an additions-only propagation pass.
enum Grown<T> {
    /// Footprint disjoint from the delta: value and delta (= ∅) unchanged.
    Clean,
    /// Value updated in place; the recorded relation is what was added.
    Grew(T),
    /// Value dropped (non-monotone node, or no cached value to extend).
    Lost,
}

/// A *stateful* evaluator of interned expressions that survives across the
/// candidates of an enumeration sweep — the incremental sibling of the
/// per-execution [`IrEval`].
///
/// Where [`IrEval`] memoizes within one execution and is discarded with its
/// [`ExecView`], an `IncrementalEval` keeps every node value alive and is
/// told *what changed* between candidates through [`Delta`]s:
///
/// * nodes whose dependency footprint is disjoint from the delta keep their
///   cached values (and cached head verdicts) untouched;
/// * under a pure-*addition* delta, nodes that are syntactically monotone
///   (positive) in every changed input are **maintained** by semi-naïve
///   delta propagation — `Δ(a ∪ b) = Δa ∪ Δb`, `Δ(a ; b) = Δa;b ∪ a;Δb`,
///   `Δ(a⁺) = (a⁺? ; Δa ; a⁺?)⁺`, and so on — instead of being recomputed;
/// * all other affected nodes are invalidated and lazily re-evaluated on
///   next use.
///
/// The caller owns the evolving [`Execution`] and must mutate it *before*
/// applying the matching delta; `tm_synth`'s incremental enumeration drives
/// exactly this protocol.
pub struct IncrementalEval<'p> {
    pool: &'p IrPool,
    universe: usize,
    rel_vals: Vec<Option<Relation>>,
    set_vals: Vec<Option<ElemSet>>,
    heads: Vec<HeadCache>,
    rel_pos: Vec<DeltaMask>,
    rel_neg: Vec<DeltaMask>,
    set_pos: Vec<DeltaMask>,
    set_neg: Vec<DeltaMask>,
    same_thread: Option<Relation>,
}

impl<'p> IncrementalEval<'p> {
    /// Creates an evaluator for `pool`, computing every node's dependency
    /// footprint bottom-up (children are always interned before parents, so
    /// one ascending pass suffices).
    pub fn new(pool: &'p IrPool) -> IncrementalEval<'p> {
        let mut set_pos = Vec::with_capacity(pool.set_count());
        let mut set_neg = Vec::with_capacity(pool.set_count());
        for i in 0..pool.set_count() {
            let (p, n) = match pool.set_expr(SetId(i as u32)) {
                SetExpr::Base(b) => set_base_masks(b),
                SetExpr::Union(a, b) | SetExpr::Inter(a, b) => (
                    set_pos[a.index()] | set_pos[b.index()],
                    set_neg[a.index()] | set_neg[b.index()],
                ),
            };
            set_pos.push(p);
            set_neg.push(n);
        }
        let mut rel_pos: Vec<DeltaMask> = Vec::with_capacity(pool.rel_count());
        let mut rel_neg: Vec<DeltaMask> = Vec::with_capacity(pool.rel_count());
        for i in 0..pool.rel_count() {
            let (p, n) = match pool.rel_expr(RelId(i as u32)) {
                RelExpr::Base(b) => base_masks(b),
                RelExpr::IdOn(s) => (set_pos[s.index()], set_neg[s.index()]),
                RelExpr::Cross(a, b) => (
                    set_pos[a.index()] | set_pos[b.index()],
                    set_neg[a.index()] | set_neg[b.index()],
                ),
                RelExpr::Seq(a, b) | RelExpr::Union(a, b) | RelExpr::Inter(a, b) => (
                    rel_pos[a.index()] | rel_pos[b.index()],
                    rel_neg[a.index()] | rel_neg[b.index()],
                ),
                // The right operand of a difference flips sign.
                RelExpr::Diff(a, b) => (
                    rel_pos[a.index()] | rel_neg[b.index()],
                    rel_neg[a.index()] | rel_pos[b.index()],
                ),
                RelExpr::Inverse(a) | RelExpr::Opt(a) | RelExpr::Plus(a) | RelExpr::Star(a) => {
                    (rel_pos[a.index()], rel_neg[a.index()])
                }
                // lift(r, t) = t⟨?⟩ ; (r \ t) ; t⟨?⟩ — t occurs mixed.
                RelExpr::WeakLift(a, t) | RelExpr::StrongLift(a, t) => {
                    let mixed = rel_pos[t.index()] | rel_neg[t.index()];
                    (rel_pos[a.index()] | mixed, rel_neg[a.index()] | mixed)
                }
            };
            rel_pos.push(p);
            rel_neg.push(n);
        }
        IncrementalEval {
            pool,
            universe: 0,
            rel_vals: vec![None; pool.rel_count()],
            set_vals: vec![None; pool.set_count()],
            heads: vec![HeadCache::default(); pool.rel_count()],
            rel_pos,
            rel_neg,
            set_pos,
            set_neg,
            same_thread: None,
        }
    }

    /// The pool this evaluator interprets.
    pub fn pool(&self) -> &'p IrPool {
        self.pool
    }

    /// The full dependency footprint of a relation node.
    pub fn footprint(&self, id: RelId) -> DeltaMask {
        self.rel_pos[id.index()] | self.rel_neg[id.index()]
    }

    /// The inputs in which a relation node is *not* monotonically
    /// non-decreasing (negative or mixed occurrences): a pure-addition delta
    /// touching any of them forces re-evaluation rather than propagation.
    pub fn nonmonotone_inputs(&self, id: RelId) -> DeltaMask {
        self.rel_neg[id.index()]
    }

    /// Drops every cached value: the next queries recompute from `exec`.
    pub fn reset(&mut self, exec: &Execution) {
        self.universe = exec.len();
        self.rel_vals.iter_mut().for_each(|v| *v = None);
        self.set_vals.iter_mut().for_each(|v| *v = None);
        self.heads
            .iter_mut()
            .for_each(|h| *h = HeadCache::default());
        self.same_thread = None;
    }

    /// Absorbs one delta: the caller has already mutated `exec` accordingly.
    ///
    /// Full deltas (and universe changes) reset everything; deltas with
    /// removals invalidate by footprint; pure-addition deltas are propagated
    /// semi-naïvely through monotone nodes and invalidate only the rest.
    pub fn apply(&mut self, exec: &Execution, delta: &Delta) {
        if delta.is_full() || exec.len() != self.universe {
            self.reset(exec);
            return;
        }
        if delta.is_empty() {
            return;
        }
        if !delta.is_additions_only() {
            self.invalidate(delta.mask());
            return;
        }
        self.propagate_additions(exec, delta);
    }

    /// Drops the cached value (and head verdicts) of every node whose
    /// footprint intersects `mask`.
    fn invalidate(&mut self, mask: DeltaMask) {
        for i in 0..self.pool.set_count() {
            if (self.set_pos[i] | self.set_neg[i]).intersects(mask) {
                self.set_vals[i] = None;
            }
        }
        for i in 0..self.pool.rel_count() {
            if (self.rel_pos[i] | self.rel_neg[i]).intersects(mask) {
                self.rel_vals[i] = None;
                self.heads[i] = HeadCache::default();
            }
        }
    }

    /// Semi-naïve pass for a pure-addition delta: one ascending sweep over
    /// the pool (children before parents), growing monotone cached values in
    /// place and invalidating the rest.
    fn propagate_additions(&mut self, exec: &Execution, delta: &Delta) {
        let mask = delta.mask();
        if mask.intersects(DeltaMask::RF | DeltaMask::CO) && self.same_thread.is_none() {
            self.same_thread = Some(exec.same_thread());
        }

        // Sets first: relation nodes only consume them, never the reverse.
        let mut set_grown: Vec<Grown<ElemSet>> = Vec::with_capacity(self.pool.set_count());
        for i in 0..self.pool.set_count() {
            if !(self.set_pos[i] | self.set_neg[i]).intersects(mask) {
                set_grown.push(Grown::Clean);
                continue;
            }
            let d = if self.set_neg[i].intersects(mask) || self.set_vals[i].is_none() {
                None
            } else {
                self.set_delta(SetId(i as u32), delta, &set_grown)
            };
            match d {
                Some(d) => {
                    let merged = self.set_vals[i].as_ref().unwrap().union(&d);
                    self.set_vals[i] = Some(merged);
                    set_grown.push(Grown::Grew(d));
                }
                None => {
                    self.set_vals[i] = None;
                    set_grown.push(Grown::Lost);
                }
            }
        }

        let mut rel_grown: Vec<Grown<Relation>> = Vec::with_capacity(self.pool.rel_count());
        for i in 0..self.pool.rel_count() {
            if !(self.rel_pos[i] | self.rel_neg[i]).intersects(mask) {
                rel_grown.push(Grown::Clean);
                continue;
            }
            let d = if self.rel_neg[i].intersects(mask) || self.rel_vals[i].is_none() {
                None
            } else {
                self.rel_delta(RelId(i as u32), delta, &rel_grown, &set_grown)
            };
            match d {
                Some(d) => {
                    if !d.is_empty() {
                        self.rel_vals[i].as_mut().unwrap().union_in_place(&d);
                        self.heads[i] = HeadCache::default();
                    }
                    rel_grown.push(Grown::Grew(d));
                }
                None => {
                    self.rel_vals[i] = None;
                    self.heads[i] = HeadCache::default();
                    rel_grown.push(Grown::Lost);
                }
            }
        }
    }

    /// The growth of one monotone set node under an addition delta, or
    /// `None` if a needed child value or child delta is unavailable.
    fn set_delta(&self, id: SetId, delta: &Delta, grown: &[Grown<ElemSet>]) -> Option<ElemSet> {
        let child = |s: SetId| -> Option<ElemSet> {
            match &grown[s.index()] {
                Grown::Clean => Some(ElemSet::new(self.universe)),
                Grown::Grew(d) => Some(d.clone()),
                Grown::Lost => None,
            }
        };
        match self.pool.set_expr(id) {
            SetExpr::Base(SetBase::RmwDomain) => Some(ElemSet::from_iter(
                self.universe,
                delta
                    .added
                    .iter()
                    .filter(|&&(b, _, _)| b == RelBase::Rmw)
                    .map(|&(_, a, _)| a),
            )),
            SetExpr::Base(SetBase::RmwRange) => Some(ElemSet::from_iter(
                self.universe,
                delta
                    .added
                    .iter()
                    .filter(|&&(b, _, _)| b == RelBase::Rmw)
                    .map(|&(_, _, b)| b),
            )),
            // Other base sets are constant: they cannot reach this path.
            SetExpr::Base(_) => None,
            SetExpr::Union(a, b) => Some(child(a)?.union(&child(b)?)),
            SetExpr::Inter(a, b) => {
                let (da, db) = (child(a)?, child(b)?);
                let va = self.set_vals[a.index()].as_ref()?;
                let vb = self.set_vals[b.index()].as_ref()?;
                Some(da.intersection(vb).union(&va.intersection(&db)))
            }
        }
    }

    /// The growth of one monotone relation node under an addition delta, or
    /// `None` if the node cannot be maintained (fall back to invalidation).
    ///
    /// Each returned delta `Δ` satisfies `new \ old ⊆ Δ ⊆ new`, which makes
    /// `old ∪ Δ` exactly the new value for monotone nodes.
    fn rel_delta(
        &self,
        id: RelId,
        delta: &Delta,
        rel_grown: &[Grown<Relation>],
        set_grown: &[Grown<ElemSet>],
    ) -> Option<Relation> {
        let child = |r: RelId| -> Option<Relation> {
            match &rel_grown[r.index()] {
                Grown::Clean => Some(Relation::new(self.universe)),
                Grown::Grew(d) => Some(d.clone()),
                Grown::Lost => None,
            }
        };
        let set_child = |s: SetId| -> Option<ElemSet> {
            match &set_grown[s.index()] {
                Grown::Clean => Some(ElemSet::new(self.universe)),
                Grown::Grew(d) => Some(d.clone()),
                Grown::Lost => None,
            }
        };
        let value = |r: RelId| self.rel_vals[r.index()].as_ref();
        match self.pool.rel_expr(id) {
            RelExpr::Base(base) => self.base_delta(base, delta),
            RelExpr::IdOn(s) => Some(Relation::identity_on(&set_child(s)?)),
            RelExpr::Cross(a, b) => {
                let (da, db) = (set_child(a)?, set_child(b)?);
                let va = self.set_vals[a.index()].as_ref()?;
                let vb = self.set_vals[b.index()].as_ref()?;
                let mut out = Relation::cross(&da, vb);
                out.union_in_place(&Relation::cross(va, &db));
                Some(out)
            }
            RelExpr::Seq(a, b) => {
                let (da, db) = (child(a)?, child(b)?);
                let mut out = da.compose(value(b)?);
                out.union_in_place(&value(a)?.compose(&db));
                Some(out)
            }
            RelExpr::Union(a, b) => {
                let mut out = child(a)?;
                out.union_in_place(&child(b)?);
                Some(out)
            }
            RelExpr::Inter(a, b) => {
                let (da, db) = (child(a)?, child(b)?);
                let mut left = da;
                left.intersect_in_place(value(b)?);
                let mut right = value(a)?.clone();
                right.intersect_in_place(&db);
                left.union_in_place(&right);
                Some(left)
            }
            RelExpr::Diff(a, b) => {
                // The polarity gate guarantees b is untouched by this delta.
                let mut out = child(a)?;
                out.difference_in_place(value(b)?);
                Some(out)
            }
            RelExpr::Inverse(a) => Some(child(a)?.inverse()),
            RelExpr::Opt(a) => child(a),
            RelExpr::Plus(a) => {
                // (a ∪ Δ)⁺ = a⁺ ∪ (a⁺? ; Δ ; a⁺?)⁺ — every new path is an
                // alternation of old paths and new edges.
                let da = child(a)?;
                let cq = value(id)?.reflexive_closure();
                let mut d = cq.compose(&da).compose(&cq);
                d.transitive_closure_in_place();
                Some(d)
            }
            RelExpr::Star(a) => {
                // Same as Plus, with the reflexive old value as the spine.
                let da = child(a)?;
                let c = value(id)?;
                let mut d = c.compose(&da).compose(c);
                d.transitive_closure_in_place();
                Some(d)
            }
            RelExpr::WeakLift(a, t) => {
                // weaklift distributes over unions of its first operand.
                Some(Execution::weaklift(&child(a)?, value(t)?))
            }
            RelExpr::StrongLift(a, t) => Some(Execution::stronglift(&child(a)?, value(t)?)),
        }
    }

    /// The growth of a base node under an addition delta.
    fn base_delta(&self, base: RelBase, delta: &Delta) -> Option<Relation> {
        if DeltaMask::of_primitive(base).is_some() {
            return Some(delta.added_relation(base, self.universe));
        }
        match base {
            RelBase::Rfe => {
                let mut d = delta.added_relation(RelBase::Rf, self.universe);
                d.difference_in_place(self.same_thread.as_ref()?);
                Some(d)
            }
            RelBase::Rfi => {
                let mut d = delta.added_relation(RelBase::Rf, self.universe);
                d.intersect_in_place(self.same_thread.as_ref()?);
                Some(d)
            }
            RelBase::Coe => {
                let mut d = delta.added_relation(RelBase::Co, self.universe);
                d.difference_in_place(self.same_thread.as_ref()?);
                Some(d)
            }
            // The remaining derived bases are either constant (never reach
            // this path) or non-monotone (filtered by the polarity gate).
            _ => None,
        }
    }

    /// The current value of a set expression, computing it if missing.
    pub fn set(&mut self, exec: &Execution, id: SetId) -> &ElemSet {
        self.ensure_set(exec, id);
        self.set_vals[id.index()].as_ref().unwrap()
    }

    fn ensure_set(&mut self, exec: &Execution, id: SetId) {
        if self.set_vals[id.index()].is_some() {
            return;
        }
        let value = match self.pool.set_expr(id) {
            SetExpr::Base(base) => match base {
                SetBase::Reads => exec.reads(),
                SetBase::Writes => exec.writes(),
                SetBase::Fences => exec.fences(),
                SetBase::Acquires => exec.acquires(),
                SetBase::Releases => exec.releases(),
                SetBase::ScEvents => exec.sc_events(),
                SetBase::Atomics => exec.atomics(),
                SetBase::FencesOf(kind) => exec.fences_of(kind),
                SetBase::RmwDomain => exec.rmw.domain(),
                SetBase::RmwRange => exec.rmw.range(),
            },
            SetExpr::Union(a, b) => {
                self.ensure_set(exec, a);
                self.ensure_set(exec, b);
                self.set_vals[a.index()]
                    .as_ref()
                    .unwrap()
                    .union(self.set_vals[b.index()].as_ref().unwrap())
            }
            SetExpr::Inter(a, b) => {
                self.ensure_set(exec, a);
                self.ensure_set(exec, b);
                self.set_vals[a.index()]
                    .as_ref()
                    .unwrap()
                    .intersection(self.set_vals[b.index()].as_ref().unwrap())
            }
        };
        self.set_vals[id.index()] = Some(value);
    }

    /// The current value of a relation expression, computing it if missing.
    pub fn rel(&mut self, exec: &Execution, id: RelId) -> &Relation {
        self.ensure_rel(exec, id);
        self.rel_vals[id.index()].as_ref().unwrap()
    }

    fn ensure_rel(&mut self, exec: &Execution, id: RelId) {
        if self.rel_vals[id.index()].is_some() {
            return;
        }
        let value = match self.pool.rel_expr(id) {
            RelExpr::Base(base) => Self::base_value(exec, base),
            RelExpr::IdOn(s) => {
                self.ensure_set(exec, s);
                Relation::identity_on(self.set_vals[s.index()].as_ref().unwrap())
            }
            RelExpr::Cross(a, b) => {
                self.ensure_set(exec, a);
                self.ensure_set(exec, b);
                Relation::cross(
                    self.set_vals[a.index()].as_ref().unwrap(),
                    self.set_vals[b.index()].as_ref().unwrap(),
                )
            }
            RelExpr::Seq(a, b) => {
                self.ensure_rel(exec, a);
                self.ensure_rel(exec, b);
                self.rel_vals[a.index()]
                    .as_ref()
                    .unwrap()
                    .compose(self.rel_vals[b.index()].as_ref().unwrap())
            }
            RelExpr::Union(a, b) => {
                self.ensure_rel(exec, a);
                self.ensure_rel(exec, b);
                let mut out = self.rel_vals[a.index()].as_ref().unwrap().clone();
                out.union_in_place(self.rel_vals[b.index()].as_ref().unwrap());
                out
            }
            RelExpr::Inter(a, b) => {
                self.ensure_rel(exec, a);
                self.ensure_rel(exec, b);
                let mut out = self.rel_vals[a.index()].as_ref().unwrap().clone();
                out.intersect_in_place(self.rel_vals[b.index()].as_ref().unwrap());
                out
            }
            RelExpr::Diff(a, b) => {
                self.ensure_rel(exec, a);
                self.ensure_rel(exec, b);
                let mut out = self.rel_vals[a.index()].as_ref().unwrap().clone();
                out.difference_in_place(self.rel_vals[b.index()].as_ref().unwrap());
                out
            }
            RelExpr::Inverse(a) => {
                self.ensure_rel(exec, a);
                self.rel_vals[a.index()].as_ref().unwrap().inverse()
            }
            RelExpr::Opt(a) => {
                self.ensure_rel(exec, a);
                self.rel_vals[a.index()]
                    .as_ref()
                    .unwrap()
                    .reflexive_closure()
            }
            RelExpr::Plus(a) => {
                self.ensure_rel(exec, a);
                let mut out = self.rel_vals[a.index()].as_ref().unwrap().clone();
                out.transitive_closure_in_place();
                out
            }
            RelExpr::Star(a) => {
                self.ensure_rel(exec, a);
                let mut out = self.rel_vals[a.index()].as_ref().unwrap().clone();
                out.transitive_closure_in_place();
                for e in 0..out.universe() {
                    out.insert(e, e);
                }
                out
            }
            RelExpr::WeakLift(a, t) => {
                self.ensure_rel(exec, a);
                self.ensure_rel(exec, t);
                Execution::weaklift(
                    self.rel_vals[a.index()].as_ref().unwrap(),
                    self.rel_vals[t.index()].as_ref().unwrap(),
                )
            }
            RelExpr::StrongLift(a, t) => {
                self.ensure_rel(exec, a);
                self.ensure_rel(exec, t);
                Execution::stronglift(
                    self.rel_vals[a.index()].as_ref().unwrap(),
                    self.rel_vals[t.index()].as_ref().unwrap(),
                )
            }
        };
        self.rel_vals[id.index()] = Some(value);
    }

    /// The value of a base relation, recomputed from the execution (the
    /// incremental analogue of the view's memoized getters).
    fn base_value(exec: &Execution, base: RelBase) -> Relation {
        match base {
            RelBase::Po => exec.po.clone(),
            RelBase::Rf => exec.rf.clone(),
            RelBase::Co => exec.co.clone(),
            RelBase::Addr => exec.addr.clone(),
            RelBase::Data => exec.data.clone(),
            RelBase::Ctrl => exec.ctrl.clone(),
            RelBase::Rmw => exec.rmw.clone(),
            RelBase::Stxn => exec.stxn.clone(),
            RelBase::Stxnat => exec.stxnat.clone(),
            RelBase::Scr => exec.scr.clone(),
            RelBase::Sloc => exec.sloc(),
            RelBase::Poloc => exec.poloc(),
            RelBase::PoDiffLoc => exec.po_diff_loc(),
            RelBase::Fr => exec.fr(),
            RelBase::Rfe => exec.rfe(),
            RelBase::Rfi => exec.rfi(),
            RelBase::Coe => exec.coe(),
            RelBase::Fre => exec.fre(),
            RelBase::Com => exec.com(),
            RelBase::Come => exec.come(),
            RelBase::Ecom => exec.ecom(),
            RelBase::Cnf => exec.cnf(),
            RelBase::Tfence => exec.tfence(),
            RelBase::FenceRel(kind) => exec.fence_rel(kind),
        }
    }

    /// True if the axiom holds on the current execution. The verdict is
    /// cached per `(body, head)` and survives deltas that leave the body's
    /// footprint untouched — the fast path of the incremental sweep.
    pub fn holds(&mut self, exec: &Execution, axiom: &Axiom) -> bool {
        let i = axiom.body.index();
        let cached = match axiom.head {
            AxiomHead::Acyclic => self.heads[i].acyclic,
            AxiomHead::Irreflexive => self.heads[i].irreflexive,
            AxiomHead::Empty => self.heads[i].empty,
        };
        if let Some(v) = cached {
            return v;
        }
        self.ensure_rel(exec, axiom.body);
        let body = self.rel_vals[i].as_ref().unwrap();
        let v = match axiom.head {
            AxiomHead::Acyclic => body.is_acyclic(),
            AxiomHead::Irreflexive => body.is_irreflexive(),
            AxiomHead::Empty => body.is_empty(),
        };
        match axiom.head {
            AxiomHead::Acyclic => self.heads[i].acyclic = Some(v),
            AxiomHead::Irreflexive => self.heads[i].irreflexive = Some(v),
            AxiomHead::Empty => self.heads[i].empty = Some(v),
        }
        v
    }

    /// A witness of the axiom's violation, matching [`IrEval::witness`].
    pub fn witness(&mut self, exec: &Execution, axiom: &Axiom) -> Option<Vec<usize>> {
        self.ensure_rel(exec, axiom.body);
        let body = self.rel_vals[axiom.body.index()].as_ref().unwrap();
        match axiom.head {
            AxiomHead::Acyclic => body.find_cycle(),
            AxiomHead::Irreflexive => (0..body.universe())
                .find(|&a| body.contains(a, a))
                .map(|a| vec![a]),
            AxiomHead::Empty => body.iter().next().map(|(a, b)| vec![a, b]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn eval_pair<'a>(pool: &'a IrPool, view: &'a ExecView<'a>) -> IrEval<'a> {
        IrEval::new(pool, view)
    }

    #[test]
    fn hash_consing_shares_nodes_across_expressions() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let com = p.base(RelBase::Com);
        let u1 = p.union(po, com);
        let u2 = p.union(com, po);
        assert_eq!(u1, u2);
        let all = p.union_all(&[com, po, com]);
        assert_eq!(all, u1);
        let s1 = p.seq(po, com);
        let s2 = p.seq(po, com);
        assert_eq!(s1, s2);
        // Composition is not commutative: different node.
        assert_ne!(s1, p.seq(com, po));
        // po, com, po ∪ com, po ; com, com ; po — and nothing else.
        assert_eq!(p.rel_count(), 5);
    }

    #[test]
    fn evaluation_matches_direct_computation() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let rf = p.base(RelBase::Rf);
        let fr = p.base(RelBase::Fr);
        let com = p.base(RelBase::Com);
        let seq = p.seq(rf, po);
        let u = p.union(po, com);
        let star = p.star(rf);
        let inv = p.inverse(rf);
        let reads = p.set_base(SetBase::Reads);
        let writes = p.set_base(SetBase::Writes);
        let id_r = p.id_on(reads);
        let wr = p.cross(writes, reads);
        let restricted = p.seq(id_r, fr);

        for exec in [
            catalog::sb(),
            catalog::mp_txn(),
            catalog::power_wrc_tprop1(),
        ] {
            let view = ExecView::new(&exec);
            let e = eval_pair(&p, &view);
            assert_eq!(*e.rel(seq), exec.rf.compose(&exec.po));
            assert_eq!(*e.rel(u), exec.po.union(&exec.com()));
            assert_eq!(*e.rel(star), exec.rf.reflexive_transitive_closure());
            assert_eq!(*e.rel(inv), exec.rf.inverse());
            assert_eq!(
                *e.rel(wr),
                tm_relation::Relation::cross(&exec.writes(), &exec.reads())
            );
            assert_eq!(
                *e.rel(restricted),
                tm_relation::Relation::identity_on(&exec.reads()).compose(&exec.fr())
            );
        }
    }

    #[test]
    fn lifts_evaluate_through_execution_helpers() {
        let mut p = IrPool::new();
        let com = p.base(RelBase::Com);
        let stxn = p.base(RelBase::Stxn);
        let weak = p.weaklift(com, stxn);
        let strong = p.stronglift(com, stxn);
        let exec = catalog::fig2();
        let view = ExecView::new(&exec);
        let e = eval_pair(&p, &view);
        assert_eq!(*e.rel(weak), Execution::weaklift(&exec.com(), &exec.stxn));
        assert_eq!(
            *e.rel(strong),
            Execution::stronglift(&exec.com(), &exec.stxn)
        );
    }

    #[test]
    fn axiom_heads_and_witnesses() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let com = p.base(RelBase::Com);
        let hb = p.union(po, com);
        let order = p.axiom("Order", AxiomHead::Acyclic, hb);
        let rmw = p.base(RelBase::Rmw);
        let empty_rmw = p.axiom("NoRmw", AxiomHead::Empty, rmw);

        let sb = catalog::sb();
        let view = ExecView::new(&sb);
        let e = eval_pair(&p, &view);
        assert!(!e.holds(&order));
        let cycle = e.witness(&order).expect("sb has an SC cycle");
        assert!(cycle.len() >= 2);
        assert!(e.holds(&empty_rmw));
        assert_eq!(e.witness(&empty_rmw), None);

        let mp_txn = catalog::mp_txn();
        let view = ExecView::new(&mp_txn);
        let e = eval_pair(&p, &view);
        assert!(!e.holds(&order));
    }

    #[test]
    fn memo_is_shared_through_the_view() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let com = p.base(RelBase::Com);
        let hb = p.union(po, com);
        let exec = catalog::sb();
        let view = ExecView::new(&exec);
        let first = eval_pair(&p, &view);
        let value = first.rel(hb).into_owned();
        // A second evaluator over the same view sees the cached value.
        let second = eval_pair(&p, &view);
        assert!(matches!(second.slots, Slots::Shared(_)));
        assert_eq!(*second.rel(hb), value);
        // An uncached view gets a private memo but the same values.
        let fresh_view = ExecView::uncached(&exec);
        let third = eval_pair(&p, &fresh_view);
        assert!(matches!(third.slots, Slots::Local(_)));
        assert_eq!(*third.rel(hb), value);
    }

    #[test]
    fn second_pool_falls_back_to_a_local_memo() {
        let mut p1 = IrPool::new();
        let hb1 = {
            let po = p1.base(RelBase::Po);
            let com = p1.base(RelBase::Com);
            p1.union(po, com)
        };
        let mut p2 = IrPool::new();
        let hb2 = {
            let po = p2.base(RelBase::Po);
            let com = p2.base(RelBase::Com);
            p2.union(po, com)
        };
        assert_ne!(p1.stamp(), p2.stamp());
        let exec = catalog::sb();
        let view = ExecView::new(&exec);
        let e1 = eval_pair(&p1, &view);
        let _ = e1.rel(hb1);
        let e2 = eval_pair(&p2, &view);
        assert!(matches!(e2.slots, Slots::Local(_)));
        assert_eq!(*e2.rel(hb2), *e1.rel(hb1));
    }

    #[test]
    fn polarity_analysis_follows_the_rules() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let com = p.base(RelBase::Com);
        let stxn = p.base(RelBase::Stxn);
        let tfence = p.base(RelBase::Tfence);

        assert_eq!(txn_polarity(&p, po), Polarity::Constant);
        assert_eq!(txn_polarity(&p, stxn), Polarity::Positive);
        assert_eq!(txn_polarity(&p, tfence), Polarity::Mixed);

        let pos = p.seq(stxn, po);
        assert_eq!(txn_polarity(&p, pos), Polarity::Positive);
        let neg = p.diff(po, stxn);
        assert_eq!(txn_polarity(&p, neg), Polarity::Negative);
        let mixed = p.union(pos, neg);
        assert_eq!(txn_polarity(&p, mixed), Polarity::Mixed);
        let lifted = p.stronglift(com, stxn);
        assert_eq!(txn_polarity(&p, lifted), Polarity::Mixed);
        let closure = p.plus(pos);
        assert_eq!(txn_polarity(&p, closure), Polarity::Positive);
    }

    #[test]
    fn polarity_sees_through_relation_derived_sets() {
        // [dom(rmw) ∪ ran(rmw)] ; po — the x86 "implied" shape — must track
        // the rmw relation, even though it goes through set nodes.
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let dom = p.set_base(SetBase::RmwDomain);
        let ran = p.set_base(SetBase::RmwRange);
        let locked = p.set_union(dom, ran);
        let id_l = p.id_on(locked);
        let implied = p.seq(id_l, po);
        let of_rmw = |base: RelBase| {
            if base == RelBase::Rmw {
                Polarity::Positive
            } else {
                Polarity::Constant
            }
        };
        assert_eq!(rel_polarity(&p, implied, &of_rmw), Polarity::Positive);
        // Event-kind sets stay constant.
        let reads = p.set_base(SetBase::Reads);
        let id_r = p.id_on(reads);
        assert_eq!(rel_polarity(&p, id_r, &of_rmw), Polarity::Constant);
        // And nothing here depends on the transactional structure.
        assert_eq!(txn_polarity(&p, implied), Polarity::Constant);
    }

    /// A pool exercising every operator over the inputs the enumerator
    /// mutates, with an axiom per interesting head.
    fn incremental_fixture() -> (IrPool, Vec<Axiom>) {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let rf = p.base(RelBase::Rf);
        let co = p.base(RelBase::Co);
        let com = p.base(RelBase::Com);
        let stxn = p.base(RelBase::Stxn);
        let tfence = p.base(RelBase::Tfence);
        let rfe = p.base(RelBase::Rfe);
        let poloc = p.base(RelBase::Poloc);
        let reads = p.set_base(SetBase::Reads);
        let dom = p.set_base(SetBase::RmwDomain);
        let ran = p.set_base(SetBase::RmwRange);
        let locked = p.set_union(dom, ran);
        let id_l = p.id_on(locked);
        let implied = p.seq(id_l, po);
        let hb = {
            let u = p.union_all(&[po, rfe, implied, tfence]);
            p.plus(u)
        };
        let lifted = p.stronglift(com, stxn);
        let weak = p.weaklift(com, stxn);
        let poloc_com = p.union(poloc, com);
        let rf_star = p.star(rf);
        let inv = p.inverse(rf);
        let co_minus_rf = p.diff(co, rf);
        let id_r = p.id_on(reads);
        let chained = p.seq_all(&[id_r, rf_star, inv]);
        let axioms = vec![
            p.axiom("Order", AxiomHead::Acyclic, hb),
            p.axiom("Coherence", AxiomHead::Acyclic, poloc_com),
            p.axiom("StrongIsol", AxiomHead::Acyclic, lifted),
            p.axiom("WeakIsol", AxiomHead::Acyclic, weak),
            p.axiom("NoCoNotRf", AxiomHead::Empty, co_minus_rf),
            p.axiom("Chained", AxiomHead::Irreflexive, chained),
        ];
        (p, axioms)
    }

    /// Asserts the incremental evaluator agrees with a from-scratch
    /// [`IrEval`] on every axiom of the fixture.
    fn assert_matches_scratch(
        pool: &IrPool,
        axioms: &[Axiom],
        inc: &mut IncrementalEval<'_>,
        exec: &Execution,
        context: &str,
    ) {
        let view = ExecView::new(exec);
        let scratch = IrEval::new(pool, &view);
        for axiom in axioms {
            assert_eq!(
                *inc.rel(exec, axiom.body),
                *scratch.rel(axiom.body),
                "{context}: body of {} diverged",
                axiom.name
            );
            assert_eq!(
                inc.holds(exec, axiom),
                scratch.holds(axiom),
                "{context}: verdict of {} diverged",
                axiom.name
            );
            assert_eq!(
                inc.witness(exec, axiom),
                scratch.witness(axiom),
                "{context}: witness of {} diverged",
                axiom.name
            );
        }
    }

    #[test]
    fn incremental_matches_scratch_under_additions() {
        let (pool, axioms) = incremental_fixture();
        let mut exec = catalog::mp();
        let mut inc = IncrementalEval::new(&pool);
        inc.apply(&exec, &Delta::everything());
        assert_matches_scratch(&pool, &axioms, &mut inc, &exec, "initial");

        // Pure additions: rf, co, rmw and dependency edges appear one at a
        // time — the semi-naïve path.
        let additions = [
            (RelBase::Co, 0, 2),
            (RelBase::Rf, 0, 3),
            (RelBase::Addr, 2, 3),
            (RelBase::Rmw, 2, 3),
            (RelBase::Data, 0, 1),
        ];
        for (step, &(base, a, b)) in additions.iter().enumerate() {
            let target = match base {
                RelBase::Rf => &mut exec.rf,
                RelBase::Co => &mut exec.co,
                RelBase::Addr => &mut exec.addr,
                RelBase::Data => &mut exec.data,
                RelBase::Rmw => &mut exec.rmw,
                _ => unreachable!(),
            };
            target.insert(a, b);
            let mut delta = Delta::new();
            delta.add_edge(base, a, b);
            assert!(delta.is_additions_only());
            inc.apply(&exec, &delta);
            assert_matches_scratch(&pool, &axioms, &mut inc, &exec, &format!("add {step}"));
        }
    }

    #[test]
    fn incremental_matches_scratch_under_removals_and_txn_flips() {
        let (pool, axioms) = incremental_fixture();
        let mut exec = catalog::mp_txn();
        let mut inc = IncrementalEval::new(&pool);
        inc.apply(&exec, &Delta::everything());
        assert_matches_scratch(&pool, &axioms, &mut inc, &exec, "initial");

        // Remove an rf edge: invalidation path.
        let (w, r) = exec.rf.iter().next().expect("mp_txn has rf edges");
        exec.rf.remove(w, r);
        let mut delta = Delta::new();
        delta.remove_edge(RelBase::Rf, w, r);
        assert!(!delta.is_additions_only());
        inc.apply(&exec, &delta);
        assert_matches_scratch(&pool, &axioms, &mut inc, &exec, "rf removal");

        // Dissolve the first transaction: stxn removals touch tfence (mixed
        // polarity) and the lifts.
        let txn_pairs: Vec<(usize, usize)> = exec.stxn.iter().collect();
        let mut delta = Delta::new();
        for &(a, b) in &txn_pairs {
            exec.stxn.remove(a, b);
            delta.remove_edge(RelBase::Stxn, a, b);
        }
        inc.apply(&exec, &delta);
        assert_matches_scratch(&pool, &axioms, &mut inc, &exec, "txn dissolved");

        // Grow a fresh transaction by additions only.
        let mut delta = Delta::new();
        for a in [0usize, 1] {
            for b in [0usize, 1] {
                exec.stxn.insert(a, b);
                delta.add_edge(RelBase::Stxn, a, b);
            }
        }
        inc.apply(&exec, &delta);
        assert_matches_scratch(&pool, &axioms, &mut inc, &exec, "txn regrown");
    }

    #[test]
    fn untouched_footprints_keep_cached_values_and_verdicts() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let rf = p.base(RelBase::Rf);
        let stxn = p.base(RelBase::Stxn);
        let po_rf = p.union(po, rf);
        let lifted = p.stronglift(po_rf, stxn);
        let order = p.axiom("Order", AxiomHead::Acyclic, po_rf);
        let txn_order = p.axiom("TxnOrder", AxiomHead::Acyclic, lifted);

        let mut inc = IncrementalEval::new(&p);
        // po ∪ rf depends on po and rf only; the lift also tracks stxn.
        assert!(inc.footprint(po_rf).intersects(DeltaMask::RF));
        assert!(!inc.footprint(po_rf).intersects(DeltaMask::STXN));
        assert!(inc.footprint(lifted).intersects(DeltaMask::STXN));
        assert!(inc.nonmonotone_inputs(lifted).intersects(DeltaMask::STXN));
        assert!(inc.nonmonotone_inputs(po_rf).is_empty());

        let mut exec = catalog::sb();
        inc.apply(&exec, &Delta::everything());
        let before = inc.rel(&exec, po_rf).clone();
        assert!(inc.holds(&exec, &order));
        assert!(inc.holds(&exec, &txn_order));

        // A transaction flip must not disturb the po ∪ rf node...
        exec.stxn.insert(0, 0);
        exec.stxn.insert(1, 1);
        exec.stxn.insert(0, 1);
        exec.stxn.insert(1, 0);
        let mut delta = Delta::new();
        for (a, b) in [(0, 0), (1, 1), (0, 1), (1, 0)] {
            delta.add_edge(RelBase::Stxn, a, b);
        }
        inc.apply(&exec, &delta);
        assert_eq!(*inc.rel(&exec, po_rf), before);
        assert!(inc.holds(&exec, &order));
        // ...while the lifted node sees the new transaction.
        let view = ExecView::new(&exec);
        let scratch = IrEval::new(&p, &view);
        assert_eq!(inc.holds(&exec, &txn_order), scratch.holds(&txn_order));
    }

    #[test]
    fn full_delta_resets_across_universes() {
        let (pool, axioms) = incremental_fixture();
        let mut inc = IncrementalEval::new(&pool);
        for exec in [
            catalog::sb(),
            catalog::power_wrc_tprop1(),
            catalog::mp_txn(),
        ] {
            inc.apply(&exec, &Delta::everything());
            assert_matches_scratch(&pool, &axioms, &mut inc, &exec, "reset");
        }
    }

    #[test]
    fn costs_order_cheap_axioms_first() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let rf = p.base(RelBase::Rf);
        let cheap = p.axiom("Cheap", AxiomHead::Empty, rf);
        let seq = p.seq(po, rf);
        let closed = p.star(seq);
        let pricey = p.axiom("Pricey", AxiomHead::Acyclic, closed);
        assert!(cheap.cost < pricey.cost);
    }
}

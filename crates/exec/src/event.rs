//! Runtime memory events and their architecture-level annotations.

use std::fmt;

/// A shared-memory location.
///
/// Executions use abstract locations; litmus-test generation later maps them
/// to names (`x`, `y`, `z`, …) and machine addresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc(pub u32);

impl Loc {
    /// Conventional display name (`x`, `y`, `z`, `w`, then `loc4`, `loc5`, …).
    pub fn name(self) -> String {
        match self.0 {
            0 => "x".to_string(),
            1 => "y".to_string(),
            2 => "z".to_string(),
            3 => "w".to_string(),
            n => format!("loc{n}"),
        }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A thread identifier within an execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// The kind of a fence event.
///
/// Fences are events, not edges (footnote 1 of the paper); per-architecture
/// fence *relations* (`mfence`, `sync`, `dmb`, …) are derived from the
/// program order around fence events by [`Execution::fence_rel`].
///
/// [`Execution::fence_rel`]: crate::Execution::fence_rel
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Fence {
    /// x86 `MFENCE`.
    MFence,
    /// Power `sync` (hwsync), the full cumulative barrier.
    Sync,
    /// Power `lwsync`, the lightweight barrier (does not order W→R).
    Lwsync,
    /// Power `isync`, the instruction-synchronising barrier.
    Isync,
    /// ARMv8 `DMB ISH` (full barrier).
    Dmb,
    /// ARMv8 `DMB ISHLD` (load barrier).
    DmbLd,
    /// ARMv8 `DMB ISHST` (store barrier).
    DmbSt,
    /// ARMv8 `ISB`.
    Isb,
    /// C++ `atomic_thread_fence(memory_order_seq_cst)`.
    FenceSc,
    /// C++ `atomic_thread_fence(memory_order_acquire)`.
    FenceAcq,
    /// C++ `atomic_thread_fence(memory_order_release)`.
    FenceRel,
}

impl Fence {
    /// Number of fence kinds (the size of a dense per-kind table).
    pub const COUNT: usize = 11;

    /// A dense index in `0..Fence::COUNT`, stable across runs; used to key
    /// per-kind memoization tables.
    pub fn index(self) -> usize {
        match self {
            Fence::MFence => 0,
            Fence::Sync => 1,
            Fence::Lwsync => 2,
            Fence::Isync => 3,
            Fence::Dmb => 4,
            Fence::DmbLd => 5,
            Fence::DmbSt => 6,
            Fence::Isb => 7,
            Fence::FenceSc => 8,
            Fence::FenceAcq => 9,
            Fence::FenceRel => 10,
        }
    }
}

impl fmt::Display for Fence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Fence::MFence => "MFENCE",
            Fence::Sync => "sync",
            Fence::Lwsync => "lwsync",
            Fence::Isync => "isync",
            Fence::Dmb => "DMB",
            Fence::DmbLd => "DMB LD",
            Fence::DmbSt => "DMB ST",
            Fence::Isb => "ISB",
            Fence::FenceSc => "fence(seq_cst)",
            Fence::FenceAcq => "fence(acquire)",
            Fence::FenceRel => "fence(release)",
        };
        write!(f, "{s}")
    }
}

/// Lock-elision method-call events (§8.3).
///
/// These appear only in the *abstract* executions used to specify a lock
/// library; the lock-elision mapping π expands them into loads, stores and
/// barriers on the lock variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LockCall {
    /// `lock()` implemented by actually acquiring the mutex (the paper's `L`).
    Lock,
    /// `unlock()` paired with [`LockCall::Lock`] (the paper's `U`).
    Unlock,
    /// `lock()` that will be transactionalised/elided (the paper's `Lᵗ`).
    TxLock,
    /// `unlock()` paired with [`LockCall::TxLock`] (the paper's `Uᵗ`).
    TxUnlock,
}

impl fmt::Display for LockCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LockCall::Lock => "L",
            LockCall::Unlock => "U",
            LockCall::TxLock => "Lt",
            LockCall::TxUnlock => "Ut",
        };
        write!(f, "{s}")
    }
}

/// What a memory event does.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A read (load) of a location.
    Read(Loc),
    /// A write (store) to a location.
    Write(Loc),
    /// A fence event of the given kind.
    Fence(Fence),
    /// A lock-library method call (lock-elision checking only).
    LockCall(LockCall),
}

impl EventKind {
    /// The location accessed, if this is a read or a write.
    pub fn loc(self) -> Option<Loc> {
        match self {
            EventKind::Read(l) | EventKind::Write(l) => Some(l),
            _ => None,
        }
    }
}

/// Consistency-mode / instruction-form annotations carried by an event.
///
/// A single flat annotation set covers all four targets; each memory model
/// simply ignores the annotations that do not concern it (e.g. the C++ model
/// ignores `acquire` on an ARMv8 `LDAR`-style load, which is instead encoded
/// via `acq`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Annot {
    /// Acquire semantics (ARMv8 `LDAR`/`LDAXR`, C++ `memory_order_acquire`).
    pub acq: bool,
    /// Release semantics (ARMv8 `STLR`, C++ `memory_order_release`).
    pub rel: bool,
    /// C++ `memory_order_seq_cst`.
    pub sc: bool,
    /// The event comes from a C++ *atomic* operation (the `Ato` set).
    pub atomic: bool,
}

impl Annot {
    /// No annotations: a plain access.
    pub const PLAIN: Annot = Annot {
        acq: false,
        rel: false,
        sc: false,
        atomic: false,
    };

    /// An acquire access.
    pub fn acquire() -> Annot {
        Annot {
            acq: true,
            ..Annot::PLAIN
        }
    }

    /// A release access.
    pub fn release() -> Annot {
        Annot {
            rel: true,
            ..Annot::PLAIN
        }
    }

    /// A C++ relaxed atomic access (atomic but no ordering).
    pub fn relaxed_atomic() -> Annot {
        Annot {
            atomic: true,
            ..Annot::PLAIN
        }
    }

    /// A C++ acquire atomic access.
    pub fn acquire_atomic() -> Annot {
        Annot {
            acq: true,
            atomic: true,
            ..Annot::PLAIN
        }
    }

    /// A C++ release atomic access.
    pub fn release_atomic() -> Annot {
        Annot {
            rel: true,
            atomic: true,
            ..Annot::PLAIN
        }
    }

    /// A C++ seq_cst atomic access (also acquire and release).
    pub fn seq_cst() -> Annot {
        Annot {
            acq: true,
            rel: true,
            sc: true,
            atomic: true,
        }
    }

    /// True if this annotation set is weaker than or equal to `other`
    /// (used by the ⊏ event-downgrade step of §4.2).
    pub fn is_weaker_or_equal(self, other: Annot) -> bool {
        (!self.acq || other.acq)
            && (!self.rel || other.rel)
            && (!self.sc || other.sc)
            && (!self.atomic || other.atomic)
    }
}

/// A runtime memory event: one vertex of an execution graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Event {
    /// The thread this event belongs to.
    pub thread: ThreadId,
    /// What the event does.
    pub kind: EventKind,
    /// Consistency-mode annotations.
    pub annot: Annot,
}

impl Event {
    /// A plain read of `loc` on `thread`.
    pub fn read(thread: u32, loc: u32) -> Event {
        Event {
            thread: ThreadId(thread),
            kind: EventKind::Read(Loc(loc)),
            annot: Annot::PLAIN,
        }
    }

    /// A plain write to `loc` on `thread`.
    pub fn write(thread: u32, loc: u32) -> Event {
        Event {
            thread: ThreadId(thread),
            kind: EventKind::Write(Loc(loc)),
            annot: Annot::PLAIN,
        }
    }

    /// A fence of kind `fence` on `thread`.
    pub fn fence(thread: u32, fence: Fence) -> Event {
        Event {
            thread: ThreadId(thread),
            kind: EventKind::Fence(fence),
            annot: Annot::PLAIN,
        }
    }

    /// A lock-library call event on `thread`.
    pub fn lock_call(thread: u32, call: LockCall) -> Event {
        Event {
            thread: ThreadId(thread),
            kind: EventKind::LockCall(call),
            annot: Annot::PLAIN,
        }
    }

    /// Returns a copy of this event with the given annotations.
    pub fn with_annot(mut self, annot: Annot) -> Event {
        self.annot = annot;
        self
    }

    /// True if this is a read event.
    pub fn is_read(&self) -> bool {
        matches!(self.kind, EventKind::Read(_))
    }

    /// True if this is a write event.
    pub fn is_write(&self) -> bool {
        matches!(self.kind, EventKind::Write(_))
    }

    /// True if this is a fence event.
    pub fn is_fence(&self) -> bool {
        matches!(self.kind, EventKind::Fence(_))
    }

    /// True if this is a memory access (read or write).
    pub fn is_access(&self) -> bool {
        self.is_read() || self.is_write()
    }

    /// True if this is a lock-library call event.
    pub fn is_lock_call(&self) -> bool {
        matches!(self.kind, EventKind::LockCall(_))
    }

    /// The location accessed, if any.
    pub fn loc(&self) -> Option<Loc> {
        self.kind.loc()
    }

    /// A short label like `R x` or `W y` or `F sync` for diagnostics.
    pub fn label(&self) -> String {
        let mode = {
            let mut s = String::new();
            if self.annot.sc {
                s.push_str("sc");
            } else {
                if self.annot.acq {
                    s.push_str("acq");
                }
                if self.annot.rel {
                    s.push_str("rel");
                }
            }
            if self.annot.atomic && !self.annot.sc && !self.annot.acq && !self.annot.rel {
                s.push_str("rlx");
            }
            if s.is_empty() {
                s
            } else {
                format!("[{s}]")
            }
        };
        match self.kind {
            EventKind::Read(l) => format!("R{mode} {l}"),
            EventKind::Write(l) => format!("W{mode} {l}"),
            EventKind::Fence(f) => format!("F {f}"),
            EventKind::LockCall(c) => format!("{c}"),
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.thread, self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_names_are_conventional() {
        assert_eq!(Loc(0).name(), "x");
        assert_eq!(Loc(1).name(), "y");
        assert_eq!(Loc(2).name(), "z");
        assert_eq!(Loc(3).name(), "w");
        assert_eq!(Loc(7).name(), "loc7");
    }

    #[test]
    fn event_constructors_and_predicates() {
        let r = Event::read(0, 0);
        let w = Event::write(1, 1);
        let f = Event::fence(0, Fence::Sync);
        let l = Event::lock_call(0, LockCall::Lock);
        assert!(r.is_read() && r.is_access() && !r.is_write());
        assert!(w.is_write() && w.is_access());
        assert!(f.is_fence() && !f.is_access());
        assert!(l.is_lock_call() && !l.is_access());
        assert_eq!(r.loc(), Some(Loc(0)));
        assert_eq!(f.loc(), None);
    }

    #[test]
    fn annot_weakening_order() {
        assert!(Annot::PLAIN.is_weaker_or_equal(Annot::acquire()));
        assert!(Annot::acquire().is_weaker_or_equal(Annot::seq_cst()));
        assert!(!Annot::acquire().is_weaker_or_equal(Annot::release()));
        assert!(!Annot::seq_cst().is_weaker_or_equal(Annot::relaxed_atomic()));
        assert!(Annot::relaxed_atomic().is_weaker_or_equal(Annot::seq_cst()));
    }

    #[test]
    fn labels_render_modes() {
        let e = Event::read(0, 0).with_annot(Annot::acquire());
        assert_eq!(e.label(), "R[acq] x");
        let e = Event::write(0, 1).with_annot(Annot::seq_cst());
        assert_eq!(e.label(), "W[sc] y");
        let e = Event::read(0, 2).with_annot(Annot::relaxed_atomic());
        assert_eq!(e.label(), "R[rlx] z");
        assert_eq!(Event::fence(0, Fence::Dmb).label(), "F DMB");
        assert_eq!(Event::lock_call(1, LockCall::TxLock).label(), "Lt");
    }

    #[test]
    fn display_includes_thread() {
        let e = Event::write(2, 0);
        assert_eq!(format!("{e}"), "P2:W x");
    }
}

//! Candidate executions for transactional weak-memory models.
//!
//! This crate implements the execution-graph layer of the PLDI'18 paper
//! *The Semantics of Transactions and Weak Memory in x86, Power, ARM, and
//! C++*: runtime events, the primitive relations of §2.1 (`po`, `rf`, `co`,
//! dependencies, `rmw`), the transactional extension of §3.1 (`stxn`,
//! `stxnat`), the lock-elision extension of §8.3 (`scr`, `scrt`, lock-call
//! events), derived relations (`fr`, `com`, fence relations, `tfence`),
//! well-formedness checking, and a catalog of every execution discussed in
//! the paper.
//!
//! The memory models themselves live in the `tm-models` crate; litmus-test
//! generation lives in `tm-litmus`; bounded exhaustive enumeration lives in
//! `tm-synth`.
//!
//! # Quick start
//!
//! ```
//! use tm_exec::{Event, Execution, ExecutionBuilder};
//!
//! // Build the store-buffering shape and ask structural questions about it.
//! let mut b = ExecutionBuilder::new();
//! let wx = b.push(Event::write(0, 0));
//! let ry = b.push(Event::read(0, 1));
//! let wy = b.push(Event::write(1, 1));
//! let rx = b.push(Event::read(1, 0));
//! let exec = b.build()?;
//!
//! assert!(exec.po.contains(wx, ry));
//! assert!(exec.fr().contains(ry, wy));
//! assert!(exec.fr().contains(rx, wx));
//! // The SC "Order" axiom would reject this: po ∪ com has a cycle.
//! assert!(!exec.po.union(&exec.com()).is_acyclic());
//! # Ok::<(), tm_exec::WellFormednessError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
pub mod catalog;
mod event;
mod execution;
pub mod ir;
mod view;
mod wf;

pub use builder::ExecutionBuilder;
pub use event::{Annot, Event, EventKind, Fence, Loc, LockCall, ThreadId};
pub use execution::Execution;
pub use view::ExecView;
pub use wf::{check_well_formed, WellFormednessError};

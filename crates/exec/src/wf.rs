//! Well-formedness of candidate executions (§2.1, §3.1, §8.3).

use std::error::Error;
use std::fmt;

use tm_relation::{is_per, is_strict_total_order_on, per_classes, ElemSet, Relation};

use crate::{Execution, Loc, LockCall};

/// The ways an execution can fail to be well-formed.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum WellFormednessError {
    /// Program order is not a strict total order over some thread's events,
    /// or relates events of different threads.
    MalformedProgramOrder {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A dependency edge (`addr`, `data`, `ctrl`) is not within program
    /// order or does not originate at a read (or, for `ctrl`, at the write
    /// of an RMW).
    MalformedDependency {
        /// Which dependency relation is at fault.
        which: &'static str,
        /// Source event identifier.
        src: usize,
        /// Target event identifier.
        dst: usize,
    },
    /// An `rmw` edge does not link a read to a program-order-later write on
    /// the same location.
    MalformedRmw {
        /// Source event identifier.
        src: usize,
        /// Target event identifier.
        dst: usize,
    },
    /// A reads-from edge does not go from a write to a read on the same
    /// location.
    MalformedReadsFrom {
        /// Source event identifier.
        src: usize,
        /// Target event identifier.
        dst: usize,
    },
    /// A read has more than one incoming reads-from edge.
    MultipleReadsFrom {
        /// The offending read.
        read: usize,
    },
    /// A coherence edge does not relate two writes to the same location.
    MalformedCoherence {
        /// Source event identifier.
        src: usize,
        /// Target event identifier.
        dst: usize,
    },
    /// Coherence is not a strict total order over the writes to a location.
    CoherenceNotTotal {
        /// The location whose writes are not totally ordered.
        loc: Loc,
    },
    /// `stxn` (or `scr`) is not a partial equivalence relation.
    TransactionNotEquivalence {
        /// Which relation is at fault (`"stxn"`, `"stxnat"`, `"scr"`, `"scrt"`).
        which: &'static str,
    },
    /// A transaction (or critical region) spans more than one thread.
    TransactionCrossThread {
        /// Which relation is at fault.
        which: &'static str,
        /// The class that spans threads.
        class: Vec<usize>,
    },
    /// A transaction (or critical region) is not a contiguous slice of its
    /// thread's program order.
    TransactionNotContiguous {
        /// Which relation is at fault.
        which: &'static str,
        /// The offending class.
        class: Vec<usize>,
        /// An event between two class members that is not itself a member.
        intruder: usize,
    },
    /// `stxnat` is not a union of whole `stxn` classes (or `scrt` of `scr`).
    SubclassNotAligned {
        /// Which pair of relations is at fault.
        which: &'static str,
    },
    /// A critical region's lock-call events are malformed (e.g. an `L`
    /// paired with a `Ut`, or a CR with an unlock before its lock).
    MalformedCriticalRegion {
        /// Human-readable description of the violation.
        detail: String,
    },
}

impl fmt::Display for WellFormednessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WellFormednessError::MalformedProgramOrder { detail } => {
                write!(f, "malformed program order: {detail}")
            }
            WellFormednessError::MalformedDependency { which, src, dst } => {
                write!(f, "malformed {which} dependency {src} -> {dst}")
            }
            WellFormednessError::MalformedRmw { src, dst } => {
                write!(f, "malformed rmw edge {src} -> {dst}")
            }
            WellFormednessError::MalformedReadsFrom { src, dst } => {
                write!(f, "malformed reads-from edge {src} -> {dst}")
            }
            WellFormednessError::MultipleReadsFrom { read } => {
                write!(f, "read {read} has multiple incoming reads-from edges")
            }
            WellFormednessError::MalformedCoherence { src, dst } => {
                write!(f, "malformed coherence edge {src} -> {dst}")
            }
            WellFormednessError::CoherenceNotTotal { loc } => {
                write!(f, "coherence is not a strict total order on writes to {loc}")
            }
            WellFormednessError::TransactionNotEquivalence { which } => {
                write!(f, "{which} is not a partial equivalence relation")
            }
            WellFormednessError::TransactionCrossThread { which, class } => {
                write!(f, "{which} class {class:?} spans multiple threads")
            }
            WellFormednessError::TransactionNotContiguous {
                which,
                class,
                intruder,
            } => write!(
                f,
                "{which} class {class:?} is not contiguous in program order (event {intruder} intrudes)"
            ),
            WellFormednessError::SubclassNotAligned { which } => {
                write!(f, "{which} is not a union of whole classes")
            }
            WellFormednessError::MalformedCriticalRegion { detail } => {
                write!(f, "malformed critical region: {detail}")
            }
        }
    }
}

impl Error for WellFormednessError {}

/// Checks that `exec` is a well-formed candidate execution.
///
/// The conditions are those of §2.1 (plain executions), §3.1 (transactions)
/// and §8.3 (critical regions):
///
/// * `po` is, per thread, a strict total order over the thread's events and
///   never crosses threads;
/// * `addr`, `data`, `ctrl` are within `po` and originate at reads (`ctrl`
///   may also originate at the write of an RMW — store-exclusives can start
///   control dependencies on Power);
/// * `rmw` links a read to a po-later write on the same location;
/// * `rf` links writes to reads of the same location, with at most one
///   incoming edge per read;
/// * `co` relates writes to the same location and is a strict total order on
///   the writes to each location;
/// * `stxn`/`stxnat`/`scr`/`scrt` are partial equivalence relations whose
///   classes are single-threaded, contiguous in program order, and whose
///   "atomic"/"transactionalised" subsets are unions of whole classes;
/// * critical regions containing lock calls have matching lock/unlock kinds.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_well_formed(exec: &Execution) -> Result<(), WellFormednessError> {
    check_po(exec)?;
    check_deps(exec)?;
    check_rmw(exec)?;
    check_rf(exec)?;
    check_co(exec)?;
    check_class_relation(exec, &exec.stxn, "stxn")?;
    check_class_relation(exec, &exec.scr, "scr")?;
    check_subclass(&exec.stxn, &exec.stxnat, "stxnat ⊆ stxn")?;
    check_subclass(&exec.scr, &exec.scrt, "scrt ⊆ scr")?;
    check_crs(exec)?;
    Ok(())
}

fn check_po(exec: &Execution) -> Result<(), WellFormednessError> {
    let n = exec.len();
    for (a, b) in exec.po.iter() {
        if exec.event(a).thread != exec.event(b).thread {
            return Err(WellFormednessError::MalformedProgramOrder {
                detail: format!("po edge {a} -> {b} crosses threads"),
            });
        }
    }
    for t in 0..exec.thread_count() {
        let members =
            ElemSet::from_iter(n, (0..n).filter(|&i| exec.event(i).thread.0 as usize == t));
        if members.len() <= 1 {
            continue;
        }
        if !is_strict_total_order_on(&exec.po, &members) {
            return Err(WellFormednessError::MalformedProgramOrder {
                detail: format!("po is not a strict total order on thread {t}"),
            });
        }
    }
    Ok(())
}

fn check_deps(exec: &Execution) -> Result<(), WellFormednessError> {
    let rmw_writes = exec.rmw.range();
    for (which, rel) in [
        ("addr", &exec.addr),
        ("data", &exec.data),
        ("ctrl", &exec.ctrl),
    ] {
        for (src, dst) in rel.iter() {
            let src_ok = exec.event(src).is_read()
                || (which == "ctrl" && exec.event(src).is_write() && rmw_writes.contains(src));
            if !src_ok || !exec.po.contains(src, dst) {
                return Err(WellFormednessError::MalformedDependency { which, src, dst });
            }
        }
    }
    Ok(())
}

fn check_rmw(exec: &Execution) -> Result<(), WellFormednessError> {
    for (src, dst) in exec.rmw.iter() {
        let ok = exec.event(src).is_read()
            && exec.event(dst).is_write()
            && exec.po.contains(src, dst)
            && exec.event(src).loc() == exec.event(dst).loc();
        if !ok {
            return Err(WellFormednessError::MalformedRmw { src, dst });
        }
    }
    Ok(())
}

fn check_rf(exec: &Execution) -> Result<(), WellFormednessError> {
    for (src, dst) in exec.rf.iter() {
        let ok = exec.event(src).is_write()
            && exec.event(dst).is_read()
            && exec.event(src).loc() == exec.event(dst).loc();
        if !ok {
            return Err(WellFormednessError::MalformedReadsFrom { src, dst });
        }
    }
    for r in exec.reads().iter() {
        if exec.rf.predecessors(r).count() > 1 {
            return Err(WellFormednessError::MultipleReadsFrom { read: r });
        }
    }
    Ok(())
}

fn check_co(exec: &Execution) -> Result<(), WellFormednessError> {
    for (src, dst) in exec.co.iter() {
        let ok = exec.event(src).is_write()
            && exec.event(dst).is_write()
            && exec.event(src).loc() == exec.event(dst).loc()
            && src != dst;
        if !ok {
            return Err(WellFormednessError::MalformedCoherence { src, dst });
        }
    }
    for loc in exec.locations() {
        let writes = ElemSet::from_iter(
            exec.len(),
            exec.writes()
                .iter()
                .filter(|&w| exec.event(w).loc() == Some(loc)),
        );
        if writes.len() <= 1 {
            continue;
        }
        if !is_strict_total_order_on(&exec.co, &writes) {
            return Err(WellFormednessError::CoherenceNotTotal { loc });
        }
    }
    Ok(())
}

fn check_class_relation(
    exec: &Execution,
    rel: &Relation,
    which: &'static str,
) -> Result<(), WellFormednessError> {
    if !is_per(rel) {
        return Err(WellFormednessError::TransactionNotEquivalence { which });
    }
    for class in per_classes(rel) {
        let thread = exec.event(class[0]).thread;
        if class.iter().any(|&e| exec.event(e).thread != thread) {
            return Err(WellFormednessError::TransactionCrossThread {
                which,
                class: class.clone(),
            });
        }
        // Contiguity: no event po-between two class members may be outside
        // the class.
        for &a in &class {
            for &b in &class {
                if !exec.po.contains(a, b) {
                    continue;
                }
                for mid in 0..exec.len() {
                    if exec.po.contains(a, mid) && exec.po.contains(mid, b) && !class.contains(&mid)
                    {
                        return Err(WellFormednessError::TransactionNotContiguous {
                            which,
                            class: class.clone(),
                            intruder: mid,
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

fn check_subclass(
    whole: &Relation,
    sub: &Relation,
    which: &'static str,
) -> Result<(), WellFormednessError> {
    if !sub.is_subset_of(whole) {
        return Err(WellFormednessError::SubclassNotAligned { which });
    }
    // Every whole-class that intersects sub must be entirely inside sub.
    for class in per_classes(whole) {
        let in_sub: Vec<bool> = class.iter().map(|&e| sub.contains(e, e)).collect();
        if in_sub.iter().any(|&b| b) && !in_sub.iter().all(|&b| b) {
            return Err(WellFormednessError::SubclassNotAligned { which });
        }
    }
    Ok(())
}

fn check_crs(exec: &Execution) -> Result<(), WellFormednessError> {
    for class in exec.cr_classes() {
        let transactionalised = exec.scrt.contains(class[0], class[0]);
        let calls: Vec<(usize, LockCall)> = class
            .iter()
            .filter_map(|&e| match exec.event(e).kind {
                crate::EventKind::LockCall(c) => Some((e, c)),
                _ => None,
            })
            .collect();
        if calls.is_empty() {
            continue;
        }
        let (expected_lock, expected_unlock) = if transactionalised {
            (LockCall::TxLock, LockCall::TxUnlock)
        } else {
            (LockCall::Lock, LockCall::Unlock)
        };
        for &(e, c) in &calls {
            if c != expected_lock && c != expected_unlock {
                return Err(WellFormednessError::MalformedCriticalRegion {
                    detail: format!(
                        "critical region {class:?} mixes lock-call kinds (event {e} is {c})"
                    ),
                });
            }
        }
        let locks: Vec<usize> = calls
            .iter()
            .filter(|(_, c)| *c == expected_lock)
            .map(|(e, _)| *e)
            .collect();
        let unlocks: Vec<usize> = calls
            .iter()
            .filter(|(_, c)| *c == expected_unlock)
            .map(|(e, _)| *e)
            .collect();
        if locks.len() != 1 || unlocks.len() != 1 {
            return Err(WellFormednessError::MalformedCriticalRegion {
                detail: format!(
                    "critical region {class:?} must contain exactly one lock and one unlock call"
                ),
            });
        }
        if !exec.po.contains(locks[0], unlocks[0]) {
            return Err(WellFormednessError::MalformedCriticalRegion {
                detail: format!(
                    "critical region {class:?}: unlock {} precedes lock {}",
                    unlocks[0], locks[0]
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, ExecutionBuilder};

    #[test]
    fn sb_is_well_formed() {
        let mut b = ExecutionBuilder::new();
        b.push(Event::write(0, 0));
        b.push(Event::read(0, 1));
        b.push(Event::write(1, 1));
        b.push(Event::read(1, 0));
        assert!(b.build().is_ok());
    }

    #[test]
    fn rejects_rf_from_read() {
        let mut b = ExecutionBuilder::new();
        let r1 = b.push(Event::read(0, 0));
        let r2 = b.push(Event::read(1, 0));
        b.rf(r1, r2);
        assert!(matches!(
            b.build(),
            Err(WellFormednessError::MalformedReadsFrom { .. })
        ));
    }

    #[test]
    fn rejects_rf_across_locations() {
        let mut b = ExecutionBuilder::new();
        let w = b.push(Event::write(0, 0));
        let r = b.push(Event::read(1, 1));
        b.rf(w, r);
        assert!(matches!(
            b.build(),
            Err(WellFormednessError::MalformedReadsFrom { .. })
        ));
    }

    #[test]
    fn rejects_two_rf_sources_for_one_read() {
        let mut b = ExecutionBuilder::new();
        let w1 = b.push(Event::write(0, 0));
        let w2 = b.push(Event::write(1, 0));
        let r = b.push(Event::read(2, 0));
        b.rf(w1, r);
        b.rf(w2, r);
        b.co(w1, w2);
        assert!(matches!(
            b.build(),
            Err(WellFormednessError::MultipleReadsFrom { .. })
        ));
    }

    #[test]
    fn rejects_partial_coherence() {
        let mut b = ExecutionBuilder::new();
        b.push(Event::write(0, 0));
        b.push(Event::write(1, 0));
        // Two writes to x but no co edge between them.
        assert!(matches!(
            b.build(),
            Err(WellFormednessError::CoherenceNotTotal { .. })
        ));
    }

    #[test]
    fn rejects_co_across_locations() {
        let mut b = ExecutionBuilder::new();
        let w1 = b.push(Event::write(0, 0));
        let w2 = b.push(Event::write(1, 1));
        b.co(w1, w2);
        assert!(matches!(
            b.build(),
            Err(WellFormednessError::MalformedCoherence { .. })
        ));
    }

    #[test]
    fn rejects_dependency_from_write() {
        let mut b = ExecutionBuilder::new();
        let w = b.push(Event::write(0, 0));
        let r = b.push(Event::read(0, 1));
        b.data(w, r);
        assert!(matches!(
            b.build(),
            Err(WellFormednessError::MalformedDependency { which: "data", .. })
        ));
    }

    #[test]
    fn accepts_ctrl_from_rmw_write() {
        // Power: ctrl edges can begin at a store-exclusive (footnote 3).
        let mut b = ExecutionBuilder::new();
        let lr = b.push(Event::read(0, 0));
        let sw = b.push(Event::write(0, 0));
        let later = b.push(Event::write(0, 1));
        b.rmw(lr, sw);
        b.ctrl(sw, later);
        assert!(b.build().is_ok());
    }

    #[test]
    fn rejects_cross_thread_dependency() {
        let mut b = ExecutionBuilder::new();
        let r = b.push(Event::read(0, 0));
        let w = b.push(Event::write(1, 1));
        b.data(r, w);
        assert!(matches!(
            b.build(),
            Err(WellFormednessError::MalformedDependency { .. })
        ));
    }

    #[test]
    fn rejects_rmw_across_locations() {
        let mut b = ExecutionBuilder::new();
        let r = b.push(Event::read(0, 0));
        let w = b.push(Event::write(0, 1));
        b.rmw(r, w);
        assert!(matches!(
            b.build(),
            Err(WellFormednessError::MalformedRmw { .. })
        ));
    }

    #[test]
    fn rejects_cross_thread_transaction() {
        let mut b = ExecutionBuilder::new();
        let a = b.push(Event::write(0, 0));
        let c = b.push(Event::read(1, 0));
        b.txn(&[a, c]);
        b.rf(a, c);
        assert!(matches!(
            b.build(),
            Err(WellFormednessError::TransactionCrossThread { which: "stxn", .. })
        ));
    }

    #[test]
    fn rejects_non_contiguous_transaction() {
        let mut b = ExecutionBuilder::new();
        let a = b.push(Event::write(0, 0));
        let mid = b.push(Event::read(0, 1));
        let c = b.push(Event::write(0, 2));
        b.txn(&[a, c]);
        let err = b.build().unwrap_err();
        assert_eq!(
            err,
            WellFormednessError::TransactionNotContiguous {
                which: "stxn",
                class: vec![a, c],
                intruder: mid,
            }
        );
    }

    #[test]
    fn rejects_atomic_marker_on_partial_class() {
        let mut b = ExecutionBuilder::new();
        let a = b.push(Event::write(0, 0));
        let c = b.push(Event::read(0, 1));
        b.txn(&[a, c]);
        // Manually mis-mark only one event as atomic.
        let mut exec = b.build_unchecked();
        exec.stxnat.insert(a, a);
        assert!(matches!(
            check_well_formed(&exec),
            Err(WellFormednessError::SubclassNotAligned { .. })
        ));
    }

    #[test]
    fn rejects_mismatched_lock_calls_in_cr() {
        let mut b = ExecutionBuilder::new();
        let l = b.push(Event::lock_call(0, crate::LockCall::Lock));
        let w = b.push(Event::write(0, 0));
        let u = b.push(Event::lock_call(0, crate::LockCall::TxUnlock));
        b.cr(&[l, w, u]);
        assert!(matches!(
            b.build(),
            Err(WellFormednessError::MalformedCriticalRegion { .. })
        ));
    }

    #[test]
    fn accepts_matching_transactionalised_cr() {
        let mut b = ExecutionBuilder::new();
        let l = b.push(Event::lock_call(0, crate::LockCall::TxLock));
        let w = b.push(Event::write(0, 0));
        let u = b.push(Event::lock_call(0, crate::LockCall::TxUnlock));
        b.txn_cr(&[l, w, u]);
        assert!(b.build().is_ok());
    }

    #[test]
    fn error_messages_are_informative() {
        let err = WellFormednessError::CoherenceNotTotal { loc: Loc(0) };
        assert!(format!("{err}").contains('x'));
        let err = WellFormednessError::MultipleReadsFrom { read: 3 };
        assert!(format!("{err}").contains('3'));
    }
}

//! Candidate executions: event graphs with primitive and derived relations.

use std::fmt;

use tm_relation::{ElemSet, Relation};

use crate::{Event, EventKind, Fence, Loc, LockCall, ThreadId};

/// A candidate execution (§2.1, extended with transactions as in §3.1 and
/// lock-elision critical regions as in §8.3).
///
/// The vertices are [`Event`]s, indexed densely by `usize`. The primitive
/// relations are stored explicitly; everything else (`fr`, `com`, `rfe`,
/// `poloc`, per-architecture fence relations, `tfence`, …) is derived on
/// demand.
///
/// An `Execution` does not promise well-formedness by construction; use
/// [`crate::check_well_formed`] (or [`crate::ExecutionBuilder`], which checks
/// on `build`) before feeding one to a memory model.
///
/// # Examples
///
/// ```
/// use tm_exec::{Event, ExecutionBuilder};
///
/// // The message-passing (MP) shape: W x; W y || R y; R x.
/// let mut b = ExecutionBuilder::new();
/// let wx = b.push(Event::write(0, 0));
/// let wy = b.push(Event::write(0, 1));
/// let ry = b.push(Event::read(1, 1));
/// let rx = b.push(Event::read(1, 0));
/// b.rf(wy, ry);
/// let exec = b.build()?;
/// assert_eq!(exec.len(), 4);
/// assert!(exec.rfe().contains(wy, ry));
/// // rx reads the initial value, so it is fr-before wx.
/// assert!(exec.fr().contains(rx, wx));
/// # Ok::<(), tm_exec::WellFormednessError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Execution {
    /// The events of the execution, in identifier order.
    pub events: Vec<Event>,
    /// Program order (sequenced-before).
    pub po: Relation,
    /// Reads-from: writes to the reads that observe them.
    pub rf: Relation,
    /// Coherence order on writes to the same location.
    pub co: Relation,
    /// Address dependencies.
    pub addr: Relation,
    /// Data dependencies.
    pub data: Relation,
    /// Control dependencies.
    pub ctrl: Relation,
    /// Read-modify-write pairing (read of an RMW to its write).
    pub rmw: Relation,
    /// Same-successful-transaction (a partial equivalence relation).
    pub stxn: Relation,
    /// Same-successful-*atomic*-transaction (C++ only; `stxnat ⊆ stxn`).
    pub stxnat: Relation,
    /// Same-critical-region (lock-elision checking, §8.3).
    pub scr: Relation,
    /// Same-*transactionalised*-critical-region (`scrt ⊆ scr`).
    pub scrt: Relation,
}

impl Execution {
    /// Creates an execution with the given events and no edges at all.
    pub fn with_events(events: Vec<Event>) -> Execution {
        let n = events.len();
        Execution {
            events,
            po: Relation::new(n),
            rf: Relation::new(n),
            co: Relation::new(n),
            addr: Relation::new(n),
            data: Relation::new(n),
            ctrl: Relation::new(n),
            rmw: Relation::new(n),
            stxn: Relation::new(n),
            stxnat: Relation::new(n),
            scr: Relation::new(n),
            scrt: Relation::new(n),
        }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the execution has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The event with identifier `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn event(&self, id: usize) -> &Event {
        &self.events[id]
    }

    /// The number of distinct threads mentioned by events.
    pub fn thread_count(&self) -> usize {
        self.events
            .iter()
            .map(|e| e.thread.0 as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// The distinct locations accessed by reads and writes.
    pub fn locations(&self) -> Vec<Loc> {
        let mut locs: Vec<Loc> = self.events.iter().filter_map(|e| e.loc()).collect();
        locs.sort_unstable();
        locs.dedup();
        locs
    }

    // ---- event sets -----------------------------------------------------

    /// The set `R` of read events.
    pub fn reads(&self) -> ElemSet {
        self.set_of(|e| e.is_read())
    }

    /// The set `W` of write events.
    pub fn writes(&self) -> ElemSet {
        self.set_of(|e| e.is_write())
    }

    /// The set `F` of fence events (any kind).
    pub fn fences(&self) -> ElemSet {
        self.set_of(|e| e.is_fence())
    }

    /// The set of memory accesses (reads and writes).
    pub fn accesses(&self) -> ElemSet {
        self.set_of(|e| e.is_access())
    }

    /// The set `Acq` of acquire events.
    pub fn acquires(&self) -> ElemSet {
        self.set_of(|e| e.annot.acq)
    }

    /// The set `Rel` of release events.
    pub fn releases(&self) -> ElemSet {
        self.set_of(|e| e.annot.rel)
    }

    /// The set `SC` of sequentially-consistent (C++ `seq_cst`) events.
    pub fn sc_events(&self) -> ElemSet {
        self.set_of(|e| e.annot.sc)
    }

    /// The set `Ato` of events from C++ atomic operations.
    pub fn atomics(&self) -> ElemSet {
        self.set_of(|e| e.annot.atomic)
    }

    /// Fence events of exactly the given kind.
    pub fn fences_of(&self, kind: Fence) -> ElemSet {
        self.set_of(|e| e.kind == EventKind::Fence(kind))
    }

    /// Lock-library call events of the given kind.
    pub fn lock_calls_of(&self, call: LockCall) -> ElemSet {
        self.set_of(|e| e.kind == EventKind::LockCall(call))
    }

    /// All lock-library call events.
    pub fn lock_calls(&self) -> ElemSet {
        self.set_of(|e| e.is_lock_call())
    }

    /// The set of events that belong to some successful transaction.
    pub fn in_txn(&self) -> ElemSet {
        ElemSet::from_iter(self.len(), self.stxn.domain().iter())
    }

    /// The set of events that belong to no successful transaction.
    pub fn not_in_txn(&self) -> ElemSet {
        self.in_txn().complement()
    }

    fn set_of(&self, pred: impl Fn(&Event) -> bool) -> ElemSet {
        ElemSet::from_iter(
            self.len(),
            self.events
                .iter()
                .enumerate()
                .filter(|(_, e)| pred(e))
                .map(|(i, _)| i),
        )
    }

    // ---- basic derived relations ----------------------------------------

    /// Same-location: relates accesses to the same location (irreflexive
    /// pairs included both ways; reflexive pairs excluded).
    pub fn sloc(&self) -> Relation {
        // Group accesses by location first, then relate within each group,
        // rather than scanning all event pairs.
        let mut r = Relation::new(self.len());
        let mut by_loc: Vec<(Loc, Vec<usize>)> = Vec::new();
        for (i, e) in self.events.iter().enumerate() {
            if let Some(loc) = e.loc() {
                match by_loc.iter_mut().find(|(l, _)| *l == loc) {
                    Some((_, group)) => group.push(i),
                    None => by_loc.push((loc, vec![i])),
                }
            }
        }
        for (_, group) in &by_loc {
            for (k, &i) in group.iter().enumerate() {
                for &j in &group[k + 1..] {
                    r.insert(i, j);
                    r.insert(j, i);
                }
            }
        }
        r
    }

    /// Same-thread (internal) pairs: `(po ∪ po⁻¹)*`, i.e. both events on the
    /// same thread (including the reflexive pairs).
    pub fn same_thread(&self) -> Relation {
        // Group by thread, then relate within each group (reflexive pairs
        // included), rather than scanning all event pairs.
        let mut r = Relation::new(self.len());
        let mut by_thread: Vec<(ThreadId, Vec<usize>)> = Vec::new();
        for (i, e) in self.events.iter().enumerate() {
            match by_thread.iter_mut().find(|(t, _)| *t == e.thread) {
                Some((_, group)) => group.push(i),
                None => by_thread.push((e.thread, vec![i])),
            }
        }
        for (_, group) in &by_thread {
            for &i in group {
                for &j in group {
                    r.insert(i, j);
                }
            }
        }
        r
    }

    /// Restricts `r` to inter-thread (external) pairs: `r \ (po ∪ po⁻¹)*`.
    pub fn external(&self, r: &Relation) -> Relation {
        r.difference(&self.same_thread())
    }

    /// Restricts `r` to intra-thread (internal) pairs: `r ∩ (po ∪ po⁻¹)*`.
    pub fn internal(&self, r: &Relation) -> Relation {
        r.intersection(&self.same_thread())
    }

    /// Program order restricted to same-location accesses (`poloc`).
    pub fn poloc(&self) -> Relation {
        self.po.intersection(&self.sloc())
    }

    /// Program order between accesses of different locations (`po,loc` in the
    /// paper's Appendix C notation).
    pub fn po_diff_loc(&self) -> Relation {
        self.po.difference(&self.sloc())
    }

    /// From-read: each read to every write on the same location that is
    /// co-after the write the read observed. Reads of the initial value are
    /// fr-before every write to that location.
    ///
    /// `fr = ([R] ; sloc ; [W]) \ (rf⁻¹ ; (co⁻¹)*)`.
    pub fn fr(&self) -> Relation {
        let r_to_w = Relation::identity_on(&self.reads())
            .compose(&self.sloc())
            .compose(&Relation::identity_on(&self.writes()));
        let excluded = self
            .rf
            .inverse()
            .compose(&self.co.inverse().reflexive_transitive_closure());
        r_to_w.difference(&excluded)
    }

    /// External (inter-thread) reads-from.
    pub fn rfe(&self) -> Relation {
        self.external(&self.rf)
    }

    /// Internal (intra-thread) reads-from.
    pub fn rfi(&self) -> Relation {
        self.internal(&self.rf)
    }

    /// External coherence edges.
    pub fn coe(&self) -> Relation {
        self.external(&self.co)
    }

    /// Internal coherence edges.
    pub fn coi(&self) -> Relation {
        self.internal(&self.co)
    }

    /// External from-read edges.
    pub fn fre(&self) -> Relation {
        self.external(&self.fr())
    }

    /// Internal from-read edges.
    pub fn fri(&self) -> Relation {
        self.internal(&self.fr())
    }

    /// Communication: `com = rf ∪ co ∪ fr`.
    pub fn com(&self) -> Relation {
        self.rf.union(&self.co).union(&self.fr())
    }

    /// External communication edges.
    pub fn come(&self) -> Relation {
        self.external(&self.com())
    }

    /// Extended communication (C++ §7.2): `ecom = com ∪ (co ; rf)`.
    pub fn ecom(&self) -> Relation {
        self.com().union(&self.co.compose(&self.rf))
    }

    /// The conflict relation (C++ Fig. 9): pairs of same-location accesses,
    /// at least one a write, excluding identity pairs.
    pub fn cnf(&self) -> Relation {
        let w = self.writes();
        let r = self.reads();
        let ww = Relation::cross(&w, &w);
        let rw = Relation::cross(&r, &w);
        let wr = Relation::cross(&w, &r);
        ww.union(&rw)
            .union(&wr)
            .intersection(&self.sloc())
            .difference(&Relation::identity(self.len()))
    }

    // ---- fences ----------------------------------------------------------

    /// The per-architecture fence relation for fences of kind `kind`:
    /// program-order pairs `(a, b)` separated by a fence event of that kind
    /// (`a` po-before the fence, fence po-before `b`).
    pub fn fence_rel(&self, kind: Fence) -> Relation {
        self.fence_rel_of(&self.fences_of(kind))
    }

    /// Like [`Execution::fence_rel`] but for a union of fence kinds.
    pub fn fence_rel_any(&self, kinds: &[Fence]) -> Relation {
        let mut set = ElemSet::new(self.len());
        for &k in kinds {
            set = set.union(&self.fences_of(k));
        }
        self.fence_rel_of(&set)
    }

    fn fence_rel_of(&self, fences: &ElemSet) -> Relation {
        let id_f = Relation::identity_on(fences);
        self.po.compose(&id_f).compose(&self.po)
    }

    /// The implicit transaction fence relation (`tfence`):
    /// `po ∩ ((¬stxn ; stxn) ∪ (stxn ; ¬stxn))` — program-order edges that
    /// enter or exit a successful transaction.
    ///
    /// Note that a program-order edge between two *different* transactions
    /// both exits the first and enters the second, so it is in `tfence`;
    /// this matters for the transaction-coalescing counterexample of §8.1.
    pub fn tfence(&self) -> Relation {
        // No transaction, no boundary: po ∩ ((¬∅;∅) ∪ (∅;¬∅)) = ∅.
        if self.stxn.is_empty() {
            return Relation::new(self.len());
        }
        let not_stxn = self.stxn.complement();
        let enter = not_stxn.compose(&self.stxn);
        let exit = self.stxn.compose(&not_stxn);
        self.po.intersection(&enter.union(&exit))
    }

    // ---- transaction lifting ---------------------------------------------

    /// `weaklift(r, t) = t ; (r \ t) ; t` — relates whole transactions when
    /// some event of one is `r`-related to some event of another (§3.3).
    pub fn weaklift(r: &Relation, t: &Relation) -> Relation {
        // ∅ ; (r \ ∅) ; ∅ = ∅.
        if t.is_empty() {
            return Relation::new(r.universe());
        }
        t.compose(&r.difference(t)).compose(t)
    }

    /// `stronglift(r, t) = t? ; (r \ t) ; t?` — like [`Execution::weaklift`]
    /// but the source and/or target may also be non-transactional events.
    pub fn stronglift(r: &Relation, t: &Relation) -> Relation {
        // ∅? = id, so stronglift(r, ∅) = id ; r ; id = r.
        if t.is_empty() {
            return r.clone();
        }
        let tq = t.reflexive_closure();
        tq.compose(&r.difference(t)).compose(&tq)
    }

    /// The transaction classes of this execution (each a sorted list of
    /// event identifiers), ordered by first event.
    pub fn txn_classes(&self) -> Vec<Vec<usize>> {
        tm_relation::per_classes(&self.stxn)
    }

    /// The critical-region classes of this execution (lock elision, §8.3).
    pub fn cr_classes(&self) -> Vec<Vec<usize>> {
        tm_relation::per_classes(&self.scr)
    }

    // ---- mutation helpers used by ⊏ weakening and mappings ----------------

    /// Returns a copy of this execution with event `id` removed (and every
    /// incident edge dropped); remaining events are re-indexed densely.
    pub fn remove_event(&self, id: usize) -> Execution {
        let n = self.len();
        let mut map = vec![None; n];
        let mut next = 0;
        for (i, slot) in map.iter_mut().enumerate() {
            if i != id {
                *slot = Some(next);
                next += 1;
            }
        }
        let events = self
            .events
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != id)
            .map(|(_, e)| *e)
            .collect();
        let rx = |r: &Relation| r.reindex(&map, next);
        Execution {
            events,
            po: rx(&self.po),
            rf: rx(&self.rf),
            co: rx(&self.co),
            addr: rx(&self.addr),
            data: rx(&self.data),
            ctrl: rx(&self.ctrl),
            rmw: rx(&self.rmw),
            stxn: rx(&self.stxn),
            stxnat: rx(&self.stxnat),
            scr: rx(&self.scr),
            scrt: rx(&self.scrt),
        }
    }

    /// A canonical structural signature of the execution, used for
    /// deduplication by the enumerator. Two executions with equal signatures
    /// have identical events (up to identifier order within threads) and
    /// identical relations.
    pub fn signature(&self) -> String {
        let mut s = String::new();
        for (i, e) in self.events.iter().enumerate() {
            s.push_str(&format!("{i}:{};", e));
        }
        let dump = |name: &str, r: &Relation, out: &mut String| {
            out.push_str(name);
            out.push('=');
            for (a, b) in r.iter() {
                out.push_str(&format!("{a}-{b},"));
            }
            out.push(';');
        };
        dump("po", &self.po, &mut s);
        dump("rf", &self.rf, &mut s);
        dump("co", &self.co, &mut s);
        dump("addr", &self.addr, &mut s);
        dump("data", &self.data, &mut s);
        dump("ctrl", &self.ctrl, &mut s);
        dump("rmw", &self.rmw, &mut s);
        dump("stxn", &self.stxn, &mut s);
        dump("stxnat", &self.stxnat, &mut s);
        dump("scr", &self.scr, &mut s);
        dump("scrt", &self.scrt, &mut s);
        s
    }
}

impl fmt::Debug for Execution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Execution with {} events:", self.len())?;
        for (i, e) in self.events.iter().enumerate() {
            let mut marks = String::new();
            if self.in_txn().contains(i) {
                marks.push_str(" [txn]");
            }
            writeln!(f, "  {i}: {e}{marks}")?;
        }
        let show = |name: &str, r: &Relation, f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !r.is_empty() {
                writeln!(f, "  {name}: {:?}", r.iter().collect::<Vec<_>>())?;
            }
            Ok(())
        };
        show("po", &self.po, f)?;
        show("rf", &self.rf, f)?;
        show("co", &self.co, f)?;
        show("addr", &self.addr, f)?;
        show("data", &self.data, f)?;
        show("ctrl", &self.ctrl, f)?;
        show("rmw", &self.rmw, f)?;
        show("stxn", &self.stxn, f)?;
        show("scr", &self.scr, f)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExecutionBuilder;

    /// Store-buffering shape used by several tests:
    /// P0: W x; R y   P1: W y; R x, both reads from the initial state.
    fn sb() -> Execution {
        let mut b = ExecutionBuilder::new();
        let _wx = b.push(Event::write(0, 0));
        let _ry = b.push(Event::read(0, 1));
        let _wy = b.push(Event::write(1, 1));
        let _rx = b.push(Event::read(1, 0));
        b.build().unwrap()
    }

    #[test]
    fn event_sets_partition() {
        let e = sb();
        assert_eq!(e.reads().len(), 2);
        assert_eq!(e.writes().len(), 2);
        assert!(e.fences().is_empty());
        assert_eq!(e.accesses().len(), 4);
        assert_eq!(e.thread_count(), 2);
        assert_eq!(e.locations(), vec![Loc(0), Loc(1)]);
    }

    #[test]
    fn fr_relates_initial_reads_to_all_writes() {
        let e = sb();
        // R y (1) is fr-before W y (2); R x (3) is fr-before W x (0).
        let fr = e.fr();
        assert!(fr.contains(1, 2));
        assert!(fr.contains(3, 0));
        assert_eq!(fr.len(), 2);
        // All fr here is external.
        assert_eq!(e.fre(), fr);
        assert!(e.fri().is_empty());
    }

    #[test]
    fn fr_excludes_writes_not_co_after_observed() {
        // P0: W x (a); P1: W x (b), R x (c) reading from b, co a -> b.
        let mut b = ExecutionBuilder::new();
        let a = b.push(Event::write(0, 0));
        let w = b.push(Event::write(1, 0));
        let r = b.push(Event::read(1, 0));
        b.rf(w, r);
        b.co(a, w);
        let e = b.build().unwrap();
        // r observed w, which is co-after a, so r is fr-before nothing.
        assert!(e.fr().is_empty());
        assert!(e.com().contains(a, w));
        assert!(e.com().contains(w, r));
        let _ = e.event(r);
    }

    #[test]
    fn sloc_and_poloc() {
        let mut b = ExecutionBuilder::new();
        let w1 = b.push(Event::write(0, 0));
        let r1 = b.push(Event::read(0, 0));
        let w2 = b.push(Event::write(0, 1));
        let e = b.build().unwrap();
        assert!(e.sloc().contains(w1, r1) && e.sloc().contains(r1, w1));
        assert!(!e.sloc().contains(w1, w2));
        assert!(e.poloc().contains(w1, r1));
        assert!(!e.poloc().contains(w1, w2));
        assert!(e.po_diff_loc().contains(w1, w2));
    }

    #[test]
    fn fence_relation_connects_across_fence_events() {
        let mut b = ExecutionBuilder::new();
        let w = b.push(Event::write(0, 0));
        let _f = b.push(Event::fence(0, Fence::Sync));
        let r = b.push(Event::read(0, 1));
        let other = b.push(Event::read(1, 0));
        let e = b.build().unwrap();
        let sync = e.fence_rel(Fence::Sync);
        assert!(sync.contains(w, r));
        assert!(!sync.contains(w, other));
        assert!(e.fence_rel(Fence::Lwsync).is_empty());
        assert!(e
            .fence_rel_any(&[Fence::Sync, Fence::Lwsync])
            .contains(w, r));
    }

    #[test]
    fn tfence_marks_transaction_boundaries() {
        let mut b = ExecutionBuilder::new();
        let before = b.push(Event::write(0, 0));
        let t1 = b.push(Event::write(0, 1));
        let t2 = b.push(Event::read(0, 0));
        let after = b.push(Event::read(0, 1));
        b.txn(&[t1, t2]);
        let e = b.build().unwrap();
        let tf = e.tfence();
        assert!(tf.contains(before, t1));
        assert!(tf.contains(before, t2));
        assert!(tf.contains(t1, after));
        assert!(tf.contains(t2, after));
        assert!(!tf.contains(t1, t2));
        assert!(!tf.contains(before, after));
    }

    #[test]
    fn weaklift_and_stronglift() {
        // txn {0, 1}; external event 2; r = {(1, 2), (2, 0)}.
        let txn = Relation::from_pairs(3, [(0, 0), (0, 1), (1, 0), (1, 1)]);
        let r = Relation::from_pairs(3, [(1, 2), (2, 0)]);
        let weak = Execution::weaklift(&r, &txn);
        // The target/source 2 is not in any transaction, so weaklift is empty.
        assert!(weak.is_empty());
        let strong = Execution::stronglift(&r, &txn);
        // stronglift relates both txn events to 2 and 2 back to both.
        assert!(strong.contains(0, 2) && strong.contains(1, 2));
        assert!(strong.contains(2, 0) && strong.contains(2, 1));
        assert!(!strong.is_acyclic());
    }

    #[test]
    fn txn_classes_and_membership() {
        let mut b = ExecutionBuilder::new();
        let a = b.push(Event::write(0, 0));
        let c = b.push(Event::read(0, 1));
        let d = b.push(Event::write(1, 1));
        b.txn(&[a, c]);
        let e = b.build().unwrap();
        assert_eq!(e.txn_classes(), vec![vec![a, c]]);
        assert!(e.in_txn().contains(a) && e.in_txn().contains(c));
        assert!(e.not_in_txn().contains(d));
    }

    #[test]
    fn remove_event_reindexes_relations() {
        let mut b = ExecutionBuilder::new();
        let w = b.push(Event::write(0, 0));
        let f = b.push(Event::fence(0, Fence::MFence));
        let r = b.push(Event::read(1, 0));
        b.rf(w, r);
        let e = b.build().unwrap();
        let smaller = e.remove_event(f);
        assert_eq!(smaller.len(), 2);
        assert!(smaller.rf.contains(0, 1));
        assert!(smaller.po.is_empty());
        let _ = (w, r);
    }

    #[test]
    fn cnf_requires_conflict() {
        let mut b = ExecutionBuilder::new();
        let w = b.push(Event::write(0, 0));
        let r_same = b.push(Event::read(1, 0));
        let r_other = b.push(Event::read(1, 1));
        let e = b.build().unwrap();
        let cnf = e.cnf();
        assert!(cnf.contains(w, r_same) && cnf.contains(r_same, w));
        assert!(!cnf.contains(w, r_other));
        assert!(!cnf.contains(r_same, r_other));
        assert!(cnf.is_irreflexive());
    }

    #[test]
    fn ecom_extends_com_with_co_rf() {
        let mut b = ExecutionBuilder::new();
        let w1 = b.push(Event::write(0, 0));
        let w2 = b.push(Event::write(1, 0));
        let r = b.push(Event::read(2, 0));
        b.co(w1, w2);
        b.rf(w2, r);
        let e = b.build().unwrap();
        assert!(!e.com().contains(w1, r));
        assert!(e.ecom().contains(w1, r));
    }

    #[test]
    fn signature_distinguishes_executions() {
        let a = sb();
        let mut b2 = ExecutionBuilder::new();
        let wx = b2.push(Event::write(0, 0));
        let ry = b2.push(Event::read(0, 1));
        let wy = b2.push(Event::write(1, 1));
        let rx = b2.push(Event::read(1, 0));
        b2.rf(wx, rx);
        b2.rf(wy, ry);
        let b = b2.build().unwrap();
        assert_ne!(a.signature(), b.signature());
        assert_eq!(a.signature(), a.clone().signature());
    }
}

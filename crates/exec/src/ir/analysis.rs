//! Event-type abstract interpretation over the axiom IR.
//!
//! Every interned [`RelId`]/[`SetId`] gets a static approximation computed
//! bottom-up over the hash-consed pool: which event kinds its domain and
//! range can contain, plus structural flags (provably empty, irreflexive,
//! acyclic, a subset of `po`, within one thread, within one location). The
//! approximation is **sound over well-formed executions** (the `wf` module's
//! invariants are exactly what grounds the base facts: `rf ⊆ W × R` on one
//! location, `po` a per-thread strict total order, and so on) and is the
//! substrate for the `.cat` linter:
//!
//! * a composition like `rf ; rf` is *statically empty* — `range(rf) ⊆ R`
//!   and `domain(rf) ⊆ W` are disjoint;
//! * `acyclic po` is *vacuous* — `po` is acyclic by construction on every
//!   well-formed execution;
//! * `acyclic (po | com)` makes a later `irreflexive po` *redundant* —
//!   syntactic inclusion under the approximation
//!   ([`Analysis::subsumes`]) plus head implication
//!   ([`Analysis::implied_by`]).
//!
//! Fixpoint nodes ([`RelExpr::Fix`]) are handled by abstract Kleene
//! iteration on the same lattice: the lattice is finite, every step joins
//! with the previous approximation, so the ascending chain stabilises and
//! over-approximates the concrete least fixpoint.
//!
//! The enumeration cross-check in `tests/analysis_parity.rs` pins the
//! soundness claim operationally: every node this module declares empty is
//! enumerated-empty over exhaustive candidate spaces.

use super::{AxiomHead, IrPool, RelBase, RelExpr, RelId, SetBase, SetExpr, SetId};
use std::collections::HashMap;

/// A set of event kinds, abstracting which events a relation's domain or
/// range (or a set expression) can contain. The four kinds partition every
/// event: reads, writes, fences, lock calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Kinds(u8);

impl Kinds {
    /// No event at all.
    pub const NONE: Kinds = Kinds(0);
    /// Read events.
    pub const READ: Kinds = Kinds(1 << 0);
    /// Write events.
    pub const WRITE: Kinds = Kinds(1 << 1);
    /// Fence events (any fence kind).
    pub const FENCE: Kinds = Kinds(1 << 2);
    /// Lock-call events.
    pub const LOCK: Kinds = Kinds(1 << 3);
    /// Memory accesses: reads and writes (the only events with a location).
    pub const ACCESS: Kinds = Kinds(Kinds::READ.0 | Kinds::WRITE.0);
    /// Every event kind.
    pub const ALL: Kinds = Kinds(0b1111);

    /// Set union.
    pub fn union(self, other: Kinds) -> Kinds {
        Kinds(self.0 | other.0)
    }

    /// Set intersection.
    pub fn inter(self, other: Kinds) -> Kinds {
        Kinds(self.0 & other.0)
    }

    /// True if no kind is possible.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if every kind of `other` is included.
    pub fn contains(self, other: Kinds) -> bool {
        self.0 & other.0 == other.0
    }
}

impl std::fmt::Display for Kinds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "∅");
        }
        for (bit, name) in [
            (Kinds::READ, "R"),
            (Kinds::WRITE, "W"),
            (Kinds::FENCE, "F"),
            (Kinds::LOCK, "L"),
        ] {
            if self.contains(bit) {
                write!(f, "{name}")?;
            }
        }
        Ok(())
    }
}

/// The static approximation of one relation expression. Every field is a
/// *claim about all well-formed executions*: `empty` means the value is
/// always the empty relation, `irreflexive` that it never contains `(e, e)`,
/// and so on. Absence of a flag claims nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RelAbs {
    /// Kinds the domain (edge sources) can contain.
    pub dom: Kinds,
    /// Kinds the range (edge targets) can contain.
    pub rng: Kinds,
    /// Provably the empty relation on every well-formed execution.
    pub empty: bool,
    /// Provably irreflexive.
    pub irreflexive: bool,
    /// Provably acyclic (which implies irreflexive; self-loops are cycles).
    pub acyclic: bool,
    /// Provably a subset of `po` (a per-thread strict total order, hence
    /// also within-thread and acyclic).
    pub sub_po: bool,
    /// Every edge stays within one thread.
    pub within_thread: bool,
    /// Every edge crosses threads.
    pub cross_thread: bool,
    /// Every edge links two accesses of the same location.
    pub within_loc: bool,
}

impl RelAbs {
    /// The approximation of the empty relation — the lattice bottom: every
    /// flag holds vacuously and no event kind is reachable.
    pub const EMPTY: RelAbs = RelAbs {
        dom: Kinds::NONE,
        rng: Kinds::NONE,
        empty: true,
        irreflexive: true,
        acyclic: true,
        sub_po: true,
        within_thread: true,
        cross_thread: true,
        within_loc: true,
    };

    /// The approximation claiming nothing — the lattice top.
    pub const TOP: RelAbs = RelAbs {
        dom: Kinds::ALL,
        rng: Kinds::ALL,
        empty: false,
        irreflexive: false,
        acyclic: false,
        sub_po: false,
        within_thread: false,
        cross_thread: false,
        within_loc: false,
    };

    /// A non-empty base shape: domain/range kinds plus a flag closure.
    fn base(dom: Kinds, rng: Kinds) -> RelAbs {
        RelAbs {
            dom,
            rng,
            ..RelAbs::TOP
        }
    }

    /// Closes the derived implications: an empty domain or range forces
    /// emptiness, emptiness forces every flag, disjoint domain and range
    /// force acyclicity (every node on a cycle is both a source and a
    /// target), `sub_po` forces within-thread and acyclic, and acyclic
    /// forces irreflexive.
    fn norm(mut self) -> RelAbs {
        if self.dom.is_empty() || self.rng.is_empty() {
            self.empty = true;
        }
        if self.empty {
            return RelAbs::EMPTY;
        }
        if self.dom.inter(self.rng).is_empty() {
            self.acyclic = true;
        }
        if self.sub_po {
            self.within_thread = true;
            self.acyclic = true;
        }
        if self.acyclic {
            self.irreflexive = true;
        }
        if self.cross_thread {
            // A cross-thread edge cannot be a self-loop.
            self.irreflexive = true;
        }
        self
    }

    /// Lattice join (least upper bound): the approximation of "either of
    /// the two". Kinds union; every universally-quantified flag survives
    /// only if both sides claim it.
    pub fn join(self, other: RelAbs) -> RelAbs {
        RelAbs {
            dom: self.dom.union(other.dom),
            rng: self.rng.union(other.rng),
            empty: self.empty && other.empty,
            irreflexive: self.irreflexive && other.irreflexive,
            acyclic: self.acyclic && other.acyclic,
            sub_po: self.sub_po && other.sub_po,
            within_thread: self.within_thread && other.within_thread,
            cross_thread: self.cross_thread && other.cross_thread,
            within_loc: self.within_loc && other.within_loc,
        }
    }
}

/// The abstraction of a base relation, grounded in the `wf` invariants and
/// the view's derivation rules (see `execution.rs`).
fn base_abs(base: RelBase) -> RelAbs {
    use Kinds as K;
    let b = RelAbs::base;
    match base {
        // po: strict total order per thread over every event of the thread.
        RelBase::Po => RelAbs {
            sub_po: true,
            ..b(K::ALL, K::ALL)
        },
        // poloc = po ∩ sloc: sloc only relates located events (accesses).
        RelBase::Poloc => RelAbs {
            sub_po: true,
            within_loc: true,
            ..b(K::ACCESS, K::ACCESS)
        },
        // po \ sloc keeps every pair with a fence or differing locations.
        RelBase::PoDiffLoc => RelAbs {
            sub_po: true,
            ..b(K::ALL, K::ALL)
        },
        // po ; [F] ; po ⊆ po by transitivity within one thread.
        RelBase::FenceRel(_) => RelAbs {
            sub_po: true,
            ..b(K::ALL, K::ALL)
        },
        // tfence = po ∩ ((¬stxn ; stxn) ∪ (stxn ; ¬stxn)) ⊆ po.
        RelBase::Tfence => RelAbs {
            sub_po: true,
            ..b(K::ALL, K::ALL)
        },
        // rf: writes to reads on one location (acyclic via disjointness).
        RelBase::Rf => RelAbs {
            within_loc: true,
            ..b(K::WRITE, K::READ)
        },
        RelBase::Rfe => RelAbs {
            within_loc: true,
            cross_thread: true,
            ..b(K::WRITE, K::READ)
        },
        RelBase::Rfi => RelAbs {
            within_loc: true,
            within_thread: true,
            ..b(K::WRITE, K::READ)
        },
        // co: strict total order over the writes of each location.
        RelBase::Co => RelAbs {
            within_loc: true,
            acyclic: true,
            ..b(K::WRITE, K::WRITE)
        },
        RelBase::Coe => RelAbs {
            within_loc: true,
            acyclic: true,
            cross_thread: true,
            ..b(K::WRITE, K::WRITE)
        },
        // fr: reads to writes on one location (acyclic via disjointness).
        RelBase::Fr => RelAbs {
            within_loc: true,
            ..b(K::READ, K::WRITE)
        },
        RelBase::Fre => RelAbs {
            within_loc: true,
            cross_thread: true,
            ..b(K::READ, K::WRITE)
        },
        // com = rf ∪ co ∪ fr: accesses on one location; irreflexive because
        // each component is, but cycles (sb!) are the whole point.
        RelBase::Com | RelBase::Ecom => RelAbs {
            within_loc: true,
            irreflexive: true,
            ..b(K::ACCESS, K::ACCESS)
        },
        RelBase::Come => RelAbs {
            within_loc: true,
            irreflexive: true,
            cross_thread: true,
            ..b(K::ACCESS, K::ACCESS)
        },
        // Dependencies: from reads (ctrl also from RMW writes) into po.
        RelBase::Addr | RelBase::Data => RelAbs {
            sub_po: true,
            ..b(K::READ, K::ALL)
        },
        RelBase::Ctrl => RelAbs {
            sub_po: true,
            ..b(K::ACCESS, K::ALL)
        },
        // rmw: a read to a po-later write on the same location.
        RelBase::Rmw => RelAbs {
            sub_po: true,
            within_loc: true,
            ..b(K::READ, K::WRITE)
        },
        // Transaction/region memberships are PERs: reflexive on their
        // members (so *not* irreflexive), single-threaded classes.
        RelBase::Stxn | RelBase::Stxnat | RelBase::Scr => RelAbs {
            within_thread: true,
            ..b(K::ALL, K::ALL)
        },
        // sloc: symmetric and irreflexive over accesses of one location.
        RelBase::Sloc => RelAbs {
            within_loc: true,
            irreflexive: true,
            ..b(K::ACCESS, K::ACCESS)
        },
        // cnf: conflicting access pairs minus the identity.
        RelBase::Cnf => RelAbs {
            within_loc: true,
            irreflexive: true,
            ..b(K::ACCESS, K::ACCESS)
        },
    }
}

/// The kinds a base set can contain.
fn base_kinds(base: SetBase) -> Kinds {
    match base {
        SetBase::Reads | SetBase::RmwDomain => Kinds::READ,
        SetBase::Writes | SetBase::RmwRange => Kinds::WRITE,
        SetBase::Fences | SetBase::FencesOf(_) => Kinds::FENCE,
        // Annotation sets can decorate any access; stay conservative.
        SetBase::Acquires | SetBase::Releases | SetBase::ScEvents | SetBase::Atomics => Kinds::ALL,
    }
}

/// The bottom-up static analysis of one pool: an approximation per node.
///
/// Construction is linear in the pool (plus Kleene rounds per fixpoint
/// group); queries are table lookups. [`subsumes`](Analysis::subsumes) and
/// [`implied_by`](Analysis::implied_by) add the syntactic-inclusion layer
/// used for redundant-axiom detection.
pub struct Analysis<'p> {
    pool: &'p IrPool,
    rels: Vec<RelAbs>,
    sets: Vec<Kinds>,
}

impl<'p> Analysis<'p> {
    /// Analyses every node of `pool` (ascending ids: children first).
    pub fn new(pool: &'p IrPool) -> Analysis<'p> {
        let mut sets: Vec<Kinds> = Vec::with_capacity(pool.set_count());
        for i in 0..pool.set_count() {
            let k = match pool.set_expr(SetId(i as u32)) {
                SetExpr::Base(b) => base_kinds(b),
                SetExpr::Union(a, b) => sets[a.index()].union(sets[b.index()]),
                SetExpr::Inter(a, b) => sets[a.index()].inter(sets[b.index()]),
            };
            sets.push(k);
        }
        let mut analysis = Analysis {
            pool,
            rels: Vec::with_capacity(pool.rel_count()),
            sets,
        };
        for i in 0..pool.rel_count() {
            let id = RelId(i as u32);
            let abs = if !pool.rel_free_vars(id).is_empty() {
                // An open subterm of a fixpoint body (or a bare recursion
                // variable): its table entry starts at top — claiming
                // nothing is always sound — and is backfilled below with
                // its value under the group's solved environment.
                RelAbs::TOP
            } else {
                match pool.rel_expr(id) {
                    RelExpr::Fix(g, i) => analysis.fix_abs(g, &HashMap::new())[i as usize],
                    node => analysis.transfer(node, &HashMap::new()),
                }
            };
            analysis.rels.push(abs);
        }
        // Give the open subterms their meaning in the solved fixpoint, so
        // queries on a body's proper subexpressions (the linter walks every
        // node) see the stabilised approximation rather than the top
        // placeholder. Nodes mixing variables of several nested groups stay
        // at top — the flat `.cat` surface never produces them.
        for g in 0..pool.fix_group_count() as u32 {
            let solved = analysis.solve_fix(g, &HashMap::new());
            for i in 0..pool.rel_count() {
                let id = RelId(i as u32);
                let fv = pool.rel_free_vars(id);
                if !fv.is_empty() && fv.iter().all(|v| solved.contains_key(v)) {
                    analysis.rels[id.index()] = analysis.abs_with_env(id, &solved);
                }
            }
        }
        analysis
    }

    /// The approximation of a relation node.
    pub fn rel(&self, id: RelId) -> RelAbs {
        self.rels[id.index()]
    }

    /// The possible kinds of a set node.
    pub fn set(&self, id: SetId) -> Kinds {
        self.sets[id.index()]
    }

    /// True if the node is provably empty on every well-formed execution.
    pub fn is_empty(&self, id: RelId) -> bool {
        self.rels[id.index()].empty
    }

    /// True if an axiom with this head over this body holds on *every*
    /// well-formed execution — the axiom constrains nothing.
    pub fn vacuous(&self, head: AxiomHead, body: RelId) -> bool {
        let abs = self.rel(body);
        match head {
            AxiomHead::Acyclic => abs.acyclic,
            AxiomHead::Irreflexive => abs.irreflexive,
            AxiomHead::Empty => abs.empty,
        }
    }

    /// Abstract Kleene iteration for fixpoint group `g` under an outer
    /// environment (non-empty only for nested groups): start every
    /// component at bottom, re-abstract the bodies, widen by join with the
    /// previous round. The lattice is finite and the sequence ascends, so
    /// this terminates; joining keeps it an over-approximation of every
    /// concrete iterate, hence of the concrete least fixpoint.
    fn fix_abs(&self, g: u32, outer: &HashMap<u32, RelAbs>) -> Vec<RelAbs> {
        let env = self.solve_fix(g, outer);
        self.pool.fix_vars(g).iter().map(|v| env[v]).collect()
    }

    /// Runs the Kleene iteration of [`fix_abs`](Self::fix_abs) and returns
    /// the full stabilised environment (outer bindings included).
    fn solve_fix(&self, g: u32, outer: &HashMap<u32, RelAbs>) -> HashMap<u32, RelAbs> {
        let vars = self.pool.fix_vars(g);
        let bodies = self.pool.fix_bodies(g);
        let mut env = outer.clone();
        for &v in vars {
            env.insert(v, RelAbs::EMPTY);
        }
        loop {
            let next: Vec<RelAbs> = bodies
                .iter()
                .zip(vars)
                .map(|(&b, v)| self.abs_with_env(b, &env).join(env[v]))
                .collect();
            if vars.iter().zip(&next).all(|(v, abs)| env[v] == *abs) {
                return env;
            }
            for (v, abs) in vars.iter().zip(next) {
                env.insert(*v, abs);
            }
        }
    }

    /// The abstraction of a node under an environment for its free
    /// recursion variables; var-free nodes read the finished table.
    fn abs_with_env(&self, id: RelId, env: &HashMap<u32, RelAbs>) -> RelAbs {
        if self.pool.rel_free_vars(id).is_empty() {
            // Already-analysed prefix (children precede parents).
            return self.rels[id.index()];
        }
        match self.pool.rel_expr(id) {
            RelExpr::Var(v) => env[&v],
            RelExpr::Fix(g, i) => self.fix_abs(g, env)[i as usize],
            node => self.transfer(node, env),
        }
    }

    /// The abstract transfer function of one operator.
    fn transfer(&self, node: RelExpr, env: &HashMap<u32, RelAbs>) -> RelAbs {
        let r = |id: RelId| self.abs_with_env(id, env);
        let abs = match node {
            RelExpr::Base(b) => base_abs(b),
            RelExpr::Var(_) | RelExpr::Fix(_, _) => {
                unreachable!("handled by the caller / abs_with_env")
            }
            // [S]: self-loops on the members of S. Within one thread and —
            // when S holds only accesses — one location trivially; never
            // irreflexive unless S is empty (norm handles that via kinds).
            RelExpr::IdOn(s) => {
                let k = self.sets[s.index()];
                RelAbs {
                    within_thread: true,
                    within_loc: Kinds::ACCESS.contains(k),
                    ..RelAbs::base(k, k)
                }
            }
            RelExpr::Cross(a, b) => RelAbs::base(self.sets[a.index()], self.sets[b.index()]),
            RelExpr::Seq(a, b) => Self::seq_abs(r(a), r(b)),
            // The join under-claims for a *union*: a self-loop of either
            // side is one of the union too, so irreflexivity genuinely
            // needs both — but a union of two acyclic relations is NOT
            // acyclic (`po | rf` closes the classic load-buffering cycle
            // from two acyclic operands). The claim only survives where
            // norm re-derives it, from joint `sub_po` or disjoint kinds.
            RelExpr::Union(a, b) => RelAbs {
                acyclic: false,
                ..r(a).join(r(b))
            },
            RelExpr::Inter(a, b) => {
                let (a, b) = (r(a), r(b));
                RelAbs {
                    dom: a.dom.inter(b.dom),
                    rng: a.rng.inter(b.rng),
                    // The intersection is a subset of both operands, so any
                    // universal claim of either side carries over — and a
                    // within-thread operand meets a cross-thread one in ∅.
                    empty: a.empty
                        || b.empty
                        || (a.within_thread && b.cross_thread)
                        || (a.cross_thread && b.within_thread),
                    irreflexive: a.irreflexive || b.irreflexive,
                    acyclic: a.acyclic || b.acyclic,
                    sub_po: a.sub_po || b.sub_po,
                    within_thread: a.within_thread || b.within_thread,
                    cross_thread: a.cross_thread || b.cross_thread,
                    within_loc: a.within_loc || b.within_loc,
                }
            }
            // a \ b ⊆ a: inherit every claim of a (b only removes pairs).
            RelExpr::Diff(a, _) => r(a),
            RelExpr::Inverse(a) => {
                let a = r(a);
                RelAbs {
                    dom: a.rng,
                    rng: a.dom,
                    // Reversing every edge preserves these…
                    empty: a.empty,
                    irreflexive: a.irreflexive,
                    acyclic: a.acyclic,
                    within_thread: a.within_thread,
                    cross_thread: a.cross_thread,
                    within_loc: a.within_loc,
                    // …but po⁻¹ is not a subset of po.
                    sub_po: false,
                }
            }
            // a? adds the full diagonal of the universe (see IrEval), so
            // the result reaches every kind and is reflexive by fiat.
            RelExpr::Opt(a) | RelExpr::Star(a) => {
                let a = r(a);
                RelAbs {
                    within_thread: a.within_thread,
                    ..RelAbs::base(Kinds::ALL, Kinds::ALL)
                }
            }
            RelExpr::Plus(a) => {
                let a = r(a);
                RelAbs {
                    dom: a.dom,
                    rng: a.rng,
                    empty: a.empty,
                    // Paths preserve per-edge locality; an acyclic relation
                    // has an irreflexive, acyclic closure. Mere
                    // irreflexivity does *not* survive (2-cycles close to
                    // self-loops), and cross-thread edges can chain back.
                    irreflexive: a.acyclic,
                    acyclic: a.acyclic,
                    sub_po: a.sub_po,
                    within_thread: a.within_thread,
                    cross_thread: false,
                    within_loc: a.within_loc,
                }
            }
            // weaklift(a, t) = t ; (a \ t) ; t.
            RelExpr::WeakLift(a, t) => {
                let (a, t) = (r(a), r(t));
                Self::seq_abs(Self::seq_abs(t, a), t)
            }
            // stronglift(a, t) = t? ; (a \ t) ; t? — the optional hops make
            // the ends unconstrained, but a \ t still bounds the middle.
            RelExpr::StrongLift(a, t) => {
                let (a, t) = (r(a), r(t));
                let opt_t = RelAbs {
                    within_thread: t.within_thread,
                    ..RelAbs::base(Kinds::ALL, Kinds::ALL)
                };
                // t? ⊇ id has range/domain ALL, so the only emptiness seq_abs
                // can derive here is a's own — exactly right, since the lift
                // contains a \ t itself.
                Self::seq_abs(Self::seq_abs(opt_t, a), opt_t)
            }
        };
        abs.norm()
    }

    /// The abstraction of `a ; b`.
    fn seq_abs(a: RelAbs, b: RelAbs) -> RelAbs {
        RelAbs {
            dom: a.dom,
            rng: b.rng,
            // The key emptiness rule: a middle event must be in both
            // range(a) and domain(b).
            empty: a.empty || b.empty || a.rng.inter(b.dom).is_empty(),
            irreflexive: false,
            acyclic: false,
            sub_po: a.sub_po && b.sub_po,
            within_thread: a.within_thread && b.within_thread,
            cross_thread: (a.cross_thread && b.within_thread)
                || (a.within_thread && b.cross_thread),
            within_loc: a.within_loc && b.within_loc,
        }
        .norm()
    }

    /// True if `small ⊆ big` is provable — syntactically (shared nodes,
    /// union/intersection/difference structure, closure monotonicity, the
    /// base-relation containment lattice) or semantically (`small` is
    /// statically empty). Sound, not complete.
    pub fn subsumes(&self, big: RelId, small: RelId) -> bool {
        if big == small || self.rels[small.index()].empty {
            return true;
        }
        let sx = self.pool.rel_expr(small);
        let bx = self.pool.rel_expr(big);
        // Decompose the small side first: every part must fit. A failed
        // guard falls through to the big-side rules below.
        match sx {
            RelExpr::Union(x, y) => return self.subsumes(big, x) && self.subsumes(big, y),
            RelExpr::Inter(x, y) if self.subsumes(big, x) || self.subsumes(big, y) => {
                return true;
            }
            RelExpr::Diff(x, _) if self.subsumes(big, x) => return true,
            _ => {}
        }
        // Then grow the big side.
        match bx {
            RelExpr::Union(x, y) if self.subsumes(x, small) || self.subsumes(y, small) => {
                return true;
            }
            // x⁺ ⊇ x ⊇ …, and s ⊆ x⁺ ⇒ s⁺ ⊆ (x⁺)⁺ = x⁺.
            RelExpr::Plus(x)
                if self.subsumes(x, small)
                    || matches!(sx, RelExpr::Plus(s) if self.subsumes(big, s)) =>
            {
                return true;
            }
            RelExpr::Star(x) | RelExpr::Opt(x) if self.subsumes(x, small) => return true,
            _ => {}
        }
        // Base containment: rfe ⊆ rf ⊆ com ⊆ ecom, poloc ⊆ po, ….
        if let (RelExpr::Base(b), RelExpr::Base(s)) = (bx, sx) {
            return base_le(s, b);
        }
        false
    }

    /// True if axiom `(head_a, body_a)` holds whenever `(head_b, body_b)`
    /// does — so `a` is redundant beside `b`. The implications:
    /// `empty` is the strongest head (an empty body is acyclic and
    /// irreflexive), `acyclic` implies `irreflexive`, and every head is
    /// anti-monotone in the body (`body_a ⊆ body_b` required throughout).
    pub fn implied_by(
        &self,
        head_a: AxiomHead,
        body_a: RelId,
        head_b: AxiomHead,
        body_b: RelId,
    ) -> bool {
        if !self.subsumes(body_b, body_a) {
            return false;
        }
        matches!(
            (head_b, head_a),
            (AxiomHead::Empty, _)
                | (AxiomHead::Acyclic, AxiomHead::Acyclic)
                | (AxiomHead::Acyclic, AxiomHead::Irreflexive)
                | (AxiomHead::Irreflexive, AxiomHead::Irreflexive)
        )
    }
}

/// The base-relation containment lattice, transitively closed by hand:
/// `small ⊆ big` facts that hold on every well-formed execution.
fn base_le(small: RelBase, big: RelBase) -> bool {
    use RelBase::*;
    if small == big {
        return true;
    }
    let supers: &[RelBase] = match small {
        Rfi => &[Rf, Com, Ecom],
        Rfe => &[Rf, Com, Ecom, Come],
        Rf | Fr => &[Com, Ecom],
        Co => &[Com, Ecom],
        Coe => &[Co, Com, Ecom, Come],
        Fre => &[Fr, Com, Ecom, Come],
        Com => &[Ecom],
        Come => &[Com, Ecom],
        Poloc | PoDiffLoc | Tfence | Addr | Data | Ctrl | FenceRel(_) => &[Po],
        Rmw => &[Po, Poloc],
        Stxnat => &[Stxn],
        _ => &[],
    };
    supers.contains(&big)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statically_empty_compositions_are_caught() {
        let mut p = IrPool::new();
        let rf = p.base(RelBase::Rf);
        let rf_rf = p.seq(rf, rf);
        let co = p.base(RelBase::Co);
        let co_rf = p.seq(co, rf);
        let fr = p.base(RelBase::Fr);
        let rf_fr = p.seq(rf, fr);
        let a = Analysis::new(&p);
        // range(rf) ⊆ R but domain(rf) ⊆ W: rf ; rf is empty.
        assert!(a.is_empty(rf_rf));
        // co ; rf (W→W→R) and rf ; fr (W→R→W) are fine.
        assert!(!a.is_empty(co_rf));
        assert!(!a.is_empty(rf_fr));
    }

    #[test]
    fn disjoint_kind_identities_are_empty() {
        let mut p = IrPool::new();
        let reads = p.set_base(SetBase::Reads);
        let writes = p.set_base(SetBase::Writes);
        let rw = p.set_inter(reads, writes);
        let id_rw = p.id_on(rw);
        let a = Analysis::new(&p);
        assert!(a.set(rw).is_empty());
        assert!(a.is_empty(id_rw));
    }

    #[test]
    fn thread_locality_contradictions_are_empty() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let rfe = p.base(RelBase::Rfe);
        let inside_outside = p.inter(po, rfe);
        let a = Analysis::new(&p);
        assert!(a.is_empty(inside_outside));
    }

    #[test]
    fn vacuous_heads_over_ordered_bases() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let rf = p.base(RelBase::Rf);
        let co = p.base(RelBase::Co);
        let com = p.base(RelBase::Com);
        let rmw = p.base(RelBase::Rmw);
        let po_plus = p.plus(po);
        let a = Analysis::new(&p);
        assert!(a.vacuous(AxiomHead::Acyclic, po));
        assert!(a.vacuous(AxiomHead::Acyclic, po_plus));
        assert!(a.vacuous(AxiomHead::Acyclic, rf));
        assert!(a.vacuous(AxiomHead::Acyclic, co));
        assert!(a.vacuous(AxiomHead::Irreflexive, com));
        assert!(a.vacuous(AxiomHead::Acyclic, rmw));
        // …but acyclicity of com is a real constraint, and rmw can be
        // non-empty.
        assert!(!a.vacuous(AxiomHead::Acyclic, com));
        assert!(!a.vacuous(AxiomHead::Empty, rmw));
    }

    #[test]
    fn unions_of_acyclic_operands_are_not_claimed_acyclic() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let poloc = p.base(RelBase::Poloc);
        let rf = p.base(RelBase::Rf);
        // po and rf are each acyclic, yet `po | rf` carries the classic
        // load-buffering cycle — the union transfer must drop the claim.
        let po_rf = p.union(po, rf);
        // Two sub-po operands do keep it: their union is still within po.
        let po_poloc = p.union(po, poloc);
        let a = Analysis::new(&p);
        assert!(!a.vacuous(AxiomHead::Acyclic, po_rf));
        // Irreflexivity is different: a self-loop of the union would be a
        // self-loop of one operand, so the AND-ed claim stands.
        assert!(a.vacuous(AxiomHead::Irreflexive, po_rf));
        assert!(a.vacuous(AxiomHead::Acyclic, po_poloc));
    }

    #[test]
    fn per_bases_are_not_claimed_irreflexive() {
        let mut p = IrPool::new();
        let stxn = p.base(RelBase::Stxn);
        let sloc = p.base(RelBase::Sloc);
        let a = Analysis::new(&p);
        // stxn is reflexive on its members; sloc is irreflexive but
        // symmetric, so acyclicity must not be claimed.
        assert!(!a.vacuous(AxiomHead::Irreflexive, stxn));
        assert!(a.vacuous(AxiomHead::Irreflexive, sloc));
        assert!(!a.vacuous(AxiomHead::Acyclic, sloc));
    }

    #[test]
    fn subsumption_follows_structure_and_base_containment() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let com = p.base(RelBase::Com);
        let rfe = p.base(RelBase::Rfe);
        let poloc = p.base(RelBase::Poloc);
        let u = p.union(po, com);
        let plus = p.plus(u);
        let a = Analysis::new(&p);
        assert!(a.subsumes(u, po));
        assert!(a.subsumes(u, com));
        assert!(a.subsumes(u, rfe)); // rfe ⊆ com ⊆ po ∪ com
        assert!(a.subsumes(u, poloc)); // poloc ⊆ po
        assert!(a.subsumes(plus, u));
        assert!(a.subsumes(plus, po));
        assert!(!a.subsumes(po, u));
        assert!(!a.subsumes(com, po));
    }

    #[test]
    fn redundancy_uses_head_strength() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let com = p.base(RelBase::Com);
        let u = p.union(po, com);
        let a = Analysis::new(&p);
        use AxiomHead::*;
        // acyclic (po | com) makes acyclic com and irreflexive com redundant.
        assert!(a.implied_by(Acyclic, com, Acyclic, u));
        assert!(a.implied_by(Irreflexive, com, Acyclic, u));
        // …but not the other way round, and not via a weaker head.
        assert!(!a.implied_by(Acyclic, u, Acyclic, com));
        assert!(!a.implied_by(Acyclic, com, Irreflexive, u));
        // empty is the strongest head.
        assert!(a.implied_by(Acyclic, com, Empty, u));
    }

    #[test]
    fn fixpoints_are_abstracted_by_kleene_iteration() {
        let mut p = IrPool::new();
        let po = p.base(RelBase::Po);
        let v = p.fresh_var();
        let vv = p.seq(v, v);
        let body = p.union(po, vv);
        let hb = p.fix(&[v], &[body])[0];
        let rf = p.base(RelBase::Rf);
        let dead = p.seq(rf, rf);
        let v2 = p.fresh_var();
        let body2 = p.union(dead, v2);
        let still_dead = p.fix(&[v2], &[body2])[0];
        let a = Analysis::new(&p);
        // The po fixpoint stays inside po: acyclic by construction.
        let abs = a.rel(hb);
        assert!(abs.sub_po && abs.acyclic && !abs.empty);
        assert!(a.vacuous(AxiomHead::Acyclic, hb));
        // A fixpoint fed only empty contributions stays empty.
        assert!(a.is_empty(still_dead));
    }
}

//! A catalog of the executions drawn or described in the paper.
//!
//! Each function builds one named execution. They are used throughout the
//! test suites and benchmarks to check that the formal models give the same
//! verdicts as the paper, and by the examples as ready-made inputs.
//!
//! Location numbering follows the convention of [`crate::Loc`]: location `0`
//! prints as `x`, `1` as `y`, and so on. Locations `9` is used for the lock
//! variable `m` of the lock-elision examples.

use crate::{Annot, Event, Execution, ExecutionBuilder, Fence, LockCall};

/// The lock variable `m` used by the lock-elision executions.
pub const LOCK_VAR: u32 = 9;

/// Fig. 1: a plain (non-transactional) execution.
///
/// `P0: a: W x=1` — `P1: b: R x; c: W x=2`, with `rf c→b` and `co a→c`.
/// The corresponding litmus test's postcondition is `r0 = 2 ∧ x = 2`.
pub fn fig1() -> Execution {
    let mut b = ExecutionBuilder::new();
    let a = b.push(Event::write(0, 0));
    let bb = b.push(Event::read(1, 0));
    let c = b.push(Event::write(1, 0));
    b.rf(c, bb);
    b.co(a, c);
    b.build().expect("fig1 is well-formed")
}

/// Fig. 2: a transactional execution.
///
/// `P0: [a: W x=1; b: R x] in a transaction` — `P1: c: W x=2`, with
/// `rf c→b` and `co a→c`. The external write `c` intrudes between the two
/// transactional accesses, so every strongly-isolating model forbids it.
pub fn fig2() -> Execution {
    let mut b = ExecutionBuilder::new();
    let a = b.push(Event::write(0, 0));
    let bb = b.push(Event::read(0, 0));
    let c = b.push(Event::write(1, 0));
    b.txn(&[a, bb]);
    b.rf(c, bb);
    b.co(a, c);
    b.build().expect("fig2 is well-formed")
}

/// Fig. 3: the four 3-event SC executions that separate weak from strong
/// isolation. `which` selects the variant `'a'`–`'d'`.
///
/// In each variant the two events of one thread form a transaction and a
/// single *non-transactional* event on another thread intrudes between
/// them in communication order:
///
/// * `a` — *non-interference*: an external write splits two transactional
///   reads (`fr` out, `rf` back in);
/// * `b` — the RMW-isolation shape: an external write lands between a
///   transactional read and the transactional write that follows it;
/// * `c` — an external read observes the first of two transactional writes
///   (intermediate state escapes);
/// * `d` — *containment*: an external write is coherence-ordered between
///   two transactional writes.
///
/// All four are SC-consistent and satisfy weak isolation; all four violate
/// strong isolation.
///
/// # Panics
///
/// Panics if `which` is not one of `'a'`, `'b'`, `'c'`, `'d'`.
pub fn fig3(which: char) -> Execution {
    let mut b = ExecutionBuilder::new();
    match which {
        'a' => {
            let r1 = b.push(Event::read(0, 0));
            let r2 = b.push(Event::read(0, 0));
            let w = b.push(Event::write(1, 0));
            b.txn(&[r1, r2]);
            b.rf(w, r2);
        }
        'b' => {
            let r = b.push(Event::read(0, 0));
            let w2 = b.push(Event::write(0, 0));
            let w1 = b.push(Event::write(1, 0));
            b.txn(&[r, w2]);
            b.co(w1, w2);
        }
        'c' => {
            let w1 = b.push(Event::write(0, 0));
            let w2 = b.push(Event::write(0, 0));
            let r = b.push(Event::read(1, 0));
            b.txn(&[w1, w2]);
            b.co(w1, w2);
            b.rf(w1, r);
        }
        'd' => {
            let w1 = b.push(Event::write(0, 0));
            let w2 = b.push(Event::write(0, 0));
            let w = b.push(Event::write(1, 0));
            b.txn(&[w1, w2]);
            b.co_order(&[w1, w, w2]);
        }
        other => panic!("fig3 variant must be 'a'..'d', got {other:?}"),
    }
    b.build().expect("fig3 is well-formed")
}

/// Power execution (1) of §5.2: a WRC-style shape in which a transaction
/// observes a write and the transaction's own write propagates to a third
/// thread before the observed one.
///
/// Forbidden by the Power TM model via `tprop1` + Observation; allowed by
/// the non-transactional Power baseline (Power is not multicopy-atomic).
pub fn power_wrc_tprop1() -> Execution {
    let mut b = ExecutionBuilder::new();
    let a = b.push(Event::write(0, 0));
    let rb = b.push(Event::read(1, 0));
    let c = b.push(Event::write(1, 1));
    let d = b.push(Event::read(2, 1));
    let e = b.push(Event::read(2, 0));
    b.txn(&[rb, c]);
    b.rf(a, rb);
    b.rf(c, d);
    b.addr(d, e);
    b.build().expect("power exec (1) is well-formed")
}

/// Power execution (2) of §5.2: transactional writes are multicopy-atomic.
///
/// The middle thread sees the transactional write to `x` before the right
/// thread does. Forbidden by the Power TM model via `tprop2` + Observation;
/// allowed by the baseline.
pub fn power_wrc_tprop2() -> Execution {
    let mut b = ExecutionBuilder::new();
    let a = b.push(Event::write(0, 0));
    let rb = b.push(Event::read(1, 0));
    let c = b.push(Event::write(1, 1));
    let d = b.push(Event::read(2, 1));
    let e = b.push(Event::read(2, 0));
    b.txn(&[a]);
    b.rf(a, rb);
    b.rf(c, d);
    b.data(rb, c);
    b.addr(d, e);
    b.build().expect("power exec (2) is well-formed")
}

/// Power execution (3) of §5.2 (from Cain et al.): an IRIW-style shape with
/// the two writes in transactions. Different threads observe incompatible
/// transaction serialisation orders, so the Power TM model forbids it via a
/// `thb` cycle.
pub fn power_iriw_two_txns() -> Execution {
    let mut b = ExecutionBuilder::new();
    let a = b.push(Event::write(0, 0));
    let rb = b.push(Event::read(1, 0));
    let c = b.push(Event::read(1, 1));
    let d = b.push(Event::read(2, 1));
    let e = b.push(Event::read(2, 0));
    let f = b.push(Event::write(3, 1));
    b.txn(&[a]);
    b.txn(&[f]);
    b.rf(a, rb);
    b.rf(f, d);
    b.addr(rb, c);
    b.addr(d, e);
    b.build().expect("power exec (3) is well-formed")
}

/// The variant of [`power_iriw_two_txns`] with only one write transactional.
/// The paper observed this behaviour empirically, so the Power TM model must
/// (and does) allow it.
pub fn power_iriw_one_txn() -> Execution {
    let mut b = ExecutionBuilder::new();
    let a = b.push(Event::write(0, 0));
    let rb = b.push(Event::read(1, 0));
    let c = b.push(Event::read(1, 1));
    let d = b.push(Event::read(2, 1));
    let e = b.push(Event::read(2, 0));
    let f = b.push(Event::write(3, 1));
    b.txn(&[a]);
    b.rf(a, rb);
    b.rf(f, d);
    b.addr(rb, c);
    b.addr(d, e);
    b.build()
        .expect("power IRIW one-txn variant is well-formed")
}

/// Remark 5.1, first execution: a read-only transaction in the WRC position.
/// The Power manual is ambiguous here; the model errs on the side of caution
/// and permits it.
pub fn remark_5_1_first() -> Execution {
    let mut b = ExecutionBuilder::new();
    let a = b.push(Event::write(0, 0));
    let rb = b.push(Event::read(1, 0));
    let c = b.push(Event::read(1, 1));
    let d = b.push(Event::write(2, 1));
    let fence = b.push(Event::fence(2, Fence::Sync));
    let e = b.push(Event::read(2, 0));
    b.txn(&[rb, c]);
    b.rf(a, rb);
    let _ = fence;
    let _ = (d, e);
    b.build().expect("remark 5.1 (first) is well-formed")
}

/// Remark 5.1, second execution: like the first but the final access is a
/// write, observed via coherence rather than from-read. Also permitted.
pub fn remark_5_1_second() -> Execution {
    let mut b = ExecutionBuilder::new();
    let a = b.push(Event::write(0, 0));
    let rb = b.push(Event::read(1, 0));
    let c = b.push(Event::read(1, 1));
    let d = b.push(Event::write(2, 1));
    let fence = b.push(Event::fence(2, Fence::Sync));
    let e = b.push(Event::write(2, 0));
    b.txn(&[rb, c]);
    b.rf(a, rb);
    b.co(e, a);
    let _ = fence;
    let _ = d;
    b.build().expect("remark 5.1 (second) is well-formed")
}

/// §8.1 monotonicity counterexample, *before* coalescing: a load-exclusive /
/// store-exclusive pair whose two halves sit in two adjacent single-event
/// transactions. `TxnCancelsRMW` makes this inconsistent on Power and ARMv8.
pub fn monotonicity_cex_split() -> Execution {
    let mut b = ExecutionBuilder::new();
    let r = b.push(Event::read(0, 0));
    let w = b.push(Event::write(0, 0));
    b.rmw(r, w);
    b.txn(&[r]);
    b.txn(&[w]);
    b.build()
        .expect("monotonicity counterexample (split) is well-formed")
}

/// §8.1 monotonicity counterexample, *after* coalescing: the same RMW inside
/// one transaction. Consistent — so coalescing resurrected a forbidden
/// execution, violating monotonicity.
pub fn monotonicity_cex_coalesced() -> Execution {
    let mut b = ExecutionBuilder::new();
    let r = b.push(Event::read(0, 0));
    let w = b.push(Event::write(0, 0));
    b.rmw(r, w);
    b.txn(&[r, w]);
    b.build()
        .expect("monotonicity counterexample (coalesced) is well-formed")
}

/// The §9 (related work) execution used to compare against Dongol et al.:
/// two transactions exchange a message-passing violation. Forbidden by C++
/// (hb cycle through `tsw`) and by our Power TM model (a `thb` cycle), but
/// allowed by Dongol et al.'s weaker Power model.
pub fn dongol_mp_txn() -> Execution {
    let mut b = ExecutionBuilder::new();
    let a = b.push(Event::write(0, 0).with_annot(Annot::relaxed_atomic()));
    let w = b.push(Event::write(0, 1).with_annot(Annot::relaxed_atomic()));
    let c = b.push(Event::read(1, 1).with_annot(Annot::relaxed_atomic()));
    let d = b.push(Event::read(1, 0).with_annot(Annot::relaxed_atomic()));
    b.txn(&[a, w]);
    b.txn(&[c, d]);
    b.rf(w, c);
    b.build().expect("dongol example is well-formed")
}

// ---------------------------------------------------------------------------
// Classic litmus shapes, with and without transactions.
// ---------------------------------------------------------------------------

/// Store buffering (SB): `W x; R y || W y; R x`, both reads from the initial
/// state. Allowed on x86 (and everything weaker), forbidden under SC.
pub fn sb() -> Execution {
    let mut b = ExecutionBuilder::new();
    b.push(Event::write(0, 0));
    b.push(Event::read(0, 1));
    b.push(Event::write(1, 1));
    b.push(Event::read(1, 0));
    b.build().expect("SB is well-formed")
}

/// SB with both threads' accesses inside transactions. Forbidden everywhere:
/// transactions must appear serialised.
pub fn sb_txn() -> Execution {
    let mut b = ExecutionBuilder::new();
    let a = b.push(Event::write(0, 0));
    let bb = b.push(Event::read(0, 1));
    let c = b.push(Event::write(1, 1));
    let d = b.push(Event::read(1, 0));
    b.txn(&[a, bb]);
    b.txn(&[c, d]);
    b.build().expect("SB+txn is well-formed")
}

/// SB with MFENCE between each write/read pair (x86). Forbidden on x86.
pub fn sb_mfence() -> Execution {
    let mut b = ExecutionBuilder::new();
    b.push(Event::write(0, 0));
    b.push(Event::fence(0, Fence::MFence));
    b.push(Event::read(0, 1));
    b.push(Event::write(1, 1));
    b.push(Event::fence(1, Fence::MFence));
    b.push(Event::read(1, 0));
    b.build().expect("SB+MFENCE is well-formed")
}

/// Message passing (MP): `W x; W y || R y; R x` where the reader sees the
/// flag `y` but stale data `x`. Allowed on Power/ARMv8 without
/// fences/dependencies, forbidden on x86 and SC.
pub fn mp() -> Execution {
    let mut b = ExecutionBuilder::new();
    let _wx = b.push(Event::write(0, 0));
    let wy = b.push(Event::write(0, 1));
    let ry = b.push(Event::read(1, 1));
    let _rx = b.push(Event::read(1, 0));
    b.rf(wy, ry);
    b.build().expect("MP is well-formed")
}

/// MP with both critical pairs inside transactions. Forbidden everywhere.
pub fn mp_txn() -> Execution {
    let mut b = ExecutionBuilder::new();
    let wx = b.push(Event::write(0, 0));
    let wy = b.push(Event::write(0, 1));
    let ry = b.push(Event::read(1, 1));
    let rx = b.push(Event::read(1, 0));
    b.txn(&[wx, wy]);
    b.txn(&[ry, rx]);
    b.rf(wy, ry);
    b.build().expect("MP+txn is well-formed")
}

/// Load buffering (LB): `R x; W y || R y; W x` where each read observes the
/// other thread's write. Allowed by the Power and ARMv8 models (never
/// observed on Power silicon), forbidden on x86 and SC.
pub fn lb() -> Execution {
    let mut b = ExecutionBuilder::new();
    let rx = b.push(Event::read(0, 0));
    let wy = b.push(Event::write(0, 1));
    let ry = b.push(Event::read(1, 1));
    let wx = b.push(Event::write(1, 0));
    b.rf(wy, ry);
    b.rf(wx, rx);
    b.build().expect("LB is well-formed")
}

/// LB with both threads transactional. Forbidden everywhere (a communication
/// cycle between transactions).
pub fn lb_txn() -> Execution {
    let mut b = ExecutionBuilder::new();
    let rx = b.push(Event::read(0, 0));
    let wy = b.push(Event::write(0, 1));
    let ry = b.push(Event::read(1, 1));
    let wx = b.push(Event::write(1, 0));
    b.txn(&[rx, wy]);
    b.txn(&[ry, wx]);
    b.rf(wy, ry);
    b.rf(wx, rx);
    b.build().expect("LB+txn is well-formed")
}

/// Write-to-read causality (WRC) with address dependencies on the readers:
/// allowed on Power (not multicopy-atomic), forbidden on x86 and ARMv8.
pub fn wrc() -> Execution {
    let mut b = ExecutionBuilder::new();
    let a = b.push(Event::write(0, 0));
    let rb = b.push(Event::read(1, 0));
    let c = b.push(Event::write(1, 1));
    let d = b.push(Event::read(2, 1));
    let e = b.push(Event::read(2, 0));
    b.rf(a, rb);
    b.rf(c, d);
    b.data(rb, c);
    b.addr(d, e);
    b.build().expect("WRC is well-formed")
}

/// Independent reads of independent writes (IRIW) with address dependencies:
/// allowed on Power, forbidden on x86, ARMv8 and SC.
pub fn iriw() -> Execution {
    let mut b = ExecutionBuilder::new();
    let a = b.push(Event::write(0, 0));
    let rb = b.push(Event::read(1, 0));
    let c = b.push(Event::read(1, 1));
    let d = b.push(Event::read(2, 1));
    let e = b.push(Event::read(2, 0));
    let f = b.push(Event::write(3, 1));
    b.rf(a, rb);
    b.rf(f, d);
    b.addr(rb, c);
    b.addr(d, e);
    b.build().expect("IRIW is well-formed")
}

// ---------------------------------------------------------------------------
// Lock-elision executions (§1.1, §8.3, Fig. 10, Appendix B).
// ---------------------------------------------------------------------------

/// Fig. 10 (left): the *abstract* execution for Example 1.1. Two critical
/// regions on `x`; the left is an ordinary locked CR performing
/// `x ← x + 2`, the right an elided (transactionalised) CR performing
/// `x ← 1`. The interleaving shown violates mutual exclusion, so the
/// CROrder axiom (serialisability of critical regions) forbids it.
pub fn fig10_abstract() -> Execution {
    let mut b = ExecutionBuilder::new();
    let l = b.push(Event::lock_call(0, LockCall::Lock));
    let rx = b.push(Event::read(0, 0));
    let wx = b.push(Event::write(0, 0));
    let u = b.push(Event::lock_call(0, LockCall::Unlock));
    let lt = b.push(Event::lock_call(1, LockCall::TxLock));
    let wx2 = b.push(Event::write(1, 0));
    let ut = b.push(Event::lock_call(1, LockCall::TxUnlock));
    b.cr(&[l, rx, wx, u]);
    b.txn_cr(&[lt, wx2, ut]);
    b.co(wx2, wx);
    b.data(rx, wx);
    b.build().expect("fig10 abstract execution is well-formed")
}

/// Fig. 10 (right): the *concrete* ARMv8 execution that Example 1.1's
/// program can produce. The left thread is the recommended ARMv8 spinlock
/// (`LDAXR`/`STXR` acquire, `STLR` release) around `x ← x + 2`; the right
/// thread is a transaction that reads the lock variable `m` and writes
/// `x ← 1`.
///
/// `include_dmb` selects the §1.1 "fix": appending a `DMB` to the `lock()`
/// implementation. Without the DMB the execution is consistent under the
/// ARMv8 TM model (lock elision is unsound); with it, the execution becomes
/// inconsistent.
pub fn example_1_1_concrete(include_dmb: bool) -> Execution {
    let mut b = ExecutionBuilder::new();
    // P0: spinlock acquire (LDAXR m; STXR m), CR body (LDR x; STR x), release (STLR m).
    let ldaxr = b.push(Event::read(0, LOCK_VAR).with_annot(Annot::acquire()));
    let stxr = b.push(Event::write(0, LOCK_VAR));
    if include_dmb {
        b.push(Event::fence(0, Fence::Dmb));
    }
    let ldr_x = b.push(Event::read(0, 0));
    let str_x = b.push(Event::write(0, 0));
    let stlr = b.push(Event::write(0, LOCK_VAR).with_annot(Annot::release()));
    // P1: transactional CR: read the lock (sees it free), write x, commit.
    let ldr_m = b.push(Event::read(1, LOCK_VAR));
    let str_x2 = b.push(Event::write(1, 0));

    b.rmw(ldaxr, stxr);
    b.ctrl(ldaxr, stxr);
    b.data(ldr_x, str_x);
    b.txn(&[ldr_m, str_x2]);
    // Both lock reads see the lock free (initial value); the elided CR's
    // write to x is coherence-before the locked CR's write (final x = 2).
    b.co(str_x2, str_x);
    b.co(stxr, stlr);
    b.build()
        .expect("example 1.1 concrete execution is well-formed")
}

/// Appendix B (second unsoundness example), concrete ARMv8 execution: the
/// elided CR loads `x` and observes the locked CR's *first* store — an
/// intermediate value that mutual exclusion should have hidden.
pub fn appendix_b_concrete(include_dmb: bool) -> Execution {
    let mut b = ExecutionBuilder::new();
    // P0: spinlock acquire, store x twice, release.
    let ldaxr = b.push(Event::read(0, LOCK_VAR).with_annot(Annot::acquire()));
    let stxr = b.push(Event::write(0, LOCK_VAR));
    if include_dmb {
        b.push(Event::fence(0, Fence::Dmb));
    }
    let str_x1 = b.push(Event::write(0, 0));
    let str_x2 = b.push(Event::write(0, 0));
    let stlr = b.push(Event::write(0, LOCK_VAR).with_annot(Annot::release()));
    // P1: transactional CR: read the lock, load x (observing the first store).
    let ldr_m = b.push(Event::read(1, LOCK_VAR));
    let ldr_x = b.push(Event::read(1, 0));

    b.rmw(ldaxr, stxr);
    b.ctrl(ldaxr, stxr);
    b.txn(&[ldr_m, ldr_x]);
    b.rf(str_x1, ldr_x);
    b.co(str_x1, str_x2);
    b.co(stxr, stlr);
    b.build()
        .expect("appendix B concrete execution is well-formed")
}

/// Every catalog execution under a stable name — the single source of truth
/// for tools that iterate the catalog (the `tm-cat` CLI's litmus list, the
/// `.cat` round-trip and shipped-model parity tests). Add new executions
/// here so every consumer picks them up.
pub fn named() -> Vec<(&'static str, Execution)> {
    vec![
        ("sb", sb()),
        ("sb-txn", sb_txn()),
        ("sb-mfence", sb_mfence()),
        ("mp", mp()),
        ("mp-txn", mp_txn()),
        ("lb", lb()),
        ("lb-txn", lb_txn()),
        ("wrc", wrc()),
        ("iriw", iriw()),
        ("fig1", fig1()),
        ("fig2", fig2()),
        ("fig3a", fig3('a')),
        ("fig3b", fig3('b')),
        ("fig3c", fig3('c')),
        ("fig3d", fig3('d')),
        ("power-wrc-tprop1", power_wrc_tprop1()),
        ("power-wrc-tprop2", power_wrc_tprop2()),
        ("power-iriw-two-txns", power_iriw_two_txns()),
        ("power-iriw-one-txn", power_iriw_one_txn()),
        ("remark-5.1-first", remark_5_1_first()),
        ("remark-5.1-second", remark_5_1_second()),
        ("monotonicity-split", monotonicity_cex_split()),
        ("monotonicity-coalesced", monotonicity_cex_coalesced()),
        ("dongol-mp-txn", dongol_mp_txn()),
        ("fig10-abstract", fig10_abstract()),
        ("example-1.1-armv8", example_1_1_concrete(false)),
        ("example-1.1-armv8-dmb", example_1_1_concrete(true)),
        ("appendix-b", appendix_b_concrete(false)),
        ("appendix-b-dmb", appendix_b_concrete(true)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_catalog_executions_are_well_formed() {
        // Construction already checks well-formedness; this test simply
        // exercises every entry and sanity-checks a few sizes.
        assert_eq!(fig1().len(), 3);
        assert_eq!(fig2().len(), 3);
        for which in ['a', 'b', 'c', 'd'] {
            assert_eq!(fig3(which).len(), 3);
        }
        assert_eq!(power_wrc_tprop1().len(), 5);
        assert_eq!(power_wrc_tprop2().len(), 5);
        assert_eq!(power_iriw_two_txns().len(), 6);
        assert_eq!(power_iriw_one_txn().len(), 6);
        assert_eq!(remark_5_1_first().len(), 6);
        assert_eq!(remark_5_1_second().len(), 6);
        assert_eq!(monotonicity_cex_split().len(), 2);
        assert_eq!(monotonicity_cex_coalesced().len(), 2);
        assert_eq!(dongol_mp_txn().len(), 4);
        assert_eq!(sb().len(), 4);
        assert_eq!(sb_txn().len(), 4);
        assert_eq!(sb_mfence().len(), 6);
        assert_eq!(mp().len(), 4);
        assert_eq!(mp_txn().len(), 4);
        assert_eq!(lb().len(), 4);
        assert_eq!(lb_txn().len(), 4);
        assert_eq!(wrc().len(), 5);
        assert_eq!(iriw().len(), 6);
        assert_eq!(fig10_abstract().len(), 7);
        assert_eq!(example_1_1_concrete(false).len(), 7);
        assert_eq!(example_1_1_concrete(true).len(), 8);
        assert_eq!(appendix_b_concrete(false).len(), 7);
        assert_eq!(appendix_b_concrete(true).len(), 8);
    }

    #[test]
    fn fig2_transaction_is_split_by_external_write() {
        let e = fig2();
        // The external write communicates into and out of the transaction.
        let strong = Execution::stronglift(&e.com(), &e.stxn);
        assert!(!strong.is_acyclic());
        // But the weak lift sees no transaction-to-transaction cycle.
        let weak = Execution::weaklift(&e.com(), &e.stxn);
        assert!(weak.is_acyclic());
    }

    #[test]
    fn fig3_variants_violate_strong_but_not_weak_isolation() {
        for which in ['a', 'b', 'c', 'd'] {
            let e = fig3(which);
            assert!(
                !Execution::stronglift(&e.com(), &e.stxn).is_acyclic(),
                "fig3({which}) must violate strong isolation"
            );
            assert!(
                Execution::weaklift(&e.com(), &e.stxn).is_acyclic(),
                "fig3({which}) must satisfy weak isolation"
            );
            // And the underlying execution is SC-consistent.
            assert!(e.po.union(&e.com()).is_acyclic());
        }
    }

    #[test]
    fn monotonicity_pair_differs_only_in_stxn() {
        let split = monotonicity_cex_split();
        let merged = monotonicity_cex_coalesced();
        assert_eq!(split.events, merged.events);
        assert_eq!(split.rmw, merged.rmw);
        assert!(split.stxn.is_subset_of(&merged.stxn));
        assert_ne!(split.stxn, merged.stxn);
        // The split version has an rmw edge crossing a transaction boundary.
        assert!(!split.rmw.intersection(&split.tfence()).is_empty());
        assert!(merged.rmw.intersection(&merged.tfence()).is_empty());
    }

    #[test]
    fn lock_elision_abstract_execution_has_two_crs() {
        let e = fig10_abstract();
        assert_eq!(e.cr_classes().len(), 2);
        let transactionalised: Vec<_> = tm_relation::per_classes(&e.scrt);
        assert_eq!(transactionalised.len(), 1);
    }

    #[test]
    fn example_1_1_lock_reads_see_initial_value() {
        let e = example_1_1_concrete(false);
        // No rf edge targets the lock-variable reads: they read the initial
        // (free) state of m, which is what makes the elision race possible.
        for r in e.reads().iter() {
            if e.event(r).loc() == Some(crate::Loc(LOCK_VAR)) {
                assert_eq!(e.rf.predecessors(r).count(), 0);
            }
        }
    }
}

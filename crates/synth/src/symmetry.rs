//! Generation-time symmetry reduction for the enumerator.
//!
//! The enumerated space is already partially canonical: threads are listed
//! in non-increasing size order and locations are numbered in first-use
//! order. The residual symmetry group `G` of a thread-size partition is the
//! set of permutations of *equal-size* thread blocks, each acting on an
//! execution by permuting the blocks (preserving program order within each)
//! and renumbering locations in first-use order afterwards. `|G|` is the
//! product of the factorials of the equal-size class multiplicities.
//!
//! Reduction picks one representative per `G`-orbit by a two-level
//! lex-leader rule:
//!
//! 1. a **shape vector** `S` is canonical iff no `g ∈ G` produces a
//!    lexicographically smaller permuted-and-relabelled shape vector `g·S`
//!    — checked once per shape, before any relation odometer runs (and a
//!    weaker prefix-only version prunes whole work units up front);
//! 2. given a canonical shape with stabilizer `H = {g : g·S = S}`, a
//!    relation index tuple `idx` is canonical iff `idx ≤ h·idx` for every
//!    `h ∈ H`, where `h` acts on the odometer dimensions through the
//!    [`StabElem`] tables built here. The comparison is incremental along
//!    the odometer: the slow (rf/co/dep/rmw) prefix is compared once per
//!    outer setting, skipping the entire transaction subtree when it
//!    already loses.
//!
//! Each representative's in-space orbit size is `|G| / |Stab(E)|` by
//! orbit–stabilizer, so orbit-weighted counts reproduce the full
//! enumeration exactly. [`labelled_orbit`] additionally scales a
//! representative to the fully-labelled space (`k!·l!/|Stab(E)|`) that a
//! naive SAT/Alloy enumeration would visit.

use std::cmp::Ordering;
use std::collections::HashMap;

use tm_exec::Execution;

use crate::enumerate::{annot_bits, permutations, EventShape, OdometerLayout, RelationChoices};

/// Whether enumeration visits the whole space or one canonical
/// representative per thread/location-renaming class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Symmetry {
    /// Visit every execution in the space (the historical behaviour).
    Full,
    /// Visit one lex-leader representative per isomorphism class, with an
    /// exact orbit size attached to each.
    Reduced,
}

impl Symmetry {
    /// True in [`Symmetry::Reduced`] mode.
    pub fn is_reduced(self) -> bool {
        matches!(self, Symmetry::Reduced)
    }

    /// A stable byte for fingerprints and journal metadata.
    pub fn byte(self) -> u8 {
        match self {
            Symmetry::Full => 0,
            Symmetry::Reduced => 1,
        }
    }

    /// Parses the `--symmetry on|off` flag value.
    pub fn parse(s: &str) -> Result<Symmetry, String> {
        match s {
            "on" => Ok(Symmetry::Reduced),
            "off" => Ok(Symmetry::Full),
            other => Err(format!("bad symmetry `{other}` (expected on or off)")),
        }
    }
}

impl std::fmt::Display for Symmetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Symmetry::Full => "off",
            Symmetry::Reduced => "on",
        })
    }
}

/// The result of a symmetry-reduced enumeration: how many representatives
/// were visited, how many executions of the full space they stand for, and
/// where the reduction's pruning power came from (the three kill counters,
/// all zero in a full enumeration).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReducedCount {
    /// Canonical representatives visited.
    pub representatives: usize,
    /// Sum of the representatives' orbit sizes — equals the full
    /// enumeration's visit count over the same space.
    pub weighted: u64,
    /// Shape-layer kills: whole event shapes rejected because they are not
    /// the lex-least of their orbit — every odometer under them skipped.
    pub shape_kills: u64,
    /// Subtree kills: outer (slow-prefix) odometer settings where some
    /// stabilizer element already beats the candidate, skipping the whole
    /// inner transaction subtree.
    pub subtree_kills: u64,
    /// Edge-layer kills: individual candidates rejected at an inner
    /// (transaction-dim) stabilizer comparison.
    pub edge_kills: u64,
}

impl ReducedCount {
    /// Folds `other` into `self`, field by field.
    pub fn add(&mut self, other: ReducedCount) {
        self.representatives += other.representatives;
        self.weighted += other.weighted;
        self.shape_kills += other.shape_kills;
        self.subtree_kills += other.subtree_kills;
        self.edge_kills += other.edge_kills;
    }
}

/// The symmetry group of one thread-size partition: every permutation of
/// equal-size blocks, identity first.
pub(crate) struct PartitionSym {
    /// First event id of each block.
    starts: Vec<usize>,
    /// Block permutations preserving sizes (`perm[i]` = old block placed at
    /// new position `i`), the identity first.
    perms: Vec<Vec<usize>>,
}

impl PartitionSym {
    /// `|G|`.
    pub(crate) fn order(&self) -> u64 {
        self.perms.len() as u64
    }
}

/// Builds the block-permutation group of `partition` (which is
/// non-increasing, so equal-size classes are contiguous runs).
pub(crate) fn partition_sym(partition: &[usize]) -> PartitionSym {
    let mut starts = Vec::with_capacity(partition.len() + 1);
    let mut next = 0usize;
    for &size in partition {
        starts.push(next);
        next += size;
    }
    starts.push(next);

    let mut perms: Vec<Vec<usize>> = vec![Vec::new()];
    let mut i = 0;
    while i < partition.len() {
        let mut j = i;
        while j < partition.len() && partition[j] == partition[i] {
            j += 1;
        }
        let class: Vec<usize> = (i..j).collect();
        let class_perms = permutations(&class);
        perms = perms
            .iter()
            .flat_map(|base| {
                class_perms.iter().map(move |cp| {
                    let mut p = base.clone();
                    p.extend_from_slice(cp);
                    p
                })
            })
            .collect();
        i = j;
    }
    PartitionSym { starts, perms }
}

/// One non-identity stabilizer element of a canonical shape vector.
pub(crate) struct ShapePerm {
    /// Event bijection: `sigma[old id] = new id`.
    pub(crate) sigma: Vec<usize>,
    /// Location bijection: `loc_map[old label] = new label`.
    pub(crate) loc_map: Vec<u32>,
}

/// Compares `g·S` (blocks permuted by `perm`, locations relabelled
/// first-use) against `S` over the first `window` positions, filling
/// `sigma`/`loc_map` along the way. Returns the lexicographic order of
/// `g·S` versus `S` restricted to the window.
fn permuted_cmp(
    sym: &PartitionSym,
    perm: &[usize],
    shapes: &[EventShape],
    window: usize,
    sigma: &mut Vec<usize>,
    loc_map: &mut Vec<u32>,
) -> Ordering {
    const UNSET: u32 = u32::MAX;
    sigma.clear();
    sigma.resize(shapes.len(), usize::MAX);
    loc_map.clear();
    loc_map.resize(shapes.len(), UNSET);
    let mut next_label = 0u32;
    let mut block = 0usize;
    for i in 0..window {
        while i >= sym.starts[block + 1] {
            block += 1;
        }
        let old_block = if block < perm.len() {
            perm[block]
        } else {
            block
        };
        let old_e = sym.starts[old_block] + (i - sym.starts[block]);
        sigma[old_e] = i;
        let permuted = match shapes[old_e] {
            EventShape::Read(l, a) => {
                if loc_map[l as usize] == UNSET {
                    loc_map[l as usize] = next_label;
                    next_label += 1;
                }
                (0u8, loc_map[l as usize], annot_bits(a))
            }
            EventShape::Write(l, a) => {
                if loc_map[l as usize] == UNSET {
                    loc_map[l as usize] = next_label;
                    next_label += 1;
                }
                (1, loc_map[l as usize], annot_bits(a))
            }
            EventShape::Fence(f) => (2, f.index() as u32, 0),
        };
        let original = match shapes[i] {
            EventShape::Read(l, a) => (0u8, l, annot_bits(a)),
            EventShape::Write(l, a) => (1, l, annot_bits(a)),
            EventShape::Fence(f) => (2, f.index() as u32, 0),
        };
        match permuted.cmp(&original) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    Ordering::Equal
}

/// The shape-level lex-leader check: `None` if some `g·S < S` (the shape is
/// not canonical and its entire relation odometer is skipped), otherwise
/// the non-identity stabilizer elements `{g : g·S = S}`.
pub(crate) fn shape_stabilizer(
    sym: &PartitionSym,
    shapes: &[EventShape],
) -> Option<Vec<ShapePerm>> {
    let mut out = Vec::new();
    let mut sigma = Vec::new();
    let mut loc_map = Vec::new();
    for perm in &sym.perms[1..] {
        match permuted_cmp(sym, perm, shapes, shapes.len(), &mut sigma, &mut loc_map) {
            Ordering::Less => return None,
            Ordering::Equal => out.push(ShapePerm {
                sigma: sigma.clone(),
                loc_map: loc_map.clone(),
            }),
            Ordering::Greater => {}
        }
    }
    Some(out)
}

/// True if a work unit's shape prefix is already non-canonical: permuting
/// blocks *fully contained* in the prefix window strictly lowers the
/// window's shape keys, so no completion of the prefix can be canonical
/// and the whole unit is dropped before any odometer runs.
pub(crate) fn prefix_prunable(partition: &[usize], prefix: &[EventShape]) -> bool {
    let depth = prefix.len();
    let sym = partition_sym(partition);
    let contained = (0..partition.len())
        .take_while(|&t| sym.starts[t + 1] <= depth)
        .count();
    if contained < 2 {
        return false;
    }
    let window_sym = partition_sym(&partition[..contained]);
    let mut sigma = Vec::new();
    let mut loc_map = Vec::new();
    for perm in &window_sym.perms[1..] {
        if permuted_cmp(&sym, perm, prefix, depth, &mut sigma, &mut loc_map) == Ordering::Less {
            return true;
        }
    }
    false
}

/// One stabilizer element's action on the odometer's index tuples:
/// `(h·idx)[p] = val[inv_dim[p]][idx[inv_dim[p]]]`.
pub(crate) struct StabElem {
    /// `inv_dim[p]` = the source dimension whose image lands at target
    /// dimension `p`. Families are preserved (rf dims map to rf dims, …),
    /// so the slow prefix of `h·idx` depends only on the slow prefix of
    /// `idx`.
    inv_dim: Vec<usize>,
    /// `val[q][v]` = the option index the source choice `v` of dimension
    /// `q` maps to at its target dimension.
    val: Vec<Vec<usize>>,
}

impl StabElem {
    /// `(h·idx)[p]`.
    #[inline]
    pub(crate) fn image_at(&self, idx: &[usize], p: usize) -> usize {
        let q = self.inv_dim[p];
        self.val[q][idx[q]]
    }

    /// Lexicographic order of `idx` versus `h·idx` over positions
    /// `from..upto`.
    pub(crate) fn cmp_range(&self, idx: &[usize], from: usize, upto: usize) -> Ordering {
        for p in from..upto {
            match idx[p].cmp(&self.image_at(idx, p)) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        Ordering::Equal
    }
}

/// Builds the per-dimension action tables of every shape stabilizer
/// element, once per shape vector.
pub(crate) fn build_stab_elems(
    choices: &RelationChoices,
    layout: &OdometerLayout,
    shape_perms: &[ShapePerm],
) -> Vec<StabElem> {
    if shape_perms.is_empty() {
        return Vec::new();
    }
    let read_pos: HashMap<usize, usize> = choices
        .reads
        .iter()
        .enumerate()
        .map(|(i, &r)| (r, i))
        .collect();
    let loc_pos: HashMap<u32, usize> = choices
        .locs
        .iter()
        .enumerate()
        .map(|(i, &l)| (l, i))
        .collect();
    // co options are permutations in a deterministic order; index them by
    // content once so each h can look up the image of an order.
    let co_index: Vec<HashMap<&[usize], usize>> = choices
        .co_options
        .iter()
        .map(|opts| {
            opts.iter()
                .enumerate()
                .map(|(v, o)| (o.as_slice(), v))
                .collect()
        })
        .collect();
    let dep_pos: HashMap<(usize, usize), usize> = choices
        .dep_pairs
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i))
        .collect();
    let rmw_pos: HashMap<(usize, usize), usize> = choices
        .rmw_pairs
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i))
        .collect();

    let total = layout.dims.len();
    shape_perms
        .iter()
        .map(|h| {
            let mut dim_map = vec![0usize; total];
            let mut val: Vec<Vec<usize>> = vec![Vec::new(); total];
            for (i, &r) in choices.reads.iter().enumerate() {
                let q = layout.rf_at + i;
                let i2 = read_pos[&h.sigma[r]];
                dim_map[q] = layout.rf_at + i2;
                let target = &choices.rf_options[i2];
                val[q] = choices.rf_options[i]
                    .iter()
                    .map(|opt| match opt {
                        None => 0,
                        Some(w) => target
                            .iter()
                            .position(|&o| o == Some(h.sigma[*w]))
                            .expect("a stabilizer maps rf options within the shape"),
                    })
                    .collect();
            }
            for (i, &l) in choices.locs.iter().enumerate() {
                let q = layout.co_at + i;
                let i2 = loc_pos[&h.loc_map[l as usize]];
                dim_map[q] = layout.co_at + i2;
                val[q] = choices.co_options[i]
                    .iter()
                    .map(|order| {
                        let mapped: Vec<usize> = order.iter().map(|&w| h.sigma[w]).collect();
                        co_index[i2][mapped.as_slice()]
                    })
                    .collect();
            }
            for (i, &(r, e)) in choices.dep_pairs.iter().enumerate() {
                let q = layout.dep_at + i;
                dim_map[q] = layout.dep_at + dep_pos[&(h.sigma[r], h.sigma[e])];
                val[q] = vec![0, 1];
            }
            for (i, &(r, w)) in choices.rmw_pairs.iter().enumerate() {
                let q = layout.rmw_at + i;
                dim_map[q] = layout.rmw_at + rmw_pos[&(h.sigma[r], h.sigma[w])];
                val[q] = vec![0, 1];
            }
            for (t, block) in choices.thread_blocks.iter().enumerate() {
                let q = layout.txn_at + t;
                let t2 = choices.thread_of[h.sigma[block[0]]] as usize;
                dim_map[q] = layout.txn_at + t2;
                // Interval sets depend only on block length, which the
                // (size-preserving) block permutation keeps, so option
                // indices carry over unchanged.
                val[q] = (0..choices.txn_options[t].len()).collect();
            }
            let mut inv_dim = vec![0usize; total];
            for (q, &p) in dim_map.iter().enumerate() {
                inv_dim[p] = q;
            }
            StabElem { inv_dim, val }
        })
        .collect()
}

/// Scales a representative's in-space orbit to the fully-labelled space a
/// naive SAT/Alloy enumeration visits: `k!·l!/|Stab(E)|` for `k` threads
/// and `l` locations — the orbit under *arbitrary* thread and location
/// renaming, before the enumerator's own canonicalisation (sorted thread
/// sizes, first-use locations) collapses most of it. This is the honest
/// "effective executions per second" multiplier for throughput
/// comparisons; exact Table 1/2 counts use the in-space orbit instead.
pub fn labelled_orbit(exec: &Execution, orbit: u64) -> u64 {
    let k = exec.thread_count();
    let l = exec.locations().len();
    let mut sizes = vec![0usize; k];
    for e in &exec.events {
        sizes[e.thread.0 as usize] += 1;
    }
    sizes.sort_unstable();
    // |G| = product of factorials of equal-size multiplicities.
    let mut g = 1u64;
    let mut run = 1u64;
    for i in 1..sizes.len() {
        if sizes[i] == sizes[i - 1] {
            run += 1;
            g *= run;
        } else {
            run = 1;
        }
    }
    let factorial = |m: usize| (1..=m as u64).product::<u64>();
    // |Stab(E)| = |G| / orbit; labelled orbit = k!·l!/|Stab(E)|.
    factorial(k) * factorial(l) * orbit / g
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_exec::{catalog, Event, ExecutionBuilder};

    #[test]
    fn partition_group_order_is_product_of_class_factorials() {
        assert_eq!(partition_sym(&[3]).order(), 1);
        assert_eq!(partition_sym(&[2, 1]).order(), 1);
        assert_eq!(partition_sym(&[2, 2]).order(), 2);
        assert_eq!(partition_sym(&[1, 1, 1]).order(), 6);
        assert_eq!(partition_sym(&[2, 2, 1, 1]).order(), 4);
        assert!(partition_sym(&[2, 2]).perms[0]
            .windows(2)
            .all(|w| w[0] < w[1]));
    }

    #[test]
    fn symmetry_parses_and_prints_as_the_flag_value() {
        assert_eq!(Symmetry::parse("on"), Ok(Symmetry::Reduced));
        assert_eq!(Symmetry::parse("off"), Ok(Symmetry::Full));
        assert!(Symmetry::parse("sideways").is_err());
        assert_eq!(Symmetry::Reduced.to_string(), "on");
        assert_ne!(Symmetry::Full.byte(), Symmetry::Reduced.byte());
    }

    #[test]
    fn labelled_orbit_matches_brute_force_on_sb() {
        // SB: two symmetric threads (W x; R y || W y; R x). In-space orbit
        // is 1 (the swap is an automorphism up to relabelling): |G| = 2,
        // |Stab| = 2. Labelled: 2!·2!/2 = 2 — brute force over all 2!
        // thread × 2! location labellings yields 4 labelled graphs with a
        // 2-element automorphism group.
        let sb = catalog::sb();
        assert_eq!(labelled_orbit(&sb, 1), 2);

        // An asymmetric 2-thread execution: W x; W y || R x. |G| = 1
        // (different sizes), orbit 1, |Stab| = 1, labelled = 2!·2!.
        let mut b = ExecutionBuilder::new();
        b.push(Event::write(0, 0));
        b.push(Event::write(0, 1));
        b.push(Event::read(1, 0));
        let e = b.build().unwrap();
        assert_eq!(labelled_orbit(&e, 1), 4);
    }
}

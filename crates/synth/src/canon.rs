//! Canonicalisation of executions up to thread and location renaming.

use std::fmt;

use tm_exec::{Event, EventKind, Execution, Loc, LockCall};
use tm_relation::Relation;

/// A canonical byte signature of an execution, invariant under thread and
/// location renaming.
///
/// Two executions compare equal iff they are isomorphic under thread
/// permutation (with the induced re-ordering of event identifiers) and
/// location renaming. The byte form is `Ord + Hash`, so it serves directly
/// as a set/map key; [`fmt::Display`] renders it as hex for logs.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanonSig(Vec<u8>);

impl fmt::Display for CanonSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for CanonSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CanonSig({self})")
    }
}

/// Sentinel for "no location" in the byte encoding.
const NO_LOC: u8 = 0xFF;

/// The canonical signature of `exec`: the lexicographically least byte
/// encoding over all thread permutations, with locations renumbered in
/// first-use order after each permutation.
///
/// The enumerator's symmetry breaking is only partial (threads of equal
/// size can still be swapped), so suites deduplicate found tests by this
/// signature, mirroring the symmetry breaking Alloy performs for Memalloy.
/// Permutations are walked with Heap's algorithm and encoded into reused
/// buffers — no `Execution` clones, relation reindexing or `String`
/// formatting on this hot path.
pub fn canonical_signature(exec: &Execution) -> CanonSig {
    let k = exec.thread_count();
    let n = exec.len();
    if n == 0 {
        return CanonSig(Vec::new());
    }

    // Group events by thread once, in program order within each thread
    // (event ids are not necessarily thread-contiguous for arbitrary
    // executions, e.g. weakenings that removed events).
    let by_thread = events_by_thread(exec);

    let rels: [&Relation; 11] = [
        &exec.po,
        &exec.rf,
        &exec.co,
        &exec.addr,
        &exec.data,
        &exec.ctrl,
        &exec.rmw,
        &exec.stxn,
        &exec.stxnat,
        &exec.scr,
        &exec.scrt,
    ];
    // Pair lists are permutation-independent except for the id mapping, so
    // collect them once and remap per permutation.
    let rel_pairs: Vec<Vec<(usize, usize)>> = rels.iter().map(|r| r.iter().collect()).collect();

    let mut enc = Encoder {
        map: vec![0u8; n],
        loc_of: vec![NO_LOC; n],
        buf: Vec::with_capacity(64),
        pairs: Vec::new(),
    };

    let mut perm: Vec<usize> = (0..k).collect();
    let mut best: Option<Vec<u8>> = None;
    let mut consider = |perm: &[usize]| {
        enc.encode(exec, &by_thread, &rel_pairs, perm);
        if best.as_ref().is_none_or(|b| enc.buf < *b) {
            best = Some(enc.buf.clone());
        }
    };
    consider(&perm);
    // Heap's algorithm, iterative form: generates all k! orders, mutating
    // `perm` by a single swap per step.
    let mut c = vec![0usize; k];
    let mut i = 1;
    while i < k {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            consider(&perm);
            c[i] += 1;
            i = 1;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    CanonSig(best.expect("at least the identity permutation was considered"))
}

/// Event ids grouped by thread, each group in program order.
pub(crate) fn events_by_thread(exec: &Execution) -> Vec<Vec<usize>> {
    let k = exec.thread_count();
    let n = exec.len();
    let mut by_thread: Vec<Vec<usize>> = vec![Vec::new(); k];
    for e in 0..n {
        by_thread[exec.event(e).thread.0 as usize].push(e);
    }
    for ids in &mut by_thread {
        ids.sort_by_key(|&e| exec.po.predecessors(e).count());
    }
    by_thread
}

/// Reused scratch space for one permutation's byte encoding.
struct Encoder {
    /// `map[old id] = new id` under the current permutation.
    map: Vec<u8>,
    /// `loc_of[old id]` = relabelled location, or [`NO_LOC`].
    loc_of: Vec<u8>,
    /// The encoding being built.
    buf: Vec<u8>,
    /// Scratch for sorting remapped relation pairs.
    pairs: Vec<(u8, u8)>,
}

impl Encoder {
    /// Encodes `exec` under thread permutation `perm` (`perm[i]` = old
    /// thread placed at new position `i`) into `self.buf`.
    fn encode(
        &mut self,
        exec: &Execution,
        by_thread: &[Vec<usize>],
        rel_pairs: &[Vec<(usize, usize)>],
        perm: &[usize],
    ) {
        self.buf.clear();
        // New id order: thread perm[0]'s events first, then perm[1]'s, …
        let mut next = 0u8;
        for &old_t in perm {
            for &e in &by_thread[old_t] {
                self.map[e] = next;
                next += 1;
            }
        }
        // Locations renumbered in first-use order of the *new* id order.
        let mut next_loc = 0u8;
        let mut loc_map: Vec<(Loc, u8)> = Vec::new();
        for &old_t in perm {
            for &e in &by_thread[old_t] {
                self.loc_of[e] = match exec.event(e).loc() {
                    Some(loc) => match loc_map.iter().find(|(old, _)| *old == loc) {
                        Some(&(_, new)) => new,
                        None => {
                            let new = next_loc;
                            loc_map.push((loc, new));
                            next_loc += 1;
                            new
                        }
                    },
                    None => NO_LOC,
                };
            }
        }
        // Events, in new id order: thread, kind tag, location, extra, annot.
        for (new_t, &old_t) in perm.iter().enumerate() {
            for &e in &by_thread[old_t] {
                let ev: &Event = exec.event(e);
                let (tag, extra) = match ev.kind {
                    EventKind::Read(_) => (1u8, 0u8),
                    EventKind::Write(_) => (2, 0),
                    EventKind::Fence(f) => (3, f.index() as u8),
                    EventKind::LockCall(c) => (
                        4,
                        match c {
                            LockCall::Lock => 0,
                            LockCall::Unlock => 1,
                            LockCall::TxLock => 2,
                            LockCall::TxUnlock => 3,
                        },
                    ),
                };
                let annot = u8::from(ev.annot.acq)
                    | u8::from(ev.annot.rel) << 1
                    | u8::from(ev.annot.sc) << 2
                    | u8::from(ev.annot.atomic) << 3;
                self.buf
                    .extend_from_slice(&[new_t as u8, tag, self.loc_of[e], extra, annot]);
            }
        }
        // Relations: remapped pairs, sorted, each list length-prefixed.
        for pairs in rel_pairs {
            self.pairs.clear();
            self.pairs
                .extend(pairs.iter().map(|&(a, b)| (self.map[a], self.map[b])));
            self.pairs.sort_unstable();
            self.buf.push(self.pairs.len() as u8);
            for &(a, b) in &self.pairs {
                self.buf.extend_from_slice(&[a, b]);
            }
        }
    }
}

/// Renames threads according to `perm` (old thread `perm[i]` becomes thread
/// `i`), re-ordering events so identifiers again list thread 0 first, then
/// thread 1, and so on, preserving program order within each thread.
///
/// Slow path: clones the execution and reindexes every relation. Used by
/// tests to brute-force orbits; the signature itself goes through
/// [`canonical_signature`]'s allocation-free encoder.
#[cfg(test)]
pub(crate) fn apply_thread_permutation(exec: &Execution, perm: &[usize]) -> Execution {
    let n = exec.len();
    let by_thread = events_by_thread(exec);
    // perm[i] = old thread id placed at new position i.
    let mut order: Vec<usize> = Vec::with_capacity(n);
    for &old_t in perm {
        order.extend(&by_thread[old_t]);
    }
    // map[old id] = new id
    let mut map = vec![None; n];
    for (new, &old) in order.iter().enumerate() {
        map[old] = Some(new);
    }
    let new_thread_of_old: Vec<u32> = (0..n)
        .map(|e| {
            let old_t = exec.event(e).thread.0 as usize;
            perm.iter().position(|&t| t == old_t).unwrap_or(old_t) as u32
        })
        .collect();
    let mut events = vec![*exec.event(0); n];
    for old in 0..n {
        let mut ev: Event = *exec.event(old);
        ev.thread = tm_exec::ThreadId(new_thread_of_old[old]);
        events[map[old].expect("every event is mapped")] = ev;
    }
    let rx = |r: &Relation| r.reindex(&map, n);
    Execution {
        events,
        po: rx(&exec.po),
        rf: rx(&exec.rf),
        co: rx(&exec.co),
        addr: rx(&exec.addr),
        data: rx(&exec.data),
        ctrl: rx(&exec.ctrl),
        rmw: rx(&exec.rmw),
        stxn: rx(&exec.stxn),
        stxnat: rx(&exec.stxnat),
        scr: rx(&exec.scr),
        scrt: rx(&exec.scrt),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_exec::{catalog, Event, ExecutionBuilder};

    #[test]
    fn signature_is_invariant_under_thread_swap() {
        // SB with its two threads written in the two possible orders.
        let a = catalog::sb();
        let mut b = ExecutionBuilder::new();
        b.push(Event::write(1, 0));
        b.push(Event::read(1, 1));
        b.push(Event::write(0, 1));
        b.push(Event::read(0, 0));
        let b = b.build().unwrap();
        assert_ne!(a.signature(), b.signature());
        assert_eq!(canonical_signature(&a), canonical_signature(&b));
    }

    #[test]
    fn signature_is_invariant_under_location_renaming() {
        let mut b1 = ExecutionBuilder::new();
        b1.push(Event::write(0, 0));
        b1.push(Event::read(1, 0));
        let e1 = b1.build().unwrap();
        let mut b2 = ExecutionBuilder::new();
        b2.push(Event::write(0, 2));
        b2.push(Event::read(1, 2));
        let e2 = b2.build().unwrap();
        assert_eq!(canonical_signature(&e1), canonical_signature(&e2));
    }

    #[test]
    fn signature_is_invariant_under_every_thread_permutation() {
        // Brute force: the slow clone-and-reindex path must agree with the
        // buffer-based encoder for every permutation of a 3-thread test.
        let e = catalog::power_wrc_tprop1();
        let k = e.thread_count();
        let sig = canonical_signature(&e);
        let mut perm: Vec<usize> = (0..k).collect();
        loop {
            let renamed = apply_thread_permutation(&e, &perm);
            assert_eq!(canonical_signature(&renamed), sig, "perm {perm:?}");
            // Next lexicographic permutation, or stop.
            let Some(i) = (0..k - 1).rfind(|&i| perm[i] < perm[i + 1]) else {
                break;
            };
            let j = (i + 1..k).rfind(|&j| perm[j] > perm[i]).unwrap();
            perm.swap(i, j);
            perm[i + 1..].reverse();
        }
    }

    #[test]
    fn different_executions_get_different_signatures() {
        assert_ne!(
            canonical_signature(&catalog::sb()),
            canonical_signature(&catalog::lb())
        );
        assert_ne!(
            canonical_signature(&catalog::mp()),
            canonical_signature(&catalog::mp_txn())
        );
    }

    #[test]
    fn signature_is_stable() {
        let e = catalog::power_wrc_tprop1();
        assert_eq!(canonical_signature(&e), canonical_signature(&e.clone()));
    }

    #[test]
    fn display_is_hex() {
        let sig = canonical_signature(&catalog::sb());
        let text = sig.to_string();
        assert!(!text.is_empty());
        assert!(text.chars().all(|c| c.is_ascii_hexdigit()));
    }
}

//! Canonicalisation of executions up to thread and location renaming.

use tm_exec::{Event, EventKind, Execution, Loc};
use tm_relation::Relation;

/// A canonical textual signature of `exec` that is invariant under thread
/// renaming and location renaming.
///
/// The enumerator's symmetry breaking is only partial (threads of equal size
/// can still be swapped), so suites deduplicate found tests by this
/// signature, mirroring the symmetry breaking Alloy performs for Memalloy.
pub fn canonical_signature(exec: &Execution) -> String {
    let thread_count = exec.thread_count();
    let mut best: Option<String> = None;
    for perm in thread_permutations(thread_count) {
        let renamed = apply_thread_permutation(exec, &perm);
        let relabelled = relabel_locations(&renamed);
        let sig = relabelled.signature();
        if best.as_ref().is_none_or(|b| sig < *b) {
            best = Some(sig);
        }
    }
    best.unwrap_or_default()
}

fn thread_permutations(k: usize) -> Vec<Vec<usize>> {
    fn go(remaining: Vec<usize>, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if remaining.is_empty() {
            out.push(prefix.clone());
            return;
        }
        for (i, &x) in remaining.iter().enumerate() {
            let mut rest = remaining.clone();
            rest.remove(i);
            prefix.push(x);
            go(rest, prefix, out);
            prefix.pop();
        }
    }
    let mut out = Vec::new();
    go((0..k).collect(), &mut Vec::new(), &mut out);
    out
}

/// Renames threads according to `perm` (old thread `t` becomes
/// `perm.position(t)`), re-ordering events so identifiers again list thread
/// 0 first, then thread 1, and so on, preserving program order within each
/// thread.
fn apply_thread_permutation(exec: &Execution, perm: &[usize]) -> Execution {
    let n = exec.len();
    // perm[i] = old thread id placed at new position i.
    let mut order: Vec<usize> = Vec::with_capacity(n);
    for &old_t in perm {
        let mut ids: Vec<usize> = (0..n)
            .filter(|&e| exec.event(e).thread.0 as usize == old_t)
            .collect();
        ids.sort_by_key(|&e| exec.po.predecessors(e).count());
        order.extend(ids);
    }
    // map[old id] = new id
    let mut map = vec![None; n];
    for (new, &old) in order.iter().enumerate() {
        map[old] = Some(new);
    }
    let new_thread_of_old: Vec<u32> = (0..n)
        .map(|e| {
            let old_t = exec.event(e).thread.0 as usize;
            perm.iter().position(|&t| t == old_t).unwrap_or(old_t) as u32
        })
        .collect();
    let mut events = vec![*exec.event(0); n];
    for old in 0..n {
        let mut ev: Event = *exec.event(old);
        ev.thread = tm_exec::ThreadId(new_thread_of_old[old]);
        events[map[old].expect("every event is mapped")] = ev;
    }
    let rx = |r: &Relation| r.reindex(&map, n);
    Execution {
        events,
        po: rx(&exec.po),
        rf: rx(&exec.rf),
        co: rx(&exec.co),
        addr: rx(&exec.addr),
        data: rx(&exec.data),
        ctrl: rx(&exec.ctrl),
        rmw: rx(&exec.rmw),
        stxn: rx(&exec.stxn),
        stxnat: rx(&exec.stxnat),
        scr: rx(&exec.scr),
        scrt: rx(&exec.scrt),
    }
}

/// Renumbers locations in first-use order (by event identifier).
fn relabel_locations(exec: &Execution) -> Execution {
    let mut mapping: Vec<(Loc, Loc)> = Vec::new();
    let mut out = exec.clone();
    for e in 0..exec.len() {
        if let Some(loc) = exec.event(e).loc() {
            if !mapping.iter().any(|(old, _)| *old == loc) {
                let new = Loc(mapping.len() as u32);
                mapping.push((loc, new));
            }
        }
    }
    for e in 0..out.len() {
        if let Some(loc) = out.events[e].loc() {
            let new = mapping
                .iter()
                .find(|(old, _)| *old == loc)
                .map(|(_, new)| *new)
                .expect("every used location is in the mapping");
            out.events[e].kind = match out.events[e].kind {
                EventKind::Read(_) => EventKind::Read(new),
                EventKind::Write(_) => EventKind::Write(new),
                other => other,
            };
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_exec::{catalog, Event, ExecutionBuilder};

    #[test]
    fn signature_is_invariant_under_thread_swap() {
        // SB with its two threads written in the two possible orders.
        let a = catalog::sb();
        let mut b = ExecutionBuilder::new();
        b.push(Event::write(1, 0));
        b.push(Event::read(1, 1));
        b.push(Event::write(0, 1));
        b.push(Event::read(0, 0));
        let b = b.build().unwrap();
        assert_ne!(a.signature(), b.signature());
        assert_eq!(canonical_signature(&a), canonical_signature(&b));
    }

    #[test]
    fn signature_is_invariant_under_location_renaming() {
        let mut b1 = ExecutionBuilder::new();
        b1.push(Event::write(0, 0));
        b1.push(Event::read(1, 0));
        let e1 = b1.build().unwrap();
        let mut b2 = ExecutionBuilder::new();
        b2.push(Event::write(0, 2));
        b2.push(Event::read(1, 2));
        let e2 = b2.build().unwrap();
        assert_eq!(canonical_signature(&e1), canonical_signature(&e2));
    }

    #[test]
    fn different_executions_get_different_signatures() {
        assert_ne!(
            canonical_signature(&catalog::sb()),
            canonical_signature(&catalog::lb())
        );
        assert_ne!(
            canonical_signature(&catalog::mp()),
            canonical_signature(&catalog::mp_txn())
        );
    }

    #[test]
    fn signature_is_stable() {
        let e = catalog::power_wrc_tprop1();
        assert_eq!(canonical_signature(&e), canonical_signature(&e.clone()));
    }
}

//! Bounded exhaustive synthesis of conformance tests for transactional
//! weak-memory models.
//!
//! This crate replaces the paper's SAT-based Memalloy backend with an
//! explicit bounded search (see DESIGN.md for the substitution argument).
//! It provides:
//!
//! * [`enumerate_exact`] / [`enumerate_all`] — enumeration of every
//!   well-formed candidate execution within a [`SynthConfig`] bound;
//! * [`weakenings`] — the ⊏ execution-weakening order of §4.2 (event
//!   removal, dependency removal, annotation downgrade, transaction shrink);
//! * [`synthesise_suites`] — the Forbid (minimally-forbidden) and Allow
//!   (maximally-allowed) conformance suites of Table 1;
//! * [`find_distinguishing`] — Memalloy's core query: one execution that
//!   separates two models;
//! * [`canonical_signature`] — deduplication up to thread/location renaming.
//!
//! # Quick start
//!
//! ```
//! use tm_models::{ScModel, X86Model};
//! use tm_synth::{synthesise_suites, SynthConfig};
//!
//! // Synthesise the 3-event Forbid/Allow suites for x86+TM.
//! let cfg = SynthConfig::x86(3);
//! let report = synthesise_suites(&X86Model::tm(), &X86Model::baseline(), &cfg, 3);
//! println!(
//!     "|E|=3: enumerated {}, forbid {}, allow {}",
//!     report.enumerated,
//!     report.forbid.len(),
//!     report.allow.len()
//! );
//! # let _ = ScModel::sc();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod canon;
mod config;
mod enumerate;
mod hash;
mod suite;
mod symmetry;
mod weaken;

pub use canon::{canonical_signature, CanonSig};
pub use config::SynthConfig;
pub use enumerate::{
    enumerate_all, enumerate_exact, enumerate_exact_incremental, enumerate_exact_incremental_until,
    enumerate_exact_reference, enumerate_exact_until, enumerate_reduced,
    enumerate_reduced_incremental, enumerate_reduced_incremental_until, enumerate_reduced_until,
    enumerate_unit_incremental, enumerate_unit_reduced, split_unit, unit_weight, work_units,
    WorkUnit,
};
pub use suite::{
    assemble_suites, find_distinguishing, minimal_under_weakenings, synthesise_suites,
    synthesise_suites_per_execution, synthesise_suites_with, SuiteReport, SynthesisedTest,
};
pub use symmetry::{labelled_orbit, ReducedCount, Symmetry};
pub use weaken::{
    apply_weakening_edits, undo_weakening_edits, weakening_edits, weakenings,
    weakenings_with_signatures, Weakening, WeakeningEdit,
};

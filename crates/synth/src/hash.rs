//! A tiny FNV-1a 64-bit hasher, used for *stable* identifiers that must
//! survive process restarts (checkpointed sweeps key their journal records
//! by work-unit id). `std::hash` is deliberately avoided here: `RandomState`
//! is seeded per process and `SipHasher`'s unkeyed variant is deprecated,
//! while FNV-1a is trivially stable, endian-independent (we feed it bytes in
//! little-endian order) and good enough for a few thousand ids.

/// Incremental FNV-1a over a byte stream.
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Fnv1a {
        Fnv1a(Self::OFFSET)
    }

    pub(crate) fn byte(&mut self, b: u8) -> &mut Self {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        self
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.byte(b);
        }
        self
    }

    pub(crate) fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    pub(crate) fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // FNV-1a("") = offset basis; FNV-1a("a") = 0xaf63dc4c8601ec8c.
        assert_eq!(Fnv1a::new().finish(), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv1a::new().bytes(b"a").finish(), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(
            Fnv1a::new().bytes(b"foobar").finish(),
            0x85944171f73967e8,
            "multi-byte vector"
        );
    }

    #[test]
    fn order_sensitivity() {
        let ab = Fnv1a::new().byte(1).byte(2).finish();
        let ba = Fnv1a::new().byte(2).byte(1).finish();
        assert_ne!(ab, ba);
    }
}
